//! Extension experiments beyond the paper (its "future work" items):
//!
//! 1. **Stream priorities** — heterogeneous guarantees: a 10:1:1 weighted
//!    actuator protects the important stream under 2× overload while the
//!    loop keeps the same aggregate delay target;
//! 2. **Kalman cost tracking** — the paper's suggested stochastic
//!    estimator vs the EWMA, under the Fig. 14 cost profile.

use crate::runner::{run_with_strategy, StrategyKind};
use crate::{FigureResult, Series};
use streamshed_control::kalman::CostTrackerKind;
use streamshed_control::loop_::LoopConfig;
use streamshed_control::priority::{PriorityCtrlStrategy, StreamPriorities};
use streamshed_engine::networks::identification_network;
use streamshed_engine::sim::{SimConfig, Simulator};
use streamshed_engine::time::{secs, SimTime};
use streamshed_workload::{to_micros, ArrivalTrace, CostTrace, ParetoTrace, StepTrace};

fn priority_rows(seed: u64) -> Vec<(String, f64)> {
    let times = StepTrace::constant(380.0).arrival_times(200.0);
    let cfg = LoopConfig::paper_default();
    let mut strategy =
        PriorityCtrlStrategy::new(&cfg, StreamPriorities::new(vec![10.0, 1.0, 1.0]));
    let sim = Simulator::new(
        identification_network(),
        SimConfig::paper_default().with_seed(seed),
    );
    let arrivals: Vec<SimTime> = to_micros(&times).into_iter().map(SimTime).collect();
    let report = sim.run(&arrivals, &mut strategy, secs(200));

    let offered_per_stream = report.offered as f64 / 3.0;
    let mut rows = vec![
        ("priority:aggregate_loss".into(), report.loss_ratio()),
        (
            "priority:mean_delay_ms".into(),
            report.delay_stats().mean_ms(),
        ),
    ];
    for (i, stat) in report.node_stats.iter().take(3).enumerate() {
        rows.push((
            format!("priority:stream{i}_keep_fraction"),
            stat.processed as f64 / offered_per_stream,
        ));
    }
    rows
}

fn kalman_rows(seed: u64) -> Vec<(String, f64)> {
    let times = ParetoTrace::builder()
        .mean_rate(250.0)
        .bias(1.0)
        .seed(seed)
        .build()
        .arrival_times(400.0);
    let cost = CostTrace::paper_fig14(crate::fig12::BASE_COST_MS, seed ^ 0xC057);
    let mut rows = Vec::new();
    for (label, kind) in [
        ("ewma", CostTrackerKind::Ewma),
        ("kalman", CostTrackerKind::Kalman),
    ] {
        let cfg = LoopConfig::paper_default().with_cost_tracker(kind);
        let out = run_with_strategy(
            StrategyKind::Ctrl,
            &times,
            &cfg,
            400,
            Some(&cost),
            None,
            seed,
        );
        rows.push((
            format!("kalman_vs_ewma:{label}:violations_s"),
            out.metrics.accumulated_violation_ms / 1e3,
        ));
        rows.push((
            format!("kalman_vs_ewma:{label}:loss"),
            out.metrics.loss_ratio,
        ));
        rows.push((
            format!("kalman_vs_ewma:{label}:max_overshoot_ms"),
            out.metrics.max_overshoot_ms,
        ));
    }
    rows
}

/// Runs both extension studies.
pub fn run(seed: u64) -> FigureResult {
    let mut summary = priority_rows(seed);
    summary.extend(kalman_rows(seed));
    let series = summary
        .iter()
        .enumerate()
        .map(|(i, (name, v))| Series::new(name.clone(), vec![(i as f64, *v)]))
        .collect();
    FigureResult {
        id: "extensions".into(),
        title: "Future-work extensions: stream priorities & Kalman tracking".into(),
        x_label: "row".into(),
        y_label: "value".into(),
        series,
        summary,
        notes: vec![
            "priorities: same loop, weighted actuator — the 10× stream keeps \
             ~100% while low-priority streams absorb the cut"
                .into(),
            "kalman vs ewma: comparable totals; the Kalman gain matters most \
             when measurements go missing (see kalman module docs)"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_extension_protects_stream_zero() {
        let fig = run(3);
        let get = |name: &str| fig.summary.iter().find(|(n, _)| n == name).unwrap().1;
        assert!(get("priority:stream0_keep_fraction") > 0.9);
        assert!(get("priority:stream1_keep_fraction") < 0.4);
        // The aggregate loop still sheds ≈ the overload fraction.
        assert!((get("priority:aggregate_loss") - 0.5).abs() < 0.1);
    }

    #[test]
    fn kalman_is_competitive_with_ewma() {
        let fig = run(3);
        let get = |name: &str| fig.summary.iter().find(|(n, _)| n == name).unwrap().1;
        let ew = get("kalman_vs_ewma:ewma:violations_s");
        let ka = get("kalman_vs_ewma:kalman:violations_s");
        assert!(
            ka < ew * 2.5 && ew < ka * 2.5,
            "same ballpark expected: ewma {ew}, kalman {ka}"
        );
        let loss_gap =
            (get("kalman_vs_ewma:kalman:loss") - get("kalman_vs_ewma:ewma:loss")).abs();
        assert!(loss_gap < 0.08, "loss gap {loss_gap}");
    }
}
