//! Robustness extension: the fault-injection scenario matrix.
//!
//! The paper evaluates CTRL under hostile *workloads*; this experiment
//! evaluates it under hostile *loop conditions* — broken sensors,
//! corrupted cost measurements, misbehaving actuators, operator stalls,
//! period jitter, and flash floods — and shows what the supervisory layer
//! ([`Supervisor`]) buys.
//!
//! Each scenario runs twice over the same 200 s, 300 t/s overload (the
//! identification network saturates at ≈190 t/s): once with bare CTRL and
//! once with CTRL wrapped in the supervisor, both behind the *same*
//! seeded [`FaultyHook`]. The headline metric is the accumulated delay
//! violation Σ(y − yd)⁺: for fault classes that blind the virtual-queue
//! estimator (stale `q(k)`, sensor dropout, cost collapse) the bare loop
//! admits far over capacity and the violation explodes, while the
//! supervisor's watchdog falls back to open-loop capacity matching and
//! keeps it bounded.

use crate::{FigureResult, Series};
use streamshed_control::loop_::LoopConfig;
use streamshed_control::strategy::CtrlStrategy;
use streamshed_control::supervisor::Supervisor;
use streamshed_engine::faults::{
    inject_flash_flood, stall_schedule, FaultKind, FaultPlan, FaultWindow, FaultyHook,
};
use streamshed_engine::metrics::RunReport;
use streamshed_engine::networks::identification_network;
use streamshed_engine::sim::{SimConfig, Simulator};
use streamshed_engine::time::{secs, SimTime};
use streamshed_workload::{to_micros, ArrivalTrace, StepTrace};

/// Run length of every scenario cell (seconds). Shared with
/// [`crate::trace`] so a traced replay sees the identical workload.
pub const DURATION_S: u64 = 200;
const RATE_TPS: f64 = 300.0;

/// The scenario keys of the matrix, in display order.
pub const SCENARIOS: &[&str] = &[
    "clean",
    "stale_q",
    "sensor_dropout",
    "cost_nan",
    "cost_collapse",
    "actuator_hold",
    "actuator_partial",
    "flash_flood",
    "stall",
    "jitter",
];

/// The fault plan for one scenario key.
pub fn plan_for(key: &str, seed: u64) -> FaultPlan {
    let plan = FaultPlan::new(seed);
    match key {
        // Freeze the queue reading from the very start of the run, while
        // the queue is still small: the controller believes the system is
        // underloaded forever — the worst case for a virtual-queue loop.
        "stale_q" => plan.with(FaultWindow::new(FaultKind::StaleQueue, 1, 120)),
        "sensor_dropout" => plan.with(FaultWindow::new(FaultKind::SensorDropout, 1, 120)),
        "cost_nan" => plan.with(FaultWindow::new(FaultKind::CostNan, 60, 140)),
        // A 20× downward cost spike: the estimator is told tuples are
        // almost free, so the loop under-sheds.
        "cost_collapse" => {
            plan.with(FaultWindow::new(FaultKind::CostSpike { factor: 0.05 }, 60, 140))
        }
        "actuator_hold" => plan.with(FaultWindow::new(FaultKind::ActuatorIgnore, 60, 140)),
        "actuator_partial" => plan.with(FaultWindow::new(
            FaultKind::ActuatorPartial { applied: 0.5 },
            60,
            140,
        )),
        "jitter" => plan.with(FaultWindow::new(FaultKind::PeriodJitter { factor: 2.0 }, 60, 140)),
        // "clean", "flash_flood" and "stall" inject nothing at the hook;
        // the latter two perturb the plant instead (arrivals / cost
        // schedule).
        _ => plan,
    }
}

/// The simulator configuration for one scenario (the `stall` scenario
/// perturbs the plant through a cost schedule rather than the hook).
pub fn scenario_sim_config(key: &str, seed: u64) -> SimConfig {
    let loop_cfg = LoopConfig::paper_default();
    let mut sim_cfg = SimConfig::paper_default()
        .with_period(loop_cfg.period())
        .with_target_delay(loop_cfg.target_delay())
        .with_seed(seed);
    if key == "stall" {
        // An operator stalls (6× cost) for 40 s.
        sim_cfg = sim_cfg.with_cost_schedule(stall_schedule(&[(100.0, 140.0, 6.0)]));
    }
    sim_cfg
}

/// The arrival instants for one scenario (the `flash_flood` scenario
/// injects a burst on top of the base rate).
pub fn scenario_arrivals(key: &str, seed: u64) -> Vec<SimTime> {
    let times = StepTrace::constant(RATE_TPS).arrival_times(DURATION_S as f64);
    let mut arrivals: Vec<SimTime> = to_micros(&times).into_iter().map(SimTime).collect();
    if key == "flash_flood" {
        // +300 t/s on top of the base rate for 10 s.
        inject_flash_flood(&mut arrivals, 100.0, 110.0, 3000, seed);
    }
    arrivals
}

/// Runs one (scenario, strategy) cell and returns the engine report.
fn run_cell(key: &str, supervised: bool, seed: u64) -> RunReport {
    let loop_cfg = LoopConfig::paper_default();
    let sim_cfg = scenario_sim_config(key, seed);
    let arrivals = scenario_arrivals(key, seed);
    let plan = plan_for(key, seed);
    let sim = Simulator::new(identification_network(), sim_cfg);
    if supervised {
        let strategy = Supervisor::from_loop(CtrlStrategy::from_config(&loop_cfg), &loop_cfg);
        let mut hook = FaultyHook::new(strategy, plan);
        sim.run(&arrivals, &mut hook, secs(DURATION_S))
    } else {
        let mut hook = FaultyHook::new(CtrlStrategy::from_config(&loop_cfg), plan);
        sim.run(&arrivals, &mut hook, secs(DURATION_S))
    }
}

/// Mean true delay (s) over the final `n` periods — the "did it recover"
/// metric.
fn tail_delay_s(report: &RunReport, n: usize) -> f64 {
    let vals: Vec<f64> = report
        .periods
        .iter()
        .rev()
        .take(n)
        .map(|p| p.arrival_mean_delay_ms / 1e3)
        .filter(|d| d.is_finite())
        .collect();
    vals.iter().sum::<f64>() / vals.len().max(1) as f64
}

/// Runs the fault matrix.
pub fn run(seed: u64) -> FigureResult {
    let mut series_ctrl = Vec::new();
    let mut series_sup = Vec::new();
    let mut summary = Vec::new();
    let mut notes = vec![
        "scenario indices: ".to_string() + &SCENARIOS.join(", "),
        "violation metric: accumulated Σ(y − yd)⁺ in tuple-seconds over a \
         200 s, 300 t/s overload (capacity ≈ 190 t/s)"
            .into(),
    ];

    for (i, &key) in SCENARIOS.iter().enumerate() {
        let ctrl = run_cell(key, false, seed);
        let sup = run_cell(key, true, seed);
        let v_ctrl = ctrl.accumulated_violation_ms / 1e3;
        let v_sup = sup.accumulated_violation_ms / 1e3;
        series_ctrl.push((i as f64, v_ctrl));
        series_sup.push((i as f64, v_sup));
        summary.push((format!("{key}/CTRL:violation_s"), v_ctrl));
        summary.push((format!("{key}/SUP:violation_s"), v_sup));
        summary.push((format!("{key}/CTRL:loss"), ctrl.loss_ratio()));
        summary.push((format!("{key}/SUP:loss"), sup.loss_ratio()));
        summary.push((format!("{key}/CTRL:tail_delay_s"), tail_delay_s(&ctrl, 20)));
        summary.push((format!("{key}/SUP:tail_delay_s"), tail_delay_s(&sup, 20)));
        summary.push((
            format!("{key}:violation_ratio"),
            if v_sup > 1e-9 { v_ctrl / v_sup } else { f64::INFINITY },
        ));
    }
    notes.push(
        "sensor faults that blind the virtual queue (stale_q, \
         sensor_dropout, cost_collapse) make bare CTRL admit far over \
         capacity; the supervisor detects divergence from the true-delay \
         residual and falls back to open-loop capacity matching"
            .into(),
    );
    notes.push(
        "cost_nan, actuator faults, flash floods and stalls are absorbed \
         by the existing feedback design — the supervisor must (and does) \
         stay out of the way"
            .into(),
    );

    FigureResult {
        id: "faults".into(),
        title: "Fault-injection matrix: bare CTRL vs supervised CTRL".into(),
        x_label: "scenario index".into(),
        y_label: "accumulated violation (tuple·s)".into(),
        series: vec![
            Series::new("CTRL".to_string(), series_ctrl),
            Series::new("CTRL+SUP".to_string(), series_sup),
        ],
        summary,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(fig: &FigureResult, name: &str) -> f64 {
        fig.summary
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing summary entry {name}"))
            .1
    }

    #[test]
    fn supervised_loop_stays_bounded_under_every_fault() {
        let fig = run(1);
        // Reference scale: the clean run's violation (start-up transient
        // of a permanently overloaded system).
        let clean = get(&fig, "clean/SUP:violation_s").max(1.0);
        for key in SCENARIOS {
            let v = get(&fig, &format!("{key}/SUP:violation_s"));
            assert!(
                v < 60.0 * clean,
                "supervised {key} violation {v:.0} tuple·s vs clean {clean:.0}"
            );
            let tail = get(&fig, &format!("{key}/SUP:tail_delay_s"));
            assert!(
                tail < 8.0,
                "supervised {key} failed to recover: tail delay {tail:.1}s"
            );
        }
    }

    #[test]
    fn unsupervised_loop_diverges_where_the_queue_sensor_lies() {
        let fig = run(1);
        for key in ["stale_q", "sensor_dropout", "cost_collapse"] {
            let ratio = get(&fig, &format!("{key}:violation_ratio"));
            assert!(
                ratio > 3.0,
                "{key}: bare CTRL should blow up ≥3× supervised, ratio {ratio:.1}"
            );
        }
    }

    #[test]
    fn supervisor_does_no_harm_where_feedback_already_copes() {
        let fig = run(1);
        for key in ["clean", "cost_nan", "flash_flood", "stall", "actuator_partial"] {
            let ctrl = get(&fig, &format!("{key}/CTRL:violation_s"));
            let sup = get(&fig, &format!("{key}/SUP:violation_s"));
            // Within a factor of 2 plus a small absolute allowance.
            assert!(
                sup <= 2.0 * ctrl + 2000.0,
                "{key}: supervised {sup:.0} vs bare {ctrl:.0} tuple·s"
            );
        }
    }

    #[test]
    fn matrix_is_deterministic_from_the_seed() {
        let a = run(1);
        let b = run(1);
        assert_eq!(a.summary, b.summary);
    }
}
