//! `reproduce sharded` — delay convergence on the sharded data plane.
//!
//! The paper's controller is derived for the *aggregate* plant
//! `G(z) = cT/(H(z−1))` (§4.2): partitioning the data plane across N
//! workers only changes the constant `c` (to `c/N`, since N tuples drain
//! concurrently). This scenario demonstrates the claim end to end on the
//! wall clock: the same pole-placement CTRL strategy drives the
//! real-time [`ShardedEngine`] at 1 shard and at 4 shards, each under
//! 2× overload *relative to its own capacity*, and both must converge
//! the measured mean tuple delay to the same target.
//!
//! Unlike the virtual-time figures this run is wall-clock and therefore
//! not byte-deterministic; it is excluded from `reproduce all` and run
//! explicitly (`reproduce sharded`). The figure tolerance is accordingly
//! generous: steady-state mean delay within ±40% of the target.

use crate::{FigureResult, Series};
use std::time::{Duration, Instant};
use streamshed_control::loop_::LoopConfig;
use streamshed_control::strategy::CtrlStrategy;
use streamshed_engine::shard::{Dispatch, ShardConfig, ShardedEngine};
use streamshed_engine::telemetry::SharedRecorder;
use streamshed_engine::worker::CostModel;

/// Nominal per-tuple service cost.
const COST: Duration = Duration::from_millis(2);
/// Control period of the global controller.
const PERIOD: Duration = Duration::from_millis(50);
/// Delay target the controller must converge to, ms.
pub const TARGET_MS: f64 = 250.0;
/// Wall-clock length of each run.
const RUN: Duration = Duration::from_secs(6);
/// Offered load per shard, tuples/s — about 2× a shard's ~500 t/s
/// service capacity, so every configuration is in sustained overload.
const RATE_PER_SHARD: f64 = 1000.0;

/// Outcome of one sharded run.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Shard count.
    pub shards: usize,
    /// Steady-state mean delay (completed-weighted over the second half
    /// of the run), ms.
    pub steady_delay_ms: f64,
    /// Overall data loss ratio.
    pub loss_ratio: f64,
    /// Mean delay trajectory, one point per control period `(s, ms)`.
    pub trajectory: Vec<(f64, f64)>,
    /// Tuples offered / completed.
    pub offered: u64,
    /// Tuples completed.
    pub completed: u64,
    /// Whether the front-door/shard counters balance exactly.
    pub balanced: bool,
}

/// Runs the CTRL strategy on a sharded engine and measures convergence.
/// `seed` drives the front-door entry shedder, so the sampling side of
/// the run replays for a given `--seed` (wall-clock pacing still varies).
pub fn run_once(shards: usize, seed: u64) -> ShardRun {
    let cfg = ShardConfig {
        shards,
        cost: COST,
        period: PERIOD,
        target_delay: Duration::from_millis(TARGET_MS as u64),
        headroom: 0.97,
        queue_capacity: 8192,
        panic_on_tuple: None,
        cost_model: CostModel::Sleep,
        dispatch: Dispatch::RoundRobin,
        seed,
        pin_cores: false,
        sample_every: streamshed_engine::spans::DEFAULT_SAMPLE_EVERY,
    };
    // The controller is the unchanged pole-placement loop; only its cost
    // prior reflects the aggregate plant (c/N — the engine's measured
    // feedback uses the same convention).
    let loop_cfg = LoopConfig::paper_default()
        .with_target_delay_ms(TARGET_MS)
        .with_period_ms(PERIOD.as_millis() as f64)
        .with_headroom(0.97)
        .with_prior_cost_us(COST.as_micros() as f64 / shards as f64);
    let strategy = CtrlStrategy::from_config(&loop_cfg);
    let recorder = SharedRecorder::with_capacity(4096);
    let engine = ShardedEngine::spawn_recorded(cfg, strategy, Some(recorder.clone()));

    // Paced feeder: batch arrivals every 5 ms at `RATE_PER_SHARD × N`.
    let rate = RATE_PER_SHARD * shards as f64;
    let tick = Duration::from_millis(5);
    let per_tick = (rate * tick.as_secs_f64()).round() as u64;
    let start = Instant::now();
    let mut next = start + tick;
    while start.elapsed() < RUN {
        // Batched front door: one shed pass + one timestamp per tick.
        engine.offer_batch(per_tick as usize);
        let now = Instant::now();
        if next > now {
            std::thread::sleep(next - now);
        }
        next += tick;
    }
    let report = engine.shutdown();

    let traces = recorder.snapshot();
    let trajectory: Vec<(f64, f64)> = traces
        .iter()
        .filter(|t| t.mean_delay_ms.is_finite())
        .map(|t| (t.time_s, t.mean_delay_ms))
        .collect();
    // Steady state: completed-weighted mean over the second half.
    let half = RUN.as_secs_f64() / 2.0;
    let (mut sum, mut n) = (0.0f64, 0u64);
    for t in &traces {
        if t.time_s >= half && t.completed > 0 && t.mean_delay_ms.is_finite() {
            sum += t.mean_delay_ms * t.completed as f64;
            n += t.completed;
        }
    }
    ShardRun {
        shards,
        steady_delay_ms: if n > 0 { sum / n as f64 } else { f64::NAN },
        loss_ratio: report.loss_ratio(),
        trajectory,
        offered: report.offered,
        completed: report.completed,
        balanced: report.counters_balance(),
    }
}

/// Regenerates the sharded-convergence scenario: 1 shard vs 4 shards,
/// same controller, same target. The CLI `--seed` arrives here and
/// seeds each engine's entry shedder.
pub fn run(seed: u64) -> FigureResult {
    let runs: Vec<ShardRun> = [1usize, 4].iter().map(|&s| run_once(s, seed)).collect();
    let series = runs
        .iter()
        .map(|r| {
            Series::new(
                format!("{} shard{}", r.shards, if r.shards == 1 { "" } else { "s" }),
                r.trajectory.clone(),
            )
        })
        .collect();
    let mut summary = vec![("target_delay_ms".to_string(), TARGET_MS)];
    let mut notes = Vec::new();
    for r in &runs {
        summary.push((format!("steady_delay_ms_{}shard", r.shards), r.steady_delay_ms));
        summary.push((format!("loss_ratio_{}shard", r.shards), r.loss_ratio));
        summary.push((
            format!("counters_balanced_{}shard", r.shards),
            if r.balanced { 1.0 } else { 0.0 },
        ));
        notes.push(format!(
            "{} shards: steady-state delay {:.0} ms vs target {TARGET_MS:.0} ms \
             ({:.0}% off), loss {:.2}, {}/{} completed",
            r.shards,
            r.steady_delay_ms,
            (r.steady_delay_ms / TARGET_MS - 1.0) * 100.0,
            r.loss_ratio,
            r.completed,
            r.offered,
        ));
    }
    if runs.iter().all(|r| r.steady_delay_ms.is_finite()) {
        let gap = (runs[0].steady_delay_ms - runs[1].steady_delay_ms).abs();
        summary.push(("shard_convergence_gap_ms".to_string(), gap));
        notes.push(format!(
            "one global controller suffices: 1-shard and 4-shard steady states \
             differ by {gap:.0} ms (paper §4.2 aggregate-plant argument)"
        ));
    }
    FigureResult {
        id: "sharded".into(),
        title: "Sharded data plane: one controller, same delay target".into(),
        x_label: "time (s)".into(),
        y_label: "mean delay (ms)".into(),
        series,
        summary,
        notes,
    }
}
