//! Figure 6: model verification with step inputs.
//!
//! Real measured delays vs the model `ŷ(k) = (q(k−1)+1)·c/H` for
//! H ∈ {0.95, 0.97, 1.00}, using runtime-collected q(k). The paper finds
//! H = 0.97 gives far smaller modeling errors than the other choices.

use crate::{FigureResult, Series};
use streamshed_engine::networks::identification_network;
use streamshed_engine::sim::SimConfig;
use streamshed_sysid::{fit_headroom, model_error_s, predict_delays_s, run_identification};
use streamshed_workload::StepTrace;

/// Candidate headrooms compared in the paper.
pub const HEADROOMS: [f64; 3] = [0.95, 0.97, 1.00];

/// Runs the Fig. 6 experiment: 80 s step-input observation.
pub fn run() -> FigureResult {
    let run = run_identification(
        identification_network(),
        &StepTrace::paper_step(300.0),
        80,
        260,
        SimConfig::paper_default(),
    );
    let mut series = Vec::new();
    series.push(Series::new(
        "real",
        run.periods
            .iter()
            .map(|p| (p.k as f64, p.y_real_ms / 1e3))
            .collect(),
    ));
    let mut summary = Vec::new();
    for &h in &HEADROOMS {
        let pred = predict_delays_s(&run, run.mean_cost_us, h);
        series.push(Series::new(
            format!("model(H={h})"),
            pred.iter().enumerate().map(|(k, &y)| (k as f64, y)).collect(),
        ));
        let err = model_error_s(&run, run.mean_cost_us, h);
        series.push(Series::new(
            format!("error(H={h})"),
            err.iter().enumerate().map(|(k, &e)| (k as f64, e)).collect(),
        ));
        summary.push((
            format!("rmse_s(H={h})"),
            streamshed_sysid::rmse(&err),
        ));
    }
    let fit = fit_headroom(&run, run.mean_cost_us, &HEADROOMS);
    summary.push(("best_headroom".into(), fit.best_headroom));
    summary.push(("measured_cost_us".into(), run.mean_cost_us));

    FigureResult {
        id: "fig06".into(),
        title: "Model verification with step inputs".into(),
        x_label: "period k (s)".into(),
        y_label: "delay (s)".into(),
        series,
        summary,
        notes: vec![
            "paper: model fits well for all H; H = 0.97 minimises the error".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_097_wins() {
        let fig = run();
        let best = fig
            .summary
            .iter()
            .find(|(n, _)| n == "best_headroom")
            .unwrap()
            .1;
        assert!((best - 0.97).abs() < 1e-9, "best H = {best}");
        let rmse97 = fig
            .summary
            .iter()
            .find(|(n, _)| n == "rmse_s(H=0.97)")
            .unwrap()
            .1;
        // Absolute fit quality: errors well under the tens-of-seconds
        // delays reached in the run (paper's Fig 6B: within ±4 s).
        assert!(rmse97 < 4.0, "rmse at H=0.97: {rmse97} s");
    }
}
