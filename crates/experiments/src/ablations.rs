//! Ablations of the design choices DESIGN.md calls out.
//!
//! Not figures from the paper, but controlled comparisons that justify
//! (or interrogate) each design decision:
//!
//! 1. **Shed location** — entry coin-flip vs in-network queue shedding;
//! 2. **Ls formula** — the paper-literal `Lq + Li − La` vs the
//!    queue-conserving derivation;
//! 3. **Anti-windup** — back-calculation on vs off;
//! 4. **Pole placement** — closed-loop poles at 0.5 / 0.7 / 0.9;
//! 5. **Feedback signal** — virtual-queue estimate ŷ vs the delayed
//!    true-delay measurement (§4.5.1's motivating problem).

use crate::runner::{run_with_strategy, MetricsSummary, StrategyKind};
use crate::{FigureResult, Series};
use streamshed_control::controller::FeedbackController;
use streamshed_control::loop_::{LoopConfig, ShedMode};
use streamshed_control::shedder::EntryShedder;
use streamshed_engine::hook::{ControlHook, Decision, PeriodSnapshot};
use streamshed_engine::networks::identification_network;
use streamshed_engine::sim::{SimConfig, Simulator};
use streamshed_engine::time::{secs, SimTime};
use streamshed_workload::{to_micros, ArrivalTrace, ParetoTrace};
use streamshed_zdomain::design::{design_for_integrator, DesignSpec};

const DURATION_S: u64 = 300;

fn workload(seed: u64) -> Vec<f64> {
    ParetoTrace::builder()
        .mean_rate(300.0)
        .bias(0.5)
        .seed(seed)
        .build()
        .arrival_times(DURATION_S as f64)
}

fn metrics(cfg: &LoopConfig, times: &[f64], seed: u64) -> MetricsSummary {
    run_with_strategy(StrategyKind::Ctrl, times, cfg, DURATION_S, None, None, seed).metrics
}

/// A CTRL variant fed by the *delayed true-delay measurement* instead of
/// the virtual-queue estimate — the naive design §4.5.1 rules out.
struct TrueDelayFeedback {
    controller: FeedbackController,
    target_s: f64,
    last_y_s: f64,
    cfg: LoopConfig,
}

impl ControlHook for TrueDelayFeedback {
    fn on_period(&mut self, snap: &PeriodSnapshot) -> Decision {
        if let Some(ms) = snap.mean_delay_ms {
            self.last_y_s = ms / 1e3;
        }
        let e = self.target_s - self.last_y_s;
        let c_s = snap.measured_cost_us.unwrap_or(self.cfg.prior_cost_us) / 1e6;
        let u = self.controller.compute(
            e,
            c_s.max(1e-6),
            snap.period.as_secs_f64(),
            self.cfg.headroom,
        );
        let fin = snap.fin_rate();
        let v = u + snap.fout_rate();
        let v_applied = v.clamp(0.0, fin.max(0.0));
        self.controller.commit(e, v_applied - snap.fout_rate());
        Decision::entry(EntryShedder::alpha_for(v, fin))
    }
}

fn true_delay_metrics(times: &[f64], seed: u64) -> MetricsSummary {
    let cfg = LoopConfig::paper_default();
    let mut hook = TrueDelayFeedback {
        controller: FeedbackController::new(cfg.controller),
        target_s: cfg.target_delay_s(),
        last_y_s: 0.0,
        cfg: cfg.clone(),
    };
    let arrivals: Vec<SimTime> = to_micros(times).into_iter().map(SimTime).collect();
    let sim = Simulator::new(
        identification_network(),
        SimConfig::paper_default().with_seed(seed),
    );
    let report = sim.run(&arrivals, &mut hook, secs(DURATION_S));
    MetricsSummary::from_report(&report)
}

/// Runs all ablations and reports violations + loss per variant.
pub fn run(seed: u64) -> FigureResult {
    let times = workload(seed);
    let base = LoopConfig::paper_default();
    let mut rows: Vec<(String, MetricsSummary)> = Vec::new();

    rows.push(("entry-shed (default)".into(), metrics(&base, &times, seed)));
    rows.push((
        "network-shed".into(),
        metrics(
            &base.clone().with_shed_mode(ShedMode::Network),
            &times,
            seed,
        ),
    ));
    rows.push((
        "no-anti-windup".into(),
        metrics(&base.clone().with_anti_windup(false), &times, seed),
    ));
    for pole in [0.5, 0.9] {
        let params = design_for_integrator(&DesignSpec::from_double_pole(pole));
        rows.push((
            format!("pole={pole}"),
            metrics(&base.clone().with_controller(params), &times, seed),
        ));
    }
    rows.push(("true-delay-feedback".into(), true_delay_metrics(&times, seed)));

    let mut series = Vec::new();
    let mut summary = Vec::new();
    for (i, (name, m)) in rows.iter().enumerate() {
        series.push(Series::new(
            name.clone(),
            vec![(i as f64, m.accumulated_violation_ms / 1e3)],
        ));
        summary.push((format!("{name}:violations_s"), m.accumulated_violation_ms / 1e3));
        summary.push((format!("{name}:loss"), m.loss_ratio));
        summary.push((format!("{name}:max_overshoot_ms"), m.max_overshoot_ms));
    }

    FigureResult {
        id: "ablations".into(),
        title: "Design-choice ablations (not in the paper)".into(),
        x_label: "variant".into(),
        y_label: "accumulated violations (tuple·s)".into(),
        series,
        summary,
        notes: vec![
            "network-shed can cull the standing queue: far fewer violations, slightly more loss"
                .into(),
            "true-delay feedback reacts a full queue-drain late: it over-sheds \
             (more loss than the default) yet still suffers multi-second \
             worst-case overshoots (motivates §4.5.1)"
                .into(),
            "slow poles (0.9) relax α sluggishly after bursts and over-shed; \
             fast poles (0.5) ≈ 0.7 here — 0.7 buys margin without cost"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_directions_are_sane() {
        // Averaged over a small seed set so a single burst realization
        // can't flip the marginal comparisons.
        let seeds = [3u64, 7, 11];
        let figs = crate::parallel::run_indexed(seeds.len(), seeds.len(), |i| run(seeds[i]));
        let mean = |name: &str| {
            figs.iter()
                .map(|f| {
                    f.summary
                        .iter()
                        .find(|(n, _)| n == name)
                        .unwrap_or_else(|| panic!("missing {name}"))
                        .1
                })
                .sum::<f64>()
                / figs.len() as f64
        };
        let default_v = mean("entry-shed (default):violations_s");
        // Network shedding dominates on violations.
        assert!(
            mean("network-shed:violations_s") < default_v,
            "network {} vs entry {default_v}",
            mean("network-shed:violations_s")
        );
        // ...at somewhat higher loss.
        assert!(mean("network-shed:loss") >= mean("entry-shed (default):loss") - 0.02);
        // The delayed true-delay feedback over-reacts to stale
        // measurements: it buys its violations down by shedding more
        // data — §4.5.1's motivation. (The margin shrank when the
        // engine's delay sensor learned to report a known-zero delay
        // for a fully idle pipeline instead of a blackout: the variant
        // no longer wedges shut after a drought, but it still loses
        // strictly more than the default.)
        assert!(
            mean("true-delay-feedback:loss") > mean("entry-shed (default):loss") * 1.02,
            "true-delay loss {} vs default {}",
            mean("true-delay-feedback:loss"),
            mean("entry-shed (default):loss")
        );
        // ...and even with roughly double the loss it still suffers
        // multi-second worst-case overshoots.
        assert!(
            mean("true-delay-feedback:max_overshoot_ms") > 3000.0,
            "true-delay overshoot {}",
            mean("true-delay-feedback:max_overshoot_ms")
        );
    }
}
