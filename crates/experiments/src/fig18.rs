//! Figure 18: responses to runtime changes of the delay target.
//!
//! `yd` starts at 1 s, jumps to 3 s at 150 s and to 5 s at 300 s (Web
//! input). CTRL converges to each new target quickly; BASELINE takes a
//! long time to climb; AURORA does not respond at all.

use crate::runner::{run_with_strategy, StrategyKind, TargetSchedule};
use crate::{FigureResult, Series};
use streamshed_control::loop_::LoopConfig;
use streamshed_workload::{ArrivalTrace, WebLikeTrace};

/// Runs the Fig. 18 experiment.
pub fn run(seed: u64) -> FigureResult {
    // A delay target is only *trackable* under sustained overload — with
    // slack CPU the queue simply drains and delays fall to zero. Use a
    // heavier web-like mix (~300 t/s against the 190 t/s capacity) so the
    // loop actually regulates the queue at every target level.
    let times = WebLikeTrace::builder()
        .sources(64)
        .seed(seed)
        .build()
        .arrival_times(400.0);
    let cfg = LoopConfig::paper_default().with_target_delay_ms(1000.0);
    let schedule = TargetSchedule(vec![(150, 3.0), (300, 5.0)]);

    let mut series = Vec::new();
    let mut summary = Vec::new();
    for kind in [
        StrategyKind::Ctrl,
        StrategyKind::Baseline,
        StrategyKind::Aurora,
    ] {
        let outcome = run_with_strategy(
            kind,
            &times,
            &cfg,
            400,
            None,
            Some(schedule.clone()),
            seed,
        );
        let ys: Vec<(f64, f64)> = outcome
            .report
            .periods
            .iter()
            .map(|p| (p.time_s, p.arrival_mean_delay_ms / 1e3))
            .collect();
        // Phase means over the settled part of each phase.
        let phase_mean = |lo: f64, hi: f64| {
            let vals: Vec<f64> = ys
                .iter()
                .filter(|&&(t, y)| t >= lo && t < hi && y.is_finite())
                .map(|&(_, y)| y)
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        summary.push((format!("{}:phase1_mean_s", outcome.name), phase_mean(60.0, 150.0)));
        summary.push((format!("{}:phase2_mean_s", outcome.name), phase_mean(210.0, 300.0)));
        summary.push((format!("{}:phase3_mean_s", outcome.name), phase_mean(360.0, 395.0)));
        // Convergence speed into phase 2: settling time, i.e. the first
        // period from which the response stays within ±20% of 3 s (a
        // single transient clip of the band while slowly ramping through
        // it does not count as converged).
        let phase2: Vec<f64> = ys
            .iter()
            .filter(|&&(t, _)| (150.0..300.0).contains(&t))
            .map(|&(_, y)| y)
            .collect();
        let in_band = |y: &f64| y.is_finite() && (y - 3.0).abs() < 0.6;
        let conv = (0..phase2.len())
            .find(|&i| phase2[i..].iter().all(in_band))
            .map(|i| i as f64)
            .unwrap_or(f64::INFINITY);
        summary.push((format!("{}:phase2_convergence_periods", outcome.name), conv));
        series.push(Series::new(outcome.name.clone(), ys));
    }

    FigureResult {
        id: "fig18".into(),
        title: "Responses to runtime changes of the target value".into(),
        x_label: "time (s)".into(),
        y_label: "avg delay (s)".into(),
        series,
        summary,
        notes: vec![
            "paper: CTRL converges quickly to 1→3→5 s; BASELINE converges \
             very slowly upward; AURORA ignores the target entirely"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctrl_tracks_targets_aurora_does_not() {
        let fig = run(7);
        let get = |name: &str| fig.summary.iter().find(|(n, _)| n == name).unwrap().1;
        // CTRL settles near each target.
        assert!((get("CTRL:phase1_mean_s") - 1.0).abs() < 0.4, "p1 {}", get("CTRL:phase1_mean_s"));
        assert!((get("CTRL:phase2_mean_s") - 3.0).abs() < 0.8, "p2 {}", get("CTRL:phase2_mean_s"));
        assert!((get("CTRL:phase3_mean_s") - 5.0).abs() < 1.2, "p3 {}", get("CTRL:phase3_mean_s"));
        // CTRL reaches the 3 s band faster than BASELINE.
        assert!(
            get("CTRL:phase2_convergence_periods")
                <= get("BASELINE:phase2_convergence_periods"),
            "CTRL {} vs BASELINE {}",
            get("CTRL:phase2_convergence_periods"),
            get("BASELINE:phase2_convergence_periods")
        );
        // AURORA's phase means do not track 1/3/5 s (it never aims at a
        // delay target): its phase-3 mean stays far from 5 s.
        assert!((get("AURORA:phase3_mean_s") - 5.0).abs() > 1.2, "AURORA p3 {}", get("AURORA:phase3_mean_s"));
    }
}
