//! The self-tuning control experiment (`reproduce adaptive`).
//!
//! Four arms run the same 250 ms-target loop against the same doubling
//! cost staircase ([`CostTrace::doubling_staircase`]: per-tuple cost ×2
//! at 60 s, ×4 at 120 s, ×8 at 180 s, no noise) under sustained 300 t/s
//! overload:
//!
//! * **CTRL-FIXED** — the paper tuning with the loop gain frozen at the
//!   design-time cost. Each doubling doubles the effective loop gain;
//!   at ×8 the closed-loop characteristic equation
//!   `z² + (a − 1 + M·b0)·z + (M·b1 − a)` has a pole at −2.17 and the
//!   loop limit-cycles: the diagnostics plane must flag it
//!   `Oscillating`/`Saturated`.
//! * **CTRL** — the plain strategy whose gain follows the live cost
//!   tracker (the paper's own `H/(c·T)` conversion): the baseline the
//!   self-tuners must not regress.
//! * **CTRL-ADAPTIVE** — windowed-RLS cost re-identification feeding a
//!   hysteresis gain scheduler with bumpless pole-placement swaps.
//! * **CTRL-COMPARATOR** — the model-free hill-climber over pole
//!   candidates, with the same cost scheduling underneath.
//!
//! Each arm's per-period [`ControlTrace`] series is replayed through a
//! fresh [`ControllerHealth`] classifier, and every gain swap of the
//! self-tuning arms is checked against the 3-period settling budget:
//! the number of periods from the swap until the regulated delay ŷ
//! re-enters the diagnostics error band (`y ≤ y_d·(1 + band)`). The
//! budget is attributed per swap: a swap landing while the loop is
//! already riding a cost-step transient is not billed for that
//! transient, and a swap superseded by a later swap before re-entry
//! hands its budget to the last one. Bumpless transfer is what makes
//! the budget achievable — the swap itself injects no actuation step.

use crate::runner::{run_with_strategy, StrategyKind, StrategyOutcome};
use crate::{FigureResult, Series};
use std::time::Duration;
use streamshed_control::loop_::LoopConfig;
use streamshed_engine::diagnostics::{ControllerHealth, DiagnosticsConfig, HealthState};
use streamshed_engine::telemetry::ControlTrace;
use streamshed_workload::{ArrivalTrace, CostTrace, StepTrace};

/// Delay target, seconds.
const TARGET_S: f64 = 0.25;
/// Control period, ms (the paper's 1 s — short enough that per-period
/// cost measurements average over dozens of completions; much shorter
/// periods starve the cost/delay measurements of samples).
const PERIOD_MS: f64 = 1000.0;
/// Sustained offered load, tuples/s (capacity is 190 t/s at ×1 cost).
const RATE_TPS: f64 = 300.0;
/// Seconds per staircase level.
const STEP_S: f64 = 60.0;
/// Total run, seconds (¾ through the held ×8 level).
const DURATION_S: u64 = 260;

/// Per-arm classification extracted from the replayed diagnostics.
#[derive(Debug, Clone)]
pub struct ArmReport {
    /// Arm display name.
    pub name: String,
    /// Periods classified per [`HealthState`] ordinal.
    pub state_periods: [u64; 5],
    /// Bumpless gain swaps performed (0 for non-adaptive arms).
    pub swaps: u64,
    /// Periods from each swap to band re-entry of ŷ.
    pub swap_settle_periods: Vec<u64>,
    /// Final re-identified/scheduled cost, µs (`NaN` if the arm does
    /// not re-identify).
    pub final_cost_est_us: f64,
    /// The four paper metrics of the run.
    pub metrics: crate::MetricsSummary,
    /// `(time_s, ŷ_s)` series for plotting.
    pub y_series: Vec<(f64, f64)>,
}

impl ArmReport {
    /// Periods spent in `Oscillating` or `Saturated`.
    pub fn anomalous_periods(&self) -> u64 {
        self.state_periods[HealthState::Oscillating.ordinal() as usize]
            + self.state_periods[HealthState::Saturated.ordinal() as usize]
    }

    /// Periods spent in `Diverging`.
    pub fn diverging_periods(&self) -> u64 {
        self.state_periods[HealthState::Diverging.ordinal() as usize]
    }

    /// Worst swap-to-settle time, periods (0 when no swap happened).
    pub fn worst_settle_periods(&self) -> u64 {
        self.swap_settle_periods.iter().copied().max().unwrap_or(0)
    }
}

/// Replays an outcome's trace series through a fresh diagnostics
/// classifier and measures each swap's settling time.
pub fn classify(outcome: &StrategyOutcome, target_s: f64) -> ArmReport {
    // Post-hoc classification uses the campaign's detuned thresholds,
    // not the live monitor's: at a 250 ms target with a 1 s period the
    // queue quantum is 5–42 ms of delay per tuple, so even a perfectly
    // regulated loop crosses a ±30 % band on most periods. The gates
    // below only trip on excursions a genuinely broken loop produces —
    // large every-period flips, long out-of-band streaks, a sustained
    // full-shed pin — which is what separates the frozen-gain limit
    // cycle from the self-tuners' quantization ripple.
    let mut cfg = DiagnosticsConfig::for_target(Duration::from_secs_f64(target_s));
    cfg.error_band_frac = 0.75;
    cfg.osc_min_flips = 6;
    cfg.osc_min_error_frac = 0.6;
    cfg.alpha_swing = 0.6;
    cfg.grace_periods = 24;
    cfg.saturation_periods = 10;
    let band = target_s * (1.0 + cfg.error_band_frac);
    let mut health = ControllerHealth::new(cfg);
    let mut state_periods = [0u64; 5];
    for t in &outcome.traces {
        health.observe(t);
        state_periods[health.state().ordinal() as usize] += 1;
    }

    let in_band = |t: &ControlTrace| t.y_hat_s.is_finite() && t.y_hat_s <= band;
    let mut swap_settle_periods = Vec::new();
    let mut prev_swaps = 0u64;
    for (i, t) in outcome.traces.iter().enumerate() {
        if t.adapt_swaps > prev_swaps {
            // A settle time is attributed to a swap only when the swap
            // is the sole active disturbance: the loop must be in band
            // on the period before it (otherwise re-entry measures the
            // cost-step transient the swap is *responding* to), and no
            // later swap may land before re-entry (the budget then
            // belongs to that last swap). The settling budget runs from
            // the swap period itself.
            let quiet = i == 0 || in_band(&outcome.traces[i - 1]);
            if quiet {
                let settle = outcome.traces[i..]
                    .iter()
                    .position(in_band)
                    .unwrap_or(outcome.traces.len() - i);
                let superseded = outcome.traces[i + 1..(i + settle.max(1)).min(outcome.traces.len())]
                    .iter()
                    .any(|u| u.adapt_swaps > t.adapt_swaps);
                if !superseded {
                    swap_settle_periods.push(settle as u64);
                }
            }
        }
        prev_swaps = prev_swaps.max(t.adapt_swaps);
    }

    let last = outcome.traces.last();
    ArmReport {
        name: outcome.name.clone(),
        state_periods,
        swaps: prev_swaps,
        swap_settle_periods,
        final_cost_est_us: last.map_or(f64::NAN, |t| t.adapt_cost_us),
        metrics: outcome.metrics,
        y_series: outcome
            .traces
            .iter()
            .map(|t| (t.k as f64, t.y_hat_s))
            .collect(),
    }
}

/// The arms of the experiment, in display order.
pub fn arms() -> [StrategyKind; 4] {
    [
        StrategyKind::CtrlFrozenGain,
        StrategyKind::Ctrl,
        StrategyKind::Adaptive,
        StrategyKind::Comparator,
    ]
}

/// Runs all four arms and classifies them.
pub fn collect_reports(seed: u64) -> Vec<ArmReport> {
    let times = StepTrace::constant(RATE_TPS).arrival_times(DURATION_S as f64);
    let cost = CostTrace::doubling_staircase(5.105, STEP_S);
    let loop_cfg = LoopConfig::paper_default()
        .with_target_delay_ms(TARGET_S * 1e3)
        .with_period_ms(PERIOD_MS);
    let outcomes = crate::parallel::run_indexed(4, 4, |i| {
        run_with_strategy(
            arms()[i],
            &times,
            &loop_cfg,
            DURATION_S,
            Some(&cost),
            None,
            seed,
        )
    });
    outcomes.iter().map(|o| classify(o, TARGET_S)).collect()
}

/// Runs the self-tuning experiment.
pub fn run(seed: u64) -> FigureResult {
    let reports = collect_reports(seed);

    let mut series = Vec::new();
    let mut summary = Vec::new();
    let mut notes = vec![format!(
        "cost staircase ×2/×4/×8 at {STEP_S:.0}/{:.0}/{:.0} s; target {TARGET_S} s; \
         {RATE_TPS:.0} t/s offered; seed {seed}",
        2.0 * STEP_S,
        3.0 * STEP_S
    )];
    notes.push(
        "arm               osc+sat  diverging  swaps  worst-settle  final ĉ (µs)".into(),
    );
    for r in &reports {
        series.push(Series::new(r.name.clone(), r.y_series.clone()));
        summary.push((format!("{}:osc_sat_periods", r.name), r.anomalous_periods() as f64));
        summary.push((
            format!("{}:diverging_periods", r.name),
            r.diverging_periods() as f64,
        ));
        summary.push((format!("{}:swaps", r.name), r.swaps as f64));
        summary.push((
            format!("{}:worst_settle_periods", r.name),
            r.worst_settle_periods() as f64,
        ));
        summary.push((
            format!("{}:violation_ms", r.name),
            r.metrics.accumulated_violation_ms,
        ));
        summary.push((format!("{}:loss_ratio", r.name), r.metrics.loss_ratio));
        notes.push(format!(
            "{:<17} {:>7}  {:>9}  {:>5}  {:>12}  {:>12.1}",
            r.name,
            r.anomalous_periods(),
            r.diverging_periods(),
            r.swaps,
            r.worst_settle_periods(),
            r.final_cost_est_us,
        ));
    }
    notes.push(
        "expected: CTRL-FIXED limit-cycles once the ×8 level octuples its frozen loop \
         gain; both self-tuning arms re-settle within the 3-period budget after every \
         bumpless swap and never diverge"
            .into(),
    );

    FigureResult {
        id: "adaptive".into(),
        title: "Self-tuning control under a doubling cost staircase".into(),
        x_label: "control period k (s)".into(),
        y_label: "regulated delay ŷ (s)".into(),
        series,
        summary,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criteria of the self-tuning plane, end to end.
    #[test]
    fn fixed_tuning_destabilises_and_self_tuners_resettle() {
        let reports = collect_reports(11);
        let by_name = |n: &str| reports.iter().find(|r| r.name == n).unwrap();

        let fixed = by_name("CTRL-FIXED");
        assert!(
            fixed.anomalous_periods() > 0,
            "frozen gain must be flagged Oscillating/Saturated: {:?}",
            fixed.state_periods
        );

        for name in ["CTRL-ADAPTIVE", "CTRL-COMPARATOR"] {
            let r = by_name(name);
            assert_eq!(r.diverging_periods(), 0, "{name} diverged: {:?}", r.state_periods);
            assert!(r.swaps > 0, "{name} never re-tuned");
            assert!(
                r.worst_settle_periods() <= 3,
                "{name} blew the 3-period settle budget: {:?}",
                r.swap_settle_periods
            );
            // The re-identified cost must track the ×8 staircase level.
            let c = r.final_cost_est_us;
            assert!(
                c > 5105.0 * 3.0,
                "{name} final cost estimate {c} ignores the staircase"
            );
        }
    }

    /// `--seed` is honored: same seed → identical output, different
    /// seed → the engine jitter shifts the series.
    #[test]
    fn seeded_and_deterministic() {
        let a = run(3);
        let b = run(3);
        assert_eq!(a.series, b.series);
        assert_eq!(a.summary, b.summary);
        let c = run(4);
        assert_ne!(a.series, c.series, "seed must reach the engine");
    }
}
