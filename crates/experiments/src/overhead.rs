//! §5.1 computational overhead: "the operation of our controller only
//! involves several floating point calculations at each control period
//! ... about 20 microseconds" (on a 2003-era Pentium 4).
//!
//! Criterion benchmarks in `streamshed-bench` measure this precisely;
//! this module provides a quick wall-clock measurement for the
//! `reproduce` binary.

use crate::FigureResult;
use streamshed_control::controller::FeedbackController;
use streamshed_control::loop_::LoopConfig;
use streamshed_control::strategy::CtrlStrategy;
use streamshed_engine::hook::{ControlHook, PeriodSnapshot};
use streamshed_engine::time::{secs, SimTime};
use std::time::Instant;

fn snapshot(k: u64) -> PeriodSnapshot {
    PeriodSnapshot {
        k,
        now: SimTime::ZERO + secs(k + 1),
        period: secs(1),
        offered: 400,
        admitted: 300,
        dropped_entry: 100,
        dropped_network: 0,
        completed: 190,
        outstanding: 350 + (k % 50),
        queued_tuples: 350,
        queued_load_us: 350.0 * 5105.0,
        measured_cost_us: Some(5105.0 + (k % 7) as f64 * 10.0),
        mean_delay_ms: Some(1900.0),
        cpu_busy_us: 970_000,
    }
}

/// Measures the controller difference equation and the full CTRL
/// period-decision path.
pub fn run() -> FigureResult {
    // Raw difference equation (Eq. 10).
    let mut ctrl = FeedbackController::paper();
    let iters = 1_000_000u64;
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for i in 0..iters {
        let e = (i % 100) as f64 / 50.0 - 1.0;
        let u = ctrl.compute(e, 5.105e-3, 1.0, 0.97);
        ctrl.commit(e, u);
        acc += u;
    }
    let eq10_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    std::hint::black_box(acc);

    // Full strategy decision (estimation + control + actuation).
    let mut strategy = CtrlStrategy::from_config(&LoopConfig::paper_default());
    let iters2 = 100_000u64;
    let t1 = Instant::now();
    for k in 0..iters2 {
        std::hint::black_box(strategy.on_period(&snapshot(k)));
    }
    let decision_ns = t1.elapsed().as_nanos() as f64 / iters2 as f64;

    FigureResult {
        id: "overhead".into(),
        title: "Controller computational overhead (§5.1)".into(),
        x_label: "-".into(),
        y_label: "-".into(),
        series: vec![],
        summary: vec![
            ("controller_eq10_ns_per_op".into(), eq10_ns),
            ("full_decision_ns_per_period".into(), decision_ns),
            ("paper_reported_us".into(), 20.0),
        ],
        notes: vec![
            "paper: ~20 µs per control period on a 2.4 GHz Pentium 4; \
             negligible against periods of hundreds of ms"
                .into(),
            "note: the full-decision figure includes the signal log append".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_negligible() {
        let fig = run();
        let get = |name: &str| fig.summary.iter().find(|(n, _)| n == name).unwrap().1;
        // Modern hardware: far below the paper's 20 µs, and certainly
        // below it (debug builds included, keep a loose bound).
        assert!(get("controller_eq10_ns_per_op") < 20_000.0);
        assert!(get("full_decision_ns_per_period") < 20_000.0);
    }
}
