//! Regenerates every figure of the paper's evaluation.
//!
//! ```text
//! reproduce [--out DIR] [--seed N] [--jobs N] [fig5 fig6 ... | all]
//! reproduce trace --scenario KEY [--out DIR] [--seed N]
//! reproduce campaign [--lane sanity|stress|full] [--filter GLOB] [--list]
//!                    [--sabotage] [--out DIR] [--seed N] [--jobs N]
//! ```
//!
//! Writes `DIR/<fig>.csv` + `DIR/<fig>.json` for each figure and prints
//! ASCII renderings with paper-vs-measured notes. Figures are regenerated
//! across `--jobs N` worker threads (default: one per core; every scenario
//! seeds its own simulator, so output is byte-identical for any N —
//! rendering and file writes happen on the main thread in figure order).
//! The `trace` subcommand replays one fault scenario with the telemetry
//! recorder engaged and writes `DIR/trace_<scenario>.jsonl` + `.csv` (see
//! `streamshed_experiments::trace`).

use std::io::Write as _;
use std::path::PathBuf;
use streamshed_experiments as exp;

fn run_trace(scenario: &str, out_dir: &PathBuf, seed: u64) {
    if !exp::faults::SCENARIOS.contains(&scenario) {
        eprintln!(
            "unknown scenario '{scenario}'; known: {}",
            exp::faults::SCENARIOS.join(", ")
        );
        std::process::exit(2);
    }
    let start = std::time::Instant::now();
    let result = exp::trace::run(scenario, seed);
    print!("{}", result.render_summary());
    println!("  [trace regenerated in {:.1?}]\n", start.elapsed());
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("failed to create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    for (ext, body) in [("jsonl", result.to_jsonl()), ("csv", result.to_csv())] {
        let path = out_dir.join(format!("trace_{scenario}.{ext}"));
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(body.as_bytes())) {
            Ok(()) => println!("trace written to {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

/// Runs `reproduce campaign`: selects the lane (or a `--filter` subset
/// of the full grid), runs every cell, prints the verdict + failure
/// table, writes `CAMPAIGN.json`, and exits non-zero on failures unless
/// the lane is `stress` (the rotating lane reports without blocking).
#[allow(clippy::too_many_arguments)]
fn run_campaign_cmd(
    lane: &str,
    filter: Option<&str>,
    list_only: bool,
    sabotage: bool,
    out_dir: &PathBuf,
    seed: u64,
    jobs: u64,
) {
    let cells = exp::campaign::select_cells(lane, seed, filter);
    if list_only {
        for c in &cells {
            println!("{}", c.key());
        }
        eprintln!("{} cell(s)", cells.len());
        return;
    }
    if cells.is_empty() {
        eprintln!("no cells match{}", filter.map(|f| format!(" filter '{f}'")).unwrap_or_default());
        std::process::exit(2);
    }
    let label = if filter.is_some() { "filter" } else { lane };
    let start = std::time::Instant::now();
    let result = exp::campaign::run_campaign(label, cells, seed, jobs as usize, sabotage);
    println!("{}", result.render_summary());
    print!("{}", result.render_failures());
    println!("  [{} cell(s) in {:.1?} across {} worker(s)]", result.cells, start.elapsed(), jobs);
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("failed to create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    let path = out_dir.join("CAMPAIGN.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(result.to_json().as_bytes()))
    {
        Ok(()) => println!("campaign results written to {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    // The stress lane reports findings without gating; every other
    // selection is a hard gate.
    if !result.all_green() && lane != "stress" {
        std::process::exit(1);
    }
}

fn main() {
    let mut out_dir = PathBuf::from("results");
    let mut seed = 7u64;
    let mut jobs = exp::parallel::default_jobs();
    let mut scenario: Option<String> = None;
    let mut lane = String::from("sanity");
    let mut filter: Option<String> = None;
    let mut list_only = false;
    let mut sabotage = false;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_dir = PathBuf::from(args.next().expect("--out needs a directory"));
            }
            "--lane" => {
                lane = args.next().expect("--lane needs sanity|stress|full");
            }
            "--filter" => {
                filter = Some(args.next().expect("--filter needs a key glob"));
            }
            "--list" => list_only = true,
            "--sabotage" => sabotage = true,
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer");
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .expect("--jobs needs a worker count")
                    .parse()
                    .expect("jobs must be a positive integer");
                if jobs == 0 {
                    jobs = exp::parallel::default_jobs();
                }
            }
            "--scenario" => {
                scenario = Some(args.next().expect("--scenario needs a scenario key"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: reproduce [--out DIR] [--seed N] [--jobs N] [fig5 fig6 fig7 \
                     fig8 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 overhead \
                     ablations extensions faults adaptive sharded monitor net | all]\n       \
                     reproduce trace --scenario KEY [--out DIR] [--seed N]\n       \
                     reproduce campaign [--lane sanity|stress|full] [--filter GLOB] \
                     [--list] [--sabotage] [--out DIR] [--seed N] [--jobs N]\n       \
                     campaign: seeded grid sweep (workload × fault × topology × \
                     shards × controller) with invariant checks; writes \
                     DIR/CAMPAIGN.json; exits non-zero on failures except in the \
                     stress lane\n       \
                     adaptive: self-tuning control — fixed paper tuning vs the \
                     gain-scheduled re-identifier and the model-free comparator \
                     under a doubling cost staircase (seeded, virtual-time)\n       \
                     sharded: wall-clock sharded-engine convergence (1 vs 4 shards); \
                     not part of 'all'\n       \
                     monitor: wall-clock observability-plane self-test (live /metrics, \
                     /health, /trace under injected faults); not part of 'all'\n       \
                     net: wall-clock network front door — seeded loadgen fleet at 3x \
                     overload over TCP loopback (convergence, cross-boundary \
                     conservation, shedding fairness, connection hold); not part \
                     of 'all'\n       \
                     --jobs N: regenerate figures on N worker threads (0 or default: \
                     one per core); results are byte-identical for any N\n       \
                     scenarios: {}",
                    exp::faults::SCENARIOS.join(", ")
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.iter().any(|w| w == "campaign") {
        run_campaign_cmd(
            &lane,
            filter.as_deref(),
            list_only,
            sabotage,
            &out_dir,
            seed,
            jobs as u64,
        );
        return;
    }
    if wanted.iter().any(|w| w == "trace") {
        let key = scenario.unwrap_or_else(|| {
            eprintln!("trace needs --scenario KEY (one of: {})", exp::faults::SCENARIOS.join(", "));
            std::process::exit(2);
        });
        run_trace(&key, &out_dir, seed);
        return;
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = vec![
            "fig5".into(),
            "fig6".into(),
            "fig7".into(),
            "fig8".into(),
            "fig12".into(),
            "fig13".into(),
            "fig14".into(),
            "fig15".into(),
            "fig16".into(),
            "fig17".into(),
            "fig18".into(),
            "fig19".into(),
            "overhead".into(),
            "ablations".into(),
            "extensions".into(),
            "faults".into(),
            "adaptive".into(),
        ];
    }

    // Drop unknown names up front so the worker pool only sees real tasks.
    wanted.retain(|name| {
        let known = matches!(
            name.as_str(),
            "fig5" | "fig6" | "fig7" | "fig8" | "fig12" | "fig13" | "fig14" | "fig15"
                | "fig16" | "fig17" | "fig18" | "fig19" | "overhead" | "ablations"
                | "extensions" | "faults" | "adaptive" | "sharded" | "monitor" | "net"
        );
        if !known {
            eprintln!("unknown figure '{name}', skipping");
        }
        known
    });

    // Fan the scenarios across the worker pool. Each figure builds its own
    // seeded simulator, so results do not depend on scheduling; rendering
    // and file writes stay on the main thread, in figure order, which keeps
    // stdout and results/* byte-identical for any --jobs value.
    let figs = exp::parallel::run_indexed(wanted.len(), jobs, |i| {
        let start = std::time::Instant::now();
        let fig = match wanted[i].as_str() {
            "fig5" => exp::fig05::run(),
            "fig6" => exp::fig06::run(),
            "fig7" => exp::fig07::run(),
            "fig8" => exp::fig08::run(),
            "fig12" => exp::fig12::run(seed),
            "fig13" => exp::fig13::run(seed),
            "fig14" => exp::fig14::run(seed),
            "fig15" => exp::fig15::run(seed),
            "fig16" => exp::fig16::run(seed),
            "fig17" => exp::fig17::run(seed),
            "fig18" => exp::fig18::run(seed),
            "fig19" => exp::fig19::run(seed),
            "overhead" => exp::overhead::run(),
            "ablations" => exp::ablations::run(seed),
            "extensions" => exp::extensions::run(seed),
            "faults" => exp::faults::run(seed),
            "adaptive" => exp::adaptive::run(seed),
            // Wall-clock (not virtual-time): run explicitly, not in
            // "all". --seed drives the entry shedder; pacing stays
            // wall-clock, so runs are seedable but not byte-identical.
            "sharded" => exp::sharded::run(seed),
            "monitor" => exp::monitor::run(seed),
            "net" => exp::net::run(seed),
            other => unreachable!("unknown figure '{other}' survived filtering"),
        };
        (fig, start.elapsed())
    });

    for (name, (fig, elapsed)) in wanted.iter().zip(figs) {
        println!("{}", fig.render());
        println!("  [{name} regenerated in {elapsed:.1?}]\n");
        if let Err(e) = fig.write_into(&out_dir) {
            eprintln!("failed to write {name} into {}: {e}", out_dir.display());
        }
    }
    println!("results written to {}", out_dir.display());
}
