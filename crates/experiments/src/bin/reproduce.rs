//! Regenerates every figure of the paper's evaluation.
//!
//! ```text
//! reproduce [--out DIR] [--seed N] [--jobs N] [fig5 fig6 ... | all]
//! reproduce trace --scenario KEY [--out DIR] [--seed N]
//! ```
//!
//! Writes `DIR/<fig>.csv` + `DIR/<fig>.json` for each figure and prints
//! ASCII renderings with paper-vs-measured notes. Figures are regenerated
//! across `--jobs N` worker threads (default: one per core; every scenario
//! seeds its own simulator, so output is byte-identical for any N —
//! rendering and file writes happen on the main thread in figure order).
//! The `trace` subcommand replays one fault scenario with the telemetry
//! recorder engaged and writes `DIR/trace_<scenario>.jsonl` + `.csv` (see
//! `streamshed_experiments::trace`).

use std::io::Write as _;
use std::path::PathBuf;
use streamshed_experiments as exp;

fn run_trace(scenario: &str, out_dir: &PathBuf, seed: u64) {
    if !exp::faults::SCENARIOS.contains(&scenario) {
        eprintln!(
            "unknown scenario '{scenario}'; known: {}",
            exp::faults::SCENARIOS.join(", ")
        );
        std::process::exit(2);
    }
    let start = std::time::Instant::now();
    let result = exp::trace::run(scenario, seed);
    print!("{}", result.render_summary());
    println!("  [trace regenerated in {:.1?}]\n", start.elapsed());
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("failed to create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    for (ext, body) in [("jsonl", result.to_jsonl()), ("csv", result.to_csv())] {
        let path = out_dir.join(format!("trace_{scenario}.{ext}"));
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(body.as_bytes())) {
            Ok(()) => println!("trace written to {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

fn main() {
    let mut out_dir = PathBuf::from("results");
    let mut seed = 7u64;
    let mut jobs = exp::parallel::default_jobs();
    let mut scenario: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_dir = PathBuf::from(args.next().expect("--out needs a directory"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer");
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .expect("--jobs needs a worker count")
                    .parse()
                    .expect("jobs must be a positive integer");
                if jobs == 0 {
                    jobs = exp::parallel::default_jobs();
                }
            }
            "--scenario" => {
                scenario = Some(args.next().expect("--scenario needs a scenario key"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: reproduce [--out DIR] [--seed N] [--jobs N] [fig5 fig6 fig7 \
                     fig8 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 overhead \
                     ablations extensions faults sharded monitor | all]\n       \
                     reproduce trace --scenario KEY [--out DIR] [--seed N]\n       \
                     sharded: wall-clock sharded-engine convergence (1 vs 4 shards); \
                     not part of 'all'\n       \
                     monitor: wall-clock observability-plane self-test (live /metrics, \
                     /health, /trace under injected faults); not part of 'all'\n       \
                     --jobs N: regenerate figures on N worker threads (0 or default: \
                     one per core); results are byte-identical for any N\n       \
                     scenarios: {}",
                    exp::faults::SCENARIOS.join(", ")
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.iter().any(|w| w == "trace") {
        let key = scenario.unwrap_or_else(|| {
            eprintln!("trace needs --scenario KEY (one of: {})", exp::faults::SCENARIOS.join(", "));
            std::process::exit(2);
        });
        run_trace(&key, &out_dir, seed);
        return;
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = vec![
            "fig5".into(),
            "fig6".into(),
            "fig7".into(),
            "fig8".into(),
            "fig12".into(),
            "fig13".into(),
            "fig14".into(),
            "fig15".into(),
            "fig16".into(),
            "fig17".into(),
            "fig18".into(),
            "fig19".into(),
            "overhead".into(),
            "ablations".into(),
            "extensions".into(),
            "faults".into(),
        ];
    }

    // Drop unknown names up front so the worker pool only sees real tasks.
    wanted.retain(|name| {
        let known = matches!(
            name.as_str(),
            "fig5" | "fig6" | "fig7" | "fig8" | "fig12" | "fig13" | "fig14" | "fig15"
                | "fig16" | "fig17" | "fig18" | "fig19" | "overhead" | "ablations"
                | "extensions" | "faults" | "sharded" | "monitor"
        );
        if !known {
            eprintln!("unknown figure '{name}', skipping");
        }
        known
    });

    // Fan the scenarios across the worker pool. Each figure builds its own
    // seeded simulator, so results do not depend on scheduling; rendering
    // and file writes stay on the main thread, in figure order, which keeps
    // stdout and results/* byte-identical for any --jobs value.
    let figs = exp::parallel::run_indexed(wanted.len(), jobs, |i| {
        let start = std::time::Instant::now();
        let fig = match wanted[i].as_str() {
            "fig5" => exp::fig05::run(),
            "fig6" => exp::fig06::run(),
            "fig7" => exp::fig07::run(),
            "fig8" => exp::fig08::run(),
            "fig12" => exp::fig12::run(seed),
            "fig13" => exp::fig13::run(seed),
            "fig14" => exp::fig14::run(seed),
            "fig15" => exp::fig15::run(seed),
            "fig16" => exp::fig16::run(seed),
            "fig17" => exp::fig17::run(seed),
            "fig18" => exp::fig18::run(seed),
            "fig19" => exp::fig19::run(seed),
            "overhead" => exp::overhead::run(),
            "ablations" => exp::ablations::run(seed),
            "extensions" => exp::extensions::run(seed),
            "faults" => exp::faults::run(seed),
            // Wall-clock (not virtual-time): run explicitly, not in
            // "all". The engine paces itself; --seed has no effect.
            "sharded" => exp::sharded::run(),
            "monitor" => exp::monitor::run(),
            other => unreachable!("unknown figure '{other}' survived filtering"),
        };
        (fig, start.elapsed())
    });

    for (name, (fig, elapsed)) in wanted.iter().zip(figs) {
        println!("{}", fig.render());
        println!("  [{name} regenerated in {elapsed:.1?}]\n");
        if let Err(e) = fig.write_into(&out_dir) {
            eprintln!("failed to write {name} into {}: {e}", out_dir.display());
        }
    }
    println!("results written to {}", out_dir.display());
}
