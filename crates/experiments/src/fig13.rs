//! Figure 13: the arrival-rate traces themselves.
//!
//! Plots per-second arrival rates of the Web-like and Pareto(β = 1)
//! inputs; the Pareto trace fluctuates more dramatically.

use crate::{FigureResult, Series};
use streamshed_workload::{coefficient_of_variation, rate_series, ArrivalTrace, ParetoTrace, WebLikeTrace};

/// Runs the Fig. 13 rendering.
pub fn run(seed: u64) -> FigureResult {
    let duration = 400.0;
    let web = WebLikeTrace::paper_default(seed);
    let pareto = ParetoTrace::paper_default(seed);
    let web_rates = rate_series(&web.arrival_times(duration), 1.0, duration);
    let pareto_rates = rate_series(&pareto.arrival_times(duration), 1.0, duration);

    let web_cv = coefficient_of_variation(&web_rates);
    let pareto_cv = coefficient_of_variation(&pareto_rates);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);

    let summary = vec![
        ("web_mean_tps".into(), mean(&web_rates)),
        ("web_peak_tps".into(), max(&web_rates)),
        ("web_cv".into(), web_cv),
        ("pareto_mean_tps".into(), mean(&pareto_rates)),
        ("pareto_peak_tps".into(), max(&pareto_rates)),
        ("pareto_cv".into(), pareto_cv),
    ];

    FigureResult {
        id: "fig13".into(),
        title: "Traces of synthetic and web-like stream data".into(),
        x_label: "time (s)".into(),
        y_label: "arrival rate (t/s)".into(),
        series: vec![
            Series::from_values("Web", &web_rates),
            Series::from_values("Pareto", &pareto_rates),
        ],
        summary,
        notes: vec![
            "paper: both traces roam 0–800 t/s; Pareto fluctuates more than Web".into(),
            "Web trace is a Paxson–Floyd ON/OFF substitute for LBL-PKT-4 (see DESIGN.md)"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_match_figure_13_shape() {
        let fig = run(5);
        let get = |name: &str| fig.summary.iter().find(|(n, _)| n == name).unwrap().1;
        // Means near the ~200 t/s operating point.
        assert!((get("web_mean_tps") - 192.0).abs() < 60.0);
        assert!((get("pareto_mean_tps") - 200.0).abs() < 40.0);
        // Bursts well above the mean.
        assert!(get("pareto_peak_tps") > 400.0);
        // Pareto is the more dramatic trace.
        assert!(get("pareto_cv") > get("web_cv"));
    }
}
