//! Figure 7: model verification with sinusoidal inputs.
//!
//! Same comparison as Fig. 6 but with the arrival rate sweeping `[0, 400]`
//! tuples/s sinusoidally over 200 s. The paper observes small periodic
//! modeling errors — unmodelled dynamics the feedback loop will absorb.

use crate::{FigureResult, Series};
use streamshed_engine::networks::identification_network;
use streamshed_engine::sim::SimConfig;
use streamshed_sysid::{fit_headroom, model_error_s, predict_delays_s, run_identification};
use streamshed_workload::SineTrace;

/// Runs the Fig. 7 experiment.
pub fn run() -> FigureResult {
    let run = run_identification(
        identification_network(),
        &SineTrace::paper_sine(),
        200,
        120,
        SimConfig::paper_default(),
    );
    let mut series = vec![Series::new(
        "real",
        run.periods
            .iter()
            .map(|p| (p.k as f64, p.y_real_ms / 1e3))
            .collect(),
    )];
    let mut summary = Vec::new();
    for &h in &crate::fig06::HEADROOMS {
        let pred = predict_delays_s(&run, run.mean_cost_us, h);
        series.push(Series::new(
            format!("model(H={h})"),
            pred.iter().enumerate().map(|(k, &y)| (k as f64, y)).collect(),
        ));
        let err = model_error_s(&run, run.mean_cost_us, h);
        series.push(Series::new(
            format!("error(H={h})"),
            err.iter().enumerate().map(|(k, &e)| (k as f64, e)).collect(),
        ));
        summary.push((format!("rmse_s(H={h})"), streamshed_sysid::rmse(&err)));
    }
    let fit = fit_headroom(&run, run.mean_cost_us, &crate::fig06::HEADROOMS);
    summary.push(("best_headroom".into(), fit.best_headroom));

    // Peak real delay, to contextualise the error magnitude.
    let peak = run
        .y_series_s()
        .iter()
        .copied()
        .filter(|y| y.is_finite())
        .fold(0.0f64, f64::max);
    summary.push(("peak_real_delay_s".into(), peak));

    FigureResult {
        id: "fig07".into(),
        title: "Model verification with sinusoidal inputs".into(),
        x_label: "period k (s)".into(),
        y_label: "delay (s)".into(),
        series,
        summary,
        notes: vec![
            "paper: small periodic modeling errors; feedback absorbs them".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_overload_with_small_errors() {
        let fig = run();
        let get = |name: &str| fig.summary.iter().find(|(n, _)| n == name).unwrap().1;
        let peak = get("peak_real_delay_s");
        assert!(peak > 2.0, "sine must drive multi-second delays: {peak}");
        let rmse = get("rmse_s(H=0.97)");
        assert!(
            rmse < peak * 0.25,
            "errors small relative to the swings: rmse {rmse} vs peak {peak}"
        );
    }
}
