//! Figure 16: can AURORA be rescued by retuning `L0` (H = 0.96)?
//!
//! The paper shows open-loop robustness is poor: with a smaller `L0`,
//! the Web input remains unstable while the Pareto input stabilises —
//! at the price of ~37% more data loss than CTRL.

use crate::runner::{run_with_strategy, StrategyKind};
use crate::{FigureResult, Series};
use streamshed_control::loop_::LoopConfig;
use streamshed_workload::CostTrace;

/// The retuned headroom for `L0`.
pub const RETUNED_H: f64 = 0.96;

/// Runs the Fig. 16 experiment.
pub fn run(seed: u64) -> FigureResult {
    let cfg = LoopConfig::paper_default();
    let cost = CostTrace::paper_fig14(crate::fig12::BASE_COST_MS, seed ^ 0xC057);
    let mut series = Vec::new();
    let mut summary = Vec::new();

    for (trace_name, times) in crate::fig12::traces(seed) {
        let aurora96 = run_with_strategy(
            StrategyKind::AuroraWithHeadroom(RETUNED_H),
            &times,
            &cfg,
            crate::fig12::DURATION_S,
            Some(&cost),
            None,
            seed,
        );
        let ctrl = run_with_strategy(
            StrategyKind::Ctrl,
            &times,
            &cfg,
            crate::fig12::DURATION_S,
            Some(&cost),
            None,
            seed,
        );
        series.push(Series::new(
            format!("AURORA(H=0.96)/{trace_name}"),
            aurora96
                .report
                .periods
                .iter()
                .map(|p| (p.time_s, p.arrival_mean_delay_ms / 1e3))
                .collect(),
        ));
        summary.push((
            format!("{trace_name}:loss_vs_ctrl"),
            aurora96.metrics.loss_ratio / ctrl.metrics.loss_ratio.max(1e-12),
        ));
        summary.push((
            format!("{trace_name}:violations_vs_ctrl"),
            aurora96.metrics.accumulated_violation_ms
                / ctrl.metrics.accumulated_violation_ms.max(1e-12),
        ));
        summary.push((
            format!("{trace_name}:aurora96_loss"),
            aurora96.metrics.loss_ratio,
        ));
        summary.push((format!("{trace_name}:ctrl_loss"), ctrl.metrics.loss_ratio));
    }

    FigureResult {
        id: "fig16".into(),
        title: "AURORA with retuned L0 (H = 0.96)".into(),
        x_label: "time (s)".into(),
        y_label: "avg delay (s)".into(),
        series,
        summary,
        notes: vec![
            "paper: Web input still unstable; Pareto stabilises but costs \
             ~37% more data loss than CTRL — open-loop tuning is fragile \
             and input-dependent"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retuning_trades_loss_without_fixing_robustness() {
        let fig = run(3);
        let get = |name: &str| fig.summary.iter().find(|(n, _)| n == name).unwrap().1;
        // Retuned AURORA sheds more than CTRL on at least one input
        // (the paper: +37% on Pareto)...
        let max_loss_ratio = get("Web:loss_vs_ctrl").max(get("Pareto:loss_vs_ctrl"));
        assert!(
            max_loss_ratio > 1.0,
            "retuned AURORA should lose more data somewhere: {max_loss_ratio}"
        );
        // ...and still accumulates more delay violations than CTRL on the
        // Web input (remains effectively unstable). The exact ratio is
        // seed-sensitive (1.3–1.9 across trajectories); direction is what
        // the paper claims.
        let web_viol = get("Web:violations_vs_ctrl");
        assert!(web_viol > 1.1, "Web violations ratio {web_viol}");
    }
}
