//! Figure 15: transient performance — the measured y(k) series of all
//! three strategies on both traces (with the Fig. 14 cost variation).
//!
//! The paper's observation: CTRL hugs the 2 s target with brief
//! excursions at the cost peaks; BASELINE and AURORA show peaks that are
//! large in both height and width.

use crate::{FigureResult, Series};

/// Runs the Fig. 15 experiment (reuses the Fig. 12 run configuration).
pub fn run(seed: u64) -> FigureResult {
    let mut series = Vec::new();
    let mut summary = Vec::new();

    for (trace_name, times) in crate::fig12::traces(seed) {
        for outcome in crate::fig12::collect_outcomes(&times, seed) {
            let ys: Vec<(f64, f64)> = outcome
                .report
                .periods
                .iter()
                .map(|p| (p.time_s, p.arrival_mean_delay_ms / 1e3))
                .collect();
            // Time CTRL and friends spend within ±25% of the target.
            let finite: Vec<f64> = ys
                .iter()
                .map(|&(_, y)| y)
                .filter(|y| y.is_finite())
                .collect();
            let near_target = finite
                .iter()
                .filter(|&&y| (y - 2.0).abs() < 0.5)
                .count() as f64
                / finite.len().max(1) as f64;
            // Width of excursions: fraction of periods 50% above target.
            let above_3s = finite.iter().filter(|&&y| y > 3.0).count() as f64
                / finite.len().max(1) as f64;
            let peak = finite.iter().cloned().fold(0.0, f64::max);
            summary.push((
                format!("{trace_name}:{}:frac_near_target", outcome.name),
                near_target,
            ));
            summary.push((
                format!("{trace_name}:{}:frac_above_3s", outcome.name),
                above_3s,
            ));
            summary.push((format!("{trace_name}:{}:peak_delay_s", outcome.name), peak));
            series.push(Series::new(format!("{}/{}", outcome.name, trace_name), ys));
        }
    }

    FigureResult {
        id: "fig15".into(),
        title: "Transient performance of load-shedding methods".into(),
        x_label: "time (s)".into(),
        y_label: "avg delay (s)".into(),
        series,
        summary,
        notes: vec![
            "paper: CTRL stays near 2 s (brief excursions at cost peaks); \
             AURORA/BASELINE show wide multi-second peaks"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctrl_hugs_target_others_dont() {
        // Averaged over a small seed set: any single realization can land
        // a quiet burst pattern where the strategies are hard to
        // distinguish.
        let seeds = [3u64, 7, 11];
        let figs = crate::parallel::run_indexed(seeds.len(), seeds.len(), |i| run(seeds[i]));
        let mean = |name: &str| {
            figs.iter()
                .map(|f| f.summary.iter().find(|(n, _)| n == name).unwrap().1)
                .sum::<f64>()
                / figs.len() as f64
        };
        for trace in ["Web", "Pareto"] {
            let ctrl_near = mean(&format!("{trace}:CTRL:frac_near_target"));
            let aurora_near = mean(&format!("{trace}:AURORA:frac_near_target"));
            assert!(
                ctrl_near > aurora_near,
                "{trace}: CTRL near-target fraction {ctrl_near} vs AURORA {aurora_near}"
            );
            // The distinguishing feature is excursion *width*: the cost
            // jump spikes everyone's delay briefly, but only CTRL brings
            // it straight back (paper: peaks "large in both height and
            // width" for the others).
            let ctrl_wide = mean(&format!("{trace}:CTRL:frac_above_3s"));
            let aurora_wide = mean(&format!("{trace}:AURORA:frac_above_3s"));
            assert!(
                aurora_wide > ctrl_wide * 2.0,
                "{trace}: AURORA time >3 s {aurora_wide} vs CTRL {ctrl_wide}"
            );
        }
    }
}
