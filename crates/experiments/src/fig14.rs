//! Figure 14: the time-varying per-tuple cost trace.
//!
//! Pareto base noise with a small peak at 50 s, a sudden jump at 125 s,
//! and a high terrace with a sudden drop over 250–350 s.

use crate::{FigureResult, Series};
use streamshed_workload::CostTrace;

/// Runs the Fig. 14 rendering.
pub fn run(seed: u64) -> FigureResult {
    let trace = CostTrace::paper_fig14(crate::fig12::BASE_COST_MS, seed ^ 0xC057);
    let points = trace.points_ms(400.0);
    let at = |s: usize| points[s].1;

    let summary = vec![
        ("base_cost_ms".into(), crate::fig12::BASE_COST_MS),
        ("cost_at_20s_ms".into(), at(20)),
        ("cost_at_50s_ms".into(), at(50)),
        ("cost_at_125s_ms".into(), at(125)),
        ("cost_at_300s_ms".into(), at(300)),
        ("cost_at_360s_ms".into(), at(360)),
        (
            "max_cost_ms".into(),
            points.iter().map(|&(_, c)| c).fold(0.0, f64::max),
        ),
    ];

    FigureResult {
        id: "fig14".into(),
        title: "Variable unit processing costs".into(),
        x_label: "time (s)".into(),
        y_label: "cost (ms)".into(),
        series: vec![Series::new("cost", points)],
        summary,
        notes: vec![
            "paper: small peak @50 s, sudden jump @125 s, terrace 250–350 s \
             with sudden drop; range ~3–25 ms"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_profile_has_the_three_circumstances() {
        let fig = run(7);
        let get = |name: &str| fig.summary.iter().find(|(n, _)| n == name).unwrap().1;
        assert!(get("cost_at_50s_ms") > get("cost_at_20s_ms") + 2.0);
        assert!(get("cost_at_125s_ms") > get("cost_at_20s_ms") + 8.0);
        assert!(get("cost_at_300s_ms") > get("cost_at_360s_ms") + 4.0);
        // Paper's Fig 14 spans ~3–25 ms on a 4.5 ms base; our calibrated
        // base is 5.105 ms, scaling the ceiling proportionally.
        assert!(get("max_cost_ms") < 30.0);
    }
}
