//! `reproduce monitor` — the observability plane watching itself.
//!
//! Three wall-clock phases on the sharded engine, each spawned through
//! [`ShardedEngine::spawn_observed`] so the full plane is live: the
//! per-period diagnostics classifier, the embedded HTTP endpoints, and
//! the anomaly flight recorder.
//!
//! 1. **nominal** — the paper's CTRL strategy under 2× overload. The
//!    classifier must stay out of the anomalous states and no flight
//!    bundle may be written.
//! 2. **oscillation** — a bang-bang hook slams `α` between 0.9 and 0.05
//!    every period. The α-reversal detector must flag `Oscillating`
//!    within 5 control periods and the flight recorder must capture a
//!    bundle.
//! 3. **saturation** — a dead actuator (`α = 0`) under 4× overload. The
//!    delay climbs through the violation band while `α` stays pinned;
//!    the classifier must flag `Saturated` within 5 periods of the
//!    first violation (design: 3), again with a flight bundle.
//!
//! 4. **slow operator** — the latency truth plane's acceptance check:
//!    two below-capacity A/B arms, one at the nominal per-tuple cost
//!    and one with the cost tripled (the injected fault). `/profile` is
//!    polled [`DETECT_BUDGET`] control periods into each arm; the added
//!    sojourn between the arms must be attributed ≥ 80% to the
//!    `execute` stage by the sampled span decomposition.
//!
//! During every phase the experiment polls the engine's *own* HTTP
//! endpoints (`/metrics`, `/health`, `/ready`, `/trace`, `/profile`)
//! mid-run and records their status codes — the acceptance criterion is
//! that the plane answers live while the data plane is under fault, not
//! after.
//!
//! Wall-clock, so excluded from `reproduce all` (like `sharded`); run
//! explicitly with `reproduce monitor`.

use crate::{FigureResult, Series};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use streamshed_control::loop_::LoopConfig;
use streamshed_control::strategy::CtrlStrategy;
use streamshed_engine::hook::{Decision, NoShedding, PeriodSnapshot};
use streamshed_engine::obs::{http_get, ObsOptions};
use streamshed_engine::shard::{Dispatch, ShardConfig, ShardedEngine};
use streamshed_engine::telemetry::{ControlTrace, InstrumentedHook};
use streamshed_engine::worker::CostModel;

/// Nominal per-tuple service cost.
const COST: Duration = Duration::from_millis(2);
/// Control period of the global controller.
const PERIOD: Duration = Duration::from_millis(50);
/// Delay target, ms.
const TARGET_MS: f64 = 250.0;
/// Shards in every phase.
const SHARDS: usize = 2;
/// Per-shard service capacity at `COST`, tuples/s.
const CAPACITY_PER_SHARD: f64 = 500.0;
/// Violation band used by the classifier in this experiment. Wider than
/// the diagnostics default (30%) because these runs are wall-clock: the
/// nominal phase must not flag scheduler noise as an SLO violation.
const BAND_FRAC: f64 = 0.5;
/// Anomaly-detection budget, control periods (the acceptance bound).
pub const DETECT_BUDGET: u64 = 5;

/// Everything one phase produced.
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// Phase key (`nominal` / `oscillation` / `saturation`).
    pub name: &'static str,
    /// Final classifier state name.
    pub final_state: &'static str,
    /// Whether the final state is one of the anomalous ones.
    pub final_anomalous: bool,
    /// Fraction of periods classified `Healthy`.
    pub healthy_fraction: f64,
    /// Entries into anomalous states.
    pub anomalies: u64,
    /// Period index of the first anomaly entry, if any.
    pub first_anomaly_k: Option<u64>,
    /// Periods from the fault becoming observable to the classifier
    /// flagging it (phase-specific definition; `None` when no anomaly).
    pub detect_latency_periods: Option<u64>,
    /// Flight bundles written during the phase.
    pub bundles_written: u64,
    /// Status codes returned by the live endpoints mid-run.
    pub metrics_status: u16,
    /// `/health` status mid-run.
    pub health_status: u16,
    /// `/ready` status mid-run.
    pub ready_status: u16,
    /// `/trace?last=32` status mid-run.
    pub trace_status: u16,
    /// `/profile` status mid-run.
    pub profile_status: u16,
    /// Whether `/metrics` carried the diagnostics families.
    pub metrics_has_diag: bool,
    /// Whether `/profile` carried the per-stage percentile tables.
    pub profile_has_stages: bool,
    /// Whether `/trace` returned a JSON array of trace objects.
    pub trace_is_json: bool,
    /// Control periods the classifier observed.
    pub periods: u64,
    /// Mean-delay trajectory `(s, ms)`.
    pub trajectory: Vec<(f64, f64)>,
}

/// The classifier's delay signal for a trace (its ŷ-then-measured
/// fallback), in seconds.
fn delay_signal_s(t: &ControlTrace) -> f64 {
    if t.y_hat_s.is_finite() {
        t.y_hat_s
    } else if t.mean_delay_ms.is_finite() {
        t.mean_delay_ms / 1e3
    } else {
        f64::NAN
    }
}

/// Runs one phase: spawns the observed sharded engine with `hook`,
/// paces `rate` tuples/s at it for `run`, polls the live endpoints at
/// half-time, and collects the diagnostics verdict on shutdown.
fn run_phase<H>(
    name: &'static str,
    hook: H,
    rate: f64,
    run: Duration,
    flight_dir: &PathBuf,
    seed: u64,
) -> PhaseOutcome
where
    H: InstrumentedHook + Send + 'static,
{
    let _ = std::fs::remove_dir_all(flight_dir);
    let cfg = ShardConfig {
        shards: SHARDS,
        cost: COST,
        period: PERIOD,
        target_delay: Duration::from_millis(TARGET_MS as u64),
        headroom: 0.97,
        queue_capacity: 8192,
        panic_on_tuple: None,
        cost_model: CostModel::Sleep,
        dispatch: Dispatch::RoundRobin,
        seed,
        pin_cores: false,
        sample_every: streamshed_engine::spans::DEFAULT_SAMPLE_EVERY,
    };
    let mut options = ObsOptions::for_target(Duration::from_millis(TARGET_MS as u64))
        .with_flight_dir(flight_dir.clone());
    options.diagnostics.error_band_frac = BAND_FRAC;
    let engine =
        ShardedEngine::spawn_observed(cfg, hook, &options).expect("observability plane starts");
    let addr = engine.obs().and_then(|o| o.addr()).expect("HTTP endpoint is live");

    // Paced feeder, polling the engine's own endpoints at half-time.
    let tick = Duration::from_millis(5);
    let per_tick = (rate * tick.as_secs_f64()).round() as u64;
    let poll_at = run / 2;
    let mut polls: Option<[(u16, String); 5]> = None;
    let start = Instant::now();
    let mut next = start + tick;
    while start.elapsed() < run {
        // Batched front door: one shed pass + one timestamp per tick.
        engine.offer_batch(per_tick as usize);
        if polls.is_none() && start.elapsed() >= poll_at {
            let get = |path: &str| {
                http_get(addr, path, Duration::from_secs(2)).unwrap_or((0, String::new()))
            };
            polls = Some([
                get("/metrics"),
                get("/health"),
                get("/ready"),
                get("/trace?last=32"),
                get("/profile"),
            ]);
        }
        let now = Instant::now();
        if next > now {
            std::thread::sleep(next - now);
        }
        next += tick;
    }
    let [metrics, health, ready, trace, profile] =
        polls.unwrap_or_else(|| std::array::from_fn(|_| (0, String::new())));

    let plane = engine.obs().expect("plane attached").plane.clone();
    let snap = plane.health();
    let bundles = plane.flight_bundles_written();
    let traces = plane.recorder().snapshot();
    engine.shutdown();

    // Detection latency. The oscillation fault is active from the first
    // period, so its latency is simply the k at which the classifier
    // flagged it. The saturation fault only becomes observable once the
    // backlog pushes the delay through the violation band, so its
    // latency is measured from the first violating period.
    let band_s = (TARGET_MS / 1e3) * (1.0 + BAND_FRAC);
    let first_violation_k = traces
        .iter()
        .find(|t| delay_signal_s(t) > band_s)
        .map(|t| t.k);
    let detect_latency_periods = snap.first_anomaly_k.map(|k| match name {
        "saturation" => k.saturating_sub(first_violation_k.unwrap_or(0)),
        _ => k,
    });

    let trajectory: Vec<(f64, f64)> = traces
        .iter()
        .filter(|t| t.mean_delay_ms.is_finite())
        .map(|t| (t.time_s, t.mean_delay_ms))
        .collect();

    PhaseOutcome {
        name,
        final_state: snap.state.as_str(),
        final_anomalous: snap.state.is_anomalous(),
        healthy_fraction: snap.healthy_fraction(),
        anomalies: snap.anomalies,
        first_anomaly_k: snap.first_anomaly_k,
        detect_latency_periods,
        bundles_written: bundles,
        metrics_status: metrics.0,
        health_status: health.0,
        ready_status: ready.0,
        trace_status: trace.0,
        profile_status: profile.0,
        metrics_has_diag: metrics.1.contains("streamshed_diag_state"),
        profile_has_stages: profile.1.contains("\"stages\"") && profile.1.contains("\"execute\""),
        trace_is_json: trace.1.trim_start().starts_with('[') && trace.1.contains("\"alpha\""),
        periods: snap.periods,
        trajectory,
    }
}

/// Scratch directory for a phase's flight bundles.
fn flight_dir(phase: &str) -> PathBuf {
    std::env::temp_dir().join(format!("streamshed_monitor_{phase}"))
}

/// Phase 1: the real controller, behaving.
pub fn run_nominal(run: Duration, seed: u64) -> PhaseOutcome {
    let loop_cfg = LoopConfig::paper_default()
        .with_target_delay_ms(TARGET_MS)
        .with_period_ms(PERIOD.as_millis() as f64)
        .with_headroom(0.97)
        .with_prior_cost_us(COST.as_micros() as f64 / SHARDS as f64);
    let strategy = CtrlStrategy::from_config(&loop_cfg);
    let rate = 2.0 * CAPACITY_PER_SHARD * SHARDS as f64;
    run_phase("nominal", strategy, rate, run, &flight_dir("nominal"), seed)
}

/// Phase 2: bang-bang actuation — the hook slams `α` between 0.9 and
/// 0.05 every period (a classic sign of a mistuned/unstable loop).
pub fn run_oscillation(run: Duration, seed: u64) -> PhaseOutcome {
    let mut high = false;
    let hook = move |_s: &PeriodSnapshot| {
        high = !high;
        if high {
            Decision::entry(0.9)
        } else {
            Decision::entry(0.05)
        }
    };
    let rate = 2.0 * CAPACITY_PER_SHARD * SHARDS as f64;
    run_phase("oscillation", hook, rate, run, &flight_dir("oscillation"), seed)
}

/// Phase 3: dead actuator — no shedding at all under 4× overload, so
/// the backlog (and the delay) grows while `α` stays pinned at 0.
pub fn run_saturation(run: Duration, seed: u64) -> PhaseOutcome {
    let rate = 4.0 * CAPACITY_PER_SHARD * SHARDS as f64;
    run_phase("saturation", NoShedding, rate, run, &flight_dir("saturation"), seed)
}

/// Outcome of the slow-operator attribution phase (phase 4).
#[derive(Debug, Clone)]
pub struct SlowOpOutcome {
    /// `/profile` status polled mid-run on the faulted arm.
    pub profile_status: u16,
    /// Whether the faulted arm's `/profile` body carried the stage tables.
    pub profile_has_stages: bool,
    /// Sampled sojourns closed in the baseline arm by the poll.
    pub sampled_base: u64,
    /// Sampled sojourns closed in the faulted arm by the poll.
    pub sampled_slow: u64,
    /// Mean end-to-end sojourn added by the fault, ms.
    pub added_sojourn_ms: f64,
    /// Mean `execute`-stage time added by the fault, ms.
    pub added_execute_ms: f64,
    /// `added_execute / added_sojourn` — the stage attribution.
    pub attribution_frac: f64,
    /// Whether ≥ 80% of the added sojourn landed on `execute` within
    /// [`DETECT_BUDGET`] periods.
    pub attributed: bool,
}

/// One arm of the slow-operator experiment: spawns the observed engine
/// at `cost`, feeds well below capacity, and returns the `/profile`
/// poll taken [`DETECT_BUDGET`] control periods in together with the
/// span snapshot captured at that same instant.
fn run_slowop_arm(
    cost: Duration,
    seed: u64,
) -> (u16, String, streamshed_engine::spans::ProfileSnapshot) {
    let cfg = ShardConfig {
        shards: SHARDS,
        cost,
        period: PERIOD,
        target_delay: Duration::from_millis(TARGET_MS as u64),
        headroom: 0.97,
        queue_capacity: 8192,
        panic_on_tuple: None,
        cost_model: CostModel::Sleep,
        dispatch: Dispatch::RoundRobin,
        seed,
        pin_cores: false,
        // Dense sampling: the attribution check needs tens of closed
        // sojourns inside the 5-period budget at a sub-capacity rate.
        sample_every: 2,
    };
    let options = ObsOptions::for_target(Duration::from_millis(TARGET_MS as u64));
    let engine =
        ShardedEngine::spawn_observed(cfg, NoShedding, &options).expect("plane starts");
    let addr = engine.obs().and_then(|o| o.addr()).expect("HTTP endpoint is live");
    let plane = engine.obs().expect("plane attached").plane.clone();

    // Below capacity at either cost (2 shards × 166/s at the tripled
    // cost), so queueing stays small and the added sojourn is the
    // operator's own service time.
    let rate = 200.0;
    let tick = Duration::from_millis(5);
    let per_tick = (rate * tick.as_secs_f64()).round() as usize;
    let poll_at = PERIOD * DETECT_BUDGET as u32;
    let run = poll_at + PERIOD;
    let start = Instant::now();
    let mut next = start + tick;
    let mut poll = None;
    while start.elapsed() < run {
        engine.offer_batch(per_tick);
        if poll.is_none() && start.elapsed() >= poll_at {
            let (status, body) =
                http_get(addr, "/profile", Duration::from_secs(2)).unwrap_or((0, String::new()));
            poll = Some((status, body, plane.spans().snapshot()));
        }
        let now = Instant::now();
        if next > now {
            std::thread::sleep(next - now);
        }
        next += tick;
    }
    engine.shutdown();
    poll.unwrap_or_else(|| (0, String::new(), plane.spans().snapshot()))
}

/// Phase 4: the latency truth plane localising an injected slow
/// operator. Two A/B arms below capacity — nominal cost vs tripled
/// cost — compared via the span snapshots taken at the
/// [`DETECT_BUDGET`]-period poll.
pub fn run_slowop(seed: u64) -> SlowOpOutcome {
    use streamshed_engine::spans::Stage;
    let (_, _, base) = run_slowop_arm(COST, seed);
    let (status, body, slow) = run_slowop_arm(COST * 3, seed);
    let exec_ms =
        |p: &streamshed_engine::spans::ProfileSnapshot| p.stages[Stage::Execute.index()].mean() / 1e6;
    let sojourn_ms = |p: &streamshed_engine::spans::ProfileSnapshot| p.sojourn.mean() / 1e6;
    let added_sojourn_ms = sojourn_ms(&slow) - sojourn_ms(&base);
    let added_execute_ms = exec_ms(&slow) - exec_ms(&base);
    let attribution_frac = if added_sojourn_ms > 0.0 {
        added_execute_ms / added_sojourn_ms
    } else {
        f64::NAN
    };
    SlowOpOutcome {
        profile_status: status,
        profile_has_stages: body.contains("\"stages\"") && body.contains("\"execute\""),
        sampled_base: base.sojourn.count(),
        sampled_slow: slow.sojourn.count(),
        added_sojourn_ms,
        added_execute_ms,
        attribution_frac,
        attributed: attribution_frac.is_finite() && attribution_frac >= 0.8,
    }
}

/// Summarises one phase into figure summary entries.
fn summarize(out: &mut Vec<(String, f64)>, notes: &mut Vec<String>, p: &PhaseOutcome) {
    out.push((format!("{}_healthy_fraction", p.name), p.healthy_fraction));
    out.push((format!("{}_anomalies", p.name), p.anomalies as f64));
    out.push((
        format!("{}_detect_latency_periods", p.name),
        p.detect_latency_periods.map(|v| v as f64).unwrap_or(f64::NAN),
    ));
    out.push((format!("{}_flight_bundles", p.name), p.bundles_written as f64));
    out.push((format!("{}_metrics_status", p.name), f64::from(p.metrics_status)));
    out.push((format!("{}_health_status", p.name), f64::from(p.health_status)));
    out.push((format!("{}_ready_status", p.name), f64::from(p.ready_status)));
    out.push((format!("{}_trace_status", p.name), f64::from(p.trace_status)));
    out.push((format!("{}_profile_status", p.name), f64::from(p.profile_status)));
    notes.push(format!(
        "{}: final state {} after {} periods, {:.0}% healthy, {} anomalies{}, \
         {} flight bundle(s); live endpoints mid-run: /metrics {} (diag families: {}), \
         /health {}, /ready {}, /trace {} (json: {}), /profile {} (stage tables: {})",
        p.name,
        p.final_state,
        p.periods,
        p.healthy_fraction * 100.0,
        p.anomalies,
        match p.detect_latency_periods {
            Some(l) => format!(", flagged within {l} period(s)"),
            None => String::new(),
        },
        p.bundles_written,
        p.metrics_status,
        p.metrics_has_diag,
        p.health_status,
        p.ready_status,
        p.trace_status,
        p.trace_is_json,
        p.profile_status,
        p.profile_has_stages,
    ));
}

/// Runs all three phases and assembles the figure. The CLI `--seed`
/// arrives here and seeds each phase engine's entry shedder.
pub fn run(seed: u64) -> FigureResult {
    let phases = [
        run_nominal(Duration::from_secs(3), seed),
        run_oscillation(Duration::from_secs(2), seed),
        run_saturation(Duration::from_millis(2500), seed),
    ];
    let series = phases
        .iter()
        .map(|p| Series::new(p.name.to_string(), p.trajectory.clone()))
        .collect();
    let mut summary = vec![
        ("target_delay_ms".to_string(), TARGET_MS),
        ("violation_band_ms".to_string(), TARGET_MS * (1.0 + BAND_FRAC)),
        ("detect_budget_periods".to_string(), DETECT_BUDGET as f64),
    ];
    let mut notes = Vec::new();
    for p in &phases {
        summarize(&mut summary, &mut notes, p);
    }
    let detected = phases[1..]
        .iter()
        .all(|p| p.detect_latency_periods.is_some_and(|l| l <= DETECT_BUDGET));
    notes.push(if detected {
        format!(
            "both injected faults flagged within the {DETECT_BUDGET}-period budget, \
             with flight bundles for offline reproduction"
        )
    } else {
        "WARNING: an injected fault was not flagged within budget".to_string()
    });
    let slowop = run_slowop(seed);
    summary.push(("slowop_profile_status".to_string(), f64::from(slowop.profile_status)));
    summary.push(("slowop_attribution_frac".to_string(), slowop.attribution_frac));
    summary.push(("slowop_added_sojourn_ms".to_string(), slowop.added_sojourn_ms));
    summary.push(("slowop_added_execute_ms".to_string(), slowop.added_execute_ms));
    summary.push(("slowop_sampled_base".to_string(), slowop.sampled_base as f64));
    summary.push(("slowop_sampled_slow".to_string(), slowop.sampled_slow as f64));
    notes.push(format!(
        "slow operator: /profile {} (stage tables: {}) at the {DETECT_BUDGET}-period poll; \
         +{:.2} ms sojourn of which +{:.2} ms execute ({:.0}% attribution, \
         {} / {} sampled sojourns){}",
        slowop.profile_status,
        slowop.profile_has_stages,
        slowop.added_sojourn_ms,
        slowop.added_execute_ms,
        slowop.attribution_frac * 100.0,
        slowop.sampled_base,
        slowop.sampled_slow,
        if slowop.attributed {
            " — >=80% of the added sojourn localised to the execute stage"
        } else {
            " — WARNING: attribution below the 80% acceptance bound"
        },
    ));
    FigureResult {
        id: "monitor".into(),
        title: "Observability plane: live self-monitoring under injected faults".into(),
        x_label: "time (s)".into(),
        y_label: "mean delay (ms)".into(),
        series,
        summary,
        notes,
    }
}
