//! Shared experiment runner: wires a workload trace, the calibrated
//! identification network, a cost schedule, and one of the three shedding
//! strategies into a simulation run.

use serde::{Deserialize, Serialize};
use streamshed_control::adaptive::{AdaptiveCtrlStrategy, ComparatorStrategy};
use streamshed_control::loop_::{LoopConfig, SignalRow};
use streamshed_control::strategy::{
    AuroraStrategy, BaselineStrategy, CtrlStrategy, SheddingStrategy,
};
use streamshed_engine::cost::CostSchedule;
use streamshed_engine::hook::{ControlHook, Decision, PeriodSnapshot};
use streamshed_engine::metrics::RunReport;
use streamshed_engine::networks::identification_network;
use streamshed_engine::sim::{SimConfig, Simulator};
use streamshed_engine::telemetry::{ControlState, ControlTrace, InstrumentedHook, TracingHook};
use streamshed_engine::time::{secs, SimTime};
use streamshed_workload::{to_micros, CostTrace};

/// Which strategy to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategyKind {
    /// The paper's feedback-control strategy.
    Ctrl,
    /// The model-based feedback heuristic.
    Baseline,
    /// The open-loop Aurora shedder (uses the loop config's headroom for
    /// `L0`).
    Aurora,
    /// Aurora with an explicitly retuned `L0` headroom (Fig. 16).
    AuroraWithHeadroom(f64),
    /// The paper tuning with the loop gain frozen at the design-time
    /// cost (the loop config's prior): the "fixed tuning" arm the
    /// self-tuning experiments destabilise with cost growth.
    CtrlFrozenGain,
    /// The gain-scheduled self-tuning CTRL variant (online cost
    /// re-identification + bumpless pole-placement re-derivation).
    Adaptive,
    /// The model-free comparator (hill-climb over pole-placement arms).
    Comparator,
    /// No shedding at all (identification runs).
    NoShedding,
}

impl StrategyKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::Ctrl => "CTRL",
            StrategyKind::Baseline => "BASELINE",
            StrategyKind::Aurora | StrategyKind::AuroraWithHeadroom(_) => "AURORA",
            StrategyKind::CtrlFrozenGain => "CTRL-FIXED",
            StrategyKind::Adaptive => "CTRL-ADAPTIVE",
            StrategyKind::Comparator => "CTRL-COMPARATOR",
            StrategyKind::NoShedding => "NONE",
        }
    }
}

/// The paper's four evaluation metrics (§3), extracted from a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricsSummary {
    /// Σ (y − yd)⁺, milliseconds.
    pub accumulated_violation_ms: f64,
    /// Tuples with y > yd.
    pub delayed_tuples: u64,
    /// max (y − yd), milliseconds.
    pub max_overshoot_ms: f64,
    /// Dropped / offered.
    pub loss_ratio: f64,
}

impl MetricsSummary {
    /// Extracts the metrics from a run report.
    pub fn from_report(report: &RunReport) -> Self {
        Self {
            accumulated_violation_ms: report.accumulated_violation_ms,
            delayed_tuples: report.delayed_tuples,
            max_overshoot_ms: report.max_overshoot_ms,
            loss_ratio: report.loss_ratio(),
        }
    }

    /// Ratios of this summary over a reference (the paper's Fig. 12
    /// normalisation to CTRL). Zero-valued references yield 1 when the
    /// numerator is also zero, `INFINITY` otherwise.
    pub fn relative_to(&self, reference: &MetricsSummary) -> [f64; 4] {
        fn ratio(a: f64, b: f64) -> f64 {
            if b.abs() < 1e-12 {
                if a.abs() < 1e-12 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                a / b
            }
        }
        [
            ratio(
                self.accumulated_violation_ms,
                reference.accumulated_violation_ms,
            ),
            ratio(self.delayed_tuples as f64, reference.delayed_tuples as f64),
            ratio(self.max_overshoot_ms, reference.max_overshoot_ms),
            ratio(self.loss_ratio, reference.loss_ratio),
        ]
    }
}

/// Everything a strategy run produces.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    /// Strategy display name.
    pub name: String,
    /// The engine's run report.
    pub report: RunReport,
    /// The strategy's internal signal log (empty for `NoShedding`).
    pub signals: Vec<SignalRow>,
    /// The four paper metrics.
    pub metrics: MetricsSummary,
    /// One telemetry record per control period (newest-last; bounded by
    /// the run's period count, so nothing is overwritten).
    pub traces: Vec<ControlTrace>,
}

/// A runtime delay-target schedule: `(from_period, target_seconds)` pairs
/// applied to CTRL/BASELINE as the run progresses (Fig. 18).
#[derive(Debug, Clone, Default)]
pub struct TargetSchedule(pub Vec<(u64, f64)>);

enum AnyStrategy {
    Ctrl(CtrlStrategy),
    Baseline(BaselineStrategy),
    Aurora(AuroraStrategy),
    Adaptive(AdaptiveCtrlStrategy),
    Comparator(Box<ComparatorStrategy>),
    None,
}

impl AnyStrategy {
    fn apply_target(&mut self, yd_s: f64) {
        match self {
            AnyStrategy::Ctrl(s) => s.set_target_delay_s(yd_s),
            AnyStrategy::Baseline(s) => s.set_target_delay_s(yd_s),
            AnyStrategy::Adaptive(s) => s.set_target_delay_s(yd_s),
            AnyStrategy::Comparator(s) => s.set_target_delay_s(yd_s),
            _ => {}
        }
    }

    fn on_period(&mut self, snap: &PeriodSnapshot) -> Decision {
        match self {
            AnyStrategy::Ctrl(s) => s.on_period(snap),
            AnyStrategy::Baseline(s) => s.on_period(snap),
            AnyStrategy::Aurora(s) => s.on_period(snap),
            AnyStrategy::Adaptive(s) => s.on_period(snap),
            AnyStrategy::Comparator(s) => s.on_period(snap),
            AnyStrategy::None => Decision::NONE,
        }
    }

    fn signals(&self) -> Vec<SignalRow> {
        match self {
            AnyStrategy::Ctrl(s) => s.signals().to_vec(),
            AnyStrategy::Baseline(s) => s.signals().to_vec(),
            AnyStrategy::Aurora(s) => s.signals().to_vec(),
            AnyStrategy::Adaptive(s) => s.signals().to_vec(),
            AnyStrategy::Comparator(s) => s.signals().to_vec(),
            AnyStrategy::None => Vec::new(),
        }
    }

    fn control_state(&self) -> Option<ControlState> {
        match self {
            AnyStrategy::Ctrl(s) => s.control_state(),
            AnyStrategy::Baseline(s) => s.control_state(),
            AnyStrategy::Aurora(s) => s.control_state(),
            AnyStrategy::Adaptive(s) => s.control_state(),
            AnyStrategy::Comparator(s) => s.control_state(),
            AnyStrategy::None => None,
        }
    }

    fn adapt_state(&self) -> Option<streamshed_engine::telemetry::AdaptState> {
        match self {
            AnyStrategy::Adaptive(s) => s.adapt_state(),
            AnyStrategy::Comparator(s) => s.adapt_state(),
            _ => None,
        }
    }
}

struct ScheduledHook {
    strategy: AnyStrategy,
    schedule: TargetSchedule,
    next: usize,
}

impl ControlHook for ScheduledHook {
    fn on_period(&mut self, snap: &PeriodSnapshot) -> Decision {
        while self.next < self.schedule.0.len() && self.schedule.0[self.next].0 <= snap.k {
            self.strategy.apply_target(self.schedule.0[self.next].1);
            self.next += 1;
        }
        self.strategy.on_period(snap)
    }
}

impl InstrumentedHook for ScheduledHook {
    fn control_state(&self) -> Option<ControlState> {
        self.strategy.control_state()
    }

    fn adapt_state(&self) -> Option<streamshed_engine::telemetry::AdaptState> {
        self.strategy.adapt_state()
    }
}

/// Runs one strategy over one arrival trace on the calibrated
/// identification network.
///
/// * `times` — arrival instants in seconds;
/// * `loop_cfg` — loop configuration (target, period, headroom, tuning);
/// * `duration_s` — simulated run length;
/// * `cost_trace` — optional Fig. 14 cost variation;
/// * `target_schedule` — optional runtime target changes (Fig. 18);
/// * `seed` — engine RNG seed.
#[allow(clippy::too_many_arguments)]
pub fn run_with_strategy(
    kind: StrategyKind,
    times: &[f64],
    loop_cfg: &LoopConfig,
    duration_s: u64,
    cost_trace: Option<&CostTrace>,
    target_schedule: Option<TargetSchedule>,
    seed: u64,
) -> StrategyOutcome {
    let network = identification_network();
    let mut sim_cfg = SimConfig::paper_default()
        .with_period(loop_cfg.period())
        .with_target_delay(loop_cfg.target_delay())
        .with_seed(seed);
    if let Some(trace) = cost_trace {
        let points = trace
            .multiplier_points(duration_s as f64)
            .into_iter()
            .map(|(t, m)| (SimTime((t * 1e6) as u64), m))
            .collect();
        sim_cfg = sim_cfg.with_cost_schedule(CostSchedule::from_points(points));
    }

    let strategy = match kind {
        StrategyKind::Ctrl => AnyStrategy::Ctrl(CtrlStrategy::from_config(loop_cfg)),
        StrategyKind::Baseline => {
            AnyStrategy::Baseline(BaselineStrategy::from_config(loop_cfg))
        }
        StrategyKind::Aurora => AnyStrategy::Aurora(AuroraStrategy::from_config(loop_cfg)),
        StrategyKind::AuroraWithHeadroom(h) => {
            AnyStrategy::Aurora(AuroraStrategy::new(h, loop_cfg.prior_cost_us))
        }
        StrategyKind::CtrlFrozenGain => AnyStrategy::Ctrl(
            CtrlStrategy::from_config(loop_cfg).with_frozen_gain_at(loop_cfg.prior_cost_us),
        ),
        StrategyKind::Adaptive => {
            AnyStrategy::Adaptive(AdaptiveCtrlStrategy::from_config(loop_cfg))
        }
        StrategyKind::Comparator => {
            AnyStrategy::Comparator(Box::new(ComparatorStrategy::from_config(loop_cfg)))
        }
        StrategyKind::NoShedding => AnyStrategy::None,
    };
    let scheduled = ScheduledHook {
        strategy,
        schedule: target_schedule.unwrap_or_default(),
        next: 0,
    };
    // Ring sized to the run's period count: every period survives.
    let period_count =
        (duration_s as f64 / loop_cfg.period().as_secs_f64()).ceil() as usize + 8;
    let mut hook = TracingHook::new(scheduled, period_count);

    let arrivals: Vec<SimTime> = to_micros(times).into_iter().map(SimTime).collect();
    let sim = Simulator::new(network, sim_cfg);
    let report = sim.run(&arrivals, &mut hook, secs(duration_s));
    let metrics = MetricsSummary::from_report(&report);
    let (scheduled, recorder) = hook.into_parts();
    StrategyOutcome {
        name: kind.name().to_string(),
        report,
        signals: scheduled.strategy.signals(),
        metrics,
        traces: recorder.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamshed_workload::{ArrivalTrace, StepTrace};

    #[test]
    fn runner_produces_signals_and_metrics() {
        let times = StepTrace::constant(300.0).arrival_times(30.0);
        let out = run_with_strategy(
            StrategyKind::Ctrl,
            &times,
            &LoopConfig::paper_default(),
            30,
            None,
            None,
            1,
        );
        assert_eq!(out.name, "CTRL");
        assert_eq!(out.signals.len(), 30);
        assert!(out.metrics.loss_ratio > 0.1);
    }

    #[test]
    fn runner_traces_mirror_the_signal_log() {
        let times = StepTrace::constant(300.0).arrival_times(30.0);
        let out = run_with_strategy(
            StrategyKind::Ctrl,
            &times,
            &LoopConfig::paper_default(),
            30,
            None,
            None,
            1,
        );
        assert_eq!(out.traces.len(), out.signals.len());
        for (t, s) in out.traces.iter().zip(&out.signals) {
            assert_eq!(t.k, s.k);
            assert!(
                (t.y_hat_s - s.y_hat_s).abs() < 1e-12,
                "period {}: trace ŷ {} vs signal ŷ {}",
                t.k,
                t.y_hat_s,
                s.y_hat_s
            );
        }
    }

    #[test]
    fn target_schedule_changes_target() {
        let times = StepTrace::constant(300.0).arrival_times(40.0);
        let out = run_with_strategy(
            StrategyKind::Ctrl,
            &times,
            &LoopConfig::paper_default().with_target_delay_ms(1000.0),
            40,
            None,
            Some(TargetSchedule(vec![(20, 4.0)])),
            1,
        );
        // After period 20 the loop aims at 4 s: the estimated delay in the
        // last periods should clearly exceed the initial 1 s regime.
        let early: f64 = out.signals[12..18].iter().map(|s| s.y_hat_s).sum::<f64>() / 6.0;
        let late: f64 = out.signals[34..40].iter().map(|s| s.y_hat_s).sum::<f64>() / 6.0;
        assert!(late > early + 1.0, "early {early}, late {late}");
    }

    #[test]
    fn adaptive_kinds_run_and_trace_adapt_state() {
        let times = StepTrace::constant(300.0).arrival_times(30.0);
        for kind in [StrategyKind::Adaptive, StrategyKind::Comparator] {
            let out = run_with_strategy(
                kind,
                &times,
                &LoopConfig::paper_default(),
                30,
                None,
                None,
                1,
            );
            assert_eq!(out.signals.len(), 30, "{}", out.name);
            assert!(out.metrics.loss_ratio > 0.1, "{}", out.name);
            // The self-tuning state must reach the telemetry plane.
            let last = out.traces.last().unwrap();
            assert!(
                last.adapt_cost_us.is_finite(),
                "{}: adapt cost missing from traces",
                out.name
            );
            if kind == StrategyKind::Comparator {
                assert!(last.adapt_arm >= 0, "comparator arm missing");
            }
        }
    }

    #[test]
    fn relative_metrics_ratio() {
        let a = MetricsSummary {
            accumulated_violation_ms: 100.0,
            delayed_tuples: 10,
            max_overshoot_ms: 50.0,
            loss_ratio: 0.5,
        };
        let b = MetricsSummary {
            accumulated_violation_ms: 10.0,
            delayed_tuples: 5,
            max_overshoot_ms: 0.0,
            loss_ratio: 0.5,
        };
        let r = a.relative_to(&b);
        assert_eq!(r[0], 10.0);
        assert_eq!(r[1], 2.0);
        assert!(r[2].is_infinite());
        assert_eq!(r[3], 1.0);
    }

    #[test]
    fn no_shedding_kind_runs_open() {
        let times = StepTrace::constant(250.0).arrival_times(20.0);
        let out = run_with_strategy(
            StrategyKind::NoShedding,
            &times,
            &LoopConfig::paper_default(),
            20,
            None,
            None,
            1,
        );
        assert_eq!(out.metrics.loss_ratio, 0.0);
        assert!(out.signals.is_empty());
        // Overloaded with no shedding: the queue builds.
        assert!(out.report.periods.last().unwrap().outstanding > 500);
    }
}
