//! Figure 17: robustness against input burstiness.
//!
//! Pareto traces with bias factors β ∈ {0.1, 0.25, 0.5, 1, 1.25, 1.5}
//! (smaller = burstier). All four metrics are reported relative to the
//! β = 1.5 case: CTRL barely moves, AURORA degrades dramatically.

use crate::runner::{run_with_strategy, MetricsSummary, StrategyKind};
use crate::{FigureResult, Series};
use streamshed_control::loop_::LoopConfig;
use streamshed_workload::{ArrivalTrace, ParetoTrace};

/// The bias factors swept in the paper.
pub const BIASES: [f64; 6] = [0.1, 0.25, 0.5, 1.0, 1.25, 1.5];

fn metrics_for(kind: StrategyKind, beta: f64, seed: u64) -> MetricsSummary {
    let trace = ParetoTrace::builder()
        .mean_rate(200.0)
        .bias(beta)
        .seed(seed)
        .build();
    let times = trace.arrival_times(crate::fig12::DURATION_S as f64);
    let cfg = LoopConfig::paper_default();
    run_with_strategy(
        kind,
        &times,
        &cfg,
        crate::fig12::DURATION_S,
        None,
        None,
        seed,
    )
    .metrics
}

/// Runs the Fig. 17 sweep.
pub fn run(seed: u64) -> FigureResult {
    let mut series = Vec::new();
    let mut summary = Vec::new();

    for kind in [StrategyKind::Ctrl, StrategyKind::Aurora] {
        let all: Vec<(f64, MetricsSummary)> = BIASES
            .iter()
            .map(|&b| (b, metrics_for(kind, b, seed)))
            .collect();
        let reference = all.last().unwrap().1; // β = 1.5
        let metric_names = [
            "accumulated_violations",
            "delayed_tuples",
            "max_overshoot",
            "data_loss",
        ];
        for (mi, name) in metric_names.iter().enumerate() {
            let pts: Vec<(f64, f64)> = all
                .iter()
                .map(|&(b, m)| (b, m.relative_to(&reference)[mi]))
                .collect();
            // Spread = max/min over the sweep: the robustness summary.
            let vals: Vec<f64> = pts
                .iter()
                .map(|&(_, v)| v)
                .filter(|v| v.is_finite())
                .collect();
            let spread = vals.iter().cloned().fold(0.0, f64::max)
                / vals.iter().cloned().fold(f64::MAX, f64::min).max(1e-12);
            summary.push((format!("{}:{name}_spread", kind.name()), spread));
            series.push(Series::new(format!("{}:{name}", kind.name()), pts));
        }
    }

    FigureResult {
        id: "fig17".into(),
        title: "Effect of input burstiness (bias factor) on performance".into(),
        x_label: "bias factor β (smaller = burstier)".into(),
        y_label: "metric relative to β = 1.5".into(),
        series,
        summary,
        notes: vec![
            "paper: CTRL's metrics barely change across β; AURORA's swing \
             by up to ~4×"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctrl_is_more_robust_than_aurora() {
        let fig = run(7);
        let get = |name: &str| fig.summary.iter().find(|(n, _)| n == name).unwrap().1;
        // Loss must track the workload for both (not a robustness issue),
        // but violations spread should be far larger for AURORA.
        let ctrl_spread = get("CTRL:accumulated_violations_spread");
        let aurora_spread = get("AURORA:accumulated_violations_spread");
        assert!(
            aurora_spread > ctrl_spread * 1.5,
            "AURORA spread {aurora_spread} vs CTRL {ctrl_spread}"
        );
        // Data-loss spread stays modest for CTRL.
        assert!(get("CTRL:data_loss_spread") < 3.0);
    }
}
