//! Minimal ASCII rendering of series and tables for terminal output.

use crate::Series;

const MARKS: &[char] = &['*', '+', 'o', 'x', '#', '@', '%', '&'];

/// Renders multiple series into a fixed-size ASCII chart with axis labels
/// and a legend. `NaN` points are skipped.
pub fn render_ascii_chart(
    series: &[Series],
    x_label: &str,
    y_label: &str,
    width: usize,
    height: usize,
) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let finite: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if finite.is_empty() {
        return String::from("  (no finite data)\n");
    }
    let (mut x_min, mut x_max) = (f64::MAX, f64::MIN);
    let (mut y_min, mut y_max) = (f64::MAX, f64::MIN);
    for &(x, y) in &finite {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in &s.points {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let row = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][col.min(width - 1)] = mark;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("  {y_label}\n"));
    for (i, row) in grid.iter().enumerate() {
        let edge = if i == 0 {
            format!("{y_max:10.2} |")
        } else if i == height - 1 {
            format!("{y_min:10.2} |")
        } else {
            "           |".to_string()
        };
        out.push_str(&edge);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "           +{}\n            {:<10.2}{:>width$.2}  ({x_label})\n",
        "-".repeat(width),
        x_min,
        x_max,
        width = width - 10
    ));
    out.push_str("  legend: ");
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("{}={}  ", MARKS[si % MARKS.len()], s.name));
    }
    out.push('\n');
    out
}

/// Renders a simple aligned table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("  ");
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        line.trim_end().to_string() + "\n"
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push_str(&format!(
        "  {}\n",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    ));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_marks_and_legend() {
        let s = vec![
            Series::new("up", (0..10).map(|i| (i as f64, i as f64)).collect()),
            Series::new("down", (0..10).map(|i| (i as f64, 9.0 - i as f64)).collect()),
        ];
        let out = render_ascii_chart(&s, "t", "y", 40, 10);
        assert!(out.contains('*'));
        assert!(out.contains('+'));
        assert!(out.contains("legend: *=up  +=down"));
    }

    #[test]
    fn chart_handles_empty_and_nan() {
        let out = render_ascii_chart(&[], "t", "y", 40, 10);
        assert!(out.contains("no finite data"));
        let s = vec![Series::new("n", vec![(0.0, f64::NAN)])];
        assert!(render_ascii_chart(&s, "t", "y", 40, 10).contains("no finite data"));
    }

    #[test]
    fn chart_handles_constant_series() {
        let s = vec![Series::new("c", vec![(0.0, 5.0), (1.0, 5.0)])];
        let out = render_ascii_chart(&s, "t", "y", 20, 5);
        assert!(out.contains('*'));
    }

    #[test]
    fn table_aligns_columns() {
        let out = render_table(
            &["name", "value"],
            &[
                vec!["alpha".into(), "1".into()],
                vec!["b".into(), "10000".into()],
            ],
        );
        assert!(out.contains("name"));
        assert!(out.contains("alpha"));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
    }
}
