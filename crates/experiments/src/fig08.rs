//! Figure 8: the three failure modes of open-loop shedding (§4.3.2),
//! demonstrated analytically on the queue model.
//!
//! * **Example 1** — monotonically increasing rate → queue (and delay)
//!   grow without bound;
//! * **Example 2** — a step to a sustained higher rate → delay converges,
//!   but to a *wrong* value the open loop cannot correct;
//! * **Example 3** — a small step just above capacity with an empty queue
//!   → data are shed although the delay target was never threatened.

use crate::{FigureResult, Series};
use streamshed_control::model::PlantModel;
use streamshed_engine::time::secs;

/// The open-loop Aurora policy applied to the analytic queue model:
/// admitted rate = `min(fin(k), L0)` *plus* the one-period-stale shed
/// amount error `fin(k) − fin(k−1)` of Eq. 8.
fn aurora_queue_trajectory(fins: &[f64], l0: f64, model: &PlantModel) -> (Vec<f64>, Vec<f64>) {
    let mut q = 0.0f64;
    let mut qs = Vec::with_capacity(fins.len());
    let mut shed = Vec::with_capacity(fins.len());
    let mut prev_fin = fins.first().copied().unwrap_or(0.0);
    for &fin in fins {
        // Shed amount decided from last period's rate (Eq. 7).
        let s = (prev_fin - l0).max(0.0);
        let admitted = (fin - s).max(0.0);
        shed.push(s.min(fin));
        q = model.step_queue(q, admitted, l0.min(q / model.period.as_secs_f64() + admitted));
        prev_fin = fin;
        qs.push(q);
    }
    (qs, shed)
}

/// Runs the Fig. 8 demonstrations (80 analytic periods each).
pub fn run() -> FigureResult {
    let l0 = 190.0;
    let model = PlantModel::new(1e6 / 190.0, 1.0, secs(1));
    let horizon = 80usize;

    // Example 1: ramp 150 → 940 t/s.
    let ramp: Vec<f64> = (0..horizon).map(|k| 150.0 + 10.0 * k as f64).collect();
    let (q1, _) = aurora_queue_trajectory(&ramp, l0, &model);

    // Example 2: step 150 → 400 t/s at k = 20.
    let step: Vec<f64> = (0..horizon)
        .map(|k| if k < 20 { 150.0 } else { 400.0 })
        .collect();
    let (q2, _) = aurora_queue_trajectory(&step, l0, &model);

    // Example 3: small step 100 → 200 t/s (just above L0) at k = 20 with
    // an empty queue: shedding happens although delay stays tiny.
    let small: Vec<f64> = (0..horizon)
        .map(|k| if k < 20 { 100.0 } else { 200.0 })
        .collect();
    let (q3, shed3) = aurora_queue_trajectory(&small, l0, &model);

    let delay = |qs: &[f64]| -> Vec<(f64, f64)> {
        qs.iter()
            .enumerate()
            .map(|(k, &q)| (k as f64, model.predict_delay_s(q.round() as u64)))
            .collect()
    };

    let series = vec![
        Series::new("ex1: ramp delay (s)", delay(&q1)),
        Series::new("ex2: step delay (s)", delay(&q2)),
        Series::new("ex3: small-step delay (s)", delay(&q3)),
        Series::new(
            "ex3: shed rate (t/s)",
            shed3
                .iter()
                .enumerate()
                .map(|(k, &s)| (k as f64, s))
                .collect(),
        ),
    ];

    let d1 = delay(&q1);
    let d2 = delay(&q2);
    let d3 = delay(&q3);
    let summary = vec![
        ("ex1_final_delay_s".into(), d1.last().unwrap().1),
        ("ex1_mid_delay_s".into(), d1[horizon / 2].1),
        ("ex2_final_delay_s".into(), d2.last().unwrap().1),
        ("ex3_max_delay_s".into(), d3.iter().map(|&(_, y)| y).fold(0.0, f64::max)),
        (
            "ex3_total_shed_tuples".into(),
            shed3.iter().sum::<f64>(),
        ),
    ];

    FigureResult {
        id: "fig08".into(),
        title: "Open-loop failure modes (analytic, §4.3.2)".into(),
        x_label: "period k".into(),
        y_label: "delay (s) / shed (t/s)".into(),
        series,
        summary,
        notes: vec![
            "ex1: unbounded growth under a ramp".into(),
            "ex2: converges to a wrong value after a step".into(),
            "ex3: data shed although the delay never neared any target".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_failure_modes_visible() {
        let fig = run();
        let get = |name: &str| fig.summary.iter().find(|(n, _)| n == name).unwrap().1;
        // Ex 1: still growing at the end.
        assert!(get("ex1_final_delay_s") > get("ex1_mid_delay_s") + 1.0);
        // Ex 2: settles at a clearly elevated (wrong) value.
        let final2 = get("ex2_final_delay_s");
        assert!(final2 > 1.0, "ex2 final {final2}");
        // Ex 3: delay never exceeds a second, yet data were shed.
        assert!(get("ex3_max_delay_s") < 1.0);
        assert!(get("ex3_total_shed_tuples") > 100.0);
    }
}
