//! Scoped-thread fan-out for independent experiment scenarios.
//!
//! Every figure/ablation/fault scenario is a pure function of its
//! arguments (each builds its own `Simulator` with its own seed), so runs
//! can execute on any thread in any order without changing their output.
//! [`run_indexed`] exploits that: it claims task indices from a shared
//! atomic counter across `jobs` scoped workers and returns the results
//! **in task order**, so callers that print/write sequentially produce
//! byte-identical output regardless of the worker count.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: one per available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f(0..n)` across up to `jobs` scoped threads and returns the
/// results ordered by index.
///
/// * `jobs <= 1` (or `n <= 1`) degrades to a plain sequential loop on the
///   calling thread — no threads are spawned.
/// * Workers claim indices dynamically (atomic counter), so long and
///   short scenarios interleave without static partitioning skew.
/// * A panicking task propagates after all workers have stopped.
pub fn run_indexed<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *slots[i].lock().unwrap() = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("every index is claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for jobs in [1, 2, 4, 16] {
            let out = run_indexed(9, jobs, |i| i * i);
            assert_eq!(out, (0..9).map(|i| i * i).collect::<Vec<_>>(), "jobs {jobs}");
        }
    }

    #[test]
    fn more_jobs_than_tasks_is_fine() {
        assert_eq!(run_indexed(2, 64, |i| i), vec![0, 1]);
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn parallel_output_matches_sequential() {
        // Each "scenario" hashes its index a few thousand times; parallel
        // and sequential runs must agree element-for-element.
        let work = |i: usize| {
            let mut h = i as u64 ^ 0x9e37_79b9_7f4a_7c15;
            for _ in 0..5_000 {
                h = h.wrapping_mul(0x2545_f491_4f6c_dd1d).rotate_left(17);
            }
            h
        };
        let serial = run_indexed(32, 1, work);
        let parallel = run_indexed(32, default_jobs(), work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
