//! Scoped-thread fan-out for independent experiment scenarios.
//!
//! Every figure/ablation/fault scenario is a pure function of its
//! arguments (each builds its own `Simulator` with its own seed), so runs
//! can execute on any thread in any order without changing their output.
//! [`run_indexed`] exploits that: it claims task indices from a shared
//! atomic counter across `jobs` scoped workers and returns the results
//! **in task order**, so callers that print/write sequentially produce
//! byte-identical output regardless of the worker count.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: one per available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f(0..n)` across up to `jobs` scoped threads and returns the
/// results ordered by index.
///
/// * `jobs <= 1` (or `n <= 1`) degrades to a plain sequential loop on the
///   calling thread — no threads are spawned.
/// * Workers claim indices dynamically (atomic counter), so long and
///   short scenarios interleave without static partitioning skew.
/// * A panicking task propagates after all workers have stopped.
pub fn run_indexed<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *slots[i].lock().unwrap() = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("every index is claimed exactly once")
        })
        .collect()
}

/// What happened to one isolated task.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskOutcome<T> {
    /// The task returned normally.
    Done(T),
    /// The task panicked; the payload is the panic message (or a
    /// placeholder when the payload was not a string).
    Panicked(String),
    /// The task did not finish within the deadline.
    TimedOut,
}

impl<T> TaskOutcome<T> {
    /// The result, if the task completed.
    pub fn ok(self) -> Option<T> {
        match self {
            TaskOutcome::Done(v) => Some(v),
            _ => None,
        }
    }

    /// One word describing the outcome, for failure tables.
    pub fn label(&self) -> &'static str {
        match self {
            TaskOutcome::Done(_) => "done",
            TaskOutcome::Panicked(_) => "panicked",
            TaskOutcome::TimedOut => "timed out",
        }
    }
}

/// Renders a caught panic payload as a message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

/// Like [`run_indexed`], but each task runs on its own detached thread
/// with a `timeout` and panic isolation: one misbehaving scenario
/// cannot take down (or stall) the whole campaign.
///
/// * A panicking task yields [`TaskOutcome::Panicked`] with the message;
///   the other tasks are unaffected.
/// * A task that exceeds `timeout` yields [`TaskOutcome::TimedOut`].
///   Its thread is **abandoned, not killed** — it keeps running detached
///   until the process exits — so timeouts should be sized as a
///   last-resort backstop, not a pacing mechanism.
/// * At most `jobs` tasks are in flight at once; results come back in
///   index order, as with [`run_indexed`].
pub fn run_isolated<T, F>(
    n: usize,
    jobs: usize,
    timeout: std::time::Duration,
    f: F,
) -> Vec<TaskOutcome<T>>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::mpsc;
    use std::sync::Arc;

    let jobs = jobs.max(1).min(n.max(1));
    let f = Arc::new(f);
    let next = Arc::new(AtomicUsize::new(0));
    let slots: Vec<Mutex<Option<TaskOutcome<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            let f = Arc::clone(&f);
            let next = Arc::clone(&next);
            let slots = &slots;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (tx, rx) = mpsc::channel();
                let task = Arc::clone(&f);
                // Detached: if it wedges past the deadline, we abandon it.
                std::thread::spawn(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| task(i)));
                    let _ = tx.send(out);
                });
                let outcome = match rx.recv_timeout(timeout) {
                    Ok(Ok(v)) => TaskOutcome::Done(v),
                    Ok(Err(payload)) => TaskOutcome::Panicked(panic_message(payload)),
                    Err(_) => TaskOutcome::TimedOut,
                };
                *slots[i].lock().unwrap() = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("every index is claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn results_come_back_in_index_order() {
        for jobs in [1, 2, 4, 16] {
            let out = run_indexed(9, jobs, |i| i * i);
            assert_eq!(out, (0..9).map(|i| i * i).collect::<Vec<_>>(), "jobs {jobs}");
        }
    }

    #[test]
    fn more_jobs_than_tasks_is_fine() {
        assert_eq!(run_indexed(2, 64, |i| i), vec![0, 1]);
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn parallel_output_matches_sequential() {
        // Each "scenario" hashes its index a few thousand times; parallel
        // and sequential runs must agree element-for-element.
        let work = |i: usize| {
            let mut h = i as u64 ^ 0x9e37_79b9_7f4a_7c15;
            for _ in 0..5_000 {
                h = h.wrapping_mul(0x2545_f491_4f6c_dd1d).rotate_left(17);
            }
            h
        };
        let serial = run_indexed(32, 1, work);
        let parallel = run_indexed(32, default_jobs(), work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn isolated_tasks_survive_a_panicking_neighbour() {
        let out = run_isolated(5, 2, Duration::from_secs(10), |i| {
            if i == 2 {
                panic!("scenario {i} exploded");
            }
            i * 10
        });
        assert_eq!(out.len(), 5);
        for (i, o) in out.iter().enumerate() {
            match (i, o) {
                (2, TaskOutcome::Panicked(msg)) => {
                    assert!(msg.contains("scenario 2 exploded"), "{msg}")
                }
                (2, other) => panic!("index 2 should panic, got {}", other.label()),
                (_, TaskOutcome::Done(v)) => assert_eq!(*v, i * 10),
                (_, other) => panic!("index {i} should complete, got {}", other.label()),
            }
        }
    }

    #[test]
    fn isolated_tasks_time_out_without_stalling_the_rest() {
        let out = run_isolated(4, 4, Duration::from_millis(200), |i| {
            if i == 1 {
                std::thread::sleep(Duration::from_secs(30));
            }
            i
        });
        assert_eq!(out[1], TaskOutcome::TimedOut);
        for i in [0usize, 2, 3] {
            assert_eq!(out[i], TaskOutcome::Done(i), "index {i}");
        }
    }

    #[test]
    fn isolated_matches_indexed_on_well_behaved_tasks() {
        let plain = run_indexed(12, 3, |i| i as u64 * 7);
        let isolated: Vec<u64> = run_isolated(12, 3, Duration::from_secs(10), |i| i as u64 * 7)
            .into_iter()
            .map(|o| o.ok().expect("all tasks complete"))
            .collect();
        assert_eq!(plain, isolated);
    }
}
