//! `reproduce campaign` — the deterministic scenario-campaign harness.
//!
//! A campaign sweeps a seeded grid over *workload × fault × topology ×
//! shard count × controller configuration*, runs every selected cell in
//! parallel (with per-cell timeouts and panic isolation, see
//! [`crate::parallel::run_isolated`]), and checks a library of
//! invariants against each run:
//!
//! * **conservation** — exact tuple-counter balance per shard:
//!   `offered = shed(entry) + shed(network) + completed + outstanding`;
//! * **fault_consistency** — the post-hoc diagnostics verdict agrees
//!   with the injected fault class (hook faults stamp fault flags,
//!   plant-side and clean cells stamp none);
//! * **span_conservation** — the latency truth plane's sampled
//!   decomposition is exact: every sampled sojourn equals its
//!   `ring_wait + execute` stage times to the nanosecond;
//! * **bounded_delay** — under a supervised controller the tail delay
//!   recovers below a fixed bound after every fault window closes;
//! * **no_spurious_anomalies** — nominal (clean, paper-tuned) cells
//!   never enter an anomalous health state, which is exactly the
//!   condition under which the flight recorder would write a bundle;
//! * **replay** — a deterministic subset of cells is re-run in-process
//!   and must reproduce a byte-identical counter digest.
//!
//! Every cell is virtual-time ([`Simulator`]), so the whole campaign —
//! including `CAMPAIGN.json` — is byte-identical for a given seed,
//! regardless of `--jobs`. A cell's seed derives only from the campaign
//! seed and the cell *key* (never its position in the grid), so
//! `reproduce campaign --filter '<key>' --seed <s>` replays any single
//! cell exactly.
//!
//! Two CI lanes ride on top: the fixed-seed **sanity** corpus (a
//! curated ~90-cell subset, hard gate) and the rotating **stress** lane
//! (a seeded sample of the full grid, findings uploaded, non-blocking).

use crate::parallel::{self, TaskOutcome};
use serde_json::{json, ToJson, Value};
use std::time::Duration;
use streamshed_control::adaptive::{AdaptiveCtrlStrategy, ComparatorStrategy};
use streamshed_control::loop_::{LoopConfig, ShedMode};
use streamshed_control::strategy::CtrlStrategy;
use streamshed_control::supervisor::Supervisor;
use streamshed_engine::cost::CostSchedule;
use streamshed_engine::diagnostics::{ControllerHealth, DiagnosticsConfig};
use streamshed_engine::faults::{
    inject_flash_flood, stall_schedule, FaultKind, FaultPlan, FaultWindow, FaultyHook,
};
use streamshed_engine::metrics::RunReport;
use streamshed_engine::networks::{
    identification_network, monitoring_network, uniform_chain, IDENTIFICATION_HEADROOM,
};
use streamshed_engine::network::QueryNetwork;
use streamshed_engine::sim::{SimConfig, Simulator};
use streamshed_engine::telemetry::{SharedRecorder, TracingHook};
use streamshed_engine::time::{micros, secs, SimTime};
use streamshed_workload::{to_micros, WorkloadKind};

/// Simulated length of every campaign cell, seconds. Shorter than the
/// fault matrix's 200 s — the campaign trades per-cell depth for grid
/// breadth — but still a whole number of 1 s control periods (the
/// conservation identity is exact only then). Recoverable fault windows
/// close by 70 s, leaving ≥ 50 s of recovery tail; sensor-blinding
/// faults persist to the end of the run so the tail measures the loop
/// *under* the fault (see [`plan_for`]).
pub const DURATION_S: u64 = 120;

/// Offered load relative to each topology's processing capacity. Every
/// cell runs in sustained overload so the shedding loop is always live.
pub const OVERLOAD: f64 = 1.6;

/// Periods of the recovery tail the bounded-delay invariant averages.
pub const TAIL_PERIODS: usize = 20;

/// The bounded-delay invariant's tail bound, seconds (target is 2 s;
/// the fault matrix uses the same recovery bound).
pub const TAIL_BOUND_S: f64 = 8.0;

/// Every Nth cell of a selection is re-run for the replay invariant.
pub const REPLAY_EVERY: usize = 8;

/// Cells in the rotating stress lane's sample of the full grid.
pub const STRESS_CELLS: usize = 192;

/// Wall-clock budget for one cell (including its replay re-run, when
/// selected). Virtual-time cells finish in seconds; the timeout is a
/// backstop against a wedged scenario, not a pacing mechanism.
pub const CELL_TIMEOUT: Duration = Duration::from_secs(240);

/// Fault axis of the grid: the full fault-matrix catalogue
/// ([`crate::faults::SCENARIOS`]) plus two compound faults built with
/// [`FaultPlan::merge`].
pub const FAULTS: &[&str] = &[
    "clean",
    "stale_q",
    "sensor_dropout",
    "cost_nan",
    "cost_collapse",
    "actuator_hold",
    "actuator_partial",
    "flash_flood",
    "stall",
    "jitter",
    "stale_partial",
    "dropout_flood",
];

/// Topology axis: the paper's identification network, an 8-operator
/// uniform chain, and the stateful monitoring network.
pub const TOPOLOGIES: &[&str] = &["ident", "chain8", "monitoring"];

/// Shard-count axis.
pub const SHARD_COUNTS: &[usize] = &[1, 2, 4];

/// Controller axis: paper tuning with the supervisor (`paper`), bare
/// CTRL without the supervisory layer (`nosup`), supervised CTRL
/// actuating the in-network hybrid shedder (`netshed`), and the two
/// supervised self-tuning flavours — the gain-scheduled re-identifier
/// (`adaptive`) and the model-free hill-climber (`comparator`).
pub const CONTROLS: &[&str] = &["paper", "nosup", "netshed", "adaptive", "comparator"];

/// One cell of the campaign grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Workload family.
    pub workload: WorkloadKind,
    /// Fault key (one of [`FAULTS`]).
    pub fault: &'static str,
    /// Topology key (one of [`TOPOLOGIES`]).
    pub topo: &'static str,
    /// Number of independent virtual-time shards.
    pub shards: usize,
    /// Controller key (one of [`CONTROLS`]).
    pub control: &'static str,
}

impl CellSpec {
    /// The cell's stable identifier, e.g. `web+stale_q+ident+4shard+paper`.
    pub fn key(&self) -> String {
        format!(
            "{}+{}+{}+{}shard+{}",
            self.workload.key(),
            self.fault,
            self.topo,
            self.shards,
            self.control
        )
    }

    /// Whether the cell runs a supervised controller (the bounded-delay
    /// invariant only applies then — bare CTRL is *expected* to diverge
    /// under sensor-blinding faults).
    pub fn supervised(&self) -> bool {
        self.control != "nosup"
    }
}

/// SplitMix64 — the seed-derivation and shuffle mixer. Cell seeds are a
/// pure function of (campaign seed, cell key), never of grid position,
/// so filtered replays see identical randomness.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over a byte string — used for key→seed derivation and for the
/// replay digest.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The deterministic per-cell seed.
pub fn cell_seed(campaign_seed: u64, key: &str) -> u64 {
    splitmix64(campaign_seed ^ fnv1a64(key.as_bytes()))
}

/// The deterministic per-shard seed within one cell.
pub fn shard_seed(cell_seed: u64, shard: usize) -> u64 {
    splitmix64(cell_seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The full campaign grid, in deterministic axis order.
pub fn full_grid() -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for workload in WorkloadKind::ALL {
        for &fault in FAULTS {
            for &topo in TOPOLOGIES {
                for &shards in SHARD_COUNTS {
                    for &control in CONTROLS {
                        cells.push(CellSpec { workload, fault, topo, shards, control });
                    }
                }
            }
        }
    }
    cells
}

/// The fixed-seed sanity corpus: a curated subset covering every
/// workload, every fault, every topology, every shard count, and every
/// controller at least once — small enough for a hard CI gate.
pub fn sanity_corpus() -> Vec<CellSpec> {
    let mut cells = Vec::new();
    // Every workload × a representative fault set on the identification
    // network, at 1 and 2 shards.
    for workload in WorkloadKind::ALL {
        for fault in ["clean", "stale_q", "actuator_partial", "flash_flood"] {
            for shards in [1usize, 2] {
                cells.push(CellSpec { workload, fault, topo: "ident", shards, control: "paper" });
            }
        }
    }
    // Every fault (including the compounds) on the other topologies.
    for &fault in FAULTS {
        for topo in ["chain8", "monitoring"] {
            cells.push(CellSpec {
                workload: WorkloadKind::Poisson,
                fault,
                topo,
                shards: 1,
                control: "paper",
            });
        }
    }
    // Alternative controllers: bare CTRL (invariants relax bounded
    // delay there), the supervised network shedder, and both
    // self-tuning flavours.
    for control in ["nosup", "netshed", "adaptive", "comparator"] {
        for fault in ["clean", "stale_q"] {
            cells.push(CellSpec {
                workload: WorkloadKind::Poisson,
                fault,
                topo: "ident",
                shards: 1,
                control,
            });
        }
    }
    // 4-shard spot checks.
    cells.push(CellSpec {
        workload: WorkloadKind::Web,
        fault: "stale_q",
        topo: "ident",
        shards: 4,
        control: "paper",
    });
    cells.push(CellSpec {
        workload: WorkloadKind::Cost,
        fault: "clean",
        topo: "ident",
        shards: 4,
        control: "paper",
    });
    cells
}

/// The rotating stress corpus: a seeded Fisher–Yates sample of
/// [`STRESS_CELLS`] cells from the full grid, kept in grid order.
pub fn stress_corpus(seed: u64) -> Vec<CellSpec> {
    let grid = full_grid();
    let mut idx: Vec<usize> = (0..grid.len()).collect();
    let mut s = splitmix64(seed ^ 0x5EED_CAFE);
    for i in (1..idx.len()).rev() {
        s = splitmix64(s);
        idx.swap(i, (s % (i as u64 + 1)) as usize);
    }
    idx.truncate(STRESS_CELLS.min(grid.len()));
    idx.sort_unstable();
    idx.into_iter().map(|i| grid[i].clone()).collect()
}

/// Minimal `*`-glob matcher for `--filter` (anchored at both ends).
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let parts: Vec<&str> = pattern.split('*').collect();
    if parts.len() == 1 {
        return pattern == text;
    }
    let mut pos = 0;
    if !parts[0].is_empty() {
        if !text.starts_with(parts[0]) {
            return false;
        }
        pos = parts[0].len();
    }
    let last = parts[parts.len() - 1];
    for part in &parts[1..parts.len() - 1] {
        if part.is_empty() {
            continue;
        }
        match text[pos..].find(part) {
            Some(i) => pos += i + part.len(),
            None => return false,
        }
    }
    last.is_empty() || text[pos..].ends_with(last)
}

/// Selects the cells a campaign invocation runs. A `filter` selects
/// from the **full** grid (so any cell key printed by a failure table
/// is replayable even when it is not part of a lane), otherwise the
/// lane's corpus is used.
pub fn select_cells(lane: &str, seed: u64, filter: Option<&str>) -> Vec<CellSpec> {
    match filter {
        Some(glob) => full_grid()
            .into_iter()
            .filter(|c| glob_match(glob, &c.key()))
            .collect(),
        None => match lane {
            "sanity" => sanity_corpus(),
            "stress" => stress_corpus(seed),
            "full" => full_grid(),
            other => panic!("unknown lane '{other}' (sanity | stress | full)"),
        },
    }
}

/// Counters and post-hoc diagnostics of one shard's run within a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRunStats {
    /// Tuples offered to the shard.
    pub offered: u64,
    /// Tuples shed at the entry gate.
    pub dropped_entry: u64,
    /// Tuples shed inside the network.
    pub dropped_network: u64,
    /// Tuples fully processed.
    pub completed: u64,
    /// Tuples still in flight at the final period boundary.
    pub outstanding: u64,
    /// `offered − (entry + network + completed + outstanding)`; zero
    /// when the counters conserve.
    pub residual: i64,
    /// Mean true delay over the last [`TAIL_PERIODS`] periods, seconds.
    pub tail_delay_s: f64,
    /// Accumulated delay violation Σ(y − y_d)⁺, tuple-seconds.
    pub violation_s: f64,
    /// Control periods the diagnostics classifier observed.
    pub periods: u64,
    /// Periods with any fault flag stamped by the fault injector.
    pub faulted_periods: u64,
    /// Entries into an anomalous health state.
    pub anomalies: u64,
    /// Fraction of periods classified `Healthy`.
    pub healthy_fraction: f64,
    /// Sampled sojourns closed by the latency truth plane.
    pub span_samples: u64,
    /// Σ sampled end-to-end sojourn, ns.
    pub span_sojourn_ns: u64,
    /// Σ sampled `ring_wait` + `execute` stage time, ns.
    pub span_stage_ns: u64,
    /// Whether every per-stage sample count matched the sojourn count.
    pub span_counts_equal: bool,
}

impl ToJson for ShardRunStats {
    fn to_json(&self) -> Value {
        json!({
            "offered": self.offered,
            "dropped_entry": self.dropped_entry,
            "dropped_network": self.dropped_network,
            "completed": self.completed,
            "outstanding": self.outstanding,
            "residual": self.residual,
            "tail_delay_s": self.tail_delay_s,
            "violation_s": self.violation_s,
            "periods": self.periods,
            "faulted_periods": self.faulted_periods,
            "anomalies": self.anomalies,
            "healthy_fraction": self.healthy_fraction,
            "span_samples": self.span_samples,
            "span_sojourn_ns": self.span_sojourn_ns,
            "span_stage_ns": self.span_stage_ns,
            "span_counts_equal": self.span_counts_equal,
        })
    }
}

/// One invariant's verdict on a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantResult {
    /// Invariant name.
    pub name: String,
    /// Whether it held.
    pub passed: bool,
    /// One-line explanation (populated on failure, often on success).
    pub detail: String,
}

impl InvariantResult {
    fn pass(name: &str, detail: String) -> Self {
        Self { name: name.into(), passed: true, detail }
    }
    fn fail(name: &str, detail: String) -> Self {
        Self { name: name.into(), passed: false, detail }
    }
}

impl ToJson for InvariantResult {
    fn to_json(&self) -> Value {
        json!({
            "name": self.name,
            "passed": self.passed,
            "detail": self.detail,
        })
    }
}

/// Whether a fault key injects at the control hook (and must therefore
/// stamp fault flags into the telemetry). The complement — `clean`,
/// `flash_flood`, `stall` — perturbs the plant (arrivals or cost
/// schedule) and must stamp none.
pub fn is_hook_fault(fault: &str) -> bool {
    !matches!(fault, "clean" | "flash_flood" | "stall")
}

/// Invariant: exact per-shard tuple-counter conservation.
pub fn check_conservation(shards: &[ShardRunStats]) -> InvariantResult {
    for (i, s) in shards.iter().enumerate() {
        if s.residual != 0 {
            return InvariantResult::fail(
                "conservation",
                format!(
                    "shard {i}: offered {} != entry {} + network {} + completed {} \
                     + outstanding {} (residual {})",
                    s.offered, s.dropped_entry, s.dropped_network, s.completed, s.outstanding,
                    s.residual
                ),
            );
        }
    }
    InvariantResult::pass("conservation", format!("{} shard(s) balance exactly", shards.len()))
}

/// Invariant: the diagnostics verdict is consistent with the injected
/// fault — hook faults stamp flags on every shard, plant-side faults
/// and clean runs stamp none.
pub fn check_fault_consistency(fault: &str, shards: &[ShardRunStats]) -> InvariantResult {
    for (i, s) in shards.iter().enumerate() {
        if is_hook_fault(fault) && s.faulted_periods == 0 {
            return InvariantResult::fail(
                "fault_consistency",
                format!("shard {i}: hook fault '{fault}' left no fault flag in {} periods", s.periods),
            );
        }
        if !is_hook_fault(fault) && s.faulted_periods > 0 {
            return InvariantResult::fail(
                "fault_consistency",
                format!(
                    "shard {i}: '{fault}' injects nothing at the hook but {} period(s) \
                     carry fault flags",
                    s.faulted_periods
                ),
            );
        }
    }
    InvariantResult::pass(
        "fault_consistency",
        if is_hook_fault(fault) {
            "fault flags present on every shard".into()
        } else {
            "no fault flags, as expected".into()
        },
    )
}

/// Invariant: a supervised controller recovers — the mean delay over
/// the final [`TAIL_PERIODS`] periods stays below `bound_s` on every
/// shard.
pub fn check_bounded_delay(shards: &[ShardRunStats], bound_s: f64) -> InvariantResult {
    for (i, s) in shards.iter().enumerate() {
        // NaN must fail the gate, not slip past it.
        if s.tail_delay_s >= bound_s || s.tail_delay_s.is_nan() {
            return InvariantResult::fail(
                "bounded_delay",
                format!("shard {i}: tail delay {:.2} s >= bound {bound_s} s", s.tail_delay_s),
            );
        }
    }
    let worst = shards.iter().map(|s| s.tail_delay_s).fold(0.0f64, f64::max);
    InvariantResult::pass(
        "bounded_delay",
        format!("worst tail delay {worst:.2} s < bound {bound_s} s"),
    )
}

/// Invariant: nominal paper-tuned cells never enter an anomalous health
/// state. Anomaly entries are exactly what arms the flight recorder, so
/// this is also the "no spurious flight bundles on nominal runs" check.
pub fn check_no_spurious_anomalies(shards: &[ShardRunStats]) -> InvariantResult {
    for (i, s) in shards.iter().enumerate() {
        if s.anomalies > 0 {
            return InvariantResult::fail(
                "no_spurious_anomalies",
                format!(
                    "shard {i}: {} anomaly entr{} on a nominal run (would have written \
                     flight bundles)",
                    s.anomalies,
                    if s.anomalies == 1 { "y" } else { "ies" }
                ),
            );
        }
    }
    InvariantResult::pass("no_spurious_anomalies", "no anomalous state entered".into())
}

/// Invariant: the latency truth plane's sampled decomposition is exact
/// in virtual time — every sampled sojourn closed with matching
/// `ring_wait` and `execute` samples, and the sums obey
/// `Σ sojourn == Σ ring_wait + Σ execute` to the nanosecond.
pub fn check_span_conservation(shards: &[ShardRunStats]) -> InvariantResult {
    let mut samples = 0u64;
    for (i, s) in shards.iter().enumerate() {
        if !s.span_counts_equal {
            return InvariantResult::fail(
                "span_conservation",
                format!("shard {i}: per-stage sample counts disagree with the sojourn count"),
            );
        }
        if s.span_sojourn_ns != s.span_stage_ns {
            return InvariantResult::fail(
                "span_conservation",
                format!(
                    "shard {i}: Σ sojourn {} ns != Σ ring_wait + execute {} ns \
                     over {} sample(s)",
                    s.span_sojourn_ns, s.span_stage_ns, s.span_samples
                ),
            );
        }
        samples += s.span_samples;
    }
    InvariantResult::pass(
        "span_conservation",
        format!("{samples} sampled sojourn(s) decompose exactly into stage times"),
    )
}

/// Invariant: the replay re-run reproduced a byte-identical digest.
pub fn check_replay(digest: u64, replay_digest: u64) -> InvariantResult {
    if digest == replay_digest {
        InvariantResult::pass("replay", format!("digest {digest:#018x} reproduced"))
    } else {
        InvariantResult::fail(
            "replay",
            format!("digest {digest:#018x} != replay digest {replay_digest:#018x}"),
        )
    }
}

/// A canonical digest over every counter and diagnostic of a cell's
/// shard runs (f64s by bit pattern — byte-identical means bit-identical).
pub fn digest_shards(shards: &[ShardRunStats]) -> u64 {
    let mut buf = String::new();
    for s in shards {
        buf.push_str(&format!(
            "o{}e{}n{}c{}q{}r{}t{:016x}v{:016x}p{}f{}a{}h{:016x}s{}y{}g{};",
            s.offered,
            s.dropped_entry,
            s.dropped_network,
            s.completed,
            s.outstanding,
            s.residual,
            s.tail_delay_s.to_bits(),
            s.violation_s.to_bits(),
            s.periods,
            s.faulted_periods,
            s.anomalies,
            s.healthy_fraction.to_bits(),
            s.span_samples,
            s.span_sojourn_ns,
            s.span_stage_ns,
        ));
    }
    fnv1a64(buf.as_bytes())
}

fn topology(key: &str) -> QueryNetwork {
    match key {
        "ident" => identification_network(),
        "chain8" => uniform_chain(8, micros(4000)),
        "monitoring" => monitoring_network(),
        other => panic!("unknown topology '{other}'"),
    }
}

/// Mean true delay (s) over the final `n` periods.
///
/// A period's `arrival_mean_delay_ms` is `NaN` until tuples that arrived
/// in it depart, so the last target-delay's worth of periods is `NaN`
/// even on a healthy run — those are skipped. But when **most** of the
/// tail is `NaN`, tuples arriving there never cleared the backlog at
/// all: that is unbounded delay, not missing data, and the tail reports
/// `+∞` so [`check_bounded_delay`] fails.
fn tail_delay_s(report: &RunReport, n: usize) -> f64 {
    let vals: Vec<f64> = report
        .periods
        .iter()
        .rev()
        .take(n)
        .map(|p| p.arrival_mean_delay_ms / 1e3)
        .filter(|d| d.is_finite())
        .collect();
    if vals.len() < n.div_ceil(2) {
        return f64::INFINITY;
    }
    vals.iter().sum::<f64>() / vals.len() as f64
}

/// The fault plan for one campaign fault key. Sensor-blinding faults
/// persist to the end of the run, so the bounded-delay invariant (which
/// averages the final [`TAIL_PERIODS`] periods) measures the supervised
/// loop *during* the fault — a bare loop that admits over capacity the
/// whole time cannot hide behind a post-window recovery. Recoverable
/// fault classes use mid-run windows (30–70 s) so the same invariant
/// also proves the loop re-converges. Compound faults are built with
/// [`FaultPlan::merge`].
pub fn plan_for(fault: &str, seed: u64) -> FaultPlan {
    let plan = FaultPlan::new(seed);
    match fault {
        "stale_q" => plan.with(FaultWindow::new(FaultKind::StaleQueue, 1, DURATION_S)),
        "sensor_dropout" => plan.with(FaultWindow::new(FaultKind::SensorDropout, 1, DURATION_S)),
        "cost_nan" => plan.with(FaultWindow::new(FaultKind::CostNan, 30, 70)),
        "cost_collapse" => {
            plan.with(FaultWindow::new(FaultKind::CostSpike { factor: 0.05 }, 30, 70))
        }
        "actuator_hold" => plan.with(FaultWindow::new(FaultKind::ActuatorIgnore, 30, 70)),
        "actuator_partial" => plan.with(FaultWindow::new(
            FaultKind::ActuatorPartial { applied: 0.5 },
            30,
            70,
        )),
        "jitter" => plan.with(FaultWindow::new(FaultKind::PeriodJitter { factor: 2.0 }, 30, 70)),
        // Compound: a frozen queue sensor while the actuator only half
        // applies commands.
        "stale_partial" => plan.with(FaultWindow::new(FaultKind::StaleQueue, 1, DURATION_S)).merge(
            &FaultPlan::new(seed).with(FaultWindow::new(
                FaultKind::ActuatorPartial { applied: 0.5 },
                30,
                70,
            )),
        ),
        // Compound: a sensor dropout while a flash flood hits the
        // arrivals (the flood itself is injected into the trace).
        "dropout_flood" => plan.with(FaultWindow::new(FaultKind::SensorDropout, 1, DURATION_S)),
        // clean / flash_flood / stall perturb the plant, not the hook.
        _ => plan,
    }
}

/// Runs one shard of a cell and collects its counters + post-hoc
/// diagnostics. Pure virtual time; byte-deterministic in `seed`.
fn run_shard(spec: &CellSpec, seed: u64, sabotage: bool) -> ShardRunStats {
    let loop_cfg = match spec.control {
        "netshed" => LoopConfig::paper_default().with_shed_mode(ShedMode::Network),
        _ => LoopConfig::paper_default(),
    };
    let net = topology(spec.topo);
    let cost_us = net.expected_cost_per_tuple_us();
    let rate = OVERLOAD * IDENTIFICATION_HEADROOM / cost_us * 1e6;

    // Batched-ingress coverage: a quarter of shards keep the historical
    // per-arrival admission path, the rest exercise the batched pass at
    // the real front door's sub-batch sizes. Derived from the shard seed,
    // so the choice is a pure function of (campaign seed, cell key,
    // shard) and the campaign stays byte-deterministic across `--jobs`.
    let ingress_batch = [1usize, 64, 256, 1024][((seed >> 8) % 4) as usize];
    let mut sim_cfg = SimConfig::paper_default()
        .with_period(loop_cfg.period())
        .with_target_delay(loop_cfg.target_delay())
        .with_seed(seed)
        .with_ingress_batch(ingress_batch);
    if spec.fault == "stall" {
        // An operator stalls (6× cost) for 20 s mid-run.
        sim_cfg = sim_cfg.with_cost_schedule(stall_schedule(&[(50.0, 70.0, 6.0)]));
    } else if let Some(trace) = spec.workload.cost_profile(cost_us / 1e3, seed) {
        let points = trace
            .multiplier_points(DURATION_S as f64)
            .into_iter()
            .map(|(t, m)| (SimTime((t * 1e6) as u64), m))
            .collect();
        sim_cfg = sim_cfg.with_cost_schedule(CostSchedule::from_points(points));
    }

    let times = spec.workload.arrival_times(rate, DURATION_S as f64, seed);
    let mut arrivals: Vec<SimTime> = to_micros(&times).into_iter().map(SimTime).collect();
    if matches!(spec.fault, "flash_flood" | "dropout_flood") {
        // +rate tuples/s on top of the base overload for 10 s.
        inject_flash_flood(&mut arrivals, 40.0, 50.0, (rate * 10.0).round() as u64, seed);
    }

    let plan = plan_for(spec.fault, seed);
    let recorder = SharedRecorder::with_capacity(DURATION_S as usize + 8);
    // Latency truth plane: sampled sojourns must decompose exactly into
    // ring_wait + execute in virtual time (the span_conservation
    // invariant). Sampling is a pure function of the admission count,
    // so this keeps the cell byte-deterministic.
    let spans = streamshed_engine::spans::SpanRegistry::new();
    let sim = Simulator::new(net, sim_cfg).with_telemetry(recorder.clone()).with_spans(
        spans.handle("sim"),
        streamshed_engine::spans::DEFAULT_SAMPLE_EVERY,
    );
    // Sabotage mode (used by the harness's own self-test and the CI
    // regression drill): silently run the *bare* loop where the cell
    // says paper tuning — the bounded-delay invariant must catch it.
    let supervised = spec.supervised() && !(sabotage && spec.control == "paper");
    let report = if supervised {
        match spec.control {
            "adaptive" => {
                let strategy =
                    Supervisor::from_loop(AdaptiveCtrlStrategy::from_config(&loop_cfg), &loop_cfg);
                let mut hook =
                    TracingHook::shared(FaultyHook::new(strategy, plan), recorder.clone());
                sim.run(&arrivals, &mut hook, secs(DURATION_S))
            }
            "comparator" => {
                let strategy =
                    Supervisor::from_loop(ComparatorStrategy::from_config(&loop_cfg), &loop_cfg);
                let mut hook =
                    TracingHook::shared(FaultyHook::new(strategy, plan), recorder.clone());
                sim.run(&arrivals, &mut hook, secs(DURATION_S))
            }
            _ => {
                let strategy =
                    Supervisor::from_loop(CtrlStrategy::from_config(&loop_cfg), &loop_cfg);
                let mut hook =
                    TracingHook::shared(FaultyHook::new(strategy, plan), recorder.clone());
                sim.run(&arrivals, &mut hook, secs(DURATION_S))
            }
        }
    } else {
        let mut hook =
            TracingHook::shared(FaultyHook::new(CtrlStrategy::from_config(&loop_cfg), plan), recorder.clone());
        sim.run(&arrivals, &mut hook, secs(DURATION_S))
    };

    // Post-hoc diagnostics: feed the recorded trace through a fresh
    // classifier. The campaign's breadth (every workload family at 1.6×
    // overload, including heavy-tailed Pareto bursts and the 2×
    // cost-trace peak) needs a far less twitchy tuning than the live
    // monitor: a well-regulated stochastic loop crosses its target
    // every few periods, moves α with every burst, and can sit above
    // the band for tens of periods while it tracks a cost ramp — all
    // with a bounded tail. The gates here only classify excursions a
    // genuinely broken loop produces: near-every-period large flips
    // (6+ in the 16-period window, |e| > 0.6·target on both sides,
    // α reversals ≥ 0.6), a 24-period out-of-band streak, or a
    // 10-period full-shed pin (a cost spike legitimately pins α for a
    // few periods while the backlog flushes). The sabotage drill stays
    // caught regardless — a bare loop at 1.6× overload diverges for
    // the whole run, far past any of these.
    let mut diag_cfg =
        DiagnosticsConfig::for_target(Duration::from_micros(loop_cfg.target_delay().as_micros()));
    diag_cfg.error_band_frac = 0.75;
    diag_cfg.osc_min_flips = 6;
    diag_cfg.osc_min_error_frac = 0.6;
    diag_cfg.alpha_swing = 0.6;
    diag_cfg.grace_periods = 24;
    diag_cfg.saturation_periods = 10;
    let mut health = ControllerHealth::new(diag_cfg);
    for t in &recorder.snapshot() {
        let _ = health.observe(t);
    }
    let snap = health.snapshot();

    let prof = spans.snapshot();
    let ring = &prof.stages[streamshed_engine::spans::Stage::RingWait.index()];
    let exec = &prof.stages[streamshed_engine::spans::Stage::Execute.index()];

    ShardRunStats {
        offered: report.offered,
        dropped_entry: report.dropped_entry,
        dropped_network: report.dropped_network,
        completed: report.completed,
        outstanding: report.outstanding_at_end(),
        residual: report.conservation_residual(),
        tail_delay_s: tail_delay_s(&report, TAIL_PERIODS),
        violation_s: report.accumulated_violation_ms / 1e3,
        periods: snap.periods,
        faulted_periods: snap.faulted_periods,
        anomalies: snap.anomalies,
        healthy_fraction: snap.healthy_fraction(),
        span_samples: prof.sojourn.count(),
        span_sojourn_ns: prof.sojourn.sum(),
        span_stage_ns: ring.sum() + exec.sum(),
        span_counts_equal: ring.count() == prof.sojourn.count()
            && exec.count() == prof.sojourn.count(),
    }
}

/// Runs every shard of one cell.
pub fn run_cell(spec: &CellSpec, campaign_seed: u64, sabotage: bool) -> Vec<ShardRunStats> {
    let cs = cell_seed(campaign_seed, &spec.key());
    (0..spec.shards).map(|i| run_shard(spec, shard_seed(cs, i), sabotage)).collect()
}

/// Evaluates the invariant library against one completed cell.
pub fn evaluate_cell(
    spec: &CellSpec,
    shards: &[ShardRunStats],
    replay_digest: Option<u64>,
) -> Vec<InvariantResult> {
    let mut out = vec![
        check_conservation(shards),
        check_fault_consistency(spec.fault, shards),
        check_span_conservation(shards),
    ];
    if spec.supervised() {
        out.push(check_bounded_delay(shards, TAIL_BOUND_S));
    }
    if spec.fault == "clean" && spec.control == "paper" {
        out.push(check_no_spurious_anomalies(shards));
    }
    if let Some(rd) = replay_digest {
        out.push(check_replay(digest_shards(shards), rd));
    }
    out
}

/// Everything one cell produced, as serialised into `CAMPAIGN.json`.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell key.
    pub key: String,
    /// The derived per-cell seed (the "first failing seed" of the
    /// failure table).
    pub seed: u64,
    /// `pass`, `fail`, `panicked` or `timed_out`.
    pub status: String,
    /// Names of failed invariants (empty on pass).
    pub failed: Vec<String>,
    /// The full invariant verdicts.
    pub invariants: Vec<InvariantResult>,
    /// Canonical counter digest (hex), for byte-identical replay checks.
    pub digest: String,
    /// One-line command that replays exactly this cell.
    pub replay: String,
    /// One-line deep-telemetry replay of the cell's fault scenario, when
    /// the fault is part of the canonical trace catalogue.
    pub trace_replay: Option<String>,
    /// Per-shard counters and diagnostics.
    pub shards: Vec<ShardRunStats>,
}

impl ToJson for CellOutcome {
    fn to_json(&self) -> Value {
        json!({
            "key": self.key,
            // u64 seeds exceed f64's exact-integer range, so serialise
            // as a decimal string.
            "seed": self.seed.to_string(),
            "status": self.status,
            "failed": self.failed,
            "invariants": self.invariants,
            "digest": self.digest,
            "replay": self.replay,
            "trace_replay": self.trace_replay,
            "shards": self.shards,
        })
    }
}

/// The serialised result of a whole campaign (written to
/// `CAMPAIGN.json`; contains no timestamps or host state, so two runs
/// with the same seed are byte-identical).
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Schema version.
    pub version: u32,
    /// Lane (`sanity` / `stress` / `full` / `filter`).
    pub lane: String,
    /// Campaign seed.
    pub seed: u64,
    /// Simulated seconds per cell.
    pub duration_s: u64,
    /// Cells run.
    pub cells: usize,
    /// Cells with every invariant green.
    pub passed: usize,
    /// Cells with a failed invariant, panic, or timeout.
    pub failed: usize,
    /// Per-cell outcomes, in selection order.
    pub results: Vec<CellOutcome>,
}

impl ToJson for CampaignResult {
    fn to_json(&self) -> Value {
        json!({
            "version": self.version,
            "lane": self.lane,
            "seed": self.seed.to_string(),
            "duration_s": self.duration_s,
            "cells": self.cells,
            "passed": self.passed,
            "failed": self.failed,
            "all_green": self.all_green(),
            "results": self.results,
        })
    }
}

impl CampaignResult {
    /// Whether every cell passed.
    pub fn all_green(&self) -> bool {
        self.failed == 0
    }

    /// Pretty-printed JSON (the `CAMPAIGN.json` payload).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("campaign result serialises")
    }

    /// The concise failure table (empty string when all green): one row
    /// per failing cell with its first-failing seed and replay command.
    pub fn render_failures(&self) -> String {
        if self.all_green() {
            return String::new();
        }
        let mut out = String::from(
            "FAILING CELLS\n\
             key | first-failing seed | failed invariants | replay\n",
        );
        for r in self.results.iter().filter(|r| r.status != "pass") {
            let what = if r.failed.is_empty() { r.status.clone() } else { r.failed.join(",") };
            out.push_str(&format!("{} | {} | {} | {}\n", r.key, r.seed, what, r.replay));
            if let Some(tr) = &r.trace_replay {
                out.push_str(&format!("    deep trace: {tr}\n"));
            }
            for inv in r.invariants.iter().filter(|i| !i.passed) {
                out.push_str(&format!("    {}: {}\n", inv.name, inv.detail));
            }
        }
        out
    }

    /// One-line verdict for stdout.
    pub fn render_summary(&self) -> String {
        format!(
            "campaign '{}' seed {}: {}/{} cells green{}",
            self.lane,
            self.seed,
            self.passed,
            self.cells,
            if self.all_green() { "" } else { " — FAILURES BELOW" }
        )
    }
}

/// Runs a campaign over `cells` across `jobs` workers, with per-cell
/// timeout + panic isolation, and evaluates every invariant. The
/// `sabotage` flag is the harness's own regression drill (see
/// [`run_cell`]).
pub fn run_campaign(
    lane: &str,
    cells: Vec<CellSpec>,
    seed: u64,
    jobs: usize,
    sabotage: bool,
) -> CampaignResult {
    let n = cells.len();
    let specs = std::sync::Arc::new(cells);
    let task_specs = std::sync::Arc::clone(&specs);
    let outcomes = parallel::run_isolated(n, jobs, CELL_TIMEOUT, move |i| {
        let spec = &task_specs[i];
        let shards = run_cell(spec, seed, sabotage);
        // A deterministic subset re-runs immediately: byte-identical
        // replay is an invariant, not a hope.
        let replay_digest =
            (i % REPLAY_EVERY == 0).then(|| digest_shards(&run_cell(spec, seed, sabotage)));
        (shards, replay_digest)
    });

    let mut results = Vec::with_capacity(n);
    let (mut passed, mut failed) = (0usize, 0usize);
    for (i, outcome) in outcomes.into_iter().enumerate() {
        let spec = &specs[i];
        let key = spec.key();
        let cs = cell_seed(seed, &key);
        let replay = format!("reproduce campaign --filter '{key}' --seed {seed}");
        let trace_replay = (crate::faults::SCENARIOS.contains(&spec.fault)
            && spec.topo == "ident")
            .then(|| format!("reproduce trace --scenario {} --seed {cs}", spec.fault));
        let cell = match outcome {
            TaskOutcome::Done((shards, replay_digest)) => {
                let invariants = evaluate_cell(spec, &shards, replay_digest);
                let failed_names: Vec<String> = invariants
                    .iter()
                    .filter(|i| !i.passed)
                    .map(|i| i.name.clone())
                    .collect();
                let status = if failed_names.is_empty() { "pass" } else { "fail" };
                CellOutcome {
                    key,
                    seed: cs,
                    status: status.into(),
                    failed: failed_names,
                    invariants,
                    digest: format!("{:#018x}", digest_shards(&shards)),
                    replay,
                    trace_replay,
                    shards,
                }
            }
            TaskOutcome::Panicked(msg) => CellOutcome {
                key,
                seed: cs,
                status: "panicked".into(),
                failed: vec!["panic".into()],
                invariants: vec![InvariantResult::fail("panic", msg)],
                digest: String::new(),
                replay,
                trace_replay,
                shards: Vec::new(),
            },
            TaskOutcome::TimedOut => CellOutcome {
                key,
                seed: cs,
                status: "timed_out".into(),
                failed: vec!["timeout".into()],
                invariants: vec![InvariantResult::fail(
                    "timeout",
                    format!("cell exceeded {CELL_TIMEOUT:?}"),
                )],
                digest: String::new(),
                replay,
                trace_replay,
                shards: Vec::new(),
            },
        };
        if cell.status == "pass" {
            passed += 1;
        } else {
            failed += 1;
        }
        results.push(cell);
    }

    CampaignResult {
        version: 1,
        lane: lane.to_string(),
        seed,
        duration_s: DURATION_S,
        cells: n,
        passed,
        failed,
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced_stats(hook_fault: bool) -> ShardRunStats {
        ShardRunStats {
            offered: 1000,
            dropped_entry: 300,
            dropped_network: 100,
            completed: 550,
            outstanding: 50,
            residual: 0,
            tail_delay_s: 1.8,
            violation_s: 12.0,
            periods: 120,
            faulted_periods: if hook_fault { 40 } else { 0 },
            anomalies: 0,
            healthy_fraction: 0.8,
            span_samples: 10,
            span_sojourn_ns: 5_000_000,
            span_stage_ns: 5_000_000,
            span_counts_equal: true,
        }
    }

    #[test]
    fn grid_keys_are_unique_and_sized() {
        let grid = full_grid();
        assert_eq!(
            grid.len(),
            WorkloadKind::ALL.len() * FAULTS.len() * TOPOLOGIES.len() * SHARD_COUNTS.len()
                * CONTROLS.len()
        );
        let mut keys: Vec<String> = grid.iter().map(|c| c.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), grid.len(), "cell keys collide");
    }

    #[test]
    fn campaign_faults_extend_the_trace_catalogue() {
        for s in crate::faults::SCENARIOS {
            assert!(FAULTS.contains(s), "campaign grid lost fault '{s}'");
        }
        assert!(FAULTS.contains(&"stale_partial") && FAULTS.contains(&"dropout_flood"));
        // Compounds really carry both fault classes.
        let plan = plan_for("stale_partial", 3);
        assert_eq!(plan.windows().len(), 2);
    }

    #[test]
    fn sanity_corpus_is_a_valid_subset_of_the_grid() {
        let corpus = sanity_corpus();
        assert!(corpus.len() >= 60, "sanity lane must gate on ≥60 cells, has {}", corpus.len());
        let grid_keys: std::collections::HashSet<String> =
            full_grid().iter().map(|c| c.key()).collect();
        let mut seen = std::collections::HashSet::new();
        for c in &corpus {
            let k = c.key();
            assert!(grid_keys.contains(&k), "sanity cell {k} not in the full grid");
            assert!(seen.insert(k.clone()), "duplicate sanity cell {k}");
        }
    }

    #[test]
    fn stress_corpus_is_seed_deterministic_but_seed_sensitive() {
        let a = stress_corpus(1);
        let b = stress_corpus(1);
        let c = stress_corpus(2);
        assert_eq!(a, b);
        assert_eq!(a.len(), STRESS_CELLS);
        assert_ne!(a, c, "different epochs must rotate the sample");
    }

    #[test]
    fn cell_seeds_depend_on_key_not_position() {
        let s1 = cell_seed(7, "web+stale_q+ident+4shard+paper");
        let s2 = cell_seed(7, "web+stale_q+ident+4shard+paper");
        let s3 = cell_seed(7, "web+stale_q+ident+2shard+paper");
        let s4 = cell_seed(8, "web+stale_q+ident+4shard+paper");
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        assert_ne!(s1, s4);
    }

    #[test]
    fn glob_filter_selects_by_key() {
        assert!(glob_match("web*stale_q*4shard*", "web+stale_q+ident+4shard+paper"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("web+stale_q+ident+4shard+paper", "web+stale_q+ident+4shard+paper"));
        assert!(!glob_match("web*chain8*", "web+stale_q+ident+4shard+paper"));
        assert!(!glob_match("poisson*", "web+clean+ident+1shard+paper"));
        assert!(!glob_match("*netshed", "web+clean+ident+1shard+paper"));
        let hits = select_cells("sanity", 7, Some("poisson+clean+*+1shard+paper"));
        assert_eq!(hits.len(), TOPOLOGIES.len());
        assert!(hits.iter().all(|c| c.fault == "clean" && c.shards == 1));
    }

    // ---- invariant-checker self-tests (seeded corruption drills) ----
    //
    // Each drill starts from a consistent synthetic run, applies a
    // seeded corruption of the class the checker owns, and asserts the
    // checker *fails*. A checker that cannot see its own violation is a
    // silent hole in the campaign.

    #[test]
    fn prop_conservation_checker_catches_any_dropped_counter_increment() {
        let mut s = 0xDEAD_BEEFu64;
        for _ in 0..64 {
            s = splitmix64(s);
            let mut stats = balanced_stats(false);
            assert!(check_conservation(&[stats.clone()]).passed);
            // Drop 1..=16 increments from one of the four outflow
            // counters (or inflate the inflow).
            let delta = (s >> 8) % 16 + 1;
            match s % 5 {
                0 => stats.completed -= delta,
                1 => stats.dropped_entry -= delta,
                2 => stats.dropped_network -= delta,
                3 => stats.outstanding -= delta,
                _ => stats.offered += delta,
            }
            stats.residual = stats.offered as i64
                - (stats.dropped_entry + stats.dropped_network + stats.completed
                    + stats.outstanding) as i64;
            let verdict = check_conservation(&[balanced_stats(false), stats]);
            assert!(!verdict.passed, "dropped increment survived: {verdict:?}");
            assert!(verdict.detail.contains("shard 1"));
        }
    }

    #[test]
    fn prop_fault_consistency_checker_catches_flipped_verdicts() {
        let mut s = 0xFACE_FEEDu64;
        for _ in 0..32 {
            s = splitmix64(s);
            // Flip direction 1: the injector ran but the diagnostics
            // claim no fault ever fired.
            let mut faulted = balanced_stats(true);
            assert!(check_fault_consistency("stale_q", &[faulted.clone()]).passed);
            faulted.faulted_periods = 0;
            assert!(!check_fault_consistency("stale_q", &[faulted]).passed);
            // Flip direction 2: a clean run that claims fault flags.
            let mut clean = balanced_stats(false);
            assert!(check_fault_consistency("clean", &[clean.clone()]).passed);
            clean.faulted_periods = s % 120 + 1;
            assert!(!check_fault_consistency("clean", &[clean]).passed);
        }
    }

    #[test]
    fn prop_span_conservation_checker_catches_any_leaked_nanosecond() {
        let mut s = 0xC0FF_EE00u64;
        for _ in 0..64 {
            s = splitmix64(s);
            let mut stats = balanced_stats(false);
            assert!(check_span_conservation(&[stats.clone()]).passed);
            // Leak 1..=1024 ns out of either side of the identity, or
            // desynchronise the per-stage sample counts.
            let delta = s % 1024 + 1;
            match s % 3 {
                0 => stats.span_sojourn_ns += delta,
                1 => stats.span_stage_ns += delta,
                _ => stats.span_counts_equal = false,
            }
            let verdict = check_span_conservation(&[balanced_stats(false), stats]);
            assert!(!verdict.passed, "leaked stage time survived: {verdict:?}");
            assert!(verdict.detail.contains("shard 1"));
        }
    }

    #[test]
    fn prop_bounded_delay_checker_catches_unbounded_tails() {
        let mut s = 0xBAD_C0DEu64;
        for _ in 0..32 {
            s = splitmix64(s);
            let mut stats = balanced_stats(false);
            assert!(check_bounded_delay(&[stats.clone()], TAIL_BOUND_S).passed);
            // Unbind the delay series: push the tail at or past the
            // bound (including the NaN pathology — NaN must fail, not
            // slip through a `<` comparison).
            stats.tail_delay_s = if s % 7 == 0 {
                f64::NAN
            } else {
                TAIL_BOUND_S + (s % 1000) as f64 / 10.0
            };
            let verdict = check_bounded_delay(&[balanced_stats(false), stats], TAIL_BOUND_S);
            assert!(!verdict.passed, "unbounded tail survived: {verdict:?}");
        }
    }

    #[test]
    fn prop_spurious_anomaly_checker_catches_planted_anomalies() {
        let mut s = 0x50_0B0Du64;
        for _ in 0..32 {
            s = splitmix64(s);
            let mut stats = balanced_stats(false);
            assert!(check_no_spurious_anomalies(&[stats.clone()]).passed);
            stats.anomalies = s % 9 + 1;
            assert!(!check_no_spurious_anomalies(&[stats]).passed);
        }
    }

    #[test]
    fn prop_replay_digest_is_sensitive_to_every_field() {
        let base = vec![balanced_stats(true)];
        let d0 = digest_shards(&base);
        assert_eq!(d0, digest_shards(&base.clone()), "digest not deterministic");
        let mut variants = Vec::new();
        for i in 0..12 {
            let mut v = balanced_stats(true);
            match i {
                0 => v.offered += 1,
                1 => v.dropped_entry += 1,
                2 => v.dropped_network += 1,
                3 => v.completed += 1,
                4 => v.outstanding += 1,
                5 => v.residual += 1,
                6 => v.tail_delay_s += 0.25,
                7 => v.violation_s += 0.25,
                8 => v.periods += 1,
                9 => v.faulted_periods += 1,
                10 => v.anomalies += 1,
                _ => v.healthy_fraction += 0.01,
            }
            let d = digest_shards(&[v]);
            assert_ne!(d, d0, "field {i} invisible to the digest");
            assert!(!check_replay(d0, d).passed);
            variants.push(d);
        }
        assert!(check_replay(d0, d0).passed);
    }

    // ---- end-to-end cells (kept small: two single-shard cells) ----

    #[test]
    fn nominal_cell_passes_every_invariant_deterministically() {
        let spec = CellSpec {
            workload: WorkloadKind::Poisson,
            fault: "clean",
            topo: "ident",
            shards: 1,
            control: "paper",
        };
        let a = run_cell(&spec, 7, false);
        let b = run_cell(&spec, 7, false);
        assert_eq!(digest_shards(&a), digest_shards(&b), "cell not byte-deterministic");
        let invariants = evaluate_cell(&spec, &a, Some(digest_shards(&b)));
        for inv in &invariants {
            assert!(inv.passed, "{}: {}", inv.name, inv.detail);
        }
        assert!(invariants.iter().any(|i| i.name == "no_spurious_anomalies"));
        assert!(invariants.iter().any(|i| i.name == "replay"));
    }

    #[test]
    fn faulted_cell_passes_under_supervision() {
        let spec = CellSpec {
            workload: WorkloadKind::Poisson,
            fault: "stale_q",
            topo: "ident",
            shards: 1,
            control: "paper",
        };
        let shards = run_cell(&spec, 7, false);
        for inv in evaluate_cell(&spec, &shards, None) {
            assert!(inv.passed, "{}: {}", inv.name, inv.detail);
        }
        assert!(shards[0].faulted_periods > 0, "stale_q must stamp fault flags");
    }

    /// The acceptance drill: a deliberately injected regression — the
    /// supervisor silently disabled under a sensor-blinding fault — must
    /// be caught by the bounded-delay invariant.
    #[test]
    fn sabotaged_supervisor_is_caught_by_bounded_delay() {
        let spec = CellSpec {
            workload: WorkloadKind::Poisson,
            fault: "stale_q",
            topo: "ident",
            shards: 1,
            control: "paper",
        };
        let shards = run_cell(&spec, 7, true);
        let invariants = evaluate_cell(&spec, &shards, None);
        let bounded = invariants
            .iter()
            .find(|i| i.name == "bounded_delay")
            .expect("bounded_delay applies to paper cells");
        assert!(
            !bounded.passed,
            "sabotage went undetected: tail {:.2} s",
            shards[0].tail_delay_s
        );
    }

    #[test]
    fn campaign_isolates_failures_into_the_table() {
        // A tiny two-cell campaign with sabotage: the clean cell's
        // supervision doesn't matter (clean CTRL converges), but the
        // stale_q cell must land in the failure table with a usable
        // replay line.
        let cells = vec![
            CellSpec {
                workload: WorkloadKind::Poisson,
                fault: "stale_q",
                topo: "ident",
                shards: 1,
                control: "paper",
            },
        ];
        let result = run_campaign("filter", cells, 7, 1, true);
        assert_eq!(result.cells, 1);
        assert!(!result.all_green());
        let table = result.render_failures();
        assert!(table.contains("bounded_delay"), "{table}");
        assert!(
            table.contains("reproduce campaign --filter 'poisson+stale_q+ident+1shard+paper' --seed 7"),
            "{table}"
        );
        assert!(table.contains("reproduce trace --scenario stale_q --seed"), "{table}");
        let json = result.to_json();
        assert!(json.contains("\"status\": \"fail\""), "{json}");
    }
}
