//! # streamshed-experiments
//!
//! The reproduction harness: one module per figure of the paper's
//! evaluation (§4.2 identification and §5). Each module exposes a
//! `run(...) -> FigureResult` that regenerates the figure's data; the
//! `reproduce` binary drives them all, writes CSV files, and prints
//! ASCII renderings plus paper-vs-measured summaries.
//!
//! | module | paper figure |
//! |--------|--------------|
//! | [`fig05`] | step responses of the raw engine |
//! | [`fig06`] | model verification, step inputs, H ∈ {0.95, 0.97, 1.00} |
//! | [`fig07`] | model verification, sinusoidal inputs |
//! | [`fig08`] | open-loop failure examples 1–3 (analytic) |
//! | [`fig12`] | long-term totals: CTRL vs BASELINE vs AURORA |
//! | [`fig13`] | arrival-rate traces (Web-like, Pareto) |
//! | [`fig14`] | time-varying per-tuple cost trace |
//! | [`fig15`] | transient y(k) of the three strategies |
//! | [`fig16`] | AURORA retuned with H = 0.96 |
//! | [`fig17`] | burstiness (bias-factor) sweep |
//! | [`fig18`] | runtime target changes 1 s → 3 s → 5 s |
//! | [`fig19`] | control-period sweep 31.25 ms – 8 s |
//! | [`overhead`] | §5.1 controller computational overhead |
//!
//! Beyond the paper's figures, [`faults`] runs the robustness fault
//! matrix, [`trace`] replays one of its scenarios with the full
//! telemetry stack engaged (`reproduce trace --scenario <key>`), and
//! [`sharded`] demonstrates delay convergence on the wall-clock sharded
//! data plane (`reproduce sharded`; excluded from `all` because it is
//! wall-clock rather than virtual-time), and [`monitor`] exercises the
//! live observability plane — the sharded engine under injected
//! oscillation/saturation faults while the experiment polls the
//! engine's own `/metrics`, `/health` and `/trace` endpoints
//! (`reproduce monitor`; wall-clock, likewise excluded from `all`).
//! [`campaign`] is the deterministic scenario-campaign harness: seeded
//! grid sweeps over workload × fault × topology × shards × controller
//! with an invariant library and sanity/stress CI lanes
//! (`reproduce campaign --lane sanity`). [`adaptive`] is the
//! self-tuning control experiment: the fixed paper tuning against the
//! gain-scheduled and model-free self-tuners under a doubling cost
//! staircase, classified by the diagnostics plane
//! (`reproduce adaptive`).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod ablations;
pub mod adaptive;
pub mod campaign;
pub mod extensions;
pub mod faults;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod monitor;
pub mod net;
pub mod overhead;
pub mod parallel;
pub mod render;
pub mod runner;
pub mod sharded;
pub mod trace;

pub use render::{render_ascii_chart, render_table};
pub use runner::{
    run_with_strategy, MetricsSummary, StrategyKind, StrategyOutcome,
};

use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::Path;

/// A named data series (x = seconds or a sweep parameter).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points; `NaN` y-values mark gaps.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from points.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            name: name.into(),
            points,
        }
    }

    /// Creates a series from y-values at x = 0, 1, 2, ...
    pub fn from_values(name: impl Into<String>, values: &[f64]) -> Self {
        Self::new(
            name,
            values
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as f64, v))
                .collect(),
        )
    }
}

/// The regenerated data of one paper figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureResult {
    /// Figure identifier, e.g. `"fig12"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Data series.
    pub series: Vec<Series>,
    /// Key scalar outcomes `(name, value)` — the numbers the paper quotes.
    pub summary: Vec<(String, f64)>,
    /// Free-form observations (paper-vs-measured shape checks).
    pub notes: Vec<String>,
}

impl FigureResult {
    /// Serialises every series into one long-format CSV
    /// (`series,x,y` rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for s in &self.series {
            for &(x, y) in &s.points {
                out.push_str(&format!("{},{x},{y}\n", s.name));
            }
        }
        out
    }

    /// Writes the CSV (and a JSON summary) into `dir`.
    pub fn write_into(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut csv = std::fs::File::create(dir.join(format!("{}.csv", self.id)))?;
        csv.write_all(self.to_csv().as_bytes())?;
        let mut json = std::fs::File::create(dir.join(format!("{}.json", self.id)))?;
        let summary = serde_json::json!({
            "id": self.id,
            "title": self.title,
            "summary": self.summary,
            "notes": self.notes,
        });
        json.write_all(serde_json::to_string_pretty(&summary).unwrap().as_bytes())?;
        Ok(())
    }

    /// Renders the figure as an ASCII chart plus its summary lines.
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        out.push_str(&render::render_ascii_chart(
            &self.series,
            &self.x_label,
            &self.y_label,
            72,
            16,
        ));
        if !self.summary.is_empty() {
            out.push('\n');
            for (name, value) in &self.summary {
                out.push_str(&format!("  {name}: {value:.4}\n"));
            }
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_from_values_indexes_x() {
        let s = Series::from_values("a", &[10.0, 20.0]);
        assert_eq!(s.points, vec![(0.0, 10.0), (1.0, 20.0)]);
    }

    #[test]
    fn csv_round_trips_points() {
        let fig = FigureResult {
            id: "figX".into(),
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series::new("s", vec![(0.0, 1.5), (1.0, 2.5)])],
            summary: vec![],
            notes: vec![],
        };
        let csv = fig.to_csv();
        assert!(csv.starts_with("series,x,y\n"));
        assert!(csv.contains("s,0,1.5\n"));
        assert!(csv.contains("s,1,2.5\n"));
    }

    #[test]
    fn write_into_creates_files() {
        let dir = std::env::temp_dir().join("streamshed_figtest");
        let _ = std::fs::remove_dir_all(&dir);
        let fig = FigureResult {
            id: "figY".into(),
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![],
            summary: vec![("metric".into(), 1.0)],
            notes: vec!["shape holds".into()],
        };
        fig.write_into(&dir).unwrap();
        assert!(dir.join("figY.csv").exists());
        assert!(dir.join("figY.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
