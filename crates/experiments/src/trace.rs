//! `reproduce trace`: replays one fault scenario with the full telemetry
//! stack engaged and dumps the structured control-loop trace.
//!
//! The replay wires the same stack the fault matrix ([`crate::faults`])
//! evaluates — supervised CTRL behind a seeded [`FaultyHook`] — but wraps it in
//! a [`TracingHook`] and hands the simulator a [`SharedRecorder`], so
//! every control period produces one [`ControlTrace`] record:
//! engine counters, the controller's internal signals (ŷ, e, u, cost
//! estimate), the supervisor mode, the fault flags that fired, and the
//! hook's wall-clock cost. Exporters turn the ring into JSONL or CSV.
//!
//! Because the trace carries per-period `completed` and `mean_delay_ms`,
//! the run's overall mean delay can be *reconstructed* from the trace
//! alone and checked against the engine's own [`RunReport`] — the
//! self-consistency proof that the telemetry schema loses nothing the
//! evaluation needs (see [`TraceResult::reconstruction_error`]).

use crate::faults;
use streamshed_control::loop_::LoopConfig;
use streamshed_control::strategy::CtrlStrategy;
use streamshed_control::supervisor::Supervisor;
use streamshed_engine::faults::FaultyHook;
use streamshed_engine::metrics::RunReport;
use streamshed_engine::networks::identification_network;
use streamshed_engine::sim::Simulator;
use streamshed_engine::telemetry::{
    export_csv, export_jsonl, fault_flag_names, reconstructed_mean_delay_ms, ControlTrace,
    SharedRecorder, SpanKind, SpanStats, TracingHook,
};
use streamshed_engine::time::secs;

/// Everything one traced replay produces.
#[derive(Debug, Clone)]
pub struct TraceResult {
    /// Scenario key (one of [`faults::SCENARIOS`]).
    pub scenario: String,
    /// Engine RNG / fault-plan seed.
    pub seed: u64,
    /// The engine's independent run report (ground truth for the
    /// reconstruction check).
    pub report: RunReport,
    /// One record per control period, in period order.
    pub traces: Vec<ControlTrace>,
    /// Wall-clock statistics of the control-hook invocations.
    pub hook_spans: SpanStats,
    /// Wall-clock statistics of the in-network shedder invocations.
    pub shedder_spans: SpanStats,
}

impl TraceResult {
    /// The full trace as JSON Lines (one object per period).
    pub fn to_jsonl(&self) -> String {
        export_jsonl(&self.traces)
    }

    /// The full trace as CSV (header + one row per period).
    pub fn to_csv(&self) -> String {
        export_csv(&self.traces)
    }

    /// Mean tuple delay reconstructed purely from the trace records
    /// (completed-weighted mean of the per-period means).
    pub fn reconstructed_mean_delay_ms(&self) -> Option<f64> {
        reconstructed_mean_delay_ms(&self.traces)
    }

    /// Relative error between the trace-reconstructed mean delay and the
    /// engine's own measurement. `None` when either side is undefined
    /// (no completed tuples).
    pub fn reconstruction_error(&self) -> Option<f64> {
        let truth = self.report.delay_stats.mean_ms();
        if truth <= 0.0 || !truth.is_finite() {
            return None;
        }
        self.reconstructed_mean_delay_ms()
            .map(|r| (r - truth).abs() / truth)
    }

    /// A human-readable summary of the replay (printed by the
    /// `reproduce trace` subcommand above the file paths).
    pub fn render_summary(&self) -> String {
        let mut out = format!(
            "== trace — scenario '{}' (seed {}) ==\n",
            self.scenario, self.seed
        );
        out.push_str(&format!(
            "  periods traced: {} | completed: {} | loss ratio: {:.3}\n",
            self.traces.len(),
            self.report.completed,
            self.report.loss_ratio()
        ));
        let mut mode_counts: Vec<(&str, usize)> = Vec::new();
        for t in &self.traces {
            let name = t.mode.as_str();
            match mode_counts.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => mode_counts.push((name, 1)),
            }
        }
        let modes: Vec<String> = mode_counts
            .iter()
            .map(|(n, c)| format!("{n}:{c}"))
            .collect();
        out.push_str(&format!("  loop modes: {}\n", modes.join(" ")));
        let faulted = self.traces.iter().filter(|t| t.fault_flags != 0).count();
        let mut flags = 0u16;
        for t in &self.traces {
            flags |= t.fault_flags;
        }
        out.push_str(&format!(
            "  faulted periods: {faulted} ({})\n",
            if flags == 0 {
                "none".to_string()
            } else {
                fault_flag_names(flags).join("|")
            }
        ));
        out.push_str(&format!(
            "  hook span: n={} mean={:.1}µs max={:.1}µs | shedder span: n={} mean={:.1}µs\n",
            self.hook_spans.count,
            self.hook_spans.mean_ns() / 1e3,
            self.hook_spans.max_ns as f64 / 1e3,
            self.shedder_spans.count,
            self.shedder_spans.mean_ns() / 1e3,
        ));
        match (self.reconstructed_mean_delay_ms(), self.reconstruction_error()) {
            (Some(rec), Some(err)) => out.push_str(&format!(
                "  mean delay: engine {:.1} ms, reconstructed from trace {:.1} ms \
                 (error {:.3}%)\n",
                self.report.delay_stats.mean_ms(),
                rec,
                err * 100.0
            )),
            _ => out.push_str("  mean delay: undefined (no completed tuples)\n"),
        }
        out
    }
}

/// Replays `scenario` (a [`faults::SCENARIOS`] key) for 200 s with full
/// telemetry and returns the trace plus the engine report.
///
/// # Panics
///
/// Panics when `scenario` is not a known key.
pub fn run(scenario: &str, seed: u64) -> TraceResult {
    assert!(
        faults::SCENARIOS.contains(&scenario),
        "unknown scenario '{scenario}'; known: {}",
        faults::SCENARIOS.join(", ")
    );
    let loop_cfg = LoopConfig::paper_default();
    let sim_cfg = faults::scenario_sim_config(scenario, seed);
    let arrivals = faults::scenario_arrivals(scenario, seed);
    let plan = faults::plan_for(scenario, seed);

    // Size the ring to hold every period of the run — the replay is the
    // one place where the full history matters more than boundedness.
    let periods =
        (faults::DURATION_S as f64 / loop_cfg.period().as_secs_f64()).ceil() as usize + 8;
    let recorder = SharedRecorder::with_capacity(periods);

    let strategy = Supervisor::from_loop(CtrlStrategy::from_config(&loop_cfg), &loop_cfg);
    let mut hook = TracingHook::shared(FaultyHook::new(strategy, plan), recorder.clone());
    let sim =
        Simulator::new(identification_network(), sim_cfg).with_telemetry(recorder.clone());
    let report = sim.run(&arrivals, &mut hook, secs(faults::DURATION_S));

    TraceResult {
        scenario: scenario.to_string(),
        seed,
        report,
        traces: recorder.snapshot(),
        hook_spans: recorder.span_stats(SpanKind::Hook),
        shedder_spans: recorder.span_stats(SpanKind::Shedder),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamshed_engine::telemetry::LoopMode;

    #[test]
    fn clean_trace_reconstructs_mean_delay_within_one_percent() {
        let tr = run("clean", 7);
        assert_eq!(tr.traces.len(), faults::DURATION_S as usize);
        let err = tr.reconstruction_error().expect("delay defined");
        assert!(
            err < 0.01,
            "reconstruction error {:.4}% (engine {:.2} ms, trace {:.2} ms)",
            err * 100.0,
            tr.report.delay_stats.mean_ms(),
            tr.reconstructed_mean_delay_ms().unwrap()
        );
    }

    #[test]
    fn stale_q_trace_shows_flags_and_fallback() {
        let tr = run("stale_q", 7);
        assert!(
            tr.traces.iter().any(|t| t.fault_flags != 0),
            "fault windows must stamp flags"
        );
        assert!(
            tr.traces.iter().any(|t| t.mode == LoopMode::Fallback),
            "supervisor must fall back under a frozen queue sensor"
        );
        // The trace still reconstructs the run's delay: corrupted
        // *snapshots to the inner loop* never corrupt the telemetry,
        // which taps the clean engine snapshot.
        let err = tr.reconstruction_error().expect("delay defined");
        assert!(err < 0.01, "reconstruction error {:.4}%", err * 100.0);
    }

    #[test]
    fn exports_and_summary_are_well_formed() {
        let tr = run("sensor_dropout", 3);
        let jsonl = tr.to_jsonl();
        assert_eq!(jsonl.lines().count(), tr.traces.len());
        assert!(jsonl.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        let csv = tr.to_csv();
        assert_eq!(csv.lines().count(), tr.traces.len() + 1);
        let summary = tr.render_summary();
        assert!(summary.contains("sensor_dropout"));
        assert!(summary.contains("mean delay"));
        // Dropout windows blank the sensor; the flag must appear.
        assert!(summary.contains("sensor_dropout"), "{summary}");
        assert!(tr.hook_spans.count as usize >= tr.traces.len());
    }

    #[test]
    #[should_panic(expected = "unknown scenario")]
    fn unknown_scenario_panics() {
        let _ = run("nope", 1);
    }
}
