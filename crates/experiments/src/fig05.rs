//! Figure 5: raw-engine responses to step inputs.
//!
//! The paper feeds the 14-operator identification network with rates
//! {150, 190, 200, 300} tuples/s (jumping from a low rate at t = 10 s)
//! and observes: (A) the input traces, (B) delays — flat below the
//! ~190 t/s knee, ramping above it, and (C) Δy converging to a constant,
//! evidencing the integrator model.

use crate::{FigureResult, Series};
use streamshed_engine::networks::identification_network;
use streamshed_engine::sim::SimConfig;
use streamshed_sysid::run_identification;
use streamshed_workload::StepTrace;

/// Step rates used by the paper.
pub const RATES: [f64; 4] = [150.0, 190.0, 200.0, 300.0];

/// Runs the Fig. 5 experiment: 50 s observation per rate.
pub fn run() -> FigureResult {
    let observe_s = 50;
    let mut series = Vec::new();
    let mut summary = Vec::new();
    let mut notes = Vec::new();

    for &rate in &RATES {
        let trace = StepTrace::paper_step(rate);
        let run = run_identification(
            identification_network(),
            &trace,
            observe_s,
            200,
            SimConfig::paper_default(),
        );
        let ys: Vec<(f64, f64)> = run
            .periods
            .iter()
            .map(|p| (p.k as f64, p.y_real_ms))
            .collect();
        series.push(Series::new(format!("y(fin={rate})"), ys));
        let dys: Vec<(f64, f64)> = run
            .delta_y_ms()
            .iter()
            .enumerate()
            .map(|(k, &d)| (k as f64, d))
            .collect();
        series.push(Series::new(format!("dy(fin={rate})"), dys.clone()));

        // Tail statistics for the summary.
        let tail: Vec<f64> = run
            .periods
            .iter()
            .skip(30)
            .map(|p| p.y_real_ms)
            .filter(|y| y.is_finite())
            .collect();
        let tail_mean = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
        summary.push((format!("mean_delay_ms_tail(fin={rate})"), tail_mean));
        let dy_tail: Vec<f64> = dys[30..]
            .iter()
            .map(|&(_, d)| d)
            .filter(|d| d.is_finite())
            .collect();
        let dy_mean = dy_tail.iter().sum::<f64>() / dy_tail.len().max(1) as f64;
        summary.push((format!("delta_y_ms_tail(fin={rate})"), dy_mean));
    }

    notes.push(
        "paper: delays flat below the 190 t/s knee; linear growth above; \
         Δy converges to a constant (integrator dynamics)"
            .into(),
    );
    FigureResult {
        id: "fig05".into(),
        title: "System responses to step inputs".into(),
        x_label: "period k (s)".into(),
        y_label: "avg delay (ms)".into(),
        series,
        summary,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let fig = run();
        let get = |name: &str| {
            fig.summary
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap()
        };
        // Below the knee: flat, small delay.
        assert!(get("mean_delay_ms_tail(fin=150)") < 100.0);
        // Far above the knee: seconds of delay, still growing.
        assert!(get("mean_delay_ms_tail(fin=300)") > 5000.0);
        // Δy converges to ≈ excess/capacity seconds per period:
        // (300−190)/190 ≈ 0.58 s.
        let dy300 = get("delta_y_ms_tail(fin=300)");
        assert!(
            (dy300 - 580.0).abs() < 150.0,
            "Δy(300) = {dy300} ms/period"
        );
        // Near the knee, Δy is near zero.
        assert!(get("delta_y_ms_tail(fin=150)").abs() < 30.0);
    }
}
