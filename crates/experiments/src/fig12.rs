//! Figure 12: long-term relative performance of the three strategies.
//!
//! 400 s runs on the Web-like and Pareto(β = 1) traces with the Fig. 14
//! time-varying cost, `yd = 2 s`, `T = 1 s`. The paper reports every
//! metric as a ratio to CTRL: AURORA accumulates ~205× the delay
//! violations on the Web data (23× for BASELINE) at essentially the same
//! data loss.

use crate::runner::{run_with_strategy, StrategyKind, StrategyOutcome};
use crate::{FigureResult, Series};
use streamshed_control::loop_::LoopConfig;
use streamshed_workload::{ArrivalTrace, CostTrace, ParetoTrace, WebLikeTrace};

/// Run length, seconds (as in the paper).
pub const DURATION_S: u64 = 400;

/// Base per-tuple cost for the Fig. 14 profile, ms (the calibrated
/// network's cost).
pub const BASE_COST_MS: f64 = 5.105;

/// Produces the two arrival traces used by the headline experiments.
pub fn traces(seed: u64) -> Vec<(&'static str, Vec<f64>)> {
    vec![
        (
            "Web",
            WebLikeTrace::paper_default(seed).arrival_times(DURATION_S as f64),
        ),
        (
            "Pareto",
            ParetoTrace::paper_default(seed).arrival_times(DURATION_S as f64),
        ),
    ]
}

/// Runs all three strategies over one trace (shared with Fig. 15/16).
pub fn collect_outcomes(times: &[f64], seed: u64) -> Vec<StrategyOutcome> {
    let cfg = LoopConfig::paper_default();
    let cost = CostTrace::paper_fig14(BASE_COST_MS, seed ^ 0xC057);
    [
        StrategyKind::Ctrl,
        StrategyKind::Baseline,
        StrategyKind::Aurora,
    ]
    .into_iter()
    .map(|kind| run_with_strategy(kind, times, &cfg, DURATION_S, Some(&cost), None, seed))
    .collect()
}

/// Runs the Fig. 12 experiment.
pub fn run(seed: u64) -> FigureResult {
    let mut series = Vec::new();
    let mut summary = Vec::new();
    let metric_names = [
        "accumulated_violations",
        "delayed_tuples",
        "max_overshoot",
        "data_loss",
    ];

    for (trace_name, times) in traces(seed) {
        let outcomes = collect_outcomes(&times, seed);
        let ctrl = outcomes[0].metrics;
        for outcome in &outcomes {
            let rel = outcome.metrics.relative_to(&ctrl);
            series.push(Series::new(
                format!("{}/{}", outcome.name, trace_name),
                rel.iter()
                    .enumerate()
                    .map(|(i, &r)| (i as f64, r))
                    .collect(),
            ));
            for (i, name) in metric_names.iter().enumerate() {
                summary.push((
                    format!("{trace_name}:{}:{name}_vs_ctrl", outcome.name),
                    rel[i],
                ));
            }
            summary.push((
                format!("{trace_name}:{}:loss_ratio", outcome.name),
                outcome.metrics.loss_ratio,
            ));
        }
    }

    FigureResult {
        id: "fig12".into(),
        title: "Relative performance of load-shedding strategies (vs CTRL)".into(),
        x_label: "metric index (0=viol,1=delayed,2=overshoot,3=loss)".into(),
        y_label: "ratio to CTRL".into(),
        series,
        summary,
        notes: vec![
            "paper: AURORA ≈205×, BASELINE ≈23× CTRL's accumulated violations on Web; \
             data loss ≈ equal for all (AURORA ≈0.99×)"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        // One seed is a single realization of a heavy-tailed workload, so
        // average the summary metrics over a small seed set (run in
        // parallel) and assert the paper's qualitative ordering on the
        // means.
        let seeds = [3u64, 7, 11];
        let figs = crate::parallel::run_indexed(seeds.len(), seeds.len(), |i| run(seeds[i]));
        let get = |fig: &FigureResult, name: &str| {
            fig.summary
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .1
        };
        let mean = |name: &str| {
            figs.iter().map(|f| get(f, name)).sum::<f64>() / figs.len() as f64
        };
        for trace in ["Web", "Pareto"] {
            // CTRL is the reference: all its ratios are exactly 1.
            for fig in &figs {
                assert_eq!(
                    get(fig, &format!("{trace}:CTRL:accumulated_violations_vs_ctrl")),
                    1.0
                );
            }
            // AURORA accumulates clearly more violations than CTRL; the
            // gap is moderate on the Web trace and enormous on the
            // Pareto trace (the paper reports ~19× overall).
            let aurora = mean(&format!("{trace}:AURORA:accumulated_violations_vs_ctrl"));
            let bar = if trace == "Pareto" { 5.0 } else { 1.3 };
            assert!(aurora > bar, "{trace}: AURORA mean ratio {aurora} <= {bar}");
            // BASELINE also trails CTRL (or at worst is comparable) and
            // beats AURORA.
            let baseline = mean(&format!("{trace}:BASELINE:accumulated_violations_vs_ctrl"));
            assert!(
                baseline < aurora,
                "{trace}: BASELINE {baseline} must beat AURORA {aurora}"
            );
            // Data loss is in the same ballpark for all strategies (the
            // paper: AURORA ≈ 0.99×; here AURORA under-sheds somewhat on
            // bursty input because it never drains standing backlog).
            let loss = mean(&format!("{trace}:AURORA:data_loss_vs_ctrl"));
            assert!(loss > 0.7 && loss < 1.25, "{trace}: AURORA mean loss ratio {loss}");
        }
    }
}
