//! `reproduce net` — the controller behind a real network front door.
//!
//! Everything the paper proves about the control loop is derived for an
//! in-process plant; this scenario closes the last gap to a deployable
//! system by putting a real TCP hop between the workload and the
//! engine. A seeded client fleet drives the wire protocol at 3× the
//! engine's service capacity over loopback, and the run must show:
//!
//! 1. **Convergence** — the unchanged pole-placement CTRL strategy
//!    converges the measured mean tuple delay to the target even though
//!    arrivals now pass through sockets, frames, and per-connection
//!    buffers (the shed decision still happens before tuple
//!    materialization, so overload never turns into decode work).
//! 2. **Conservation across the boundary** — the fleet's reply-derived
//!    ledger, the listener's counters, and the engine's ground truth
//!    agree exactly: `sent == accepted + shed + rejected + lost`.
//! 3. **Fairness** — entry shedding is per-arrival Bernoulli, so the
//!    accepted fraction must be statistically identical across
//!    connections (Jain index ≈ 1).
//! 4. **Connection capacity** — a separate idle fleet holds thousands
//!    of concurrent connections (sized to the process fd budget; the
//!    cross-process 10k+ demonstration lives in the CI `net-smoke`
//!    lane and README).
//!
//! Wall-clock and therefore not byte-deterministic; excluded from
//! `reproduce all` like `sharded` and `monitor`.

use crate::{FigureResult, Series};
use std::sync::Arc;
use std::time::Duration;
use streamshed_control::loop_::LoopConfig;
use streamshed_control::strategy::CtrlStrategy;
use streamshed_engine::obs::ObsOptions;
use streamshed_engine::shard::{Dispatch, ShardConfig, ShardedEngine};
use streamshed_engine::worker::CostModel;
use streamshed_net::loadgen::{self, Arrivals, LoadgenConfig, Mode};
use streamshed_net::server::{NetConfig, NetObs, NetServer};
use streamshed_net::sys;

/// Nominal per-tuple service cost (≈ 500 t/s capacity at 1 shard).
const COST: Duration = Duration::from_millis(2);
/// Control period of the controller.
const PERIOD: Duration = Duration::from_millis(50);
/// Delay target the controller must converge to, ms.
pub const TARGET_MS: f64 = 250.0;
/// Wall-clock length of the overload phase.
const RUN: Duration = Duration::from_secs(6);
/// Overload factor vs the engine's ~500 t/s capacity.
const OVERLOAD: f64 = 3.0;
/// Client connections in the overload fleet.
const FLEET: usize = 8;
/// Loopback budget for the latency-truth cross-check, ms: the client's
/// reply RTT must exceed the server's frame turnaround (the wire, the
/// client's batch pacing, and both poll loops sit between them) by at
/// most this much at p99. Generous because the open-loop fleet batches
/// 16 frames per flush and both ends run 5 ms-scale poll ticks.
pub const LOOPBACK_BUDGET_MS: f64 = 50.0;

/// Outcome of the 3× overload phase.
#[derive(Debug, Clone)]
pub struct NetRun {
    /// Steady-state mean delay (completed-weighted, second half), ms.
    pub steady_delay_ms: f64,
    /// Mean delay trajectory `(s, ms)`.
    pub trajectory: Vec<(f64, f64)>,
    /// Tuples the fleet put on the wire.
    pub sent: u64,
    /// Tuples the engine dispatched into shard rings.
    pub accepted: u64,
    /// Tuples dropped by the entry shedder (reported per frame).
    pub shed: u64,
    /// Fleet / listener / engine ledgers all balance and agree.
    pub conserved: bool,
    /// Jain fairness index over per-connection accepted ratios.
    pub fairness_jain: f64,
    /// Coefficient of variation of per-connection shed ratios.
    pub shed_ratio_cv: f64,
    /// Server-side p99 frame turnaround (read → reply enqueued), ms.
    pub server_turnaround_p99_ms: f64,
    /// Client-side p99 reply RTT from the fleet's histograms, ms.
    pub client_rtt_p99_ms: f64,
    /// Sampled frames behind the server-side histogram.
    pub server_turnaround_samples: u64,
    /// `client p99 − server p99` within `[0, LOOPBACK_BUDGET_MS]`.
    pub rtt_cross_check: bool,
}

/// Runs the CTRL strategy behind a loopback `NetServer` under a 3×
/// overload fleet. `seed` drives both the entry shedder and the fleet's
/// arrival schedules.
pub fn run_overload(seed: u64) -> NetRun {
    let cfg = ShardConfig {
        shards: 1,
        cost: COST,
        period: PERIOD,
        target_delay: Duration::from_millis(TARGET_MS as u64),
        headroom: 0.97,
        queue_capacity: 8192,
        panic_on_tuple: None,
        cost_model: CostModel::Sleep,
        dispatch: Dispatch::RoundRobin,
        seed,
        pin_cores: false,
        sample_every: streamshed_engine::spans::DEFAULT_SAMPLE_EVERY,
    };
    let loop_cfg = LoopConfig::paper_default()
        .with_target_delay_ms(TARGET_MS)
        .with_period_ms(PERIOD.as_millis() as f64)
        .with_headroom(0.97)
        .with_prior_cost_us(COST.as_micros() as f64);
    let strategy = CtrlStrategy::from_config(&loop_cfg);
    // Observed spawn so the latency truth plane is live: the listener
    // threads get span slots and the run can cross-check server-side
    // frame turnaround against the fleet's reply RTTs.
    let options = ObsOptions::for_target(Duration::from_millis(TARGET_MS as u64));
    let engine = Arc::new(
        ShardedEngine::spawn_observed(cfg, strategy, &options).expect("observability plane starts"),
    );
    let plane = engine.obs().expect("plane attached").plane.clone();
    let recorder = plane.recorder().clone();
    let net_obs = NetObs { metrics: engine.metrics_fn(), plane: Some(plane.clone()) };
    let server = NetServer::start(
        NetConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..NetConfig::default()
        },
        engine.clone(),
        Some(net_obs),
    )
    .expect("loopback listener binds");
    let stats = server.stats();

    // ~500 t/s capacity × OVERLOAD, split across the fleet; keyed
    // frames so the shed-before-decode path is the one exercised.
    let capacity = 1e6 / COST.as_micros() as f64;
    let report = loadgen::run(&LoadgenConfig {
        addr: server.addr(),
        connections: FLEET,
        rate: capacity * OVERLOAD,
        batch: 16,
        secs: RUN.as_secs_f64(),
        seed,
        mode: Mode::Open,
        arrivals: Arrivals::Poisson,
        keyed: true,
        ..LoadgenConfig::default()
    })
    .expect("fleet runs");

    // Latency truth cross-check: the listener threads' sampled frame
    // turnaround (read → reply enqueued, the `net*` span slots) against
    // the fleet's own reply RTTs. The client side must sit above the
    // server side (the wire and both poll loops are in between) but by
    // no more than the loopback budget.
    let span_snap = plane.spans().snapshot();
    let mut turnaround = streamshed_engine::histo::Histo::new();
    for lp in span_snap.labels.iter().filter(|lp| lp.label.starts_with("net")) {
        turnaround.merge(&lp.sojourn);
    }
    let server_turnaround_p99_ms = turnaround.quantile(0.99) as f64 / 1e6;
    let client_rtt_p99_ms = report.rtt_p99_ms;
    let rtt_gap_ms = client_rtt_p99_ms - server_turnaround_p99_ms;
    let rtt_cross_check =
        turnaround.count() > 0 && (0.0..=LOOPBACK_BUDGET_MS).contains(&rtt_gap_ms);

    server.shutdown();
    let engine_report = Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("engine still referenced"))
        .shutdown();

    // Cross-boundary conservation: all three ledgers, bucket for bucket.
    let l = |v: &std::sync::atomic::AtomicU64| v.load(std::sync::atomic::Ordering::Relaxed);
    let conserved = report.conserved()
        && stats.tuples_balance()
        && engine_report.counters_balance()
        && report.accepted == l(&stats.tuples_accepted)
        && report.shed == l(&stats.tuples_shed)
        && report.sent - report.lost == engine_report.offered
        && report.shed == engine_report.dropped_entry;

    let traces = recorder.snapshot();
    let trajectory: Vec<(f64, f64)> = traces
        .iter()
        .filter(|t| t.mean_delay_ms.is_finite())
        .map(|t| (t.time_s, t.mean_delay_ms))
        .collect();
    let half = RUN.as_secs_f64() / 2.0;
    let (mut sum, mut n) = (0.0f64, 0u64);
    for t in &traces {
        if t.time_s >= half && t.completed > 0 && t.mean_delay_ms.is_finite() {
            sum += t.mean_delay_ms * t.completed as f64;
            n += t.completed;
        }
    }
    NetRun {
        steady_delay_ms: if n > 0 { sum / n as f64 } else { f64::NAN },
        trajectory,
        sent: report.sent,
        accepted: report.accepted,
        shed: report.shed,
        conserved,
        fairness_jain: report.fairness_jain,
        shed_ratio_cv: report.shed_ratio_cv,
        server_turnaround_p99_ms,
        client_rtt_p99_ms,
        server_turnaround_samples: turnaround.count(),
        rtt_cross_check,
    }
}

/// Holds an idle fleet of `target` connections (clamped to the process
/// fd budget) against a fresh listener and returns how many were
/// concurrently established.
pub fn run_hold(seed: u64, target: usize) -> (usize, usize) {
    // Client and server sockets share this process's fd table: 2 fds
    // per connection plus slack for the engine and listener.
    let budget = (sys::nofile_limit().unwrap_or(1024) as usize).saturating_sub(256) / 2;
    let held_target = target.min(budget);
    let mut cfg = ShardConfig::demo(1);
    cfg.cost = Duration::ZERO;
    cfg.cost_model = CostModel::Spin;
    let engine = Arc::new(ShardedEngine::spawn(cfg, streamshed_engine::hook::NoShedding));
    let server = NetServer::start(
        NetConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            max_conns: held_target + 16,
            idle_timeout: Duration::from_secs(60),
            ..NetConfig::default()
        },
        engine.clone(),
        None,
    )
    .expect("hold listener binds");
    let report = loadgen::run(&LoadgenConfig {
        addr: server.addr(),
        connections: held_target,
        rate: 0.0, // hold only: connect, stay silent, disconnect at the end
        secs: 2.0,
        seed,
        ..LoadgenConfig::default()
    })
    .expect("hold fleet runs");
    server.shutdown();
    drop(engine);
    (report.connections_established, held_target)
}

/// Regenerates the network-plane scenario. The CLI `--seed` seeds the
/// entry shedder and every per-connection arrival schedule.
pub fn run(seed: u64) -> FigureResult {
    let overload = run_overload(seed);
    let (held, held_target) = run_hold(seed, 2000);

    let series = vec![Series::new(
        format!("{FLEET}-conn fleet @ {OVERLOAD}x overload"),
        overload.trajectory.clone(),
    )];
    let summary = vec![
        ("target_delay_ms".to_string(), TARGET_MS),
        ("steady_delay_ms".to_string(), overload.steady_delay_ms),
        ("overload_factor".to_string(), OVERLOAD),
        ("tuples_sent".to_string(), overload.sent as f64),
        ("tuples_accepted".to_string(), overload.accepted as f64),
        ("tuples_shed".to_string(), overload.shed as f64),
        (
            "conservation_all_ledgers".to_string(),
            if overload.conserved { 1.0 } else { 0.0 },
        ),
        ("fairness_jain".to_string(), overload.fairness_jain),
        ("shed_ratio_cv".to_string(), overload.shed_ratio_cv),
        ("connections_held".to_string(), held as f64),
        ("connections_held_target".to_string(), held_target as f64),
        (
            "server_turnaround_p99_ms".to_string(),
            overload.server_turnaround_p99_ms,
        ),
        ("client_rtt_p99_ms".to_string(), overload.client_rtt_p99_ms),
        (
            "rtt_cross_check_budget_ms".to_string(),
            LOOPBACK_BUDGET_MS,
        ),
        (
            "rtt_cross_check_ok".to_string(),
            if overload.rtt_cross_check { 1.0 } else { 0.0 },
        ),
    ];
    let notes = vec![
        format!(
            "steady-state delay {:.0} ms vs target {TARGET_MS:.0} ms ({:+.0}% off) \
             under {OVERLOAD}x overload arriving over TCP loopback",
            overload.steady_delay_ms,
            (overload.steady_delay_ms / TARGET_MS - 1.0) * 100.0,
        ),
        format!(
            "conservation across the network boundary: fleet, listener, and engine \
             ledgers {} ({} sent = {} accepted + {} shed + rejected + lost)",
            if overload.conserved { "agree exactly" } else { "DISAGREE" },
            overload.sent,
            overload.accepted,
            overload.shed,
        ),
        format!(
            "shedding fairness across {FLEET} connections: Jain index {:.4} \
             (1.0 = perfectly even), per-connection shed-ratio CV {:.3}",
            overload.fairness_jain, overload.shed_ratio_cv,
        ),
        format!(
            "idle fleet held {held}/{held_target} concurrent connections in-process \
             (fd-budget-clamped; the 10k+ cross-process demonstration is the CI \
             net-smoke lane / README quickstart)"
        ),
        format!(
            "latency truth cross-check: server p99 frame turnaround {:.2} ms \
             ({} sampled frames) vs client p99 reply RTT {:.2} ms — gap {:.2} ms \
             {} the {LOOPBACK_BUDGET_MS:.0} ms loopback budget",
            overload.server_turnaround_p99_ms,
            overload.server_turnaround_samples,
            overload.client_rtt_p99_ms,
            overload.client_rtt_p99_ms - overload.server_turnaround_p99_ms,
            if overload.rtt_cross_check { "within" } else { "OUTSIDE" },
        ),
    ];
    FigureResult {
        id: "net".into(),
        title: "Network front door: control, conservation, and fairness over TCP".into(),
        x_label: "time (s)".into(),
        y_label: "mean delay (ms)".into(),
        series,
        summary,
        notes,
    }
}
