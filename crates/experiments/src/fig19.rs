//! Figure 19: sensitivity to the control period `T`.
//!
//! CTRL on the Web input with T ∈ {31.25, 62.5, 125, 250, 500, 1000,
//! 2000, 4000, 8000} ms. Every metric is reported relative to the lowest
//! value across the sweep. The paper's best region is T ∈ [250, 1000] ms,
//! with violations exploding beyond 4 s (sampling-theorem limit) and mild
//! degradation at very small T (estimation noise).

use crate::runner::{run_with_strategy, MetricsSummary, StrategyKind};
use crate::{FigureResult, Series};
use streamshed_control::loop_::LoopConfig;
use streamshed_workload::{ArrivalTrace, WebLikeTrace};

/// The control periods swept, milliseconds.
pub const PERIODS_MS: [f64; 9] = [
    31.25, 62.5, 125.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0,
];

/// Runs the Fig. 19 sweep.
pub fn run(seed: u64) -> FigureResult {
    let times = WebLikeTrace::paper_default(seed).arrival_times(400.0);
    let all: Vec<(f64, MetricsSummary)> = PERIODS_MS
        .iter()
        .map(|&t_ms| {
            let cfg = LoopConfig::paper_default().with_period_ms(t_ms);
            let m = run_with_strategy(StrategyKind::Ctrl, &times, &cfg, 400, None, None, seed)
                .metrics;
            (t_ms, m)
        })
        .collect();

    let metric = |m: &MetricsSummary, i: usize| -> f64 {
        [
            m.accumulated_violation_ms,
            m.delayed_tuples as f64,
            m.max_overshoot_ms,
            m.loss_ratio,
        ][i]
    };
    let names = [
        "accumulated_violations",
        "delayed_tuples",
        "max_overshoot",
        "data_loss",
    ];

    let mut series = Vec::new();
    let mut summary = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let min = all
            .iter()
            .map(|(_, m)| metric(m, i))
            .filter(|v| *v > 0.0)
            .fold(f64::MAX, f64::min)
            .max(1e-12);
        let pts: Vec<(f64, f64)> = all
            .iter()
            .map(|&(t, m)| (t, metric(&m, i) / min))
            .collect();
        series.push(Series::new(*name, pts));
    }
    // Which period minimises accumulated violations?
    let best = all
        .iter()
        .min_by(|a, b| {
            metric(&a.1, 0)
                .partial_cmp(&metric(&b.1, 0))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap()
        .0;
    summary.push(("best_period_ms".into(), best));
    for &(t, m) in &all {
        summary.push((format!("violations_ms(T={t})"), m.accumulated_violation_ms));
        summary.push((format!("loss(T={t})"), m.loss_ratio));
    }

    FigureResult {
        id: "fig19".into(),
        title: "Performance under different control periods".into(),
        x_label: "control period (ms, log grid)".into(),
        y_label: "metric / best across sweep".into(),
        series,
        summary,
        notes: vec![
            "paper: best region T ∈ [250, 1000] ms; violations blow up for \
             T ≥ 4000 ms; mild degradation at very small T"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_period_in_paper_region_and_long_periods_blow_up() {
        // The blow-up at long periods depends on when bursts land inside
        // the control period, so aggregate violations over a small seed
        // set before comparing (a lucky realization can absorb every
        // burst even at T = 8 s).
        let seeds = [3u64, 7, 11];
        let figs = crate::parallel::run_indexed(seeds.len(), seeds.len(), |i| run(seeds[i]));
        let mean = |name: &str| {
            figs.iter()
                .map(|f| f.summary.iter().find(|(n, _)| n == name).unwrap().1)
                .sum::<f64>()
                / figs.len() as f64
        };
        // Our virtual-time engine has far cleaner per-period measurements
        // than real Borealis, so the small-T penalty the paper observed
        // (estimation noise) is milder here and the good region extends
        // lower; the sampling-theorem blow-up at large T reproduces
        // exactly.
        let (best_t, vbest) = PERIODS_MS
            .iter()
            .map(|&t| (t, mean(&format!("violations_ms(T={t})"))))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!(
            best_t <= 2000.0,
            "best period {best_t} ms must not be in the blow-up region"
        );
        // T = 8 s misses every burst: violations far above the best.
        let v8000 = mean("violations_ms(T=8000)");
        assert!(
            v8000 > (vbest * 5.0).max(1000.0),
            "T=8000 mean violations {v8000} vs best {vbest}"
        );
    }
}
