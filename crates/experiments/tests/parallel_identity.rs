//! The parallel runner's contract: regenerating figures across worker
//! threads yields exactly the same `FigureResult`s — and therefore
//! byte-identical CSV/JSON artifacts — as a serial run.

use streamshed_experiments as exp;

/// Runs a small mixed batch (one analytic figure, one seeded simulation
/// figure, the fault matrix) serially and with a multi-worker pool, and
/// checks the results — and the bytes they serialize to — are identical.
#[test]
fn parallel_figures_identical_to_serial() {
    let seed = 7u64;
    let tasks = ["fig8", "fig12", "faults"];
    let run_all = |jobs: usize| {
        exp::parallel::run_indexed(tasks.len(), jobs, |i| match tasks[i] {
            "fig8" => exp::fig08::run(),
            "fig12" => exp::fig12::run(seed),
            "faults" => exp::faults::run(seed),
            other => unreachable!("{other}"),
        })
    };
    let serial = run_all(1);
    let parallel = run_all(4);
    assert_eq!(serial, parallel);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.to_csv(), p.to_csv(), "CSV bytes differ for {}", s.id);
    }
}

/// `run_indexed` preserves task order even when workers finish out of
/// order (long task first).
#[test]
fn run_indexed_order_is_stable_under_skew() {
    let out = exp::parallel::run_indexed(6, 3, |i| {
        if i == 0 {
            // Make the first task the slowest so later indices finish first.
            std::thread::sleep(std::time::Duration::from_millis(30));
        }
        i * 10
    });
    assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
}
