//! Acceptance tests for the *wall-clock* experiment surfaces: the live
//! observability plane (`exp::monitor`) and the sharded convergence run
//! (`exp::sharded`).
//!
//! These phases run real threads against the wall clock, so the
//! classifier genuinely measures scheduler behaviour — which also makes
//! them sensitive to CPU starvation. They live in their own test binary
//! (rather than the lib's `#[cfg(test)]` module) so `cargo test` runs
//! them after the heavy virtual-time suites have finished instead of
//! concurrently with them: a nominal run that loses its cores to a
//! campaign sweep on the next thread can drift into a real — but
//! environmental — oscillation verdict.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;
use streamshed_experiments::monitor::{
    run_nominal, run_oscillation, run_saturation, PhaseOutcome, DETECT_BUDGET,
};
use streamshed_experiments::sharded::{run_once, TARGET_MS};

/// One wall-clock phase at a time: these tests measure real scheduler
/// behaviour, and running them on sibling threads starves each of
/// cores — the nominal phase would flag an oscillation that is purely
/// environmental.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether the host can honestly run a multi-threaded wall-clock
/// engine to a timing bound. Below this the worker threads time-slice
/// one core and the delay trajectory measures the host scheduler, not
/// the controller — the same reason `bench --check` reports its
/// 4-shard scaling gate as skipped on small hosts. Returns `false`
/// (and prints why) on such hosts so the test body is skipped.
fn host_can_time(test: &str, need: usize) -> bool {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < need {
        println!("{test}: skipped — {cores} core(s) < {need} required for wall-clock timing");
        return false;
    }
    true
}

fn assert_endpoints_live(p: &PhaseOutcome) {
    assert_eq!(p.metrics_status, 200, "{}: /metrics", p.name);
    assert!(p.metrics_has_diag, "{}: /metrics lacks diagnostics families", p.name);
    assert_eq!(p.ready_status, 200, "{}: /ready", p.name);
    assert_eq!(p.trace_status, 200, "{}: /trace", p.name);
    assert!(p.trace_is_json, "{}: /trace is not a JSON trace array", p.name);
}

/// Acceptance: the classifier stays out of the anomalous states on
/// the nominal sharded run, the endpoints answer live, and no
/// flight bundle is written.
#[test]
fn nominal_run_is_healthy_with_live_endpoints() {
    let _guard = serial();
    if !host_can_time("nominal_run_is_healthy_with_live_endpoints", 4) {
        return;
    }
    let p = run_nominal(Duration::from_secs(3), 7);
    assert_endpoints_live(&p);
    assert_eq!(p.health_status, 200, "nominal /health");
    assert_eq!(p.anomalies, 0, "nominal run flagged an anomaly: {p:?}");
    assert!(!p.final_anomalous, "nominal final state {}", p.final_state);
    // Startup periods classify as Settling while the loop converges;
    // the bulk of the run must be plain Healthy.
    assert!(p.healthy_fraction > 0.3, "healthy fraction {}", p.healthy_fraction);
    assert_eq!(p.bundles_written, 0, "nominal run wrote a flight bundle");
}

/// Acceptance: bang-bang actuation is flagged within 5 periods and
/// produces a flight bundle, with the endpoints live throughout.
#[test]
fn oscillation_is_flagged_within_budget_with_flight_bundle() {
    let _guard = serial();
    if !host_can_time("oscillation_is_flagged_within_budget_with_flight_bundle", 4) {
        return;
    }
    let p = run_oscillation(Duration::from_secs(2), 7);
    assert_endpoints_live(&p);
    let latency = p.detect_latency_periods.expect("oscillation never flagged");
    assert!(latency <= DETECT_BUDGET, "flagged after {latency} periods: {p:?}");
    assert!(p.bundles_written >= 1, "no flight bundle written: {p:?}");
    assert!(p.final_anomalous, "final state {} not anomalous", p.final_state);
}

/// Acceptance: a dead actuator under overload is flagged within 5
/// periods of the first band violation, with a flight bundle.
#[test]
fn saturation_is_flagged_within_budget_with_flight_bundle() {
    let _guard = serial();
    if !host_can_time("saturation_is_flagged_within_budget_with_flight_bundle", 4) {
        return;
    }
    let p = run_saturation(Duration::from_millis(2500), 7);
    assert_endpoints_live(&p);
    let latency = p.detect_latency_periods.expect("saturation never flagged");
    assert!(latency <= DETECT_BUDGET, "flagged after {latency} periods: {p:?}");
    assert!(p.bundles_written >= 1, "no flight bundle written: {p:?}");
    assert!(p.anomalies >= 1, "no anomaly recorded: {p:?}");
}

/// The sharded-plane acceptance bound: both shard counts settle within
/// the figure tolerance of the shared target. Wall-clock, so kept
/// generous (±40%) to stay robust on loaded CI hosts.
#[test]
fn one_and_four_shards_converge_to_the_same_target() {
    let _guard = serial();
    if !host_can_time("one_and_four_shards_converge_to_the_same_target", 4) {
        return;
    }
    for shards in [1usize, 4] {
        let r = run_once(shards, 7);
        assert!(r.balanced, "counters must balance: {r:?}");
        assert!(
            r.steady_delay_ms.is_finite(),
            "{shards} shards produced no steady-state sample"
        );
        let rel = (r.steady_delay_ms - TARGET_MS).abs() / TARGET_MS;
        assert!(
            rel < 0.4,
            "{shards} shards: steady delay {:.0} ms vs target {TARGET_MS} ms",
            r.steady_delay_ms
        );
        // 2× overload must shed roughly half (generous bounds).
        assert!(
            r.loss_ratio > 0.25 && r.loss_ratio < 0.75,
            "{shards} shards: loss {}",
            r.loss_ratio
        );
    }
}
