//! # streamshed-control
//!
//! The paper's primary contribution: quality-driven load shedding as a
//! feedback-control problem.
//!
//! * [`model`] — the dynamic DSMS model `G(z) = cT/(H(z−1))` relating
//!   average delay to the virtual queue length (§4.2);
//! * [`estimator`] — the virtual-queue delay estimator
//!   `ŷ(k) = (q(k)+1)·c(k)/H` and the EWMA cost tracker (§4.5.1);
//! * [`controller`] — the pole-placement runtime controller
//!   `u(k) = (H/cT)[b0·e(k) + b1·e(k−1)] − a·u(k−1)` with anti-windup
//!   (Eq. 10, Appendix A);
//! * [`shedder`] — actuator arithmetic: entry coin-flip factor `α`
//!   (Eq. 13) and in-network load `Ls = Lq + Li − La` (§4.5.2);
//! * [`strategy`] — the three evaluated strategies: `CTRL`, `BASELINE`,
//!   `AURORA` (§5);
//! * [`loop_`] — shared loop configuration and signal logging;
//! * [`adaptive`] — the self-tuning plane: online re-identification,
//!   gain-scheduled pole placement with bumpless transfer, and the
//!   model-free comparator (the conclusion's adaptive-control
//!   follow-up).
//!
//! ```
//! use streamshed_control::loop_::LoopConfig;
//! use streamshed_control::strategy::{CtrlStrategy, SheddingStrategy};
//! use streamshed_engine::hook::ControlHook;
//! # use streamshed_engine::hook::PeriodSnapshot;
//! # use streamshed_engine::time::{secs, SimTime};
//!
//! let mut ctrl = CtrlStrategy::from_config(&LoopConfig::paper_default());
//! # let snapshot = PeriodSnapshot {
//! #     k: 0, now: SimTime::ZERO + secs(1), period: secs(1),
//! #     offered: 400, admitted: 400, dropped_entry: 0, dropped_network: 0,
//! #     completed: 190, outstanding: 2000, queued_tuples: 2000,
//! #     queued_load_us: 2000.0 * 5105.0, measured_cost_us: Some(5105.0),
//! #     mean_delay_ms: None, cpu_busy_us: 970_000,
//! # };
//! // Deep overload (ŷ ≈ 10.5 s against a 2 s target): CTRL sheds hard.
//! let decision = ctrl.on_period(&snapshot);
//! assert!(decision.entry_drop_prob > 0.5);
//! assert_eq!(ctrl.name(), "CTRL");
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod adaptive;
pub mod controller;
pub mod estimator;
pub mod kalman;
pub mod loop_;
pub mod lsrm;
pub mod model;
pub mod priority;
pub mod shedder;
pub mod strategy;
pub mod supervisor;

pub use adaptive::{AdaptiveCtrlStrategy, ComparatorStrategy, GainScheduler, RlsEstimator};
pub use controller::FeedbackController;
pub use estimator::{CostEstimator, DelayEstimator};
pub use kalman::{CostTracker, CostTrackerKind, KalmanCostEstimator};
pub use loop_::{LoopConfig, ShedMode, SignalRow};
pub use lsrm::{Lsrm, ShedPlan};
pub use model::PlantModel;
pub use priority::{PriorityCtrlStrategy, StreamPriorities};
pub use shedder::{EntryShedder, NetworkShedder};
pub use strategy::{AuroraStrategy, BaselineStrategy, CtrlStrategy, SheddingStrategy};
pub use supervisor::{Supervisor, SupervisorConfig, SupervisorLog, SupervisorMode};
