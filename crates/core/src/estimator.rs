//! Estimators for the unmeasurable signals (§4.5.1).
//!
//! The controlled output — the delay of tuples *currently arriving* — is
//! only observable after those tuples depart, i.e. delayed by the output
//! itself. The paper's fix is to estimate it from the virtual queue
//! length: `ŷ(k) = (q(k)+1)·c(k)/H` (Eq. 11), with `c(k)` tracked by the
//! engine's statistics (here: an EWMA over measured per-tuple costs).

use crate::model::PlantModel;
use serde::{Deserialize, Serialize};

/// Exponentially weighted moving average tracker for the per-tuple cost
/// `c(k)`.
///
/// Mirrors the role of Borealis's statistics module (§4.2 of \[26\]): the
/// expectation of per-tuple cost "can be precisely estimated", but it
/// drifts slowly; smoothing suppresses the per-period measurement noise
/// the paper attributes to tuple heterogeneity (§4.5.3, issue 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostEstimator {
    estimate_us: f64,
    smoothing: f64,
}

impl CostEstimator {
    /// Creates an estimator with a prior cost and smoothing factor in
    /// `(0, 1]` (1 = trust only the newest measurement).
    pub fn new(prior_us: f64, smoothing: f64) -> Self {
        assert!(prior_us > 0.0 && prior_us.is_finite());
        assert!(smoothing > 0.0 && smoothing <= 1.0);
        Self {
            estimate_us: prior_us,
            smoothing,
        }
    }

    /// Folds in this period's measurement, if any, and returns the
    /// current estimate (µs).
    pub fn update(&mut self, measured_us: Option<f64>) -> f64 {
        if let Some(m) = measured_us {
            if m.is_finite() && m > 0.0 {
                self.estimate_us += self.smoothing * (m - self.estimate_us);
            }
        }
        self.estimate_us
    }

    /// Current estimate without updating, µs.
    pub fn current_us(&self) -> f64 {
        self.estimate_us
    }
}

/// The virtual-queue delay estimator of Eq. 11.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayEstimator {
    /// Headroom factor `H`.
    pub headroom: f64,
}

impl DelayEstimator {
    /// Creates an estimator with the given headroom.
    pub fn new(headroom: f64) -> Self {
        assert!(headroom > 0.0 && headroom <= 1.0);
        Self { headroom }
    }

    /// `ŷ(k) = (q(k)+1)·c(k)/H`, in seconds.
    pub fn estimate_delay_s(&self, queue_len: u64, cost_us: f64) -> f64 {
        (queue_len as f64 + 1.0) * (cost_us / 1e6) / self.headroom
    }

    /// Convenience: the same estimate from a [`PlantModel`].
    pub fn from_model(model: &PlantModel) -> Self {
        Self::new(model.headroom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamshed_engine::time::secs;

    #[test]
    fn ewma_converges_to_measurements() {
        let mut e = CostEstimator::new(5000.0, 0.3);
        for _ in 0..50 {
            e.update(Some(8000.0));
        }
        assert!((e.current_us() - 8000.0).abs() < 1.0);
    }

    #[test]
    fn ewma_ignores_missing_and_garbage() {
        let mut e = CostEstimator::new(5000.0, 0.5);
        e.update(None);
        e.update(Some(f64::NAN));
        e.update(Some(-3.0));
        e.update(Some(0.0));
        assert_eq!(e.current_us(), 5000.0);
    }

    #[test]
    fn ewma_smoothing_bounds_step_response() {
        let mut e = CostEstimator::new(1000.0, 0.25);
        let after_one = e.update(Some(2000.0));
        assert!((after_one - 1250.0).abs() < 1e-9);
    }

    #[test]
    fn delay_estimate_matches_model() {
        let model = PlantModel::new(5263.0, 0.97, secs(1));
        let est = DelayEstimator::from_model(&model);
        for q in [0u64, 10, 368, 1000] {
            let a = est.estimate_delay_s(q, model.cost_us);
            let b = model.predict_delay_s(q);
            assert!((a - b).abs() < 1e-12, "q={q}");
        }
    }

    #[test]
    fn paper_target_queue_is_about_368() {
        // yd = 2 s, c ≈ 5.26 ms, H = 0.97 → q* = yd·H/c − 1 ≈ 368.
        let model = PlantModel::new(1e6 / 190.0, 0.97, secs(1));
        let q = model.queue_for_delay(2.0);
        assert!((q - 367.6).abs() < 1.0, "q* = {q}");
        let est = DelayEstimator::from_model(&model);
        let y = est.estimate_delay_s(q.round() as u64, model.cost_us);
        assert!((y - 2.0).abs() < 0.01);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_smoothing() {
        let _ = CostEstimator::new(1000.0, 0.0);
    }
}
