//! A supervisory layer that keeps the closed loop safe when its own
//! sensors, actuators, or plant misbehave.
//!
//! The paper's controller assumes every `c(k)` sample is a finite positive
//! number and every queue reading is fresh. [`Supervisor`] wraps any
//! [`SheddingStrategy`] and removes those assumptions:
//!
//! * **signal validation** — cost samples must be finite, positive, and
//!   within an outlier band around the last accepted sample; true-delay
//!   measurements must be finite and non-negative. Invalid samples are
//!   replaced with the last good value before the inner strategy sees
//!   them.
//! * **hold on dropout** — when the monitor produces no cost sample at
//!   all, the last actuation is held for up to
//!   [`SupervisorConfig::max_stale_periods`] periods before degrading.
//! * **divergence watchdog** — the *delayed but real* mean-delay
//!   measurement (which the paper's controller deliberately ignores for
//!   control, §4.5.1) is exactly the right signal for *supervision*: if
//!   the delay residual `y − yd` stays above a margin for a whole window,
//!   the virtual-queue loop is declared divergent regardless of what the
//!   controller believes.
//! * **safe fallback** — on divergence or prolonged dropout the
//!   supervisor switches to an open-loop shed factor
//!   `α₀ = 1 − (H/c)/fin` (Aurora-style capacity matching) with a
//!   bang-bang trim from the true delay, rate-limited for bumpless
//!   transfer.
//! * **supervised re-engagement** — after
//!   [`SupervisorConfig::recovery_periods`] consecutive healthy periods
//!   the inner strategy is rebuilt from its pristine state (controller
//!   history cleared) and re-engaged, again rate-limited.
//!
//! Whatever mode it is in, the supervisor's output is always sanitised:
//! the entry-drop probability is finite and in `[0, 1]`, the in-network
//! shed load finite and non-negative.

use crate::loop_::{LoopConfig, SignalRow};
use crate::strategy::SheddingStrategy;
use std::collections::VecDeque;
use streamshed_engine::hook::{ControlHook, Decision, PeriodSnapshot};
use streamshed_engine::telemetry::{ControlState, InstrumentedHook, LoopMode};

/// Supervisor tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Delay target `yd` in seconds (for the divergence watchdog and the
    /// fallback trim).
    pub target_s: f64,
    /// Headroom factor `H` (for the open-loop fallback capacity).
    pub headroom: f64,
    /// Prior cost estimate (µs) used as the initial "last good" sample.
    pub prior_cost_us: f64,
    /// Periods to hold the last actuation on sensor dropout before
    /// falling back.
    pub max_stale_periods: u64,
    /// A cost sample further than this factor from the last accepted one
    /// (in either direction) is rejected as an outlier.
    pub cost_outlier_factor: f64,
    /// Number of consecutive periods the delay residual must exceed
    /// [`Self::divergence_margin_s`] to declare divergence.
    pub divergence_window: usize,
    /// Residual margin (seconds above target) for the watchdog.
    pub divergence_margin_s: f64,
    /// Consecutive healthy periods required before re-engaging the inner
    /// strategy.
    pub recovery_periods: u64,
    /// Fixed fallback shed factor; `None` computes the open-loop
    /// capacity-matching factor from the last good cost.
    pub fallback_alpha: Option<f64>,
    /// Maximum change of the shed factor per period while in fallback or
    /// ramping after a mode switch (bumpless transfer).
    pub max_alpha_step: f64,
}

impl SupervisorConfig {
    /// Defaults derived from a loop configuration.
    pub fn from_loop(cfg: &LoopConfig) -> Self {
        Self {
            target_s: cfg.target_delay_s(),
            headroom: cfg.headroom,
            prior_cost_us: cfg.prior_cost_us,
            max_stale_periods: 5,
            cost_outlier_factor: 8.0,
            divergence_window: 5,
            divergence_margin_s: 1.0,
            recovery_periods: 10,
            fallback_alpha: None,
            max_alpha_step: 0.1,
        }
    }
}

/// The supervisor's operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorMode {
    /// The inner strategy is in control.
    Engaged,
    /// Sensor dropout: the last actuation is being held.
    Hold,
    /// The inner loop is disengaged; the open-loop fallback is in
    /// control.
    Fallback,
}

/// One mode transition, for post-hoc inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorEvent {
    /// Period index at which the transition happened.
    pub k: u64,
    /// The mode entered.
    pub entered: SupervisorMode,
}

/// Counters summarising the supervisor's interventions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorLog {
    /// Cost samples rejected (non-finite, non-positive, or outlier).
    pub rejected_cost_samples: u64,
    /// True-delay samples rejected (non-finite or negative).
    pub rejected_delay_samples: u64,
    /// Periods spent holding the last actuation on dropout.
    pub held_periods: u64,
    /// Periods spent in open-loop fallback.
    pub fallback_periods: u64,
    /// Times the watchdog declared divergence.
    pub divergence_trips: u64,
    /// Times the inner strategy was re-engaged after recovery.
    pub reengagements: u64,
    /// Decisions whose outputs had to be sanitised (non-finite or
    /// out-of-range values clamped).
    pub sanitised_outputs: u64,
}

/// Wraps a strategy with validation, fallback, and recovery. See the
/// module docs.
#[derive(Debug, Clone)]
pub struct Supervisor<S> {
    inner: S,
    /// A pristine copy used to reset controller state on re-engagement.
    pristine: S,
    cfg: SupervisorConfig,
    mode: SupervisorMode,
    stale_periods: u64,
    last_good_cost_us: f64,
    last_alpha: f64,
    last_applied: Decision,
    residuals: VecDeque<f64>,
    healthy_streak: u64,
    /// Remaining periods of post-transition rate limiting.
    ramp: u64,
    fallback_trim: f64,
    log: SupervisorLog,
    events: Vec<SupervisorEvent>,
}

impl<S: SheddingStrategy + Clone> Supervisor<S> {
    /// Wraps `inner` with the given supervisor configuration.
    pub fn new(inner: S, cfg: SupervisorConfig) -> Self {
        assert!(cfg.target_s > 0.0 && cfg.target_s.is_finite());
        assert!(cfg.headroom > 0.0 && cfg.headroom <= 1.0);
        assert!(cfg.prior_cost_us > 0.0 && cfg.prior_cost_us.is_finite());
        assert!(cfg.cost_outlier_factor > 1.0);
        assert!(cfg.divergence_window >= 1);
        assert!(cfg.max_alpha_step > 0.0);
        Self {
            pristine: inner.clone(),
            last_good_cost_us: cfg.prior_cost_us,
            inner,
            cfg,
            mode: SupervisorMode::Engaged,
            stale_periods: 0,
            last_alpha: 0.0,
            last_applied: Decision::NONE,
            residuals: VecDeque::new(),
            healthy_streak: 0,
            ramp: 0,
            fallback_trim: 0.0,
            log: SupervisorLog::default(),
            events: Vec::new(),
        }
    }

    /// Wraps `inner` with defaults derived from `loop_cfg`.
    pub fn from_loop(inner: S, loop_cfg: &LoopConfig) -> Self {
        Self::new(inner, SupervisorConfig::from_loop(loop_cfg))
    }

    /// The current operating mode.
    pub fn mode(&self) -> SupervisorMode {
        self.mode
    }

    /// Intervention counters.
    pub fn log(&self) -> &SupervisorLog {
        &self.log
    }

    /// Mode transitions, in order.
    pub fn events(&self) -> &[SupervisorEvent] {
        &self.events
    }

    /// Mode transitions translated to the telemetry-level [`LoopMode`] —
    /// the form the observability plane's diagnostics consume, so
    /// supervisor hold/fallback interventions surface as diagnostic
    /// events without the consumer depending on supervisor internals.
    pub fn diagnostic_events(&self) -> Vec<(u64, LoopMode)> {
        self.events
            .iter()
            .map(|e| {
                let mode = match e.entered {
                    SupervisorMode::Engaged => LoopMode::Engaged,
                    SupervisorMode::Hold => LoopMode::Hold,
                    SupervisorMode::Fallback => LoopMode::Fallback,
                };
                (e.k, mode)
            })
            .collect()
    }

    /// The wrapped strategy.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn transition(&mut self, k: u64, mode: SupervisorMode) {
        if self.mode != mode {
            self.mode = mode;
            self.events.push(SupervisorEvent { k, entered: mode });
            self.ramp = self.cfg.recovery_periods.min(10);
            if mode == SupervisorMode::Fallback {
                self.fallback_trim = 0.0;
                self.log.divergence_trips += 1;
            }
        }
    }

    /// Validates the cost sample; returns the value the inner strategy
    /// should see (`None` only on dropout).
    fn validate_cost(&mut self, raw: Option<f64>) -> Option<f64> {
        match raw {
            None => {
                self.stale_periods += 1;
                None
            }
            Some(c) => {
                self.stale_periods = 0;
                let lo = self.last_good_cost_us / self.cfg.cost_outlier_factor;
                let hi = self.last_good_cost_us * self.cfg.cost_outlier_factor;
                if !c.is_finite() || c <= 0.0 || c < lo || c > hi {
                    self.log.rejected_cost_samples += 1;
                    Some(self.last_good_cost_us)
                } else {
                    self.last_good_cost_us = c;
                    Some(c)
                }
            }
        }
    }

    /// Validates the true-delay sample (supervision signal only).
    fn validate_delay(&mut self, raw: Option<f64>) -> Option<f64> {
        match raw {
            Some(d) if d.is_finite() && d >= 0.0 => Some(d),
            Some(_) => {
                self.log.rejected_delay_samples += 1;
                None
            }
            None => None,
        }
    }

    /// True when the residual has exceeded the margin for the whole
    /// window.
    fn diverging(&self) -> bool {
        self.residuals.len() >= self.cfg.divergence_window
            && self
                .residuals
                .iter()
                .all(|&r| r > self.cfg.divergence_margin_s)
    }

    /// The open-loop fallback decision: shed down to capacity, trimmed by
    /// the true delay when one is available.
    fn fallback_decision(&mut self, snap: &PeriodSnapshot, delay_ms: Option<f64>) -> Decision {
        let base = match self.cfg.fallback_alpha {
            Some(a) => a.clamp(0.0, 1.0),
            None => {
                let capacity_tps = self.cfg.headroom / (self.last_good_cost_us / 1e6);
                let fin = snap.fin_rate();
                if fin <= f64::EPSILON || !fin.is_finite() {
                    0.0
                } else {
                    (1.0 - capacity_tps / fin).clamp(0.0, 1.0)
                }
            }
        };
        if let Some(d_ms) = delay_ms {
            let d_s = d_ms / 1e3;
            if d_s > self.cfg.target_s {
                self.fallback_trim += self.cfg.max_alpha_step;
            } else if d_s < 0.5 * self.cfg.target_s {
                self.fallback_trim -= self.cfg.max_alpha_step;
            }
            self.fallback_trim = self.fallback_trim.clamp(-0.5, 0.5);
        }
        Decision::entry((base + self.fallback_trim).clamp(0.0, 1.0))
    }

    /// Clamps a decision into its valid domain, rate-limiting the shed
    /// factor when a mode transition is being ramped.
    fn sanitise(&mut self, mut d: Decision, rate_limit: bool) -> Decision {
        let mut touched = false;
        if !d.entry_drop_prob.is_finite() {
            d.entry_drop_prob = self.last_alpha;
            touched = true;
        } else if !(0.0..=1.0).contains(&d.entry_drop_prob) {
            d.entry_drop_prob = d.entry_drop_prob.clamp(0.0, 1.0);
            touched = true;
        }
        if rate_limit {
            let step = self.cfg.max_alpha_step;
            let limited =
                self.last_alpha + (d.entry_drop_prob - self.last_alpha).clamp(-step, step);
            d.entry_drop_prob = limited;
        }
        if let Some(v) = &mut d.per_entry_drop_prob {
            for a in v.iter_mut() {
                if !a.is_finite() {
                    *a = d.entry_drop_prob;
                    touched = true;
                } else if !(0.0..=1.0).contains(a) {
                    *a = a.clamp(0.0, 1.0);
                    touched = true;
                }
            }
        }
        if !(d.shed_load_us.is_finite() && d.shed_load_us >= 0.0) {
            d.shed_load_us = 0.0;
            touched = true;
        }
        if touched {
            self.log.sanitised_outputs += 1;
        }
        self.last_alpha = d.entry_drop_prob;
        self.last_applied = d.clone();
        d
    }
}

impl<S: SheddingStrategy + Clone> ControlHook for Supervisor<S> {
    fn on_period(&mut self, snap: &PeriodSnapshot) -> Decision {
        let cost = self.validate_cost(snap.measured_cost_us);
        let delay_ms = self.validate_delay(snap.mean_delay_ms);

        // Watchdog input: the delayed-but-real measurement.
        if let Some(d_ms) = delay_ms {
            self.residuals.push_back(d_ms / 1e3 - self.cfg.target_s);
            while self.residuals.len() > self.cfg.divergence_window {
                self.residuals.pop_front();
            }
        }

        // A period is healthy when the sensor delivered an acceptable
        // cost sample and the true delay (if observable) is back inside
        // half the divergence margin — hysteresis against flapping.
        let healthy = cost == Some(self.last_good_cost_us)
            && snap.measured_cost_us.is_some()
            && delay_ms.is_none_or(|d_ms| {
                d_ms / 1e3 - self.cfg.target_s <= 0.5 * self.cfg.divergence_margin_s
            });

        match self.mode {
            SupervisorMode::Engaged | SupervisorMode::Hold => {
                if cost.is_none() {
                    if self.stale_periods > self.cfg.max_stale_periods {
                        self.transition(snap.k, SupervisorMode::Fallback);
                    } else {
                        // Hold the last actuation through the dropout.
                        self.transition(snap.k, SupervisorMode::Hold);
                        self.log.held_periods += 1;
                        let held = self.last_applied.clone();
                        return self.sanitise(held, false);
                    }
                } else if self.diverging() {
                    self.transition(snap.k, SupervisorMode::Fallback);
                } else {
                    if self.mode == SupervisorMode::Hold {
                        // Dropout ended before the deadline: resume.
                        self.transition(snap.k, SupervisorMode::Engaged);
                    }
                    let mut sanitised = *snap;
                    sanitised.measured_cost_us = cost;
                    sanitised.mean_delay_ms = delay_ms;
                    let d = self.inner.on_period(&sanitised);
                    // A self-tuning inner strategy just swapped its
                    // controller parameters: rate-limit the next couple
                    // of periods even though the swap itself was
                    // bumpless.
                    if self.inner.take_retune() {
                        self.ramp = self.ramp.max(2);
                    }
                    let ramping = self.ramp > 0;
                    self.ramp = self.ramp.saturating_sub(1);
                    return self.sanitise(d, ramping);
                }
            }
            SupervisorMode::Fallback => {}
        }

        // Fallback path (either already in fallback, or just degraded).
        self.log.fallback_periods += 1;
        if healthy {
            self.healthy_streak += 1;
            if self.healthy_streak >= self.cfg.recovery_periods {
                // Re-engage with a pristine controller; the decision this
                // period already comes from the inner strategy again.
                self.healthy_streak = 0;
                self.inner = self.pristine.clone();
                self.residuals.clear();
                self.transition(snap.k, SupervisorMode::Engaged);
                self.log.reengagements += 1;
                let mut sanitised = *snap;
                sanitised.measured_cost_us = cost;
                sanitised.mean_delay_ms = delay_ms;
                let d = self.inner.on_period(&sanitised);
                return self.sanitise(d, true);
            }
        } else {
            self.healthy_streak = 0;
        }
        let d = self.fallback_decision(snap, delay_ms);
        self.sanitise(d, true)
    }
}

impl<S: SheddingStrategy + Clone + InstrumentedHook> InstrumentedHook for Supervisor<S> {
    /// The supervised loop's state for telemetry.
    ///
    /// The mode mirrors [`SupervisorMode`]. While engaged, the inner
    /// strategy's signals are reported verbatim; in hold or fallback the
    /// inner loop is not consulted, so `y_hat_s`/`error_s`/`u_tps` are
    /// NaN and only the last good cost estimate is carried through.
    fn control_state(&self) -> Option<ControlState> {
        let mode = match self.mode {
            SupervisorMode::Engaged => LoopMode::Engaged,
            SupervisorMode::Hold => LoopMode::Hold,
            SupervisorMode::Fallback => LoopMode::Fallback,
        };
        let mut st = if self.mode == SupervisorMode::Engaged {
            self.inner.control_state().unwrap_or_default()
        } else {
            ControlState {
                cost_est_us: self.last_good_cost_us,
                ..ControlState::default()
            }
        };
        st.mode = mode;
        Some(st)
    }

    /// Forwards the inner strategy's self-tuning state (if any) so the
    /// adaptive telemetry survives supervision.
    fn adapt_state(&self) -> Option<streamshed_engine::telemetry::AdaptState> {
        self.inner.adapt_state()
    }
}

impl<S: SheddingStrategy + Clone> SheddingStrategy for Supervisor<S> {
    fn name(&self) -> &'static str {
        "SUPERVISED"
    }

    /// The inner strategy's signal log. Periods spent in hold or fallback
    /// have no row — the inner loop was not consulted.
    fn signals(&self) -> &[SignalRow] {
        self.inner.signals()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::CtrlStrategy;
    use streamshed_engine::time::{secs, SimTime};

    fn snap(k: u64, outstanding: u64, cost: Option<f64>, delay_ms: Option<f64>) -> PeriodSnapshot {
        PeriodSnapshot {
            k,
            now: SimTime::ZERO + secs(k + 1),
            period: secs(1),
            offered: 400,
            admitted: 400,
            dropped_entry: 0,
            dropped_network: 0,
            completed: 190,
            outstanding,
            queued_tuples: outstanding,
            queued_load_us: outstanding as f64 * 5105.0,
            measured_cost_us: cost,
            mean_delay_ms: delay_ms,
            cpu_busy_us: 970_000,
        }
    }

    fn supervised() -> Supervisor<CtrlStrategy> {
        Supervisor::from_loop(
            CtrlStrategy::paper_default(),
            &crate::loop_::LoopConfig::paper_default(),
        )
    }

    #[test]
    fn transparent_when_healthy() {
        let mut sup = supervised();
        let mut raw = CtrlStrategy::paper_default();
        for k in 0..10 {
            let s = snap(k, 400, Some(5105.0), Some(1900.0));
            let a = sup.on_period(&s);
            let b = raw.on_period(&s);
            assert!((a.entry_drop_prob - b.entry_drop_prob).abs() < 1e-12);
        }
        assert_eq!(sup.mode(), SupervisorMode::Engaged);
        assert_eq!(sup.log().rejected_cost_samples, 0);
    }

    #[test]
    fn nan_cost_is_replaced_not_forwarded() {
        let mut sup = supervised();
        for k in 0..5 {
            let d = sup.on_period(&snap(k, 400, Some(f64::NAN), Some(1900.0)));
            assert!(d.entry_drop_prob.is_finite());
        }
        assert_eq!(sup.log().rejected_cost_samples, 5);
        assert_eq!(sup.mode(), SupervisorMode::Engaged);
    }

    #[test]
    fn outlier_cost_is_rejected() {
        let mut sup = supervised();
        let _ = sup.on_period(&snap(0, 400, Some(5105.0), Some(1900.0)));
        // 100× collapse: rejected; last good (5105) substituted.
        let _ = sup.on_period(&snap(1, 400, Some(51.0), Some(1900.0)));
        assert_eq!(sup.log().rejected_cost_samples, 1);
        // Cost tracker still near the real value, not the outlier.
        let last = sup.inner().signals().last().unwrap();
        assert!(last.cost_us > 4000.0, "cost {}", last.cost_us);
    }

    #[test]
    fn dropout_holds_then_falls_back() {
        let mut sup = supervised();
        let d0 = sup.on_period(&snap(0, 2000, Some(5105.0), Some(2500.0)));
        assert!(d0.entry_drop_prob > 0.0);
        // Sensor dropout: held for max_stale_periods, then fallback.
        let mut k = 1;
        for _ in 0..5 {
            let d = sup.on_period(&snap(k, 2000, None, None));
            assert_eq!(d.entry_drop_prob, d0.entry_drop_prob, "held at k={k}");
            k += 1;
        }
        assert_eq!(sup.mode(), SupervisorMode::Hold);
        let _ = sup.on_period(&snap(k, 2000, None, None));
        assert_eq!(sup.mode(), SupervisorMode::Fallback);
        assert_eq!(sup.log().held_periods, 5);
    }

    #[test]
    fn short_dropout_resumes_engaged() {
        let mut sup = supervised();
        let _ = sup.on_period(&snap(0, 400, Some(5105.0), Some(1900.0)));
        let _ = sup.on_period(&snap(1, 400, None, None));
        assert_eq!(sup.mode(), SupervisorMode::Hold);
        let _ = sup.on_period(&snap(2, 400, Some(5105.0), Some(1900.0)));
        assert_eq!(sup.mode(), SupervisorMode::Engaged);
    }

    #[test]
    fn persistent_overshoot_trips_the_watchdog() {
        let mut sup = supervised();
        // Frozen small queue (the controller thinks all is well) but the
        // true delay climbs far past the 2 s target.
        for k in 0..10 {
            let _ = sup.on_period(&snap(k, 10, Some(5105.0), Some(8000.0 + 500.0 * k as f64)));
        }
        assert_eq!(sup.mode(), SupervisorMode::Fallback);
        assert!(sup.log().divergence_trips >= 1);
        // The fallback sheds aggressively: fin 400 » capacity 190.
        let d = sup.on_period(&snap(10, 10, Some(5105.0), Some(9000.0)));
        assert!(d.entry_drop_prob > 0.3, "alpha {}", d.entry_drop_prob);
    }

    #[test]
    fn recovers_and_reengages_after_healthy_window() {
        let mut sup = supervised();
        for k in 0..10 {
            let _ = sup.on_period(&snap(k, 10, Some(5105.0), Some(9000.0)));
        }
        assert_eq!(sup.mode(), SupervisorMode::Fallback);
        // Signals recover: delay back at target, cost valid.
        for k in 10..30 {
            let _ = sup.on_period(&snap(k, 300, Some(5105.0), Some(1800.0)));
        }
        assert_eq!(sup.mode(), SupervisorMode::Engaged);
        assert_eq!(sup.log().reengagements, 1);
        // The transitions were recorded in order.
        let modes: Vec<_> = sup.events().iter().map(|e| e.entered).collect();
        assert_eq!(
            modes,
            vec![SupervisorMode::Fallback, SupervisorMode::Engaged]
        );
        // And surface in telemetry terms for the observability plane,
        // with the period indices preserved.
        let diag = sup.diagnostic_events();
        assert_eq!(diag.len(), 2);
        assert_eq!(diag[0].1, LoopMode::Fallback);
        assert_eq!(diag[1].1, LoopMode::Engaged);
        assert_eq!(diag[0].0, sup.events()[0].k);
        assert!(diag[0].0 < diag[1].0, "transition order preserved");
    }

    #[test]
    fn fallback_output_is_rate_limited() {
        let mut sup = supervised();
        // Healthy periods first, then trip the watchdog with a
        // persistently huge true delay the frozen-queue controller cannot
        // see.
        let mut prev = sup
            .on_period(&snap(0, 10, Some(5105.0), Some(100.0)))
            .entry_drop_prob;
        for k in 1..=5 {
            prev = sup
                .on_period(&snap(k, 10, Some(5105.0), Some(9000.0)))
                .entry_drop_prob;
        }
        // First fallback period: the open-loop α would jump to ≈0.53
        // (1 − 190/400) + trim, but bumpless transfer caps the step.
        let d = sup.on_period(&snap(6, 10, Some(5105.0), Some(9000.0)));
        assert_eq!(sup.mode(), SupervisorMode::Fallback);
        assert!(
            (d.entry_drop_prob - prev).abs() <= sup.cfg.max_alpha_step + 1e-12,
            "first fallback step {} from {prev}",
            d.entry_drop_prob
        );
        // Subsequent periods keep climbing monotonically toward the
        // open-loop factor.
        prev = d.entry_drop_prob;
        for k in 7..12 {
            let d = sup.on_period(&snap(k, 10, Some(5105.0), Some(9000.0)));
            assert!(d.entry_drop_prob >= prev);
            assert!(d.entry_drop_prob - prev <= sup.cfg.max_alpha_step + 1e-12);
            prev = d.entry_drop_prob;
        }
    }

    #[test]
    fn output_always_sane_under_garbage_input() {
        let mut sup = supervised();
        let garbage = [
            (Some(f64::NAN), Some(f64::NAN)),
            (Some(f64::INFINITY), Some(-5.0)),
            (Some(-3.0), Some(f64::INFINITY)),
            (Some(0.0), None),
            (None, Some(f64::NEG_INFINITY)),
        ];
        for (k, (c, d)) in garbage.iter().cycle().take(50).enumerate() {
            let dec = sup.on_period(&snap(k as u64, 10_000, *c, *d));
            assert!(dec.entry_drop_prob.is_finite());
            assert!((0.0..=1.0).contains(&dec.entry_drop_prob));
            assert!(dec.shed_load_us.is_finite() && dec.shed_load_us >= 0.0);
        }
        assert!(sup.log().rejected_cost_samples > 0);
        assert!(sup.log().rejected_delay_samples > 0);
    }

    #[test]
    fn control_state_tracks_supervisor_mode() {
        let mut sup = supervised();
        assert_eq!(
            sup.control_state().unwrap().mode,
            LoopMode::Engaged,
            "engaged before any period"
        );
        let _ = sup.on_period(&snap(0, 400, Some(5105.0), Some(1900.0)));
        let engaged = sup.control_state().unwrap();
        assert_eq!(engaged.mode, LoopMode::Engaged);
        assert!(engaged.y_hat_s.is_finite(), "inner signals pass through");
        assert!((engaged.cost_est_us - 5105.0).abs() < 500.0);

        // Dropout: hold, then fallback; inner signals are masked.
        for k in 1..=6 {
            let _ = sup.on_period(&snap(k, 400, None, None));
        }
        let st = sup.control_state().unwrap();
        assert_eq!(st.mode, LoopMode::Fallback);
        assert!(st.y_hat_s.is_nan() && st.error_s.is_nan() && st.u_tps.is_nan());
        assert!((st.cost_est_us - 5105.0).abs() < 1e-9, "last good cost kept");
    }

    #[test]
    fn named_and_delegating() {
        let sup = supervised();
        assert_eq!(sup.name(), "SUPERVISED");
        assert!(sup.signals().is_empty());
    }
}
