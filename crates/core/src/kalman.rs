//! A scalar Kalman filter for tracking the per-tuple cost `c(k)`.
//!
//! The paper's conclusion suggests "combining stochastic methods such as
//! Kalman Filters with our controller design". The cost evolves as a
//! random walk (`c(k+1) = c(k) + w`, process noise `w`) and is observed
//! each period through a noisy per-period measurement (`m = c + v`).
//!
//! At steady state a scalar random-walk Kalman filter converges to a
//! fixed gain — i.e. it *is* an optimally tuned EWMA. Its advantage is
//! what happens off steady state: when measurements go missing (idle
//! periods with no completions — common exactly when load is about to
//! surge), the posterior variance grows, the gain rises, and the filter
//! re-acquires from the next measurements much faster than an EWMA whose
//! weight is fixed.

use serde::{Deserialize, Serialize};

/// Scalar random-walk Kalman filter over the cost, µs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KalmanCostEstimator {
    estimate_us: f64,
    variance: f64,
    process_var: f64,
    measurement_var: f64,
}

impl KalmanCostEstimator {
    /// Creates a filter.
    ///
    /// * `prior_us` — initial cost estimate;
    /// * `prior_var` — variance of that prior (µs²); large = trust the
    ///   first measurements quickly;
    /// * `process_var` — random-walk step variance per period (µs²);
    /// * `measurement_var` — per-period measurement noise variance (µs²).
    pub fn new(prior_us: f64, prior_var: f64, process_var: f64, measurement_var: f64) -> Self {
        assert!(prior_us > 0.0 && prior_us.is_finite());
        assert!(prior_var >= 0.0 && process_var >= 0.0 && measurement_var > 0.0);
        Self {
            estimate_us: prior_us,
            variance: prior_var,
            process_var,
            measurement_var,
        }
    }

    /// A sensible default tuning around a prior cost: the filter acquires
    /// a 4× cost jump within a few periods yet smooths ±10% measurement
    /// noise at steady state.
    pub fn with_defaults(prior_us: f64) -> Self {
        let scale = prior_us * prior_us;
        Self::new(prior_us, scale, 0.01 * scale, 0.04 * scale)
    }

    /// Predict + update step; missing/invalid measurements advance the
    /// prediction only (uncertainty grows). Returns the posterior
    /// estimate, µs.
    pub fn update(&mut self, measured_us: Option<f64>) -> f64 {
        // Predict: random walk adds process variance.
        self.variance += self.process_var;
        if let Some(m) = measured_us {
            if m.is_finite() && m > 0.0 {
                let gain = self.variance / (self.variance + self.measurement_var);
                self.estimate_us += gain * (m - self.estimate_us);
                self.variance *= 1.0 - gain;
            }
        }
        self.estimate_us
    }

    /// Current estimate, µs.
    pub fn current_us(&self) -> f64 {
        self.estimate_us
    }

    /// Current posterior variance, µs².
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Current Kalman gain (what the next update would use).
    pub fn gain(&self) -> f64 {
        let v = self.variance + self.process_var;
        v / (v + self.measurement_var)
    }
}

/// A cost tracker: EWMA (the Borealis-statistics analogue) or Kalman
/// (the paper's future-work item). Used by
/// [`CtrlStrategy`](crate::strategy::CtrlStrategy).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CostTracker {
    /// Exponentially weighted moving average.
    Ewma(crate::estimator::CostEstimator),
    /// Scalar Kalman filter.
    Kalman(KalmanCostEstimator),
    /// A constant prior that ignores every measurement, µs. This is the
    /// paper's implicit assumption made explicit: the offline-identified
    /// cost stays true forever. Exists so experiments can demonstrate what
    /// happens when it doesn't (`reproduce adaptive`).
    Frozen(f64),
}

impl CostTracker {
    /// Folds in a measurement and returns the current estimate, µs.
    pub fn update(&mut self, measured_us: Option<f64>) -> f64 {
        match self {
            CostTracker::Ewma(e) => e.update(measured_us),
            CostTracker::Kalman(k) => k.update(measured_us),
            CostTracker::Frozen(c) => *c,
        }
    }

    /// Current estimate, µs.
    pub fn current_us(&self) -> f64 {
        match self {
            CostTracker::Ewma(e) => e.current_us(),
            CostTracker::Kalman(k) => k.current_us(),
            CostTracker::Frozen(c) => *c,
        }
    }
}

/// Which tracker a [`LoopConfig`](crate::loop_::LoopConfig) should build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum CostTrackerKind {
    /// EWMA with the config's smoothing factor (default).
    #[default]
    Ewma,
    /// Kalman with [`KalmanCostEstimator::with_defaults`] tuning.
    Kalman,
    /// Frozen at the config's prior cost — measurements are ignored.
    Frozen,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn converges_to_constant_truth() {
        let mut k = KalmanCostEstimator::with_defaults(5000.0);
        for _ in 0..60 {
            k.update(Some(8000.0));
        }
        assert!((k.current_us() - 8000.0).abs() < 50.0);
        // Gain shrinks as the filter converges.
        assert!(k.gain() < 0.5);
    }

    #[test]
    fn missing_measurements_grow_uncertainty() {
        let mut k = KalmanCostEstimator::with_defaults(5000.0);
        for _ in 0..20 {
            k.update(Some(5000.0));
        }
        let settled_var = k.variance();
        for _ in 0..20 {
            k.update(None);
        }
        assert!(k.variance() > settled_var * 2.0);
        assert_eq!(k.current_us(), k.update(None));
    }

    #[test]
    fn rejects_garbage_measurements() {
        let mut k = KalmanCostEstimator::with_defaults(5000.0);
        k.update(Some(f64::NAN));
        k.update(Some(-10.0));
        k.update(Some(0.0));
        assert_eq!(k.current_us(), 5000.0);
    }

    /// The headline property: after a gap of missing measurements the
    /// grown variance raises the gain, so the filter re-acquires a cost
    /// jump faster than an EWMA with the matched steady-state weight.
    #[test]
    fn reacquires_after_gap_faster_than_comparable_ewma() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut noisy = |truth: f64| truth * (1.0 + 0.1 * (rng.gen::<f64>() - 0.5));

        let mut kalman = KalmanCostEstimator::with_defaults(5000.0);
        // Settle the Kalman gain first.
        for _ in 0..50 {
            kalman.update(Some(noisy(5000.0)));
        }
        let settled_gain = kalman.gain();
        let mut ewma = crate::estimator::CostEstimator::new(5000.0, settled_gain);
        for _ in 0..20 {
            let m = noisy(5000.0);
            kalman.update(Some(m));
            ewma.update(Some(m));
        }
        // A stall: 15 periods with nothing completing (no measurements),
        // during which the true cost jumps 4×.
        for _ in 0..15 {
            kalman.update(None);
            ewma.update(None);
        }
        assert!(kalman.gain() > settled_gain * 1.5, "gain must have grown");
        let mut kalman_steps = None;
        let mut ewma_steps = None;
        for step in 0..60 {
            let m = noisy(20_000.0);
            let kv = kalman.update(Some(m));
            let ev = ewma.update(Some(m));
            if kalman_steps.is_none() && kv > 18_000.0 {
                kalman_steps = Some(step);
            }
            if ewma_steps.is_none() && ev > 18_000.0 {
                ewma_steps = Some(step);
            }
        }
        let k_steps = kalman_steps.expect("kalman must acquire");
        let e_steps = ewma_steps.unwrap_or(61);
        assert!(
            k_steps < e_steps,
            "kalman {k_steps} steps vs ewma {e_steps}"
        );
    }

    #[test]
    fn tracker_enum_dispatch() {
        let mut t = CostTracker::Kalman(KalmanCostEstimator::with_defaults(5000.0));
        let v = t.update(Some(6000.0));
        assert!(v > 5000.0 && v <= 6000.0);
        assert_eq!(t.current_us(), v);
        let mut e = CostTracker::Ewma(crate::estimator::CostEstimator::new(5000.0, 0.5));
        assert_eq!(e.update(Some(6000.0)), 5500.0);
    }

    #[test]
    fn frozen_tracker_ignores_measurements() {
        let mut f = CostTracker::Frozen(5000.0);
        assert_eq!(f.update(Some(20_000.0)), 5000.0);
        assert_eq!(f.update(None), 5000.0);
        assert_eq!(f.current_us(), 5000.0);
    }
}
