//! Actuator arithmetic: turning a desired admission rate `v` into shedding
//! commands (§4.5.2).

/// Entry-point ("blackbox") shedding: Borealis flips an unfair coin per
/// arriving tuple; the head probability is the shedding factor `α`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EntryShedder;

impl EntryShedder {
    /// Eq. 13: `α = 1 − v(k)/fin(k+1)`, with `fin(k)` as the estimate of
    /// the unknown `fin(k+1)`. Clamped to `[0, 1]`; a vanishing `fin`
    /// yields `α = 0` (nothing arriving, nothing to shed).
    pub fn alpha_for(desired_rate_tps: f64, fin_estimate_tps: f64) -> f64 {
        if fin_estimate_tps <= f64::EPSILON {
            return 0.0;
        }
        (1.0 - desired_rate_tps / fin_estimate_tps).clamp(0.0, 1.0)
    }
}

/// In-network load-based shedding: drop queued (possibly partially
/// processed) tuples so that the remaining load matches what the
/// controller allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetworkShedder;

impl NetworkShedder {
    /// The queue-conserving load-shedding amount.
    ///
    /// Requiring the virtual queue to follow the controller —
    /// `q(k+1) = q(k) + u·T` with `v = u + fout` — and allowing the cut
    /// to be taken anywhere (input or queues) gives
    /// `Ls = Lq + Li − (q + v·T)·c = (fin − v)·T·c`, clamped to
    /// `[0, Lq + Li]`. With `v ≥ 0` this distributes exactly the
    /// entry-shedder's cut; with `v < 0` (the controller wants the queue
    /// to shrink faster than processing alone can) the excess is culled
    /// from the queues. Returns µs of CPU work.
    pub fn load_to_shed_us(
        queued_load_us: f64,
        fin_estimate_tps: f64,
        desired_rate_tps: f64,
        cost_us: f64,
        period_s: f64,
    ) -> f64 {
        let li = fin_estimate_tps * period_s * cost_us;
        let ls = (fin_estimate_tps - desired_rate_tps) * period_s * cost_us;
        ls.clamp(0.0, queued_load_us + li)
    }

    /// The formula as printed in §4.5.2: `Ls = Lq + Li − La` with
    /// `La = v·T·c`.
    ///
    /// Taken literally this sheds the *standing queue* down to `v·T`
    /// tuples every period — over-shedding by `Lq` relative to the
    /// controller's intent (the queue then settles near `fout·T·c ≈ 1 s`
    /// of work instead of the target backlog). It is kept for ablation:
    /// compare `ablations` benches and DESIGN.md §5.
    pub fn load_to_shed_us_paper_literal(
        queued_load_us: f64,
        fin_estimate_tps: f64,
        desired_rate_tps: f64,
        cost_us: f64,
        period_s: f64,
    ) -> f64 {
        let li = fin_estimate_tps * period_s * cost_us;
        let la = desired_rate_tps.max(0.0) * period_s * cost_us;
        (queued_load_us + li - la).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_zero_when_everything_admitted() {
        assert_eq!(EntryShedder::alpha_for(300.0, 200.0), 0.0);
        assert_eq!(EntryShedder::alpha_for(200.0, 200.0), 0.0);
    }

    #[test]
    fn alpha_fraction_when_overloaded() {
        let a = EntryShedder::alpha_for(100.0, 400.0);
        assert!((a - 0.75).abs() < 1e-12);
    }

    #[test]
    fn alpha_one_when_nothing_allowed() {
        assert_eq!(EntryShedder::alpha_for(0.0, 400.0), 1.0);
        assert_eq!(EntryShedder::alpha_for(-50.0, 400.0), 1.0);
    }

    #[test]
    fn alpha_zero_when_no_input() {
        assert_eq!(EntryShedder::alpha_for(100.0, 0.0), 0.0);
    }

    #[test]
    fn network_shed_matches_entry_cut_for_positive_v() {
        // 400 t/s arriving at 5 ms each, controller allows 190 t/s:
        // Ls = (400 − 190)·1·5000 = 1.05e6 µs — the queue is untouched.
        let ls = NetworkShedder::load_to_shed_us(1e6, 400.0, 190.0, 5000.0, 1.0);
        assert!((ls - 1.05e6).abs() < 1.0);
    }

    #[test]
    fn network_shed_culls_queue_for_negative_v() {
        // v = −100 t/s: shed all input plus 100·T tuples from the queue.
        let ls = NetworkShedder::load_to_shed_us(1e6, 100.0, -100.0, 5000.0, 1.0);
        assert!((ls - 1.0e6).abs() < 1.0);
    }

    #[test]
    fn network_shed_clamps_at_zero_and_at_available() {
        assert_eq!(
            NetworkShedder::load_to_shed_us(0.0, 100.0, 400.0, 5000.0, 1.0),
            0.0
        );
        // Cannot shed more than exists (queue + incoming).
        let ls = NetworkShedder::load_to_shed_us(1e5, 10.0, -10_000.0, 5000.0, 1.0);
        assert!((ls - (1e5 + 10.0 * 5000.0)).abs() < 1.0);
    }

    #[test]
    fn paper_literal_formula_sheds_standing_queue_too() {
        let lit = NetworkShedder::load_to_shed_us_paper_literal(1e6, 400.0, 190.0, 5000.0, 1.0);
        let cons = NetworkShedder::load_to_shed_us(1e6, 400.0, 190.0, 5000.0, 1.0);
        assert!((lit - cons - 1e6).abs() < 1.0, "literal over-sheds by Lq");
    }
}
