//! Priority-aware load shedding across streams.
//!
//! The paper's conclusion proposes "heterogeneous quality guarantees for
//! streams with different priorities". This module keeps the *same*
//! feedback loop deciding the total admission budget — the dynamics and
//! guarantees are untouched — and changes only the actuator: instead of
//! one coin for everyone, the admission budget is allocated to streams in
//! priority order (strict priority with optional weights), and per-entry
//! drop probabilities realise the allocation.

use crate::strategy::{CtrlStrategy, SheddingStrategy};
use crate::loop_::{LoopConfig, SignalRow};
use serde::{Deserialize, Serialize};
use streamshed_engine::hook::{ControlHook, Decision, PeriodSnapshot};

/// Relative importance of each entry stream (index-aligned with the
/// network's entry list; higher weight = more protected).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamPriorities {
    weights: Vec<f64>,
}

impl StreamPriorities {
    /// Creates priorities from positive weights.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "need at least one stream");
        assert!(
            weights.iter().all(|w| *w > 0.0 && w.is_finite()),
            "weights must be positive"
        );
        Self { weights }
    }

    /// Number of streams.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True if only one stream is configured.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Allocates a global keep fraction into per-stream keep fractions by
    /// strict priority: the highest-weight streams are filled first;
    /// equal weights share proportionally.
    ///
    /// `keep` is the overall fraction of arrivals that may be admitted
    /// (`v/fin`, clamped to [0, 1]); streams are assumed to carry equal
    /// arrival shares (the engine round-robins arrivals across entries).
    /// Returns per-stream keep fractions in `[0, 1]`.
    pub fn allocate_keep(&self, keep: f64) -> Vec<f64> {
        let n = self.weights.len();
        let keep = keep.clamp(0.0, 1.0);
        // Total budget in "stream shares": each stream offers 1/n of the
        // arrivals; budget = keep (fraction of the total).
        let mut budget = keep * n as f64; // in units of one stream's input
        let mut keeps = vec![0.0; n];
        // Process strictly by descending weight; ties share evenly.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            self.weights[b]
                .partial_cmp(&self.weights[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut i = 0;
        while i < n && budget > 1e-12 {
            // Group of equal-weight streams.
            let w = self.weights[order[i]];
            let mut j = i;
            while j < n && (self.weights[order[j]] - w).abs() < 1e-12 {
                j += 1;
            }
            let group = &order[i..j];
            let per_stream = (budget / group.len() as f64).min(1.0);
            for &s in group {
                keeps[s] = per_stream;
            }
            budget -= per_stream * group.len() as f64;
            i = j;
        }
        keeps
    }

    /// Converts per-stream keep fractions into drop probabilities.
    pub fn drop_probs(&self, keep: f64) -> Vec<f64> {
        self.allocate_keep(keep)
            .into_iter()
            .map(|k| (1.0 - k).clamp(0.0, 1.0))
            .collect()
    }
}

/// CTRL with priority-aware entry shedding.
///
/// Delegates all loop dynamics to an inner [`CtrlStrategy`] and rewrites
/// its scalar `α` into per-entry probabilities that protect high-priority
/// streams.
#[derive(Debug, Clone)]
pub struct PriorityCtrlStrategy {
    inner: CtrlStrategy,
    priorities: StreamPriorities,
}

impl PriorityCtrlStrategy {
    /// Builds the strategy.
    pub fn new(cfg: &LoopConfig, priorities: StreamPriorities) -> Self {
        Self {
            inner: CtrlStrategy::from_config(cfg),
            priorities,
        }
    }

    /// The configured priorities.
    pub fn priorities(&self) -> &StreamPriorities {
        &self.priorities
    }
}

impl ControlHook for PriorityCtrlStrategy {
    fn on_period(&mut self, snap: &PeriodSnapshot) -> Decision {
        let decision = self.inner.on_period(snap);
        if decision.shed_load_us > 0.0 {
            // Network mode: location-based shedding is priority-agnostic
            // here; pass through.
            return decision;
        }
        let keep = 1.0 - decision.entry_drop_prob;
        Decision::per_entry(self.priorities.drop_probs(keep))
    }
}

impl SheddingStrategy for PriorityCtrlStrategy {
    fn name(&self) -> &'static str {
        "CTRL-PRIORITY"
    }

    fn signals(&self) -> &[SignalRow] {
        self.inner.signals()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_fills_high_priority_first() {
        let p = StreamPriorities::new(vec![1.0, 10.0, 5.0]);
        // Budget for exactly one of three streams.
        let keeps = p.allocate_keep(1.0 / 3.0);
        assert!((keeps[1] - 1.0).abs() < 1e-9, "{keeps:?}");
        assert!(keeps[2] < 1e-9);
        assert!(keeps[0] < 1e-9);
        // Budget for two streams: top two full.
        let keeps = p.allocate_keep(2.0 / 3.0);
        assert!((keeps[1] - 1.0).abs() < 1e-9);
        assert!((keeps[2] - 1.0).abs() < 1e-9);
        assert!(keeps[0] < 1e-9);
    }

    #[test]
    fn equal_weights_share_evenly() {
        let p = StreamPriorities::new(vec![1.0, 1.0]);
        let keeps = p.allocate_keep(0.5);
        assert!((keeps[0] - 0.5).abs() < 1e-9);
        assert!((keeps[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn partial_budget_splits_within_group() {
        let p = StreamPriorities::new(vec![1.0, 5.0, 5.0]);
        // 0.5 of total = 1.5 stream-shares: the two weight-5 streams get
        // 0.75 each, the low-priority one gets nothing.
        let keeps = p.allocate_keep(0.5);
        assert!((keeps[1] - 0.75).abs() < 1e-9, "{keeps:?}");
        assert!((keeps[2] - 0.75).abs() < 1e-9);
        assert!(keeps[0] < 1e-9);
    }

    #[test]
    fn keep_everything_and_nothing() {
        let p = StreamPriorities::new(vec![2.0, 1.0]);
        assert_eq!(p.allocate_keep(1.0), vec![1.0, 1.0]);
        assert_eq!(p.allocate_keep(0.0), vec![0.0, 0.0]);
        assert_eq!(p.drop_probs(1.0), vec![0.0, 0.0]);
        assert_eq!(p.drop_probs(0.0), vec![1.0, 1.0]);
    }

    #[test]
    fn total_admission_preserved() {
        // Whatever the weights, the aggregate keep fraction matches the
        // controller's budget.
        let p = StreamPriorities::new(vec![3.0, 1.0, 2.0, 1.0]);
        for &keep in &[0.0, 0.2, 0.37, 0.75, 1.0] {
            let keeps = p.allocate_keep(keep);
            let total: f64 = keeps.iter().sum::<f64>() / keeps.len() as f64;
            assert!((total - keep).abs() < 1e-9, "keep {keep}: {keeps:?}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_weights() {
        let _ = StreamPriorities::new(vec![1.0, 0.0]);
    }
}
