//! A simplified Load Shedding Roadmap (LSRM).
//!
//! The paper deliberately focuses on *when* and *how much* to shed and
//! delegates *where* to Aurora's LSRM (\[26\]): a precomputed ranking of
//! drop locations such that, for any required load reduction, the plan
//! with minimal utility loss can be looked up instead of optimised
//! online. This module provides that complement:
//!
//! * every operator input is a candidate drop location;
//! * dropping one queued tuple before node `n` saves its expected
//!   remaining CPU (`load(n)`, the network's downstream load) and loses
//!   its expected contribution to query outputs (`yield(n)` — tuples
//!   deeper in the network have survived more filters, so they are
//!   *more* valuable);
//! * locations are ranked by saved-load per lost-output; a plan for a
//!   target `Ls` is a greedy prefix over that ranking, bounded by what
//!   is actually queued at each location.

use serde::{Deserialize, Serialize};
use streamshed_engine::network::{NodeId, QueryNetwork};

/// One candidate drop location.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Location {
    /// Node index (drop happens in front of this operator).
    pub node: usize,
    /// Expected CPU saved per dropped tuple, µs.
    pub load_saved_us: f64,
    /// Expected query outputs lost per dropped tuple.
    pub output_yield: f64,
    /// Ranking key: µs of load saved per output lost.
    pub ratio: f64,
}

/// The precomputed roadmap: locations sorted best-first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lsrm {
    locations: Vec<Location>,
}

/// A concrete shedding plan: `(node index, tuples to drop)` plus its
/// expected totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShedPlan {
    /// Per-location drop counts.
    pub drops: Vec<(usize, u64)>,
    /// Total load the plan sheds, µs.
    pub load_shed_us: f64,
    /// Total expected query outputs lost.
    pub utility_loss: f64,
}

impl Lsrm {
    /// Precomputes the roadmap for a network.
    pub fn build(net: &QueryNetwork) -> Self {
        let mut locations: Vec<Location> = (0..net.len())
            .map(|i| {
                let id = NodeId::from_index(i);
                let load = net.downstream_load_us(id);
                let output_yield = net.output_yield(id);
                Location {
                    node: i,
                    load_saved_us: load,
                    output_yield,
                    ratio: load / output_yield.max(1e-12),
                }
            })
            .collect();
        locations.sort_by(|a, b| {
            b.ratio
                .partial_cmp(&a.ratio)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Self { locations }
    }

    /// The ranked locations, best first.
    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// Builds the minimal-utility plan that sheds at least `target_us`
    /// of load, constrained by the tuples actually queued per node
    /// (`available[node]`). Falls short only if the queues cannot supply
    /// the target.
    pub fn plan(&self, target_us: f64, available: &[u64]) -> ShedPlan {
        let mut remaining = target_us;
        let mut drops = Vec::new();
        let mut load = 0.0;
        let mut utility = 0.0;
        for loc in &self.locations {
            if remaining <= 0.0 {
                break;
            }
            let have = available.get(loc.node).copied().unwrap_or(0);
            if have == 0 || loc.load_saved_us <= 0.0 {
                continue;
            }
            let need = (remaining / loc.load_saved_us).ceil() as u64;
            let take = need.min(have);
            if take == 0 {
                continue;
            }
            drops.push((loc.node, take));
            let shed = take as f64 * loc.load_saved_us;
            load += shed;
            utility += take as f64 * loc.output_yield;
            remaining -= shed;
        }
        ShedPlan {
            drops,
            load_shed_us: load,
            utility_loss: utility,
        }
    }
}

/// Expected query outputs per tuple entering each node — delegated to
/// the network's own precomputed ranking input (see
/// [`QueryNetwork::output_yield`]).
#[cfg(test)]
fn output_yields(net: &QueryNetwork) -> Vec<f64> {
    (0..net.len())
        .map(|i| net.output_yield(NodeId::from_index(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamshed_engine::network::NetworkBuilder;
    use streamshed_engine::networks::identification_network;
    use streamshed_engine::operator::{Filter, Map};
    use streamshed_engine::time::millis;

    /// entry filter (sel 0.5) → expensive map → sink
    fn filtered_chain() -> QueryNetwork {
        let mut b = NetworkBuilder::new();
        let f = b.add("f", millis(1), Filter::value_below(0.5));
        let m = b.add("m", millis(8), Map::identity());
        b.connect(f, m);
        b.entry(f);
        b.build().unwrap()
    }

    #[test]
    fn yields_grow_deeper_in_the_network() {
        let net = filtered_chain();
        let y = output_yields(&net);
        // A tuple at the entry yields 0.5 outputs (half are filtered);
        // one that reached the map yields 1.
        assert!((y[0] - 0.5).abs() < 1e-12);
        assert!((y[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entry_drop_ranks_best_on_filtered_chain() {
        // Entry: saves 1 + 0.5·8 = 5 ms, loses 0.5 outputs → ratio 10.
        // Mid:   saves 8 ms, loses 1 output → ratio 8.
        let lsrm = Lsrm::build(&filtered_chain());
        assert_eq!(lsrm.locations()[0].node, 0);
        assert!(lsrm.locations()[0].ratio > lsrm.locations()[1].ratio);
    }

    #[test]
    fn plan_meets_target_with_minimal_utility() {
        let lsrm = Lsrm::build(&filtered_chain());
        // Plenty queued everywhere; want 50 ms of load gone.
        let plan = lsrm.plan(50_000.0, &[100, 100]);
        assert!(plan.load_shed_us >= 50_000.0);
        // All drops at the entry (10 tuples × 5 ms), utility 10·0.5 = 5.
        assert_eq!(plan.drops, vec![(0, 10)]);
        assert!((plan.utility_loss - 5.0).abs() < 1e-9);
    }

    #[test]
    fn plan_spills_to_next_location_when_queue_exhausted() {
        let lsrm = Lsrm::build(&filtered_chain());
        // Only 4 tuples at the entry (20 ms); need 50 ms → spill to mid.
        let plan = lsrm.plan(50_000.0, &[4, 100]);
        assert_eq!(plan.drops[0], (0, 4));
        assert_eq!(plan.drops[1].0, 1);
        assert!(plan.load_shed_us >= 50_000.0);
    }

    #[test]
    fn plan_bounded_by_availability() {
        let lsrm = Lsrm::build(&filtered_chain());
        let plan = lsrm.plan(1e9, &[2, 3]);
        let total: u64 = plan.drops.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 5);
        assert!(plan.load_shed_us < 1e9);
    }

    #[test]
    fn lsrm_beats_random_location_choice_on_utility() {
        // For the same shed load, the LSRM plan must lose no more utility
        // than a "drop everywhere proportionally" plan.
        let net = identification_network();
        let lsrm = Lsrm::build(&net);
        let available = vec![50u64; net.len()];
        let target = 300_000.0;
        let plan = lsrm.plan(target, &available);

        // Proportional baseline achieving the same load.
        let yields = output_yields(&net);
        let mut base_load = 0.0;
        let mut base_utility = 0.0;
        'outer: loop {
            for (i, y) in yields.iter().enumerate() {
                let l = net.downstream_load_us(streamshed_engine::network::NodeId::from_index(i));
                if l <= 0.0 {
                    continue;
                }
                base_load += l;
                base_utility += y;
                if base_load >= target {
                    break 'outer;
                }
            }
        }
        assert!(
            plan.utility_loss <= base_utility + 1e-9,
            "lsrm {} vs proportional {base_utility}",
            plan.utility_loss
        );
    }

    #[test]
    fn roadmap_covers_every_node() {
        let net = identification_network();
        let lsrm = Lsrm::build(&net);
        assert_eq!(lsrm.locations().len(), net.len());
        // Ratios are sorted descending.
        assert!(lsrm
            .locations()
            .windows(2)
            .all(|w| w[0].ratio >= w[1].ratio));
    }
}
