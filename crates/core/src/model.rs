//! The paper's dynamic DSMS model (§4.2, Table 1).
//!
//! | symbol | meaning                               |
//! |--------|----------------------------------------|
//! | `k`    | discrete time index                    |
//! | `T`    | control period                         |
//! | `yd`   | target delay                           |
//! | `H`    | headroom (CPU fraction for queries)    |
//! | `y`    | processing delay                       |
//! | `fin`  | data input rate                        |
//! | `fout` | data output rate                       |
//! | `u`    | controller output                      |
//! | `v`    | desired input rate (`u + fout`)        |
//! | `c`    | per-tuple processing cost              |
//! | `q`    | outstanding tuples (virtual queue)     |
//!
//! The model: `y(k) = (c/H)·(q(k−1) + 1)` (Eq. 2), equivalently
//! `G(z) = cT / (H·(z − 1))` (Eq. 4) — an integrator whose state is the
//! virtual queue length.

use serde::{Deserialize, Serialize};
use streamshed_engine::time::SimDuration;
use streamshed_zdomain::TransferFunction;

/// The first-order integrator model of the stream engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlantModel {
    /// Expected per-tuple processing cost `c`, microseconds.
    pub cost_us: f64,
    /// Headroom factor `H` (fraction of CPU available to queries).
    pub headroom: f64,
    /// Control period `T`.
    pub period: SimDuration,
}

impl PlantModel {
    /// Creates a model; panics on nonsensical parameters.
    pub fn new(cost_us: f64, headroom: f64, period: SimDuration) -> Self {
        assert!(cost_us > 0.0 && cost_us.is_finite(), "cost must be positive");
        assert!(
            headroom > 0.0 && headroom <= 1.0,
            "headroom must be in (0, 1]"
        );
        assert!(period.as_micros() > 0, "period must be positive");
        Self {
            cost_us,
            headroom,
            period,
        }
    }

    /// Per-tuple cost in seconds.
    pub fn cost_s(&self) -> f64 {
        self.cost_us / 1e6
    }

    /// Plant gain `g = c·T / H` (seconds of delay added per unit of
    /// sustained input-rate excess).
    pub fn gain(&self) -> f64 {
        self.cost_s() * self.period.as_secs_f64() / self.headroom
    }

    /// Processing capacity `H / c` in tuples/second — the knee of Fig. 5.
    pub fn capacity_tps(&self) -> f64 {
        self.headroom / self.cost_s()
    }

    /// Predicted average delay (seconds) for a virtual queue of length `q`
    /// (Eq. 2 / Eq. 11): `ŷ = (q + 1)·c / H`.
    pub fn predict_delay_s(&self, q: u64) -> f64 {
        (q as f64 + 1.0) * self.cost_s() / self.headroom
    }

    /// The queue length that realises a target delay `yd` (inverse of
    /// [`Self::predict_delay_s`]): `q* = yd·H/c − 1`, floored at 0.
    pub fn queue_for_delay(&self, target_delay_s: f64) -> f64 {
        (target_delay_s * self.headroom / self.cost_s() - 1.0).max(0.0)
    }

    /// The plant transfer function `G(z) = cT / (H(z−1))` (Eq. 4).
    pub fn transfer_function(&self) -> TransferFunction {
        TransferFunction::integrator(self.gain())
    }

    /// One step of the difference-equation form of the model:
    /// `q(k) = q(k−1) + (fin − fout)·T`, returning the new queue length
    /// (floored at 0) — used by tests and the open-loop failure demos.
    pub fn step_queue(&self, q: f64, fin_tps: f64, fout_tps: f64) -> f64 {
        (q + (fin_tps - fout_tps) * self.period.as_secs_f64()).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamshed_engine::time::{millis, secs};

    fn paper_model() -> PlantModel {
        // c = 1000/190 ms ≈ 5.26 ms (the paper's estimate), H = 0.97.
        PlantModel::new(1e6 / 190.0, 0.97, secs(1))
    }

    #[test]
    fn capacity_matches_paper_knee() {
        let m = paper_model();
        // capacity = H/c = 0.97·190 ≈ 184.3 t/s with the naive c; with the
        // calibrated c = H/190 it is exactly 190.
        assert!((m.capacity_tps() - 184.3).abs() < 0.1);
        let calibrated = PlantModel::new(0.97 / 190.0 * 1e6, 0.97, secs(1));
        assert!((calibrated.capacity_tps() - 190.0).abs() < 1e-9);
    }

    #[test]
    fn predicted_delay_is_affine_in_queue() {
        let m = paper_model();
        let y0 = m.predict_delay_s(0);
        let y100 = m.predict_delay_s(100);
        assert!((y0 - m.cost_s() / m.headroom).abs() < 1e-12);
        assert!((y100 - y0 - 100.0 * m.cost_s() / m.headroom).abs() < 1e-9);
    }

    #[test]
    fn queue_for_delay_inverts_prediction() {
        let m = paper_model();
        let q = m.queue_for_delay(2.0);
        let y = m.predict_delay_s(q.round() as u64);
        assert!((y - 2.0).abs() < 0.01, "roundtrip y = {y}");
    }

    #[test]
    fn queue_for_tiny_delay_floors_at_zero() {
        let m = paper_model();
        assert_eq!(m.queue_for_delay(0.0), 0.0);
    }

    #[test]
    fn transfer_function_is_integrator() {
        let m = paper_model();
        let g = m.transfer_function();
        let poles = g.poles();
        assert_eq!(poles.len(), 1);
        assert!((poles[0].re - 1.0).abs() < 1e-12);
        // Gain: cT/H.
        assert!((g.num().coeff(0) - m.gain()).abs() < 1e-12);
    }

    #[test]
    fn step_queue_integrates_excess() {
        let m = PlantModel::new(5000.0, 1.0, secs(1));
        let q1 = m.step_queue(0.0, 300.0, 200.0);
        assert!((q1 - 100.0).abs() < 1e-9);
        // Queue cannot go negative.
        assert_eq!(m.step_queue(10.0, 0.0, 200.0), 0.0);
    }

    #[test]
    fn gain_scales_with_period() {
        let m1 = PlantModel::new(5000.0, 1.0, millis(500));
        let m2 = PlantModel::new(5000.0, 1.0, secs(1));
        assert!((m2.gain() / m1.gain() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn rejects_bad_headroom() {
        let _ = PlantModel::new(5000.0, 1.5, secs(1));
    }
}
