//! The runtime feedback controller (Eq. 10, Appendix A).
//!
//! `u(k) = (H/(c·T))·[b0·e(k) + b1·e(k−1)] − a·u(k−1)`
//!
//! with gain-normalised parameters from
//! [`streamshed_zdomain::design::design_for_integrator`]. The controller
//! output `u` is a *rate* (tuples/second): the allowed growth of the
//! virtual queue over the next period, to which the actuator adds the
//! measured departure rate `fout` to obtain the desired admission rate
//! `v = u + fout`.
//!
//! One DSMS-specific addition (in the spirit of §4.5): **anti-windup** by
//! back-calculation. The actuator saturates — it cannot admit more than
//! arrives (`v ≤ fin`) nor a negative amount (`v ≥ 0`). Feeding the
//! *saturated* `u` back into the recursion keeps the controller state
//! consistent with what was actually applied; without it, long idle
//! stretches wind the state up and the first burst overshoots massively.

use serde::{Deserialize, Serialize};
use streamshed_zdomain::design::ControllerParams;

/// The paper's first-order delay controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedbackController {
    params: ControllerParams,
    e_prev: f64,
    u_prev: f64,
}

impl FeedbackController {
    /// Creates a controller with zero initial conditions
    /// (`e(−1) = u(−1) = 0`, matching the z-domain analysis).
    pub fn new(params: ControllerParams) -> Self {
        Self {
            params,
            e_prev: 0.0,
            u_prev: 0.0,
        }
    }

    /// The paper's published tuning (`b0 = 0.4, b1 = −0.31, a = −0.8`).
    ///
    /// These constants are not free choices: they fall out of placing a
    /// double closed-loop pole at `z = 0.7` with `b0 = 0.4` fixed, and
    /// the design equations recover them exactly:
    ///
    /// ```
    /// use streamshed_control::controller::FeedbackController;
    /// use streamshed_zdomain::design::{design_for_integrator, DesignSpec};
    ///
    /// // (z − 0.7)² = z² − 1.4z + 0.49, b0 = 0.4
    /// let derived = design_for_integrator(&DesignSpec::from_double_pole(0.7));
    /// let paper = FeedbackController::paper().params();
    /// assert!((derived.b0 - paper.b0).abs() < 1e-12 && (paper.b0 - 0.4).abs() < 1e-12);
    /// assert!((derived.b1 - paper.b1).abs() < 1e-12 && (paper.b1 + 0.31).abs() < 1e-12);
    /// assert!((derived.a - paper.a).abs() < 1e-12 && (paper.a + 0.8).abs() < 1e-12);
    /// ```
    pub fn paper() -> Self {
        Self::new(ControllerParams::PAPER)
    }

    /// The parameters in use.
    pub fn params(&self) -> ControllerParams {
        self.params
    }

    /// Computes the raw control output `u(k)` in tuples/second.
    ///
    /// * `error_s` — `e(k) = yd − ŷ(k)` in seconds;
    /// * `cost_s` — current per-tuple cost estimate `c(k)`, seconds;
    /// * `period_s` — control period `T`, seconds;
    /// * `headroom` — `H`.
    ///
    /// Call [`Self::commit`] afterwards with the *applied* (possibly
    /// saturated) value to update the state.
    pub fn compute(&mut self, error_s: f64, cost_s: f64, period_s: f64, headroom: f64) -> f64 {
        assert!(cost_s > 0.0 && period_s > 0.0 && headroom > 0.0);
        let gain = headroom / (cost_s * period_s);
        gain * (self.params.b0 * error_s + self.params.b1 * self.e_prev)
            - self.params.a * self.u_prev
    }

    /// Commits the period: records the error and the **applied** control
    /// value (anti-windup back-calculation).
    pub fn commit(&mut self, error_s: f64, applied_u: f64) {
        self.e_prev = error_s;
        self.u_prev = applied_u;
    }

    /// Resets the dynamic state (e.g. after a set-point change if desired;
    /// the paper's controller keeps state across set-point changes and so
    /// does the default loop).
    pub fn reset(&mut self) {
        self.e_prev = 0.0;
        self.u_prev = 0.0;
    }

    /// Swaps in new parameters with **bumpless transfer**: the internal
    /// state is re-initialised so the history contribution to the next
    /// output is unchanged by the swap.
    ///
    /// The control law splits into a current-error term and a history term,
    /// `u(k) = g·b0·e(k) + [g·b1·e(k−1) − a·u(k−1)]`, where `g = H/(cT)`
    /// is the loop gain the caller applies through [`Self::compute`]. A
    /// naive parameter swap (or a state-losing rebuild) discards the
    /// history term and kicks the actuation α. Here the history of the old
    /// tuning,
    ///
    /// `hist = g_old·b1_old·e(k−1) − a_old·u(k−1)`,
    ///
    /// is preserved exactly by keeping `u(k−1)` and re-solving for the
    /// stored error sample under the new tuning:
    ///
    /// `e'(k−1) = (hist + a_new·u(k−1)) / (g_new·b1_new)`.
    ///
    /// The post-swap output then differs from the no-swap output by exactly
    /// `(g_new·b0_new − g_old·b0_old)·e(k)` — the unavoidable change in how
    /// the *current* error is weighted, which vanishes at `e(k) = 0` and is
    /// the bound the bumpless-transfer property tests assert. When
    /// `g_new·b1_new` is degenerate (≈ 0) the history cannot be carried and
    /// the stored error is zeroed instead.
    ///
    /// `gain_old` and `gain_new` are the loop gains `H/(cT)` in effect
    /// before and after the swap (they differ when a re-identified cost,
    /// not just the pole set, triggered the retune).
    ///
    /// ```
    /// use streamshed_control::controller::FeedbackController;
    /// use streamshed_zdomain::design::{design_for_integrator, DesignSpec};
    ///
    /// let (c, t, h) = (5.0e-3, 1.0, 0.97);
    /// let gain = h / (c * t);
    /// let mut swapped = FeedbackController::paper();
    /// let mut frozen = FeedbackController::paper();
    /// // Build up identical history on both controllers.
    /// for e in [0.8, 0.5, 0.3] {
    ///     let u = swapped.compute(e, c, t, h);
    ///     swapped.commit(e, u);
    ///     let u = frozen.compute(e, c, t, h);
    ///     frozen.commit(e, u);
    /// }
    /// // Retune to a faster pole; gain unchanged (same cost estimate).
    /// let fast = design_for_integrator(&DesignSpec::from_double_pole(0.5));
    /// swapped.retune_bumpless(fast, gain, gain);
    /// // At zero current error the swap is invisible: the history term
    /// // carries over exactly.
    /// let u_swap = swapped.compute(0.0, c, t, h);
    /// let u_keep = frozen.compute(0.0, c, t, h);
    /// assert!((u_swap - u_keep).abs() < 1e-9);
    /// ```
    pub fn retune_bumpless(
        &mut self,
        new_params: ControllerParams,
        gain_old: f64,
        gain_new: f64,
    ) {
        let hist = gain_old * self.params.b1 * self.e_prev - self.params.a * self.u_prev;
        let denom = gain_new * new_params.b1;
        self.e_prev = if denom.abs() > 1e-12 && denom.is_finite() {
            (hist + new_params.a * self.u_prev) / denom
        } else {
            0.0
        };
        self.params = new_params;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamshed_zdomain::design::{design_for_integrator, DesignSpec};

    const C: f64 = 5.263e-3; // seconds
    const T: f64 = 1.0;
    const H: f64 = 0.97;

    /// Simulates the closed loop against the ideal plant
    /// q(k) = q(k−1) + u_applied(k)·T (the queue *is* the integrator) and
    /// returns the ŷ trajectory.
    fn simulate_ideal_loop(target_s: f64, steps: usize) -> Vec<f64> {
        let mut ctrl = FeedbackController::paper();
        let mut q: f64 = 0.0;
        let mut ys = Vec::with_capacity(steps);
        for _ in 0..steps {
            let y = (q + 1.0) * C / H;
            ys.push(y);
            let e = target_s - y;
            let u = ctrl.compute(e, C, T, H);
            ctrl.commit(e, u);
            // Unbounded actuator: queue follows the controller exactly.
            q = (q + u * T).max(0.0);
        }
        ys
    }

    #[test]
    fn converges_to_target_in_a_few_periods() {
        let ys = simulate_ideal_loop(2.0, 40);
        // 63% of the way by ~period 4, settled by ~12 (paper's design).
        assert!(ys[4] > 0.55 * 2.0, "y[4] = {}", ys[4]);
        for y in &ys[12..] {
            assert!((y - 2.0).abs() < 0.15, "settled value {y}");
        }
    }

    #[test]
    fn no_overshoot_with_critical_damping() {
        let ys = simulate_ideal_loop(2.0, 60);
        let peak = ys.iter().cloned().fold(0.0, f64::max);
        assert!(peak < 2.0 * 1.07, "peak {peak}");
    }

    #[test]
    fn tracks_setpoint_changes() {
        let mut ctrl = FeedbackController::paper();
        let mut q: f64 = 0.0;
        let run_to = |target: f64, steps: usize, ctrl: &mut FeedbackController,
                          q: &mut f64| {
            let mut last = 0.0;
            for _ in 0..steps {
                last = (*q + 1.0) * C / H;
                let e = target - last;
                let u = ctrl.compute(e, C, T, H);
                ctrl.commit(e, u);
                *q = (*q + u * T).max(0.0);
            }
            last
        };
        let y = run_to(1.0, 30, &mut ctrl, &mut q);
        assert!((y - 1.0).abs() < 0.1, "after first target: {y}");
        let y = run_to(3.0, 30, &mut ctrl, &mut q);
        assert!((y - 3.0).abs() < 0.2, "after second target: {y}");
    }

    #[test]
    fn rejects_cost_disturbance() {
        // Cost doubles mid-run; the loop must re-converge (Fig. 15's c
        // peaks). We fold the changing cost into both plant and controller
        // (the estimator tracks it).
        let mut ctrl = FeedbackController::paper();
        let mut q: f64 = 0.0;
        let target = 2.0;
        let mut ys = Vec::new();
        for k in 0..80 {
            let c = if k < 40 { C } else { 2.0 * C };
            let y = (q + 1.0) * c / H;
            ys.push(y);
            let e = target - y;
            let u = ctrl.compute(e, c, T, H);
            ctrl.commit(e, u);
            q = (q + u * T).max(0.0);
        }
        // Re-converged by 20 periods after the change.
        for y in &ys[65..] {
            assert!((y - target).abs() < 0.25, "post-disturbance {y}");
        }
    }

    #[test]
    fn anti_windup_limits_recovery_overshoot() {
        // Saturate hard (actuator pinned at 0) for a long time, then
        // release; with back-calculation the first free step must not be
        // absurdly large.
        let mut ctrl = FeedbackController::paper();
        for _ in 0..50 {
            let e = -10.0; // massive positive queue → negative error
            let u = ctrl.compute(e, C, T, H);
            // Actuator can at most stop admissions: applied u ≥ −fout,
            // here modelled as −190 t/s.
            let applied = u.max(-190.0);
            ctrl.commit(e, applied);
        }
        let u_free = ctrl.compute(0.0, C, T, H);
        assert!(
            u_free.abs() < 2000.0,
            "state must not have wound up: u = {u_free}"
        );
    }

    #[test]
    fn without_commit_state_is_stale() {
        let mut a = FeedbackController::paper();
        let mut b = FeedbackController::paper();
        let u1a = a.compute(1.0, C, T, H);
        let u1b = b.compute(1.0, C, T, H);
        assert_eq!(u1a, u1b);
        a.commit(1.0, u1a);
        // `a` has history now; `b` does not: next outputs differ.
        let u2a = a.compute(0.5, C, T, H);
        let u2b = b.compute(0.5, C, T, H);
        assert_ne!(u2a, u2b);
    }

    #[test]
    fn alternative_designs_converge_too() {
        for pole in [0.5, 0.8] {
            let params = design_for_integrator(&DesignSpec::from_double_pole(pole));
            let mut ctrl = FeedbackController::new(params);
            let mut q: f64 = 0.0;
            let mut y = 0.0;
            for _ in 0..60 {
                y = (q + 1.0) * C / H;
                let e = 2.0 - y;
                let u = ctrl.compute(e, C, T, H);
                ctrl.commit(e, u);
                q = (q + u * T).max(0.0);
            }
            assert!((y - 2.0).abs() < 0.2, "pole {pole}: settled {y}");
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut ctrl = FeedbackController::paper();
        let u = ctrl.compute(1.0, C, T, H);
        ctrl.commit(1.0, u);
        ctrl.reset();
        let u_after = ctrl.compute(1.0, C, T, H);
        assert_eq!(u, u_after);
    }
}
