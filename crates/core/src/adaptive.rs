//! Adaptive control: online identification of the plant gain with
//! recursive least squares (RLS), and periodic controller re-design.
//!
//! The paper's conclusion names this as immediate follow-up work: "use
//! adaptive control techniques to capture the internal variations of the
//! system model and provide better control over the whole system". The
//! basic CTRL loop already *tolerates* slow cost drift through its cost
//! estimator; the adaptive loop goes further — it identifies the plant
//! gain `b` in
//!
//! ```text
//! ŷ(k+1) − ŷ(k) = b · (v_applied(k) − fout(k)) · T + disturbance
//! ```
//!
//! directly from closed-loop data (`b = c/(H·T)` per queued-tuple
//! second), then re-solves the Appendix-A pole placement against the
//! *identified* gain every period. When the model is right, the
//! identified `b` matches `c/H`; when the engine misbehaves (hidden
//! contention, wrong `H`), the adaptive loop still places its poles
//! correctly while the fixed-gain loop detunes.

use crate::controller::FeedbackController;
use crate::estimator::DelayEstimator;
use crate::kalman::CostTracker;
use crate::loop_::{LoopConfig, SignalRow};
use crate::shedder::EntryShedder;
use crate::strategy::SheddingStrategy;
use serde::{Deserialize, Serialize};
use streamshed_engine::hook::{ControlHook, Decision, PeriodSnapshot};
use streamshed_zdomain::design::{design_for_integrator, ControllerParams, DesignSpec};

/// Scalar recursive-least-squares estimator with exponential forgetting:
/// fits `y = θ·x` online.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RlsEstimator {
    theta: f64,
    covariance: f64,
    forgetting: f64,
}

impl RlsEstimator {
    /// Creates an estimator.
    ///
    /// * `prior` — initial parameter estimate;
    /// * `prior_cov` — confidence in the prior (larger = adapt faster);
    /// * `forgetting` — λ ∈ (0, 1]; smaller discounts old data faster.
    pub fn new(prior: f64, prior_cov: f64, forgetting: f64) -> Self {
        assert!(prior_cov > 0.0);
        assert!(forgetting > 0.0 && forgetting <= 1.0);
        Self {
            theta: prior,
            covariance: prior_cov,
            forgetting,
        }
    }

    /// Feeds one observation pair, returns the updated estimate.
    ///
    /// Near-zero regressors carry no information and are skipped (they
    /// would otherwise blow the gain up).
    pub fn update(&mut self, x: f64, y: f64) -> f64 {
        if !x.is_finite() || !y.is_finite() || x.abs() < 1e-12 {
            return self.theta;
        }
        let lambda = self.forgetting;
        let px = self.covariance * x;
        let gain = px / (lambda + x * px);
        self.theta += gain * (y - self.theta * x);
        self.covariance = (self.covariance - gain * x * self.covariance) / lambda;
        // Keep the covariance bounded away from degeneracy.
        self.covariance = self.covariance.clamp(1e-12, 1e12);
        self.theta
    }

    /// Current parameter estimate.
    pub fn estimate(&self) -> f64 {
        self.theta
    }

    /// Current covariance (uncertainty) of the estimate.
    pub fn covariance(&self) -> f64 {
        self.covariance
    }
}

/// CTRL with online gain identification and per-period re-design.
#[derive(Debug, Clone)]
pub struct AdaptiveCtrlStrategy {
    cfg: LoopConfig,
    cost: CostTracker,
    delay: DelayEstimator,
    controller: FeedbackController,
    /// Identified plant gain `b ≈ c/(H·T)` in delay-seconds per
    /// (queued-tuple), i.e. ŷ(k+1) = ŷ(k) + b·Δq.
    gain_rls: RlsEstimator,
    spec: DesignSpec,
    target_s: f64,
    prev_yhat: Option<f64>,
    prev_delta_q: f64,
    signals: Vec<SignalRow>,
}

impl AdaptiveCtrlStrategy {
    /// Builds the adaptive strategy around a loop configuration; the
    /// configuration's controller parameters are only the starting point.
    pub fn from_config(cfg: &LoopConfig) -> Self {
        let prior_gain = cfg.prior_cost_us / 1e6 / cfg.headroom; // c/H
        Self {
            cost: cfg.build_cost_tracker(),
            delay: DelayEstimator::new(cfg.headroom),
            controller: FeedbackController::new(cfg.controller),
            gain_rls: RlsEstimator::new(prior_gain, prior_gain * prior_gain, 0.97),
            spec: DesignSpec::paper_default(),
            target_s: cfg.target_delay_s(),
            prev_yhat: None,
            prev_delta_q: 0.0,
            signals: Vec::new(),
            cfg: cfg.clone(),
        }
    }

    /// Changes the delay target at runtime.
    pub fn set_target_delay_s(&mut self, yd_s: f64) {
        assert!(yd_s > 0.0);
        self.target_s = yd_s;
    }

    /// The currently identified per-tuple delay gain (seconds of delay
    /// per outstanding tuple ≈ `c/H`).
    pub fn identified_gain(&self) -> f64 {
        self.gain_rls.estimate()
    }

    /// The controller parameters currently in force.
    pub fn current_params(&self) -> ControllerParams {
        self.controller.params()
    }
}

impl ControlHook for AdaptiveCtrlStrategy {
    fn on_period(&mut self, snap: &PeriodSnapshot) -> Decision {
        let period_s = snap.period.as_secs_f64();
        let h = self.cfg.headroom;
        let c_us = self.cost.update(snap.measured_cost_us);
        let y_hat = self.delay.estimate_delay_s(snap.outstanding, c_us);

        // --- identification: ŷ(k) − ŷ(k−1) = b · Δq(k−1) ---
        if let Some(prev) = self.prev_yhat {
            self.gain_rls.update(self.prev_delta_q, y_hat - prev);
        }
        self.prev_yhat = Some(y_hat);

        // --- re-design against the identified gain ---
        // The identified b maps queue change → delay change; the runtime
        // controller divides by (c_eff·T/H)... keep the same Eq. 10 shape
        // but substitute the *identified* effective cost
        // c_eff = b·H (seconds) for the measured one.
        let b = self.gain_rls.estimate().max(1e-9);
        let c_eff_s = (b * h).max(1e-9);
        let params = design_for_integrator(&self.spec);
        self.controller = {
            // Preserve the dynamic state; only the parameters change
            // (which for the fixed CLCE are constant — the *gain* applied
            // below is where adaptation bites).
            let mut c = self.controller;
            if c.params() != params {
                c = FeedbackController::new(params);
            }
            c
        };

        let e = self.target_s - y_hat;
        let u = self.controller.compute(e, c_eff_s, period_s, h);
        let fout = snap.fout_rate();
        let v = u + fout;
        let fin = snap.fin_rate();
        let v_applied = v.clamp(0.0, fin.max(0.0));
        if self.cfg.anti_windup {
            self.controller.commit(e, v_applied - fout);
        } else {
            self.controller.commit(e, u);
        }
        // Record the queue change the plant will see this period (for
        // the next identification step).
        self.prev_delta_q = (v_applied - fout) * period_s;

        let alpha = EntryShedder::alpha_for(v, fin);
        self.signals.push(SignalRow {
            k: snap.k,
            y_hat_s: y_hat,
            error_s: e,
            u_tps: u,
            v_tps: v,
            alpha,
            cost_us: c_eff_s * 1e6,
        });
        Decision::entry(alpha)
    }
}

impl SheddingStrategy for AdaptiveCtrlStrategy {
    fn name(&self) -> &'static str {
        "CTRL-ADAPTIVE"
    }

    fn signals(&self) -> &[SignalRow] {
        &self.signals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamshed_engine::time::{secs, SimTime};

    #[test]
    fn rls_identifies_static_parameter() {
        let mut rls = RlsEstimator::new(0.0, 100.0, 1.0);
        for i in 1..50 {
            let x = (i % 7 + 1) as f64;
            rls.update(x, 3.5 * x);
        }
        // Noise-free convergence is geometric in Σx²·P₀; 49 samples from
        // a P₀ = 100 prior land within ~1e-4.
        assert!((rls.estimate() - 3.5).abs() < 1e-3, "{}", rls.estimate());
    }

    #[test]
    fn rls_tracks_parameter_changes_with_forgetting() {
        let mut rls = RlsEstimator::new(0.0, 100.0, 0.9);
        for i in 1..60 {
            rls.update((i % 5 + 1) as f64, 2.0 * (i % 5 + 1) as f64);
        }
        assert!((rls.estimate() - 2.0).abs() < 1e-3);
        for i in 1..60 {
            rls.update((i % 5 + 1) as f64, 5.0 * (i % 5 + 1) as f64);
        }
        assert!((rls.estimate() - 5.0).abs() < 0.05, "{}", rls.estimate());
    }

    #[test]
    fn rls_ignores_degenerate_regressors() {
        let mut rls = RlsEstimator::new(1.0, 10.0, 1.0);
        rls.update(0.0, 100.0);
        rls.update(f64::NAN, 1.0);
        rls.update(1.0, f64::NAN);
        assert_eq!(rls.estimate(), 1.0);
    }

    fn snap(k: u64, offered: u64, outstanding: u64, cost_us: f64) -> PeriodSnapshot {
        PeriodSnapshot {
            k,
            now: SimTime::ZERO + secs(k + 1),
            period: secs(1),
            offered,
            admitted: offered,
            dropped_entry: 0,
            dropped_network: 0,
            completed: 190,
            outstanding,
            queued_tuples: outstanding,
            queued_load_us: outstanding as f64 * cost_us,
            measured_cost_us: Some(cost_us),
            mean_delay_ms: None,
            cpu_busy_us: 970_000,
        }
    }

    #[test]
    fn adaptive_identifies_gain_from_closed_loop_data() {
        // Simulate the ideal plant q(k+1) = q(k) + Δq where Δq is what
        // the strategy decided; the identified gain must converge to c/H.
        let cfg = LoopConfig::paper_default();
        let mut s = AdaptiveCtrlStrategy::from_config(&cfg);
        // Perturb the prior so convergence is observable.
        s.gain_rls = RlsEstimator::new(0.002, 1.0, 0.97);
        let c_us = 5105.0;
        let true_gain = c_us / 1e6 / 0.97;
        let mut q = 0.0f64;
        for k in 0..200 {
            let d = s.on_period(&snap(k, 400, q.round() as u64, c_us));
            // Ideal actuator: admitted = (1−α)·400, processed 190.
            let admitted = (1.0 - d.entry_drop_prob) * 400.0;
            q = (q + admitted - 190.0).max(0.0);
        }
        let got = s.identified_gain();
        assert!(
            (got - true_gain).abs() < true_gain * 0.25,
            "identified {got}, true {true_gain}"
        );
        assert_eq!(s.name(), "CTRL-ADAPTIVE");
        assert_eq!(s.signals().len(), 200);
    }

    #[test]
    fn adaptive_loop_still_reaches_target() {
        let cfg = LoopConfig::paper_default();
        let mut s = AdaptiveCtrlStrategy::from_config(&cfg);
        let mut q = 0.0f64;
        let mut last_y = 0.0;
        for k in 0..120 {
            let d = s.on_period(&snap(k, 400, q.round() as u64, 5105.0));
            let admitted = (1.0 - d.entry_drop_prob) * 400.0;
            q = (q + admitted - 190.0).max(0.0);
            last_y = (q + 1.0) * 5105.0 / 1e6 / 0.97;
        }
        assert!((last_y - 2.0).abs() < 0.3, "settled at {last_y}");
    }

    #[test]
    fn adaptive_recovers_from_wrong_prior_cost() {
        // Prior cost off by 4×: the fixed loop would be badly detuned at
        // start; the adaptive loop identifies and settles anyway.
        let cfg = LoopConfig::paper_default().with_prior_cost_us(4.0 * 5105.0);
        let mut s = AdaptiveCtrlStrategy::from_config(&cfg);
        let mut q = 0.0f64;
        let mut last_y = 0.0;
        for k in 0..150 {
            // Measured cost feeds the c-tracker the truth; the identified
            // gain cross-checks it.
            let d = s.on_period(&snap(k, 400, q.round() as u64, 5105.0));
            let admitted = (1.0 - d.entry_drop_prob) * 400.0;
            q = (q + admitted - 190.0).max(0.0);
            last_y = (q + 1.0) * 5105.0 / 1e6 / 0.97;
        }
        assert!((last_y - 2.0).abs() < 0.35, "settled at {last_y}");
    }
}
