//! Self-tuning control: online re-identification, gain-scheduled pole
//! placement with bumpless transfer, and a model-free comparator.
//!
//! The paper's conclusion names this as immediate follow-up work: "use
//! adaptive control techniques to capture the internal variations of the
//! system model and provide better control over the whole system". The
//! basic CTRL loop already *tolerates* slow cost drift through its cost
//! estimator; this module closes a second, slower loop around the
//! controller itself. Three layers:
//!
//! 1. **Online re-identification.** Two recursive-least-squares
//!    estimators run against live period data:
//!
//!    * the *closed-loop gain* RLS fits the plant gain `b` in
//!
//!      ```text
//!      ŷ(k+1) − ŷ(k) = b · Δq(k) + disturbance,   b = c/H
//!      ```
//!
//!      from the strategy's own estimated-delay increments (no extra
//!      sensors needed);
//!    * the *measured-delay* RLS fits the per-tuple cost directly from
//!      the delayed-but-real mean-delay measurement via the virtual-queue
//!      model `y = (q+1)·c/H` — regressor `x = (q+1)/H`, observation
//!      `y = mean delay (s)`, parameter `θ = c` (seconds). This estimate
//!      is anchored in ground truth, so it cannot chase the controller's
//!      own assumptions in a circle.
//!
//! 2. **Gain scheduling.** [`GainScheduler`] holds the cost estimate the
//!    controller gain is currently *derived from*. When the re-identified
//!    cost drifts outside a hysteresis band around the scheduled value,
//!    the scheduler snaps to the new estimate and the controller is
//!    re-tuned through
//!    [`FeedbackController::retune_bumpless`] — the stored error history
//!    is rescaled so the output is continuous across the swap (no
//!    actuation bump at the handover). The `(z − 0.7)²` pole placement is
//!    re-derived against the new gain; hysteresis keeps the loop from
//!    re-tuning on estimator noise.
//!
//! 3. **Model-free comparison.** [`ComparatorStrategy`] drops the
//!    pole-placement *model* entirely and instead hill-climbs over a
//!    fixed ladder of candidate double-pole tunings. Each candidate is
//!    probed for a fixed window and scored by a private
//!    [`ControllerHealth`] scorer (windowed SLO burn rate plus EWMA
//!    overshoot); the arg-min becomes the incumbent. Every arm change
//!    goes through the same bumpless transfer. The probe cycle is fully
//!    deterministic (no RNG), so campaign outputs stay byte-identical
//!    across worker counts.
//!
//! Both self-tuning strategies report their state through
//! [`InstrumentedHook::adapt_state`], which flows through the
//! [`ControlTrace`] seam into
//! the observability plane (`streamshed_adapt_*` Prometheus families)
//! and flight-recorder bundles.

use crate::controller::FeedbackController;
use crate::estimator::DelayEstimator;
use crate::kalman::CostTracker;
use crate::loop_::{LoopConfig, SignalRow};
use crate::shedder::EntryShedder;
use crate::strategy::SheddingStrategy;
use serde::{Deserialize, Serialize};
use std::time::Duration;
use streamshed_engine::diagnostics::{ControllerHealth, DiagnosticsConfig};
use streamshed_engine::hook::{ControlHook, Decision, PeriodSnapshot};
use streamshed_engine::telemetry::{
    AdaptState, ControlState, ControlTrace, InstrumentedHook, LoopMode,
};
use streamshed_zdomain::design::{design_for_integrator, ControllerParams, DesignSpec};

/// Scalar recursive-least-squares estimator with exponential forgetting:
/// fits `y = θ·x` online.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RlsEstimator {
    theta: f64,
    covariance: f64,
    forgetting: f64,
}

impl RlsEstimator {
    /// Creates an estimator.
    ///
    /// * `prior` — initial parameter estimate;
    /// * `prior_cov` — confidence in the prior (larger = adapt faster);
    /// * `forgetting` — λ ∈ (0, 1]; smaller discounts old data faster.
    pub fn new(prior: f64, prior_cov: f64, forgetting: f64) -> Self {
        assert!(prior_cov > 0.0);
        assert!(forgetting > 0.0 && forgetting <= 1.0);
        Self {
            theta: prior,
            covariance: prior_cov,
            forgetting,
        }
    }

    /// Feeds one observation pair, returns the updated estimate.
    ///
    /// Near-zero regressors carry no information and are skipped (they
    /// would otherwise blow the gain up).
    pub fn update(&mut self, x: f64, y: f64) -> f64 {
        if !x.is_finite() || !y.is_finite() || x.abs() < 1e-12 {
            return self.theta;
        }
        let lambda = self.forgetting;
        let px = self.covariance * x;
        let gain = px / (lambda + x * px);
        self.theta += gain * (y - self.theta * x);
        self.covariance = (self.covariance - gain * x * self.covariance) / lambda;
        // Keep the covariance bounded away from degeneracy.
        self.covariance = self.covariance.clamp(1e-12, 1e12);
        self.theta
    }

    /// Current parameter estimate.
    pub fn estimate(&self) -> f64 {
        self.theta
    }

    /// Current covariance (uncertainty) of the estimate.
    pub fn covariance(&self) -> f64 {
        self.covariance
    }
}

/// Decides *when* a re-identified cost becomes the cost the controller
/// gain is derived from.
///
/// The scheduler holds the scheduled cost `ĉ` and snaps to a new
/// estimate only when it leaves the relative hysteresis band
/// `|est − ĉ| > band · ĉ` — estimator noise inside the band never
/// re-tunes the controller. Each snap bumps the gain generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GainScheduler {
    scheduled_cost_us: f64,
    hysteresis_frac: f64,
    generation: u64,
}

impl GainScheduler {
    /// Creates a scheduler holding `initial_cost_us` with a relative
    /// hysteresis band (e.g. `0.25` = re-tune on >25% drift).
    pub fn new(initial_cost_us: f64, hysteresis_frac: f64) -> Self {
        assert!(initial_cost_us > 0.0 && initial_cost_us.is_finite());
        assert!(hysteresis_frac > 0.0);
        Self {
            scheduled_cost_us: initial_cost_us,
            hysteresis_frac,
            generation: 0,
        }
    }

    /// Feeds the latest cost estimate; on a snap, returns the *previous*
    /// scheduled cost (so the caller can compute old/new gains for the
    /// bumpless handover). Invalid estimates are ignored.
    pub fn observe(&mut self, est_cost_us: f64) -> Option<f64> {
        if !(est_cost_us.is_finite() && est_cost_us > 0.0) {
            return None;
        }
        let drift = (est_cost_us - self.scheduled_cost_us).abs() / self.scheduled_cost_us;
        if drift > self.hysteresis_frac {
            let old = self.scheduled_cost_us;
            self.scheduled_cost_us = est_cost_us;
            self.generation += 1;
            Some(old)
        } else {
            None
        }
    }

    /// The cost the controller gain is currently derived from, µs.
    pub fn scheduled_cost_us(&self) -> f64 {
        self.scheduled_cost_us
    }

    /// How many times the schedule snapped (0 = still on the initial
    /// design).
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// Minimum measured-delay samples before the measured-delay RLS is
/// trusted over the closed-loop gain RLS.
const MIN_DELAY_SAMPLES: u64 = 3;

/// CTRL with online re-identification and gain-scheduled, bumpless
/// re-tuning. See the module docs for the three-layer design.
#[derive(Debug, Clone)]
pub struct AdaptiveCtrlStrategy {
    cfg: LoopConfig,
    cost: CostTracker,
    delay: DelayEstimator,
    controller: FeedbackController,
    params: ControllerParams,
    /// Identified plant gain `b ≈ c/(H·T)` in delay-seconds per
    /// (queued-tuple), i.e. ŷ(k+1) = ŷ(k) + b·Δq.
    gain_rls: RlsEstimator,
    /// Per-tuple cost (seconds) identified from the *measured* delay via
    /// `y = (q+1)·c/H`.
    cost_rls: RlsEstimator,
    delay_samples: u64,
    scheduler: GainScheduler,
    swaps: u64,
    retune_pending: bool,
    target_s: f64,
    prev_yhat: Option<f64>,
    prev_delta_q: f64,
    /// Queue length at the previous period boundary — the regressor the
    /// measured-delay model pairs with (`ŷ(k) = (q(k−1)+1)·c/H`):
    /// tuples whose delays average into period `k` queued behind the
    /// backlog standing at the period's *start*.
    prev_q: u64,
    signals: Vec<SignalRow>,
}

/// Default relative hysteresis band of the gain scheduler.
pub const DEFAULT_HYSTERESIS_FRAC: f64 = 0.25;

impl AdaptiveCtrlStrategy {
    /// Builds the adaptive strategy around a loop configuration; the
    /// configuration's controller parameters are only the starting point.
    pub fn from_config(cfg: &LoopConfig) -> Self {
        let prior_gain = cfg.prior_cost_us / 1e6 / cfg.headroom; // c/H
        let prior_cost_s = cfg.prior_cost_us / 1e6;
        let params = design_for_integrator(&DesignSpec::paper_default());
        Self {
            cost: cfg.build_cost_tracker(),
            delay: DelayEstimator::new(cfg.headroom),
            controller: FeedbackController::new(params),
            params,
            gain_rls: RlsEstimator::new(prior_gain, prior_gain * prior_gain, 0.97),
            cost_rls: RlsEstimator::new(prior_cost_s, prior_cost_s * prior_cost_s, 0.9),
            delay_samples: 0,
            scheduler: GainScheduler::new(cfg.prior_cost_us, DEFAULT_HYSTERESIS_FRAC),
            swaps: 0,
            retune_pending: false,
            target_s: cfg.target_delay_s(),
            prev_yhat: None,
            prev_delta_q: 0.0,
            prev_q: 0,
            signals: Vec::new(),
            cfg: cfg.clone(),
        }
    }

    /// Changes the delay target at runtime.
    pub fn set_target_delay_s(&mut self, yd_s: f64) {
        assert!(yd_s > 0.0);
        self.target_s = yd_s;
    }

    /// The currently identified per-tuple delay gain (seconds of delay
    /// per outstanding tuple ≈ `c/H`).
    pub fn identified_gain(&self) -> f64 {
        self.gain_rls.estimate()
    }

    /// The controller parameters currently in force.
    pub fn current_params(&self) -> ControllerParams {
        self.controller.params()
    }

    /// The gain scheduler (scheduled cost, generation).
    pub fn scheduler(&self) -> &GainScheduler {
        &self.scheduler
    }

    /// Bumpless parameter swaps performed so far.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// The cost estimate driving the scheduler this period: the
    /// measured-delay RLS once it has seen enough real samples, else the
    /// closed-loop gain RLS mapped back to a cost (`c = b·H`).
    fn reidentified_cost_us(&self) -> f64 {
        if self.delay_samples >= MIN_DELAY_SAMPLES {
            self.cost_rls.estimate() * 1e6
        } else {
            self.gain_rls.estimate().max(1e-9) * self.cfg.headroom * 1e6
        }
    }
}

impl ControlHook for AdaptiveCtrlStrategy {
    fn on_period(&mut self, snap: &PeriodSnapshot) -> Decision {
        let period_s = snap.period.as_secs_f64();
        let h = self.cfg.headroom;
        let c_us = self.cost.update(snap.measured_cost_us);
        let y_hat = self.delay.estimate_delay_s(snap.outstanding, c_us);

        // --- re-identification ------------------------------------------
        // Closed-loop gain: ŷ(k) − ŷ(k−1) = b · Δq(k−1).
        if let Some(prev) = self.prev_yhat {
            self.gain_rls.update(self.prev_delta_q, y_hat - prev);
        }
        self.prev_yhat = Some(y_hat);
        // Measured-delay cost: y(k) = (q(k−1)+1)·c/H, anchored in ground
        // truth. Pairing with the PREVIOUS boundary queue matters: with
        // the current one, a fast-moving queue decorrelates (or
        // anti-correlates) the pairs and the slope collapses.
        if let Some(d_ms) = snap.mean_delay_ms {
            if d_ms.is_finite() && d_ms >= 0.0 {
                let x = (self.prev_q as f64 + 1.0) / h;
                self.cost_rls.update(x, d_ms / 1e3);
                self.delay_samples += 1;
            }
        }
        self.prev_q = snap.outstanding;

        // --- gain scheduling with bumpless handover ---------------------
        if let Some(old_c_us) = self.scheduler.observe(self.reidentified_cost_us()) {
            let new_c_us = self.scheduler.scheduled_cost_us();
            let g_old = h / (old_c_us / 1e6 * period_s);
            let g_new = h / (new_c_us / 1e6 * period_s);
            self.controller.retune_bumpless(self.params, g_old, g_new);
            self.swaps += 1;
            self.retune_pending = true;
        }
        let c_sched_s = self.scheduler.scheduled_cost_us() / 1e6;

        // --- the Eq. 10 law against the *scheduled* cost ----------------
        let e = self.target_s - y_hat;
        let u = self.controller.compute(e, c_sched_s, period_s, h);
        let fout = snap.fout_rate();
        let v = u + fout;
        let fin = snap.fin_rate();
        let v_applied = v.clamp(0.0, fin.max(0.0));
        if self.cfg.anti_windup {
            self.controller.commit(e, v_applied - fout);
        } else {
            self.controller.commit(e, u);
        }
        // Record the queue change the plant will see this period (for
        // the next identification step).
        self.prev_delta_q = (v_applied - fout) * period_s;

        let alpha = EntryShedder::alpha_for(v, fin);
        self.signals.push(SignalRow {
            k: snap.k,
            y_hat_s: y_hat,
            error_s: e,
            u_tps: u,
            v_tps: v,
            alpha,
            cost_us: c_sched_s * 1e6,
        });
        Decision::entry(alpha)
    }
}

impl SheddingStrategy for AdaptiveCtrlStrategy {
    fn name(&self) -> &'static str {
        "CTRL-ADAPTIVE"
    }

    fn signals(&self) -> &[SignalRow] {
        &self.signals
    }

    fn take_retune(&mut self) -> bool {
        std::mem::take(&mut self.retune_pending)
    }
}

impl InstrumentedHook for AdaptiveCtrlStrategy {
    fn control_state(&self) -> Option<ControlState> {
        crate::strategy::state_from_signals(&self.signals)
    }

    fn adapt_state(&self) -> Option<AdaptState> {
        Some(AdaptState {
            cost_est_us: self.scheduler.scheduled_cost_us(),
            generation: self.scheduler.generation(),
            swaps: self.swaps,
            arm: -1,
        })
    }
}

/// The candidate double-pole tunings the comparator hill-climbs over
/// (slowest/most damped first).
pub const COMPARATOR_ARMS: [f64; 4] = [0.5, 0.6, 0.7, 0.8];

/// Periods each probe arm is held and scored before the next probe.
const PROBE_WINDOW: u64 = 12;

/// A model-free self-tuner: an online hill-climber over a fixed ladder
/// of double-pole tunings ([`COMPARATOR_ARMS`]).
///
/// Each cycle probes the incumbent arm and its ladder neighbours for
/// a fixed window (12 periods) each, scoring every probe with a private
/// [`ControllerHealth`] (score = windowed SLO burn rate + EWMA
/// overshoot; lower is better). The arg-min becomes the new incumbent —
/// ties keep the incumbent, so the tuner is stable on flat terrain.
/// Every arm change is a bumpless parameter swap; the cost-driven gain
/// scheduling of [`AdaptiveCtrlStrategy`] runs underneath unchanged, so
/// cost steps re-settle fast while the slower hill-climb picks the pole.
///
/// The probe cycle is deterministic (no RNG): campaign outputs stay
/// byte-identical regardless of worker count.
#[derive(Debug, Clone)]
pub struct ComparatorStrategy {
    cfg: LoopConfig,
    cost: CostTracker,
    delay: DelayEstimator,
    controller: FeedbackController,
    cost_rls: RlsEstimator,
    delay_samples: u64,
    /// Queue at the previous period boundary (see
    /// [`AdaptiveCtrlStrategy`]'s regressor pairing).
    prev_q: u64,
    scheduler: GainScheduler,
    swaps: u64,
    retune_pending: bool,
    target_s: f64,
    /// Index into [`COMPARATOR_ARMS`] of the incumbent.
    current: usize,
    /// Arm indices probed this cycle (incumbent first).
    plan: Vec<usize>,
    /// Position within `plan`.
    probe_idx: usize,
    periods_in_probe: u64,
    scores: Vec<f64>,
    health: ControllerHealth,
    signals: Vec<SignalRow>,
}

impl ComparatorStrategy {
    /// Builds the comparator around a loop configuration, starting from
    /// the paper's 0.7 double pole.
    pub fn from_config(cfg: &LoopConfig) -> Self {
        let current = COMPARATOR_ARMS
            .iter()
            .position(|&p| p == 0.7)
            .expect("paper pole is an arm");
        let prior_cost_s = cfg.prior_cost_us / 1e6;
        let params = Self::params_for(current);
        let plan = Self::plan_for(current);
        Self {
            cost: cfg.build_cost_tracker(),
            delay: DelayEstimator::new(cfg.headroom),
            controller: FeedbackController::new(params),
            cost_rls: RlsEstimator::new(prior_cost_s, prior_cost_s * prior_cost_s, 0.9),
            delay_samples: 0,
            prev_q: 0,
            scheduler: GainScheduler::new(cfg.prior_cost_us, DEFAULT_HYSTERESIS_FRAC),
            swaps: 0,
            retune_pending: false,
            target_s: cfg.target_delay_s(),
            current,
            scores: vec![f64::INFINITY; plan.len()],
            plan,
            probe_idx: 0,
            periods_in_probe: 0,
            health: Self::fresh_health(cfg.target_delay_s()),
            signals: Vec::new(),
            cfg: cfg.clone(),
        }
    }

    fn params_for(arm: usize) -> ControllerParams {
        design_for_integrator(&DesignSpec::from_double_pole(COMPARATOR_ARMS[arm]))
    }

    /// The probe plan for an incumbent: itself first, then its ladder
    /// neighbours (deduplicated at the ladder ends).
    fn plan_for(current: usize) -> Vec<usize> {
        let mut plan = vec![current];
        if current > 0 {
            plan.push(current - 1);
        }
        if current + 1 < COMPARATOR_ARMS.len() {
            plan.push(current + 1);
        }
        plan
    }

    fn fresh_health(target_s: f64) -> ControllerHealth {
        ControllerHealth::new(DiagnosticsConfig::for_target(Duration::from_secs_f64(
            target_s,
        )))
    }

    /// Swaps to `arm` bumplessly (the gain is unchanged — only the pole
    /// placement moves).
    fn switch_to(&mut self, arm: usize, period_s: f64) {
        let g = self.cfg.headroom / (self.scheduler.scheduled_cost_us() / 1e6 * period_s);
        self.controller
            .retune_bumpless(Self::params_for(arm), g, g);
        self.swaps += 1;
        self.retune_pending = true;
    }

    /// Changes the target delay at runtime; probe scoring restarts so
    /// old-target burn does not bias the next arm choice.
    pub fn set_target_delay_s(&mut self, yd_s: f64) {
        assert!(yd_s > 0.0);
        self.target_s = yd_s;
        self.health = Self::fresh_health(yd_s);
    }

    /// The incumbent arm's index into [`COMPARATOR_ARMS`].
    pub fn current_arm(&self) -> usize {
        self.current
    }

    /// The incumbent arm's double pole.
    pub fn current_pole(&self) -> f64 {
        COMPARATOR_ARMS[self.current]
    }

    /// Bumpless parameter swaps performed so far.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// The arm the controller is actually running *this* period (the
    /// probe arm, which differs from the incumbent mid-cycle).
    pub fn active_arm(&self) -> usize {
        self.plan[self.probe_idx]
    }
}

impl ControlHook for ComparatorStrategy {
    fn on_period(&mut self, snap: &PeriodSnapshot) -> Decision {
        let period_s = snap.period.as_secs_f64();
        let h = self.cfg.headroom;
        let c_us = self.cost.update(snap.measured_cost_us);
        let y_hat = self.delay.estimate_delay_s(snap.outstanding, c_us);

        // Measured-delay re-identification (same seam as the adaptive
        // strategy, paired with the previous boundary queue); the
        // tracker estimate is the model-free fallback.
        if let Some(d_ms) = snap.mean_delay_ms {
            if d_ms.is_finite() && d_ms >= 0.0 {
                let x = (self.prev_q as f64 + 1.0) / h;
                self.cost_rls.update(x, d_ms / 1e3);
                self.delay_samples += 1;
            }
        }
        self.prev_q = snap.outstanding;
        let est_us = if self.delay_samples >= MIN_DELAY_SAMPLES {
            self.cost_rls.estimate() * 1e6
        } else {
            c_us
        };
        if let Some(old_c_us) = self.scheduler.observe(est_us) {
            let new_c_us = self.scheduler.scheduled_cost_us();
            let g_old = h / (old_c_us / 1e6 * period_s);
            let g_new = h / (new_c_us / 1e6 * period_s);
            let params = self.controller.params();
            self.controller.retune_bumpless(params, g_old, g_new);
            self.swaps += 1;
            self.retune_pending = true;
        }
        let c_sched_s = self.scheduler.scheduled_cost_us() / 1e6;

        let e = self.target_s - y_hat;
        let u = self.controller.compute(e, c_sched_s, period_s, h);
        let fout = snap.fout_rate();
        let v = u + fout;
        let fin = snap.fin_rate();
        let v_applied = v.clamp(0.0, fin.max(0.0));
        if self.cfg.anti_windup {
            self.controller.commit(e, v_applied - fout);
        } else {
            self.controller.commit(e, u);
        }

        let alpha = EntryShedder::alpha_for(v, fin);
        self.signals.push(SignalRow {
            k: snap.k,
            y_hat_s: y_hat,
            error_s: e,
            u_tps: u,
            v_tps: v,
            alpha,
            cost_us: c_sched_s * 1e6,
        });
        let decision = Decision::entry(alpha);

        // --- score the active probe -------------------------------------
        let state = ControlState {
            y_hat_s: y_hat,
            error_s: e,
            u_tps: u,
            cost_est_us: c_sched_s * 1e6,
            mode: LoopMode::Direct,
            fault_flags: 0,
        };
        let trace = ControlTrace::capture(snap, &decision, Some(&state), 0);
        let _ = self.health.observe(&trace);
        self.periods_in_probe += 1;

        if self.periods_in_probe >= PROBE_WINDOW {
            let s = self.health.snapshot();
            let nan0 = |v: f64| if v.is_finite() { v } else { 0.0 };
            self.scores[self.probe_idx] = nan0(s.slo_burn_rate) + nan0(s.overshoot_ewma_frac);
            self.probe_idx += 1;
            if self.probe_idx >= self.plan.len() {
                // Cycle complete: adopt the arg-min. The incumbent is
                // plan[0], so exact ties keep it.
                let mut best = 0;
                for (i, &sc) in self.scores.iter().enumerate() {
                    if sc < self.scores[best] {
                        best = i;
                    }
                }
                self.current = self.plan[best];
                self.plan = Self::plan_for(self.current);
                self.scores = vec![f64::INFINITY; self.plan.len()];
                self.probe_idx = 0;
            }
            self.switch_to(self.plan[self.probe_idx], period_s);
            self.health = Self::fresh_health(self.target_s);
            self.periods_in_probe = 0;
        }
        decision
    }
}

impl SheddingStrategy for ComparatorStrategy {
    fn name(&self) -> &'static str {
        "CTRL-COMPARATOR"
    }

    fn signals(&self) -> &[SignalRow] {
        &self.signals
    }

    fn take_retune(&mut self) -> bool {
        std::mem::take(&mut self.retune_pending)
    }
}

impl InstrumentedHook for ComparatorStrategy {
    fn control_state(&self) -> Option<ControlState> {
        crate::strategy::state_from_signals(&self.signals)
    }

    fn adapt_state(&self) -> Option<AdaptState> {
        Some(AdaptState {
            cost_est_us: self.scheduler.scheduled_cost_us(),
            generation: self.scheduler.generation(),
            swaps: self.swaps,
            arm: self.active_arm() as i64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamshed_engine::time::{secs, SimTime};

    #[test]
    fn rls_identifies_static_parameter() {
        let mut rls = RlsEstimator::new(0.0, 100.0, 1.0);
        for i in 1..50 {
            let x = (i % 7 + 1) as f64;
            rls.update(x, 3.5 * x);
        }
        // Noise-free convergence is geometric in Σx²·P₀; 49 samples from
        // a P₀ = 100 prior land within ~1e-4.
        assert!((rls.estimate() - 3.5).abs() < 1e-3, "{}", rls.estimate());
    }

    #[test]
    fn rls_tracks_parameter_changes_with_forgetting() {
        let mut rls = RlsEstimator::new(0.0, 100.0, 0.9);
        for i in 1..60 {
            rls.update((i % 5 + 1) as f64, 2.0 * (i % 5 + 1) as f64);
        }
        assert!((rls.estimate() - 2.0).abs() < 1e-3);
        for i in 1..60 {
            rls.update((i % 5 + 1) as f64, 5.0 * (i % 5 + 1) as f64);
        }
        assert!((rls.estimate() - 5.0).abs() < 0.05, "{}", rls.estimate());
    }

    #[test]
    fn rls_ignores_degenerate_regressors() {
        let mut rls = RlsEstimator::new(1.0, 10.0, 1.0);
        rls.update(0.0, 100.0);
        rls.update(f64::NAN, 1.0);
        rls.update(1.0, f64::NAN);
        assert_eq!(rls.estimate(), 1.0);
    }

    #[test]
    fn scheduler_hysteresis_gates_snaps() {
        let mut s = GainScheduler::new(5000.0, 0.25);
        // Inside the band: no snap.
        assert_eq!(s.observe(5500.0), None);
        assert_eq!(s.observe(4000.0), None);
        assert_eq!(s.generation(), 0);
        assert_eq!(s.scheduled_cost_us(), 5000.0);
        // Garbage: ignored.
        assert_eq!(s.observe(f64::NAN), None);
        assert_eq!(s.observe(-1.0), None);
        // Outside the band: snap, returning the old cost.
        assert_eq!(s.observe(10_000.0), Some(5000.0));
        assert_eq!(s.scheduled_cost_us(), 10_000.0);
        assert_eq!(s.generation(), 1);
        // The band re-centres on the new schedule.
        assert_eq!(s.observe(11_000.0), None);
        assert_eq!(s.observe(20_000.0), Some(10_000.0));
        assert_eq!(s.generation(), 2);
    }

    fn snap(k: u64, offered: u64, outstanding: u64, cost_us: f64) -> PeriodSnapshot {
        PeriodSnapshot {
            k,
            now: SimTime::ZERO + secs(k + 1),
            period: secs(1),
            offered,
            admitted: offered,
            dropped_entry: 0,
            dropped_network: 0,
            completed: 190,
            outstanding,
            queued_tuples: outstanding,
            queued_load_us: outstanding as f64 * cost_us,
            measured_cost_us: Some(cost_us),
            mean_delay_ms: None,
            cpu_busy_us: 970_000,
        }
    }

    #[test]
    fn adaptive_identifies_gain_from_closed_loop_data() {
        // Simulate the ideal plant q(k+1) = q(k) + Δq where Δq is what
        // the strategy decided; the identified gain must converge to c/H.
        let cfg = LoopConfig::paper_default();
        let mut s = AdaptiveCtrlStrategy::from_config(&cfg);
        // Perturb the prior so convergence is observable.
        s.gain_rls = RlsEstimator::new(0.002, 1.0, 0.97);
        let c_us = 5105.0;
        let true_gain = c_us / 1e6 / 0.97;
        let mut q = 0.0f64;
        for k in 0..200 {
            let d = s.on_period(&snap(k, 400, q.round() as u64, c_us));
            // Ideal actuator: admitted = (1−α)·400, processed 190.
            let admitted = (1.0 - d.entry_drop_prob) * 400.0;
            q = (q + admitted - 190.0).max(0.0);
        }
        let got = s.identified_gain();
        assert!(
            (got - true_gain).abs() < true_gain * 0.25,
            "identified {got}, true {true_gain}"
        );
        assert_eq!(s.name(), "CTRL-ADAPTIVE");
        assert_eq!(s.signals().len(), 200);
    }

    #[test]
    fn adaptive_loop_still_reaches_target() {
        let cfg = LoopConfig::paper_default();
        let mut s = AdaptiveCtrlStrategy::from_config(&cfg);
        let mut q = 0.0f64;
        let mut last_y = 0.0;
        for k in 0..120 {
            let d = s.on_period(&snap(k, 400, q.round() as u64, 5105.0));
            let admitted = (1.0 - d.entry_drop_prob) * 400.0;
            q = (q + admitted - 190.0).max(0.0);
            last_y = (q + 1.0) * 5105.0 / 1e6 / 0.97;
        }
        assert!((last_y - 2.0).abs() < 0.3, "settled at {last_y}");
    }

    #[test]
    fn adaptive_recovers_from_wrong_prior_cost() {
        // Prior cost off by 4×: the fixed loop would be badly detuned at
        // start; the adaptive loop identifies and settles anyway.
        let cfg = LoopConfig::paper_default().with_prior_cost_us(4.0 * 5105.0);
        let mut s = AdaptiveCtrlStrategy::from_config(&cfg);
        let mut q = 0.0f64;
        let mut last_y = 0.0;
        for k in 0..150 {
            // Measured cost feeds the c-tracker the truth; the identified
            // gain cross-checks it.
            let d = s.on_period(&snap(k, 400, q.round() as u64, 5105.0));
            let admitted = (1.0 - d.entry_drop_prob) * 400.0;
            q = (q + admitted - 190.0).max(0.0);
            last_y = (q + 1.0) * 5105.0 / 1e6 / 0.97;
        }
        assert!((last_y - 2.0).abs() < 0.35, "settled at {last_y}");
        // The wrong prior was corrected through at least one scheduled
        // re-tune, and every swap was flagged for the supervisor.
        assert!(s.scheduler().generation() >= 1, "no re-tune happened");
        assert!(s.swaps() >= 1);
    }

    /// A measured-delay feed (the true delay of the simulated queue)
    /// drives the cost re-identification even when the tracker is frozen
    /// on a stale prior — the re-id path is anchored in ground truth.
    #[test]
    fn measured_delay_reidentification_tracks_a_cost_step() {
        let cfg = LoopConfig::paper_default();
        let mut s = AdaptiveCtrlStrategy::from_config(&cfg);
        let mut q = 200.0f64;
        let mut q_prev = 200.0f64;
        for k in 0..120 {
            let c_true = if k < 40 { 5105.0 } else { 2.0 * 5105.0 };
            let mut sn = snap(k, 400, q.round() as u64, c_true);
            // The delayed-but-real measurement: the virtual-queue model
            // evaluated with the *true* cost against the queue standing
            // at the period's start (the strategy pairs with q(k−1)).
            sn.mean_delay_ms = Some((q_prev + 1.0) * c_true / 1e3 / 0.97);
            q_prev = q;
            let d = s.on_period(&sn);
            let admitted = (1.0 - d.entry_drop_prob) * 400.0;
            let service = 0.97 / (c_true / 1e6); // capacity shrank with the step
            q = (q + admitted - service).max(0.0);
        }
        let sched = s.scheduler().scheduled_cost_us();
        assert!(
            (sched - 2.0 * 5105.0).abs() < 0.25 * 2.0 * 5105.0,
            "scheduled cost {sched} did not track the ×2 step"
        );
        assert!(s.scheduler().generation() >= 1);
        let st = s.adapt_state().unwrap();
        assert_eq!(st.generation, s.scheduler().generation());
        assert_eq!(st.arm, -1);
    }

    #[test]
    fn comparator_is_deterministic_and_reaches_target() {
        let cfg = LoopConfig::paper_default();
        let run = || {
            let mut s = ComparatorStrategy::from_config(&cfg);
            let mut q = 0.0f64;
            let mut last_y = 0.0;
            for k in 0..200 {
                let d = s.on_period(&snap(k, 400, q.round() as u64, 5105.0));
                let admitted = (1.0 - d.entry_drop_prob) * 400.0;
                q = (q + admitted - 190.0).max(0.0);
                last_y = (q + 1.0) * 5105.0 / 1e6 / 0.97;
            }
            (last_y, s.current_arm(), s.swaps())
        };
        let (y1, arm1, swaps1) = run();
        let (y2, arm2, swaps2) = run();
        assert_eq!(y1.to_bits(), y2.to_bits(), "comparator must be RNG-free");
        assert_eq!((arm1, swaps1), (arm2, swaps2));
        assert!((y1 - 2.0).abs() < 0.3, "settled at {y1}");
        assert_eq!(
            ComparatorStrategy::from_config(&cfg).name(),
            "CTRL-COMPARATOR"
        );
    }

    #[test]
    fn comparator_probes_every_neighbour_and_reports_state() {
        let cfg = LoopConfig::paper_default();
        let mut s = ComparatorStrategy::from_config(&cfg);
        let mut arms_seen = std::collections::BTreeSet::new();
        let mut q = 0.0f64;
        for k in 0..40 {
            arms_seen.insert(s.active_arm());
            let d = s.on_period(&snap(k, 400, q.round() as u64, 5105.0));
            let admitted = (1.0 - d.entry_drop_prob) * 400.0;
            q = (q + admitted - 190.0).max(0.0);
        }
        // One full cycle (3 probes × 12 periods = 36) visits the
        // incumbent (0.7) and both neighbours (0.6, 0.8).
        assert!(arms_seen.len() >= 3, "probed {arms_seen:?}");
        let st = s.adapt_state().unwrap();
        assert!(st.arm >= 0, "comparator reports its active arm");
        assert!(st.swaps >= 3, "each probe handover is a swap");
        // The swaps were flagged for the supervisor ramp.
        assert!(s.take_retune());
        assert!(!s.take_retune(), "flag is consumed");
    }
}
