//! The three load-shedding strategies evaluated in §5:
//!
//! * [`CtrlStrategy`] — the paper's contribution: virtual-queue delay
//!   estimation + pole-placement feedback controller;
//! * [`BaselineStrategy`] — model-based feedback heuristic
//!   (`v(k) = −q(k) + yd·H/c + T·H/c`), "used to test the importance of
//!   controller design";
//! * [`AuroraStrategy`] — the open-loop Aurora/Borealis load shedder of
//!   Fig. 1 (`shed L − L0` whenever measured load exceeds capacity).
//!
//! All three implement the engine's [`ControlHook`] and log their internal
//! signals for the transient plots.

use crate::controller::FeedbackController;
use crate::estimator::DelayEstimator;
use crate::kalman::CostTracker;
use crate::loop_::{LoopConfig, ShedMode, SignalRow};
use crate::shedder::{EntryShedder, NetworkShedder};
use streamshed_engine::hook::{ControlHook, Decision, PeriodSnapshot};
use streamshed_engine::telemetry::{ControlState, InstrumentedHook, LoopMode};

/// Maps a strategy's most recent [`SignalRow`] to the engine's
/// telemetry [`ControlState`] (strategies acting alone run `Direct`).
pub(crate) fn state_from_signals(signals: &[SignalRow]) -> Option<ControlState> {
    signals.last().map(|r| ControlState {
        y_hat_s: r.y_hat_s,
        error_s: r.error_s,
        u_tps: r.u_tps,
        cost_est_us: r.cost_us,
        mode: LoopMode::Direct,
        fault_flags: 0,
    })
}

/// A named load-shedding strategy.
pub trait SheddingStrategy: ControlHook {
    /// Display name for experiment output ("CTRL", "BASELINE", "AURORA").
    fn name(&self) -> &'static str;

    /// Internal signal log, one row per period.
    fn signals(&self) -> &[SignalRow];

    /// Returns `true` (and clears the flag) when the strategy re-tuned
    /// its controller since the last call. A supervisor uses this to
    /// rate-limit the actuation for a couple of periods after a
    /// parameter swap — defence in depth on top of the strategy's own
    /// bumpless transfer. Non-adaptive strategies never re-tune.
    fn take_retune(&mut self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// CTRL
// ---------------------------------------------------------------------------

/// The control-theoretic strategy (the paper's CTRL system).
#[derive(Debug, Clone)]
pub struct CtrlStrategy {
    cfg: LoopConfig,
    cost: CostTracker,
    delay: DelayEstimator,
    controller: FeedbackController,
    target_s: f64,
    /// When set, the loop gain `H/(c·T)` is computed from this cost
    /// forever — a design-time tuning that is never re-derived. The
    /// delay estimate still follows the live cost tracker, so the loop
    /// gain seen by the plant scales with `c_live/c_frozen`: the
    /// textbook gain-mismatch instability the self-tuning plane exists
    /// to prevent.
    gain_cost_us: Option<f64>,
    signals: Vec<SignalRow>,
}

impl CtrlStrategy {
    /// Builds the strategy from a loop configuration.
    pub fn from_config(cfg: &LoopConfig) -> Self {
        Self {
            cost: cfg.build_cost_tracker(),
            delay: DelayEstimator::new(cfg.headroom),
            controller: FeedbackController::new(cfg.controller),
            target_s: cfg.target_delay_s(),
            gain_cost_us: None,
            signals: Vec::new(),
            cfg: cfg.clone(),
        }
    }

    /// Freezes the controller's gain conversion at `cost_us` — the
    /// "fixed tuning" arm of the self-tuning experiments. The delay
    /// estimator keeps using the live cost tracker; only the
    /// seconds-to-rate gain stays pinned at its design-time value, so a
    /// per-tuple cost that doubles doubles the effective loop gain.
    pub fn with_frozen_gain_at(mut self, cost_us: f64) -> Self {
        assert!(cost_us > 0.0 && cost_us.is_finite());
        self.gain_cost_us = Some(cost_us);
        self
    }

    /// Paper-default CTRL (yd = 2 s, T = 1 s, published tuning).
    pub fn paper_default() -> Self {
        Self::from_config(&LoopConfig::paper_default())
    }

    /// Changes the delay target at runtime (the Fig. 18 experiment).
    pub fn set_target_delay_s(&mut self, yd_s: f64) {
        assert!(yd_s > 0.0);
        self.target_s = yd_s;
    }

    /// The active target, seconds.
    pub fn target_delay_s(&self) -> f64 {
        self.target_s
    }
}

impl ControlHook for CtrlStrategy {
    fn on_period(&mut self, snap: &PeriodSnapshot) -> Decision {
        let period_s = snap.period.as_secs_f64();
        let h = self.cfg.headroom;
        let c_us = self.cost.update(snap.measured_cost_us);
        let c_s = c_us / 1e6;

        // ŷ from the virtual queue (Eq. 11) — never from true delays.
        let y_hat = self.delay.estimate_delay_s(snap.outstanding, c_us);
        let e = self.target_s - y_hat;

        // Frozen-gain arm: the rate conversion stays at the design cost.
        let gain_c_s = self.gain_cost_us.map_or(c_s, |c| c / 1e6);
        let u = self.controller.compute(e, gain_c_s, period_s, h);
        let fout = snap.fout_rate();
        let v = u + fout;

        let fin = snap.fin_rate();
        // Actuator saturation: can admit at most what arrives, at least 0.
        let v_applied = v.clamp(0.0, fin.max(0.0));
        // Anti-windup: store the saturated control effort (the raw one
        // when the ablation disables back-calculation).
        if self.cfg.anti_windup {
            self.controller.commit(e, v_applied - fout);
        } else {
            self.controller.commit(e, u);
        }

        let decision = match self.cfg.shed_mode {
            ShedMode::Entry => Decision::entry(EntryShedder::alpha_for(v, fin)),
            ShedMode::Network => Decision::network(NetworkShedder::load_to_shed_us(
                snap.queued_load_us,
                fin,
                v,
                c_us,
                period_s,
            )),
        };
        self.signals.push(SignalRow {
            k: snap.k,
            y_hat_s: y_hat,
            error_s: e,
            u_tps: u,
            v_tps: v,
            alpha: decision.entry_drop_prob,
            cost_us: c_us,
        });
        decision
    }
}

impl SheddingStrategy for CtrlStrategy {
    fn name(&self) -> &'static str {
        "CTRL"
    }

    fn signals(&self) -> &[SignalRow] {
        &self.signals
    }
}

impl InstrumentedHook for CtrlStrategy {
    fn control_state(&self) -> Option<ControlState> {
        state_from_signals(&self.signals)
    }
}

// ---------------------------------------------------------------------------
// BASELINE
// ---------------------------------------------------------------------------

/// The simple model-based feedback heuristic of §5.
///
/// The target `yd` permits `yd·H/c` outstanding tuples, so
/// `u(k) = yd·H/c − q(k)` more may be added; with the departures
/// `fout·T = T·H/c` (at capacity), the desired per-period admission is
/// `v(k) = −q(k) + yd·H/c + T·H/c` tuples. `c(k)` is estimated by the
/// previous period's measurement.
#[derive(Debug, Clone)]
pub struct BaselineStrategy {
    target_s: f64,
    headroom: f64,
    last_cost_us: f64,
    shed_mode: ShedMode,
    signals: Vec<SignalRow>,
}

impl BaselineStrategy {
    /// Builds the strategy from a loop configuration.
    pub fn from_config(cfg: &LoopConfig) -> Self {
        Self {
            target_s: cfg.target_delay_s(),
            headroom: cfg.headroom,
            last_cost_us: cfg.prior_cost_us,
            shed_mode: cfg.shed_mode,
            signals: Vec::new(),
        }
    }

    /// Changes the delay target at runtime (Fig. 18).
    pub fn set_target_delay_s(&mut self, yd_s: f64) {
        assert!(yd_s > 0.0);
        self.target_s = yd_s;
    }
}

impl ControlHook for BaselineStrategy {
    fn on_period(&mut self, snap: &PeriodSnapshot) -> Decision {
        let period_s = snap.period.as_secs_f64();
        // c(k) ≈ c(k−1): raw last measurement, no smoothing (the paper's
        // BASELINE applies the model rules directly).
        if let Some(m) = snap.measured_cost_us {
            if m.is_finite() && m > 0.0 {
                self.last_cost_us = m;
            }
        }
        let c_s = self.last_cost_us / 1e6;
        let h = self.headroom;

        // v(k) in tuples per period, then as a rate.
        let q = snap.outstanding as f64;
        let v_tuples = -q + self.target_s * h / c_s + period_s * h / c_s;
        let v_tps = v_tuples / period_s;
        let fin = snap.fin_rate();

        let decision = match self.shed_mode {
            ShedMode::Entry => Decision::entry(EntryShedder::alpha_for(v_tps, fin)),
            ShedMode::Network => Decision::network(NetworkShedder::load_to_shed_us(
                snap.queued_load_us,
                fin,
                v_tps,
                self.last_cost_us,
                period_s,
            )),
        };
        self.signals.push(SignalRow {
            k: snap.k,
            y_hat_s: (q + 1.0) * c_s / h,
            error_s: self.target_s - (q + 1.0) * c_s / h,
            u_tps: f64::NAN,
            v_tps,
            alpha: decision.entry_drop_prob,
            cost_us: self.last_cost_us,
        });
        decision
    }
}

impl SheddingStrategy for BaselineStrategy {
    fn name(&self) -> &'static str {
        "BASELINE"
    }

    fn signals(&self) -> &[SignalRow] {
        &self.signals
    }
}

impl InstrumentedHook for BaselineStrategy {
    fn control_state(&self) -> Option<ControlState> {
        state_from_signals(&self.signals)
    }
}

// ---------------------------------------------------------------------------
// AURORA
// ---------------------------------------------------------------------------

/// The open-loop Aurora/Borealis shedder (Fig. 1).
///
/// Every period: measured load `L = fin(k−1)`; if `L > L0` shed `L − L0`,
/// else admit `L0 − L` more. `L0 = H/c(k−1)` (capacity). System state —
/// queue length, delays — plays no role; that is the point of §4.3.2.
#[derive(Debug, Clone)]
pub struct AuroraStrategy {
    headroom_for_l0: f64,
    last_cost_us: f64,
    signals: Vec<SignalRow>,
}

impl AuroraStrategy {
    /// Builds the strategy; `headroom_for_l0` is the `H` in `L0 = H/c`
    /// (Fig. 16 retunes it to 0.96).
    pub fn new(headroom_for_l0: f64, prior_cost_us: f64) -> Self {
        assert!(headroom_for_l0 > 0.0 && headroom_for_l0 <= 1.0);
        assert!(prior_cost_us > 0.0);
        Self {
            headroom_for_l0,
            last_cost_us: prior_cost_us,
            signals: Vec::new(),
        }
    }

    /// Builds the strategy from a loop configuration (uses the loop's `H`).
    pub fn from_config(cfg: &LoopConfig) -> Self {
        Self::new(cfg.headroom, cfg.prior_cost_us)
    }
}

impl ControlHook for AuroraStrategy {
    fn on_period(&mut self, snap: &PeriodSnapshot) -> Decision {
        if let Some(m) = snap.measured_cost_us {
            if m.is_finite() && m > 0.0 {
                self.last_cost_us = m;
            }
        }
        let c_s = self.last_cost_us / 1e6;
        let l0 = self.headroom_for_l0 / c_s; // tuples/s
        let l = snap.fin_rate();
        let alpha = if l > l0 { 1.0 - l0 / l } else { 0.0 };
        self.signals.push(SignalRow {
            k: snap.k,
            y_hat_s: f64::NAN,
            error_s: f64::NAN,
            u_tps: f64::NAN,
            v_tps: l0.min(l),
            alpha,
            cost_us: self.last_cost_us,
        });
        Decision::entry(alpha)
    }
}

impl SheddingStrategy for AuroraStrategy {
    fn name(&self) -> &'static str {
        "AURORA"
    }

    fn signals(&self) -> &[SignalRow] {
        &self.signals
    }
}

impl InstrumentedHook for AuroraStrategy {
    fn control_state(&self) -> Option<ControlState> {
        state_from_signals(&self.signals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamshed_engine::time::{secs, SimTime};

    fn snap(k: u64, offered: u64, outstanding: u64, cost_us: Option<f64>) -> PeriodSnapshot {
        PeriodSnapshot {
            k,
            now: SimTime::ZERO + secs(k + 1),
            period: secs(1),
            offered,
            admitted: offered,
            dropped_entry: 0,
            dropped_network: 0,
            completed: 180,
            outstanding,
            queued_tuples: outstanding,
            queued_load_us: outstanding as f64 * 5105.0,
            measured_cost_us: cost_us,
            mean_delay_ms: None,
            cpu_busy_us: 950_000,
        }
    }

    #[test]
    fn ctrl_sheds_nothing_when_under_target() {
        let mut s = CtrlStrategy::paper_default();
        // q = 10 → ŷ ≈ 58 ms « 2 s target: no shedding.
        let d = s.on_period(&snap(0, 150, 10, Some(5105.0)));
        assert_eq!(d.entry_drop_prob, 0.0);
        assert_eq!(s.name(), "CTRL");
        assert_eq!(s.signals().len(), 1);
        assert!(s.signals()[0].error_s > 1.5);
    }

    #[test]
    fn ctrl_sheds_when_far_over_target() {
        let mut s = CtrlStrategy::paper_default();
        // q = 2000 → ŷ ≈ 10.5 s » 2 s target: strong shedding.
        let d = s.on_period(&snap(0, 400, 2000, Some(5105.0)));
        assert!(d.entry_drop_prob > 0.5, "alpha {}", d.entry_drop_prob);
    }

    #[test]
    fn ctrl_alpha_moderates_near_target() {
        let mut s = CtrlStrategy::paper_default();
        // q ≈ q* = 368: v should be near capacity, shed share near the
        // overload fraction.
        let d = s.on_period(&snap(0, 400, 368, Some(5105.0)));
        assert!(
            d.entry_drop_prob > 0.2 && d.entry_drop_prob < 0.8,
            "alpha {}",
            d.entry_drop_prob
        );
    }

    #[test]
    fn ctrl_network_mode_emits_load() {
        let cfg = LoopConfig::paper_default().with_shed_mode(ShedMode::Network);
        let mut s = CtrlStrategy::from_config(&cfg);
        let d = s.on_period(&snap(0, 400, 2000, Some(5105.0)));
        assert_eq!(d.entry_drop_prob, 0.0);
        assert!(d.shed_load_us > 0.0);
    }

    #[test]
    fn ctrl_tracks_cost_changes() {
        let mut s = CtrlStrategy::paper_default();
        for k in 0..20 {
            let _ = s.on_period(&snap(k, 200, 100, Some(10_000.0)));
        }
        let last = s.signals().last().unwrap();
        assert!((last.cost_us - 10_000.0).abs() < 200.0, "{}", last.cost_us);
    }

    #[test]
    fn baseline_matches_model_formula() {
        let cfg = LoopConfig::paper_default();
        let mut s = BaselineStrategy::from_config(&cfg);
        let snapshot = snap(0, 400, 100, Some(5105.0));
        let d = s.on_period(&snapshot);
        // v = (−q + yd·H/c + T·H/c)/T = −100 + 380 + 190 = 470 t/s > fin
        // → no shedding.
        assert_eq!(d.entry_drop_prob, 0.0);
        // With a huge queue, v goes negative → full shedding.
        let d2 = s.on_period(&snap(1, 400, 5000, Some(5105.0)));
        assert_eq!(d2.entry_drop_prob, 1.0);
        assert_eq!(s.name(), "BASELINE");
    }

    #[test]
    fn aurora_is_open_loop_in_queue() {
        let mut s = AuroraStrategy::new(0.97, 5105.0);
        // Same fin, wildly different queues → identical decision.
        let d1 = s.on_period(&snap(0, 400, 0, Some(5105.0)));
        let d2 = s.on_period(&snap(1, 400, 100_000, Some(5105.0)));
        assert!((d1.entry_drop_prob - d2.entry_drop_prob).abs() < 1e-12);
        // α = 1 − L0/L ≈ 1 − 190/400 (L0 from the measured cost).
        assert!((d1.entry_drop_prob - (1.0 - 190.0 / 400.0)).abs() < 1e-3);
        assert_eq!(s.name(), "AURORA");
    }

    #[test]
    fn aurora_admits_all_under_capacity() {
        let mut s = AuroraStrategy::new(0.97, 5105.0);
        let d = s.on_period(&snap(0, 150, 50, Some(5105.0)));
        assert_eq!(d.entry_drop_prob, 0.0);
    }

    #[test]
    fn aurora_lower_h_sheds_more() {
        let mut a97 = AuroraStrategy::new(0.97, 5105.0);
        let mut a96 = AuroraStrategy::new(0.96, 5105.0);
        let s0 = snap(0, 400, 0, Some(5105.0));
        assert!(
            a96.on_period(&s0).entry_drop_prob > a97.on_period(&s0).entry_drop_prob
        );
    }

    #[test]
    fn control_state_mirrors_last_signal_row() {
        let mut s = CtrlStrategy::paper_default();
        assert!(s.control_state().is_none(), "no state before first period");
        let _ = s.on_period(&snap(0, 400, 2000, Some(5105.0)));
        let state = s.control_state().expect("one period logged");
        let row = s.signals().last().unwrap();
        assert_eq!(state.y_hat_s, row.y_hat_s);
        assert_eq!(state.error_s, row.error_s);
        assert_eq!(state.u_tps, row.u_tps);
        assert_eq!(state.cost_est_us, row.cost_us);
        assert_eq!(state.mode, LoopMode::Direct);
        assert_eq!(state.fault_flags, 0);
    }

    #[test]
    fn runtime_target_change() {
        let mut s = CtrlStrategy::paper_default();
        assert_eq!(s.target_delay_s(), 2.0);
        s.set_target_delay_s(5.0);
        assert_eq!(s.target_delay_s(), 5.0);
        // With yd = 5 s and q = 368 (ŷ ≈ 2 s) there is slack: the loop
        // admits *more* than capacity to grow the queue toward the new
        // target, so it sheds less than it would at yd = 2 s.
        let d5 = s.on_period(&snap(0, 400, 368, Some(5105.0)));
        let mut s2 = CtrlStrategy::paper_default();
        let d2 = s2.on_period(&snap(0, 400, 368, Some(5105.0)));
        assert!(
            d5.entry_drop_prob < d2.entry_drop_prob,
            "relaxed target sheds less: {} vs {}",
            d5.entry_drop_prob,
            d2.entry_drop_prob
        );
    }
}
