//! Loop configuration shared by all shedding strategies.

use serde::{Deserialize, Serialize};
use streamshed_engine::time::{millis_f64, SimDuration};
use streamshed_zdomain::design::ControllerParams;

/// Where the actuator sheds load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ShedMode {
    /// Coin-flip shedding at the network entry (Eq. 13) — the "blackbox"
    /// shedder of §4.5.2.
    #[default]
    Entry,
    /// Load-based shedding from random in-network queue locations
    /// (`Ls = Lq + Li − La`) — the shedder the authors built for §5.
    Network,
}

/// Configuration of a quality-driven load-shedding loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopConfig {
    /// Target delay `yd` in milliseconds.
    pub target_delay_ms: f64,
    /// Control period `T` in milliseconds.
    pub period_ms: f64,
    /// Headroom factor `H` assumed by the model.
    pub headroom: f64,
    /// Prior per-tuple cost estimate, µs (before any measurement).
    pub prior_cost_us: f64,
    /// EWMA smoothing for the cost estimator, in `(0, 1]`.
    pub cost_smoothing: f64,
    /// Controller parameters (CTRL strategy only).
    pub controller: ControllerParams,
    /// Actuation mode.
    pub shed_mode: ShedMode,
    /// Anti-windup by back-calculation: feed the *saturated* control
    /// effort back into the controller state (on by default; exposed for
    /// the ablation benches).
    pub anti_windup: bool,
    /// Which cost tracker the CTRL strategy builds (EWMA default; Kalman
    /// per the paper's future-work suggestion).
    pub cost_tracker: crate::kalman::CostTrackerKind,
}

impl LoopConfig {
    /// The paper's experiment configuration: `yd = 2000 ms`, `T = 1000 ms`,
    /// `H = 0.97`, `c` prior from the 190 t/s knee, published controller
    /// parameters, entry shedding.
    pub fn paper_default() -> Self {
        Self {
            target_delay_ms: 2000.0,
            period_ms: 1000.0,
            headroom: 0.97,
            prior_cost_us: 0.97 / 190.0 * 1e6, // ≈ 5105 µs
            cost_smoothing: 0.3,
            controller: ControllerParams::PAPER,
            shed_mode: ShedMode::Entry,
            anti_windup: true,
            cost_tracker: crate::kalman::CostTrackerKind::Ewma,
        }
    }

    /// Builder-style setter for anti-windup (ablation only).
    pub fn with_anti_windup(mut self, on: bool) -> Self {
        self.anti_windup = on;
        self
    }

    /// Builder-style setter for the cost tracker kind.
    pub fn with_cost_tracker(mut self, kind: crate::kalman::CostTrackerKind) -> Self {
        self.cost_tracker = kind;
        self
    }

    /// Builds the configured cost tracker.
    pub fn build_cost_tracker(&self) -> crate::kalman::CostTracker {
        match self.cost_tracker {
            crate::kalman::CostTrackerKind::Ewma => crate::kalman::CostTracker::Ewma(
                crate::estimator::CostEstimator::new(self.prior_cost_us, self.cost_smoothing),
            ),
            crate::kalman::CostTrackerKind::Kalman => crate::kalman::CostTracker::Kalman(
                crate::kalman::KalmanCostEstimator::with_defaults(self.prior_cost_us),
            ),
            crate::kalman::CostTrackerKind::Frozen => {
                crate::kalman::CostTracker::Frozen(self.prior_cost_us)
            }
        }
    }

    /// Builder-style setter for the target delay.
    pub fn with_target_delay_ms(mut self, ms: f64) -> Self {
        assert!(ms > 0.0);
        self.target_delay_ms = ms;
        self
    }

    /// Builder-style setter for the control period.
    pub fn with_period_ms(mut self, ms: f64) -> Self {
        assert!(ms > 0.0);
        self.period_ms = ms;
        self
    }

    /// Builder-style setter for the headroom.
    pub fn with_headroom(mut self, h: f64) -> Self {
        assert!(h > 0.0 && h <= 1.0);
        self.headroom = h;
        self
    }

    /// Builder-style setter for the prior cost.
    pub fn with_prior_cost_us(mut self, c: f64) -> Self {
        assert!(c > 0.0);
        self.prior_cost_us = c;
        self
    }

    /// Builder-style setter for the controller parameters.
    pub fn with_controller(mut self, p: ControllerParams) -> Self {
        self.controller = p;
        self
    }

    /// Builder-style setter for the shed mode.
    pub fn with_shed_mode(mut self, m: ShedMode) -> Self {
        self.shed_mode = m;
        self
    }

    /// Builder-style setter for the cost smoothing factor.
    pub fn with_cost_smoothing(mut self, s: f64) -> Self {
        assert!(s > 0.0 && s <= 1.0);
        self.cost_smoothing = s;
        self
    }

    /// Target delay in seconds.
    pub fn target_delay_s(&self) -> f64 {
        self.target_delay_ms / 1e3
    }

    /// Control period as a [`SimDuration`].
    pub fn period(&self) -> SimDuration {
        millis_f64(self.period_ms)
    }

    /// Target delay as a [`SimDuration`].
    pub fn target_delay(&self) -> SimDuration {
        millis_f64(self.target_delay_ms)
    }
}

/// One row of a strategy's internal signal log — the quantities of
/// Fig. 10 (`e`, `u`, `v`, `α`) plus the estimates feeding them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalRow {
    /// Period index.
    pub k: u64,
    /// Estimated delay ŷ(k), seconds.
    pub y_hat_s: f64,
    /// Error `e = yd − ŷ`, seconds.
    pub error_s: f64,
    /// Raw controller output `u`, tuples/s (NaN for heuristics without
    /// one).
    pub u_tps: f64,
    /// Desired admission rate `v`, tuples/s.
    pub v_tps: f64,
    /// Entry drop probability applied.
    pub alpha: f64,
    /// Cost estimate used, µs.
    pub cost_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let cfg = LoopConfig::paper_default();
        assert_eq!(cfg.target_delay_ms, 2000.0);
        assert_eq!(cfg.period_ms, 1000.0);
        assert_eq!(cfg.headroom, 0.97);
        assert!((cfg.prior_cost_us - 5105.3).abs() < 1.0);
        assert_eq!(cfg.shed_mode, ShedMode::Entry);
    }

    #[test]
    fn builders_chain() {
        let cfg = LoopConfig::paper_default()
            .with_target_delay_ms(1000.0)
            .with_period_ms(500.0)
            .with_headroom(0.9)
            .with_shed_mode(ShedMode::Network);
        assert_eq!(cfg.target_delay_ms, 1000.0);
        assert_eq!(cfg.period().as_millis_f64(), 500.0);
        assert_eq!(cfg.headroom, 0.9);
        assert_eq!(cfg.shed_mode, ShedMode::Network);
    }

    #[test]
    fn conversions() {
        let cfg = LoopConfig::paper_default();
        assert_eq!(cfg.target_delay_s(), 2.0);
        assert_eq!(cfg.period().as_secs_f64(), 1.0);
        assert_eq!(cfg.target_delay().as_millis_f64(), 2000.0);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_period() {
        let _ = LoopConfig::paper_default().with_period_ms(0.0);
    }
}
