//! Property-based tests for the control crate: priority allocation,
//! estimators, and the identification machinery.

use proptest::prelude::*;
use streamshed_control::adaptive::RlsEstimator;
use streamshed_control::estimator::CostEstimator;
use streamshed_control::kalman::KalmanCostEstimator;
use streamshed_control::priority::StreamPriorities;
use streamshed_control::shedder::{EntryShedder, NetworkShedder};

proptest! {
    /// Priority allocation always conserves the total admission budget
    /// and keeps per-stream fractions in [0, 1].
    #[test]
    fn priority_allocation_conserves_budget(
        weights in prop::collection::vec(0.01..100.0f64, 1..8),
        keep in 0.0..1.0f64,
    ) {
        let p = StreamPriorities::new(weights.clone());
        let keeps = p.allocate_keep(keep);
        prop_assert_eq!(keeps.len(), weights.len());
        prop_assert!(keeps.iter().all(|k| (0.0..=1.0 + 1e-12).contains(k)));
        let total: f64 = keeps.iter().sum::<f64>() / keeps.len() as f64;
        prop_assert!((total - keep).abs() < 1e-9, "total {total} vs keep {keep}");
    }

    /// Higher weight never receives a smaller keep fraction.
    #[test]
    fn priority_allocation_is_monotone_in_weight(
        weights in prop::collection::vec(0.01..100.0f64, 2..8),
        keep in 0.0..1.0f64,
    ) {
        let p = StreamPriorities::new(weights.clone());
        let keeps = p.allocate_keep(keep);
        for i in 0..weights.len() {
            for j in 0..weights.len() {
                if weights[i] > weights[j] {
                    prop_assert!(
                        keeps[i] >= keeps[j] - 1e-9,
                        "w{i}={} k{i}={} vs w{j}={} k{j}={}",
                        weights[i], keeps[i], weights[j], keeps[j]
                    );
                }
            }
        }
    }

    /// The entry shedder's α is always a probability and is monotone:
    /// more desired admission ⇒ less shedding.
    #[test]
    fn entry_alpha_is_monotone_probability(
        fin in 0.0..2000.0f64,
        v1 in -500.0..2000.0f64,
        v2 in -500.0..2000.0f64,
    ) {
        let a1 = EntryShedder::alpha_for(v1, fin);
        let a2 = EntryShedder::alpha_for(v2, fin);
        prop_assert!((0.0..=1.0).contains(&a1));
        if v1 <= v2 {
            prop_assert!(a1 >= a2 - 1e-12);
        }
    }

    /// The queue-conserving Ls is bounded by what exists and never
    /// negative.
    #[test]
    fn network_ls_bounded(
        lq in 0.0..1e7f64,
        fin in 0.0..2000.0f64,
        v in -2000.0..2000.0f64,
        c in 100.0..50_000.0f64,
        t in 0.05..4.0f64,
    ) {
        let ls = NetworkShedder::load_to_shed_us(lq, fin, v, c, t);
        prop_assert!(ls >= 0.0);
        prop_assert!(ls <= lq + fin * t * c + 1e-6);
    }

    /// RLS recovers an arbitrary parameter from noise-free data.
    #[test]
    fn rls_recovers_parameter(theta in -50.0..50.0f64, seed in 0u64..500) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rls = RlsEstimator::new(0.0, 1000.0, 1.0);
        for _ in 0..80 {
            let x: f64 = rng.gen_range(0.5..5.0);
            rls.update(x, theta * x);
        }
        prop_assert!(
            (rls.estimate() - theta).abs() < 1e-3 + theta.abs() * 1e-4,
            "estimate {} vs {theta}", rls.estimate()
        );
    }

    /// Both cost trackers stay within the convex hull of their inputs.
    #[test]
    fn cost_trackers_stay_in_hull(
        prior in 500.0..20_000.0f64,
        measurements in prop::collection::vec(500.0..20_000.0f64, 1..40),
    ) {
        let mut ewma = CostEstimator::new(prior, 0.4);
        let mut kalman = KalmanCostEstimator::with_defaults(prior);
        let lo = measurements.iter().cloned().fold(prior, f64::min);
        let hi = measurements.iter().cloned().fold(prior, f64::max);
        for &m in &measurements {
            let e = ewma.update(Some(m));
            let k = kalman.update(Some(m));
            prop_assert!((lo - 1e-6..=hi + 1e-6).contains(&e), "ewma {e}");
            prop_assert!((lo - 1e-6..=hi + 1e-6).contains(&k), "kalman {k}");
        }
    }
}
