//! Property tests for bumpless controller re-tuning.
//!
//! The contract of [`FeedbackController::retune_bumpless`]: after an
//! arbitrary gain/pole swap mid-run, the next output differs from the
//! output of an identical controller that did NOT swap by exactly
//! `(g_new·b0_new − g_old·b0_old)·e(k)` — the unavoidable re-weighting
//! of the *current* error. The history contribution carries over
//! unchanged, so at `e(k) = 0` the swap is invisible, and the induced
//! actuation step `|α_swap − α_keep|` is bounded by that same term
//! divided by the arrival rate.

use proptest::prelude::*;
use streamshed_control::controller::FeedbackController;
use streamshed_control::shedder::EntryShedder;
use streamshed_zdomain::design::{design_for_integrator, DesignSpec};

const T: f64 = 1.0;
const H: f64 = 0.97;

/// Builds a controller with the paper tuning and replays an arbitrary
/// error history through it at cost `c_old`.
fn with_history(history: &[f64], c_old: f64) -> FeedbackController {
    let mut ctl = FeedbackController::paper();
    for &e in history {
        let u = ctl.compute(e, c_old, T, H);
        ctl.commit(e, u);
    }
    ctl
}

proptest! {
    /// Arbitrary mid-run swaps (new pole AND new gain): the deviation
    /// from the no-swap controller is exactly the current-error
    /// re-weighting term — and therefore vanishes at e(k) = 0.
    #[test]
    fn swap_deviation_is_the_current_error_term(
        history in prop::collection::vec(-3.0..3.0f64, 1..20),
        pole in 0.3..0.9f64,
        cost_ratio in 0.25..4.0f64,
        e_next in -3.0..3.0f64,
    ) {
        let c_old = 5.105e-3;
        let c_new = c_old * cost_ratio;
        let g_old = H / (c_old * T);
        let g_new = H / (c_new * T);
        let old_params = FeedbackController::paper().params();
        let new_params = design_for_integrator(&DesignSpec::from_double_pole(pole));

        let mut swapped = with_history(&history, c_old);
        let mut kept = swapped;
        swapped.retune_bumpless(new_params, g_old, g_new);

        // The no-swap controller keeps running at the old cost; the
        // swapped one at the new.
        let u_swap = swapped.compute(e_next, c_new, T, H);
        let u_keep = kept.compute(e_next, c_old, T, H);

        let bound = (g_new * new_params.b0 - g_old * old_params.b0).abs()
            * e_next.abs()
            + 1e-6;
        prop_assert!(
            (u_swap - u_keep).abs() <= bound,
            "u_swap {u_swap} vs u_keep {u_keep}, bound {bound}"
        );

        // Corollary at the actuator: the α step induced by the swap is
        // the u deviation scaled by 1/fin.
        let fin = 400.0;
        let fout = 190.0;
        let a_swap = EntryShedder::alpha_for(u_swap + fout, fin);
        let a_keep = EntryShedder::alpha_for(u_keep + fout, fin);
        prop_assert!(
            (a_swap - a_keep).abs() <= bound / fin + 1e-9,
            "alpha step {} vs bound {}",
            (a_swap - a_keep).abs(),
            bound / fin
        );
    }

    /// At zero current error the swap is exactly invisible, whatever the
    /// history and however large the gain change.
    #[test]
    fn swap_is_invisible_at_zero_error(
        history in prop::collection::vec(-3.0..3.0f64, 1..20),
        pole in 0.3..0.9f64,
        cost_ratio in 0.25..4.0f64,
    ) {
        let c_old = 5.105e-3;
        let c_new = c_old * cost_ratio;
        let g_old = H / (c_old * T);
        let g_new = H / (c_new * T);
        let new_params = design_for_integrator(&DesignSpec::from_double_pole(pole));

        let mut swapped = with_history(&history, c_old);
        let mut kept = swapped;
        swapped.retune_bumpless(new_params, g_old, g_new);

        let u_swap = swapped.compute(0.0, c_new, T, H);
        let u_keep = kept.compute(0.0, c_old, T, H);
        prop_assert!(
            (u_swap - u_keep).abs() < 1e-6,
            "history term must carry over exactly: {u_swap} vs {u_keep}"
        );
    }

    /// Chained swaps preserve the invariant: re-tuning back and forth is
    /// still bumpless at zero error (the transfer composes).
    #[test]
    fn swaps_compose(
        history in prop::collection::vec(-3.0..3.0f64, 1..20),
        poles in prop::collection::vec(0.3..0.9f64, 1..4),
    ) {
        let c = 5.105e-3;
        let g = H / (c * T);
        let mut swapped = with_history(&history, c);
        let mut kept = swapped;
        for &p in &poles {
            swapped.retune_bumpless(
                design_for_integrator(&DesignSpec::from_double_pole(p)),
                g,
                g,
            );
        }
        // Return to the original tuning: everything must line up again.
        swapped.retune_bumpless(kept.params(), g, g);
        let u_swap = swapped.compute(0.0, c, T, H);
        let u_keep = kept.compute(0.0, c, T, H);
        prop_assert!((u_swap - u_keep).abs() < 1e-6, "{u_swap} vs {u_keep}");
    }
}
