//! End-to-end closed-loop tests: strategies driving the real simulator on
//! the paper's identification network.

use streamshed_control::loop_::{LoopConfig, ShedMode};
use streamshed_control::strategy::{
    AuroraStrategy, BaselineStrategy, CtrlStrategy, SheddingStrategy,
};
use streamshed_engine::hook::ControlHook;
use streamshed_engine::metrics::RunReport;
use streamshed_engine::networks::identification_network;
use streamshed_engine::sim::{SimConfig, Simulator};
use streamshed_engine::time::{secs, SimTime};
use streamshed_workload::{to_micros, ArrivalTrace, ParetoTrace, StepTrace};

fn run<S: SheddingStrategy>(mut strategy: S, times: &[f64], dur_s: u64) -> (RunReport, S) {
    let net = identification_network();
    let cfg = SimConfig::paper_default();
    let sim = Simulator::new(net, cfg);
    let arrivals: Vec<SimTime> = to_micros(times).into_iter().map(SimTime).collect();
    let report = sim.run(&arrivals, &mut strategy, secs(dur_s));
    (report, strategy)
}

#[test]
fn ctrl_holds_two_second_target_under_sustained_overload() {
    // 400 t/s against a 190 t/s capacity: heavy sustained overload.
    let times = StepTrace::constant(400.0).arrival_times(120.0);
    let (report, ctrl) = run(CtrlStrategy::paper_default(), &times, 120);

    // The virtual queue must stabilise near q* ≈ 368 and the estimated
    // delay near 2 s.
    let tail: Vec<_> = ctrl.signals().iter().skip(30).collect();
    let mean_yhat: f64 = tail.iter().map(|s| s.y_hat_s).sum::<f64>() / tail.len() as f64;
    assert!(
        (mean_yhat - 2.0).abs() < 0.3,
        "steady-state estimated delay {mean_yhat}"
    );

    // True measured delays agree with the estimate (model validity).
    let mean_true = report.delay_stats().mean_ms() / 1e3;
    assert!(
        (mean_true - 2.0).abs() < 0.6,
        "true mean delay {mean_true} s"
    );

    // Loss ≈ overload fraction (1 − 190/400 ≈ 0.525).
    let loss = report.loss_ratio();
    assert!((loss - 0.525).abs() < 0.08, "loss {loss}");
}

#[test]
fn ctrl_sheds_nothing_in_underload() {
    let times = StepTrace::constant(120.0).arrival_times(60.0);
    let (report, _) = run(CtrlStrategy::paper_default(), &times, 60);
    assert!(report.loss_ratio() < 0.01, "loss {}", report.loss_ratio());
    assert_eq!(report.delayed_tuples, 0);
}

#[test]
fn ctrl_beats_aurora_on_bursty_input() {
    let trace = ParetoTrace::builder()
        .mean_rate(200.0)
        .bias(1.0)
        .seed(7)
        .build();
    let times = trace.arrival_times(200.0);

    let (ctrl_report, _) = run(CtrlStrategy::paper_default(), &times, 200);
    let cfg = LoopConfig::paper_default();
    let (aurora_report, _) = run(AuroraStrategy::from_config(&cfg), &times, 200);

    // The headline result: far fewer delay violations at comparable loss.
    assert!(
        ctrl_report.accumulated_violation_ms * 3.0 < aurora_report.accumulated_violation_ms,
        "CTRL {} vs AURORA {}",
        ctrl_report.accumulated_violation_ms,
        aurora_report.accumulated_violation_ms
    );
    // "Comparable" is a statistical bound: the realized losses depend on
    // the entry-shedder sampling sequence, which legitimately differs
    // between shedder implementations (Bernoulli vs geometric skip).
    let loss_gap = (ctrl_report.loss_ratio() - aurora_report.loss_ratio()).abs();
    assert!(loss_gap < 0.12, "loss gap {loss_gap}");
}

#[test]
fn baseline_sits_between_ctrl_and_aurora() {
    let trace = ParetoTrace::builder()
        .mean_rate(220.0)
        .bias(0.5)
        .seed(17)
        .build();
    let times = trace.arrival_times(200.0);

    let cfg = LoopConfig::paper_default();
    let (ctrl, _) = run(CtrlStrategy::paper_default(), &times, 200);
    let (baseline, _) = run(BaselineStrategy::from_config(&cfg), &times, 200);
    let (aurora, _) = run(AuroraStrategy::from_config(&cfg), &times, 200);

    assert!(
        ctrl.accumulated_violation_ms <= baseline.accumulated_violation_ms * 1.2,
        "CTRL {} vs BASELINE {}",
        ctrl.accumulated_violation_ms,
        baseline.accumulated_violation_ms
    );
    assert!(
        baseline.accumulated_violation_ms < aurora.accumulated_violation_ms,
        "BASELINE {} vs AURORA {}",
        baseline.accumulated_violation_ms,
        aurora.accumulated_violation_ms
    );
}

#[test]
fn network_shedding_mode_also_controls_delay() {
    let times = StepTrace::constant(400.0).arrival_times(120.0);
    let cfg = LoopConfig::paper_default().with_shed_mode(ShedMode::Network);
    let (report, _) = run(CtrlStrategy::from_config(&cfg), &times, 120);
    let mean_true = report.delay_stats().mean_ms() / 1e3;
    assert!(
        mean_true < 3.0,
        "network-mode mean delay {mean_true} s should stay near target"
    );
    assert!(report.dropped_network > 0);
}

#[test]
fn aurora_unstable_under_ramp() {
    // Example 1 of §4.3.2: monotonically increasing rate; AURORA's shed
    // amount is derived from fin(k−1), so the queue grows by
    // fin(k) − fin(k−1) every period — without bound — while CTRL stays
    // pinned at its target queue.
    let ramp: Vec<(f64, f64)> = (0..200)
        .map(|i| (i as f64, 220.0 + i as f64 * 4.0))
        .collect();
    let times = StepTrace::from_steps(ramp).arrival_times(200.0);

    let cfg = LoopConfig::paper_default();
    let (aurora, _) = run(AuroraStrategy::from_config(&cfg), &times, 200);
    let (ctrl, _) = run(CtrlStrategy::paper_default(), &times, 200);

    // Unbounded growth: the queue keeps climbing through the whole run.
    // (The entry shedder realises the shed *amount* as a drop
    // probability, so the per-period leak is L0·Δfin/fin rather than the
    // full Δfin of Eq. 8 — slower, but still unbounded.)
    let q_mid = aurora.periods[99].outstanding;
    let q_end = aurora.periods.last().unwrap().outstanding;
    assert!(
        q_end > q_mid + 80,
        "AURORA queue must keep growing: mid {q_mid}, end {q_end}"
    );
    // CTRL's queue stays near its designed operating point q* ≈ 368.
    let ctrl_q = ctrl.periods.last().unwrap().outstanding;
    assert!(
        (ctrl_q as f64 - 368.0).abs() < 120.0,
        "CTRL queue {ctrl_q} stays near q*"
    );
    // AURORA's delay drifts past the target and keeps rising; CTRL's
    // worst overshoot stays bounded near the target.
    let c_over_h = 5105.0 / 0.97 / 1e6; // seconds per queued tuple
    let aurora_delay_end = (q_end as f64 + 1.0) * c_over_h;
    let aurora_delay_mid = (q_mid as f64 + 1.0) * c_over_h;
    assert!(
        aurora_delay_end > aurora_delay_mid + 0.4 && aurora_delay_end > aurora_delay_mid * 1.4,
        "AURORA delay drifts: mid {aurora_delay_mid:.2}s end {aurora_delay_end:.2}s"
    );
    // Per-tuple maxima include path-length tails; what matters is that
    // CTRL's worst case stays bounded (a few seconds) instead of drifting.
    assert!(
        ctrl.max_overshoot_ms < 4000.0,
        "CTRL overshoot bounded: {}",
        ctrl.max_overshoot_ms
    );
}

#[test]
fn priority_shedding_protects_important_streams() {
    use streamshed_control::priority::{PriorityCtrlStrategy, StreamPriorities};

    // 2× overload; stream 0 is 10× more important than streams 1 and 2.
    let times = StepTrace::constant(380.0).arrival_times(120.0);
    let cfg = LoopConfig::paper_default();
    let mut strategy =
        PriorityCtrlStrategy::new(&cfg, StreamPriorities::new(vec![10.0, 1.0, 1.0]));
    let net = identification_network();
    let sim = Simulator::new(net, SimConfig::paper_default());
    let arrivals: Vec<SimTime> = to_micros(&times).into_iter().map(SimTime).collect();
    let report = sim.run(&arrivals, &mut strategy, secs(120));

    // Overall: still sheds about the overload fraction and keeps delays
    // controlled.
    assert!((report.loss_ratio() - 0.5).abs() < 0.1, "loss {}", report.loss_ratio());
    assert!(report.delay_stats().mean_ms() < 4000.0);

    // Per-stream: the entry filters f1/f2/f3 (nodes 0..3) process what
    // their streams admitted. Stream 0 must be nearly untouched while 1
    // and 2 bear the cut.
    let f = &report.node_stats;
    assert_eq!(f[0].name, "f1");
    let offered_per_stream = report.offered as f64 / 3.0;
    let keep0 = f[0].processed as f64 / offered_per_stream;
    let keep1 = f[1].processed as f64 / offered_per_stream;
    let keep2 = f[2].processed as f64 / offered_per_stream;
    assert!(keep0 > 0.95, "priority stream keep fraction {keep0}");
    assert!(keep1 < 0.35, "low-priority keep fraction {keep1}");
    assert!(keep2 < 0.35, "low-priority keep fraction {keep2}");
    assert_eq!(strategy.name(), "CTRL-PRIORITY");
}

#[test]
fn kalman_tracker_also_closes_the_loop() {
    use streamshed_control::kalman::CostTrackerKind;

    let times = StepTrace::constant(380.0).arrival_times(120.0);
    let cfg = LoopConfig::paper_default().with_cost_tracker(CostTrackerKind::Kalman);
    let (report, ctrl) = run(CtrlStrategy::from_config(&cfg), &times, 120);
    let tail: Vec<_> = ctrl.signals().iter().skip(30).collect();
    let mean_yhat: f64 = tail.iter().map(|s| s.y_hat_s).sum::<f64>() / tail.len() as f64;
    assert!(
        (mean_yhat - 2.0).abs() < 0.3,
        "Kalman-tracked loop steady state {mean_yhat}"
    );
    assert!((report.loss_ratio() - 0.5).abs() < 0.1);
}

#[test]
fn adaptive_ctrl_survives_cost_jump_on_the_real_engine() {
    use streamshed_control::adaptive::AdaptiveCtrlStrategy;
    use streamshed_engine::cost::CostSchedule;

    // Cost doubles at t = 60 s: capacity halves mid-run.
    let times = StepTrace::constant(300.0).arrival_times(150.0);
    let arrivals: Vec<SimTime> = to_micros(&times).into_iter().map(SimTime).collect();
    let schedule = CostSchedule::from_points(vec![(SimTime(60_000_000), 2.0)]);
    let sim_cfg = SimConfig::paper_default().with_cost_schedule(schedule);

    let cfg = LoopConfig::paper_default();
    let mut adaptive = AdaptiveCtrlStrategy::from_config(&cfg);
    let sim = Simulator::new(identification_network(), sim_cfg);
    let report = sim.run(&arrivals, &mut adaptive, secs(150));

    // Settled on the post-jump regime: estimated delay back near target.
    let tail: Vec<_> = adaptive.signals().iter().skip(110).collect();
    let mean_yhat: f64 = tail.iter().map(|s| s.y_hat_s).sum::<f64>() / tail.len() as f64;
    assert!(
        (mean_yhat - 2.0).abs() < 0.4,
        "adaptive steady state after jump: {mean_yhat}"
    );
    // The identified gain roughly doubled (c/H went from ~5.3 ms to
    // ~10.5 ms per tuple).
    let g = adaptive.identified_gain();
    assert!(
        g > 1.4 * (5105.0 / 1e6 / 0.97),
        "identified gain {g} should reflect the doubled cost"
    );
    // Loss ≈ 1 − 95/300 in the second half, 1 − 190/300 in the first:
    // overall somewhere between.
    let loss = report.loss_ratio();
    assert!(loss > 0.35 && loss < 0.75, "loss {loss}");
}

#[test]
fn ctrl_follows_runtime_target_changes() {
    // Fig. 18: yd = 1 s, then 3 s, then 5 s. Wrap CtrlStrategy to switch
    // targets at period boundaries.
    struct Switching {
        inner: CtrlStrategy,
    }
    impl ControlHook for Switching {
        fn on_period(
            &mut self,
            snap: &streamshed_engine::hook::PeriodSnapshot,
        ) -> streamshed_engine::hook::Decision {
            match snap.k {
                50 => self.inner.set_target_delay_s(3.0),
                100 => self.inner.set_target_delay_s(5.0),
                _ => {}
            }
            self.inner.on_period(snap)
        }
    }
    let cfg = LoopConfig::paper_default().with_target_delay_ms(1000.0);
    let mut hook = Switching {
        inner: CtrlStrategy::from_config(&cfg),
    };
    let times = StepTrace::constant(400.0).arrival_times(150.0);
    let net = identification_network();
    let sim = Simulator::new(net, SimConfig::paper_default());
    let arrivals: Vec<SimTime> = to_micros(&times).into_iter().map(SimTime).collect();
    let _ = sim.run(&arrivals, &mut hook, secs(150));

    let sig = hook.inner.signals();
    let mean_around = |lo: usize, hi: usize| {
        sig[lo..hi].iter().map(|s| s.y_hat_s).sum::<f64>() / (hi - lo) as f64
    };
    assert!((mean_around(35, 50) - 1.0).abs() < 0.3, "phase 1: {}", mean_around(35, 50));
    assert!((mean_around(85, 100) - 3.0).abs() < 0.5, "phase 2: {}", mean_around(85, 100));
    assert!((mean_around(135, 149) - 5.0).abs() < 0.7, "phase 3: {}", mean_around(135, 149));
}
