//! `loadgen` — the client fleet as a process.
//!
//! Drives a seeded open/closed-loop fleet against a running `serve`
//! instance and prints the [`LoadgenReport`](streamshed_net::loadgen::LoadgenReport)
//! as one JSON object on
//! stdout. Exit status is the CI gate: non-zero when the cross-boundary
//! conservation law fails, when the fleet could not be established, or
//! (with `--require-conns N`) when fewer than N connections were held.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7171 --connections 10000 --rate 0 --secs 5
//! loadgen --addr 127.0.0.1:7171 --connections 256 --rate 1500 --secs 8 --arrivals web
//! ```

use std::time::Duration;
use streamshed_net::loadgen::{self, Arrivals, LoadgenConfig, Mode};

fn parse() -> Result<(LoadgenConfig, usize, bool), String> {
    let mut cfg = LoadgenConfig::default();
    let mut require_conns = 0usize;
    let mut require_conserved = true;
    let mut addr = "127.0.0.1:7171".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => addr = val("--addr")?,
            "--connections" => {
                cfg.connections = val("--connections")?.parse().map_err(|e| format!("{e}"))?
            }
            "--threads" => cfg.threads = val("--threads")?.parse().map_err(|e| format!("{e}"))?,
            "--rate" => cfg.rate = val("--rate")?.parse().map_err(|e| format!("{e}"))?,
            "--batch" => cfg.batch = val("--batch")?.parse().map_err(|e| format!("{e}"))?,
            "--secs" => cfg.secs = val("--secs")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => cfg.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--drain-secs" => {
                cfg.drain = Duration::from_secs_f64(
                    val("--drain-secs")?.parse().map_err(|e| format!("{e}"))?,
                )
            }
            "--mode" => {
                cfg.mode = match val("--mode")?.as_str() {
                    "open" => Mode::Open,
                    "closed" => Mode::Closed,
                    other => return Err(format!("unknown mode {other} (open|closed)")),
                }
            }
            "--arrivals" => {
                cfg.arrivals = match val("--arrivals")?.as_str() {
                    "uniform" => Arrivals::Uniform,
                    "poisson" => Arrivals::Poisson,
                    "web" => Arrivals::Web,
                    other => {
                        return Err(format!("unknown arrivals {other} (uniform|poisson|web)"))
                    }
                }
            }
            "--keyed" => cfg.keyed = true,
            "--require-conns" => {
                require_conns = val("--require-conns")?.parse().map_err(|e| format!("{e}"))?
            }
            "--no-conservation-gate" => require_conserved = false,
            "--help" | "-h" => {
                eprintln!(
                    "loadgen --addr A [--connections N] [--threads T] [--rate R] [--batch B] \
                     [--secs S] [--seed K] [--mode open|closed] \
                     [--arrivals uniform|poisson|web] [--keyed] [--drain-secs D] \
                     [--require-conns N] [--no-conservation-gate]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    cfg.addr = addr
        .parse()
        .map_err(|e| format!("bad --addr {addr}: {e}"))?;
    Ok((cfg, require_conns, require_conserved))
}

fn main() {
    let (cfg, require_conns, require_conserved) = match parse() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    let report = match loadgen::run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", report.to_json());
    eprintln!(
        "loadgen: rtt p50 {:.3} ms, p99 {:.3} ms, p999 {:.3} ms, max {:.3} ms \
         over {} replies",
        report.rtt_p50_ms, report.rtt_p99_ms, report.rtt_p999_ms, report.rtt_max_ms, report.replies
    );
    let mut failed = false;
    if require_conserved && !report.conserved() {
        eprintln!(
            "loadgen: CONSERVATION VIOLATION: sent {} != accepted {} + shed {} + \
             rejected_capacity {} + rejected_closed {} + lost {}",
            report.sent,
            report.accepted,
            report.shed,
            report.rejected_capacity,
            report.rejected_closed,
            report.lost
        );
        failed = true;
    }
    if report.connections_established == 0 && cfg.connections > 0 {
        eprintln!("loadgen: no connection could be established");
        failed = true;
    }
    if report.connections_established < require_conns {
        eprintln!(
            "loadgen: held {} connections < required {require_conns}",
            report.connections_established
        );
        failed = true;
    }
    std::process::exit(if failed { 1 } else { 0 });
}
