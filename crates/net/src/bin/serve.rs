//! `serve` — the network front door as a process.
//!
//! Spawns a sharded engine under the paper's pole-placement controller,
//! binds the TCP/HTTP listener, and runs until SIGTERM/SIGINT (or
//! `--secs`), then drains gracefully: listener closed, buffered frames
//! admitted, replies flushed, engine shut down — and prints the final
//! front-door report as one JSON object on stdout.
//!
//! ```text
//! serve --addr 127.0.0.1:7171 --shards 1 --cost-us 2000 --target-ms 250
//! ```

use std::sync::Arc;
use std::time::Duration;
use streamshed_control::loop_::LoopConfig;
use streamshed_control::strategy::CtrlStrategy;
use streamshed_engine::obs::ObsOptions;
use streamshed_engine::shard::{Dispatch, ShardConfig, ShardedEngine};
use streamshed_engine::worker::CostModel;
use streamshed_net::server::{NetConfig, NetObs, NetServer};
use streamshed_net::sys;

struct Args {
    addr: String,
    shards: usize,
    cost_us: u64,
    period_ms: u64,
    target_ms: f64,
    queue_cap: usize,
    seed: u64,
    secs: f64,
    workers: usize,
    max_conns: usize,
    pin: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7171".into(),
            shards: 1,
            cost_us: 2000,
            period_ms: 50,
            target_ms: 250.0,
            queue_cap: 8192,
            seed: ShardConfig::DEFAULT_SEED,
            secs: 0.0, // run until signalled
            workers: 0,
            max_conns: 16_384,
            pin: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = val("--addr")?,
            "--shards" => args.shards = val("--shards")?.parse().map_err(|e| format!("{e}"))?,
            "--cost-us" => args.cost_us = val("--cost-us")?.parse().map_err(|e| format!("{e}"))?,
            "--period-ms" => {
                args.period_ms = val("--period-ms")?.parse().map_err(|e| format!("{e}"))?
            }
            "--target-ms" => {
                args.target_ms = val("--target-ms")?.parse().map_err(|e| format!("{e}"))?
            }
            "--queue-cap" => {
                args.queue_cap = val("--queue-cap")?.parse().map_err(|e| format!("{e}"))?
            }
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--secs" => args.secs = val("--secs")?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => args.workers = val("--workers")?.parse().map_err(|e| format!("{e}"))?,
            "--max-conns" => {
                args.max_conns = val("--max-conns")?.parse().map_err(|e| format!("{e}"))?
            }
            "--pin" => args.pin = true,
            "--help" | "-h" => {
                eprintln!(
                    "serve [--addr A] [--shards N] [--cost-us C] [--period-ms P] \
                     [--target-ms T] [--queue-cap Q] [--seed S] [--secs X] \
                     [--workers W] [--max-conns M] [--pin]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(2);
        }
    };
    sys::install_term_handlers();

    let period = Duration::from_millis(args.period_ms);
    let cfg = ShardConfig {
        shards: args.shards,
        cost: Duration::from_micros(args.cost_us),
        period,
        target_delay: Duration::from_millis(args.target_ms as u64),
        headroom: 0.97,
        queue_capacity: args.queue_cap,
        panic_on_tuple: None,
        cost_model: CostModel::Sleep,
        dispatch: Dispatch::RoundRobin,
        seed: args.seed,
        pin_cores: args.pin,
        sample_every: streamshed_engine::spans::DEFAULT_SAMPLE_EVERY,
    };
    let loop_cfg = LoopConfig::paper_default()
        .with_target_delay_ms(args.target_ms)
        .with_period_ms(args.period_ms as f64)
        .with_headroom(0.97)
        .with_prior_cost_us(args.cost_us as f64 / args.shards as f64);
    let strategy = CtrlStrategy::from_config(&loop_cfg);
    // Observability plane without its own HTTP server — the net
    // listener serves /metrics, /health, /ready and /trace itself.
    let obs_options = ObsOptions {
        http: None,
        ..ObsOptions::for_target(cfg.target_delay)
    };
    let engine = match ShardedEngine::spawn_observed(cfg, strategy, &obs_options) {
        Ok(e) => Arc::new(e),
        Err(e) => {
            eprintln!("serve: engine spawn failed: {e}");
            std::process::exit(1);
        }
    };
    let net_obs = NetObs {
        metrics: engine.metrics_fn(),
        plane: engine.obs().map(|o| o.plane.clone()),
    };
    let net_cfg = NetConfig {
        addr: args.addr.clone(),
        workers: args.workers,
        pin_workers: args.pin,
        max_conns: args.max_conns,
        ..NetConfig::default()
    };
    let server = match NetServer::start(net_cfg, engine.clone(), Some(net_obs)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: bind {} failed: {e}", args.addr);
            std::process::exit(1);
        }
    };
    let stats = server.stats();
    eprintln!(
        "serve: listening on {} ({} shard(s), target {} ms)",
        server.addr(),
        args.shards,
        args.target_ms
    );

    let started = std::time::Instant::now();
    loop {
        if sys::term_requested() {
            eprintln!("serve: signal received, draining");
            break;
        }
        if args.secs > 0.0 && started.elapsed().as_secs_f64() >= args.secs {
            eprintln!("serve: --secs {} elapsed, draining", args.secs);
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // Ordered drain: stop the listener and flush replies first, then
    // close the engine's front door and let the shards empty.
    server.shutdown();
    let report = match Arc::try_unwrap(engine) {
        Ok(engine) => engine.shutdown(),
        Err(_) => {
            eprintln!("serve: engine still referenced at shutdown");
            std::process::exit(1);
        }
    };
    let l = |v: &std::sync::atomic::AtomicU64| v.load(std::sync::atomic::Ordering::Relaxed);
    println!(
        "{{\"listener\":\"drained\",\"net\":{{\"connections_accepted\":{},\
         \"frames_received\":{},\"frames_bad\":{},\"tuples_offered\":{},\
         \"tuples_accepted\":{},\"tuples_shed\":{},\"tuples_rejected_capacity\":{},\
         \"tuples_rejected_closed\":{},\"net_balance\":{}}},\
         \"engine\":{{\"offered\":{},\"completed\":{},\"dropped_entry\":{},\
         \"rejected_capacity\":{},\"rejected_closed\":{},\"counters_balance\":{}}}}}",
        l(&stats.connections_accepted),
        l(&stats.frames_received),
        l(&stats.frames_bad),
        l(&stats.tuples_offered),
        l(&stats.tuples_accepted),
        l(&stats.tuples_shed),
        l(&stats.tuples_rejected_capacity),
        l(&stats.tuples_rejected_closed),
        stats.tuples_balance(),
        report.offered,
        report.completed,
        report.dropped_entry,
        report.rejected_at_capacity,
        report.rejected_closed,
        report.counters_balance(),
    );
}
