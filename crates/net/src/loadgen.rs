//! An open/closed-loop client fleet for the network front door.
//!
//! Every connection runs from a *precomputed, seeded* frame schedule
//! (`workload::schedule` over Pareto ON/OFF or Poisson arrivals, or an
//! analytic uniform ramp), so a run's offered load is deterministic for
//! a given seed regardless of wall-clock jitter. The fleet is
//! thread-per-core: each worker thread owns a slice of the connections
//! and drives them through one `poll(2)` loop — tens of thousands of
//! concurrent sockets cost one thread each *per core*, not per
//! connection.
//!
//! The report carries the fleet-side view of the four-bucket admission
//! ledger, reconstructed purely from per-frame backpressure replies,
//! plus the conservation law across the network boundary:
//!
//! ```text
//! sent == accepted + shed + rejected_capacity + rejected_closed + lost
//! ```
//!
//! where `lost` counts tuples in frames that never got a reply
//! (connection died or the run's drain window expired). A clean run
//! against a live server has `lost == 0`, and the integration tests
//! additionally check the fleet's buckets equal the engine's own
//! front-door counters — the PR 8 `counters_balance` discipline, now
//! spanning two processes.

use crate::sys::{self, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use crate::wire::{self, Reply};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};
use streamshed_workload::{frame_schedule, uniform_schedule, FrameAt, PoissonTrace, WebLikeTrace};

/// Loop discipline of the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Send frames at schedule time regardless of replies (the arrival
    /// process does not slow down because the server is overloaded —
    /// the paper's overload regime).
    Open,
    /// At most one frame in flight per connection: the next frame goes
    /// out at `max(schedule time, previous reply)` — users who wait for
    /// responses.
    Closed,
}

/// Arrival process each connection draws its schedule from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrivals {
    /// Evenly spaced (analytic; no per-arrival memory).
    Uniform,
    /// Poisson at the per-connection mean rate.
    Poisson,
    /// Pareto ON/OFF web-like source (bursty, heavy-tailed).
    Web,
}

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Fleet size (concurrent connections).
    pub connections: usize,
    /// Worker threads; 0 means one per host core.
    pub threads: usize,
    /// Aggregate offered rate, tuples/s, split evenly across
    /// connections. 0 holds connections open without sending.
    pub rate: f64,
    /// Tuples per frame.
    pub batch: usize,
    /// Send-phase length, seconds.
    pub secs: f64,
    /// Master seed; connection `c` derives its own stream from it.
    pub seed: u64,
    /// Open or closed loop.
    pub mode: Mode,
    /// Arrival process.
    pub arrivals: Arrivals,
    /// Send keyed frames (8 bytes/tuple) instead of header-only counts;
    /// keys are drawn deterministically from the connection seed.
    pub keyed: bool,
    /// Grace period after the send phase to collect outstanding
    /// replies.
    pub drain: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".parse().expect("literal addr"),
            connections: 1,
            threads: 0,
            rate: 1000.0,
            batch: 16,
            secs: 1.0,
            seed: 42,
            mode: Mode::Open,
            arrivals: Arrivals::Uniform,
            keyed: false,
            drain: Duration::from_secs(2),
        }
    }
}

/// Fleet-side outcome of a run.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Connections the config asked for.
    pub connections_target: usize,
    /// Connections that completed a TCP handshake.
    pub connections_established: usize,
    /// Established connections that died before the run ended.
    pub connections_lost: usize,
    /// Tuples enqueued in data frames.
    pub sent: u64,
    /// Tuples the server accepted (dispatched into shard rings).
    pub accepted: u64,
    /// Tuples the entry shedder dropped.
    pub shed: u64,
    /// Tuples refused on full rings.
    pub rejected_capacity: u64,
    /// Tuples refused after engine close.
    pub rejected_closed: u64,
    /// Tuples in frames that never got a reply.
    pub lost: u64,
    /// Data frames sent.
    pub frames_sent: u64,
    /// Replies received.
    pub replies: u64,
    /// Replies with a non-OK status (framing errors on our side — 0 in
    /// a healthy run).
    pub error_replies: u64,
    /// Wall-clock run length, seconds (send + drain actually used).
    pub elapsed_s: f64,
    /// `sent / elapsed`.
    pub send_rate_tps: f64,
    /// `accepted / elapsed`.
    pub accepted_rate_tps: f64,
    /// Jain fairness index over per-connection accepted ratios (1.0 =
    /// perfectly even service across the fleet).
    pub fairness_jain: f64,
    /// Coefficient of variation of per-connection shed ratios (small =
    /// the shedder is not picking on anyone).
    pub shed_ratio_cv: f64,
    /// Mean frame round-trip, ms.
    pub rtt_mean_ms: f64,
    /// Worst frame round-trip, ms.
    pub rtt_max_ms: f64,
    /// Median frame round-trip, ms.
    pub rtt_p50_ms: f64,
    /// 99th-percentile frame round-trip, ms.
    pub rtt_p99_ms: f64,
    /// 99.9th-percentile frame round-trip, ms.
    pub rtt_p999_ms: f64,
    /// The merged per-connection RTT histogram (µs values), for callers
    /// that want quantiles beyond the three exported above — e.g. the
    /// server-side sojourn cross-check in the experiments crate.
    pub rtt_histo: streamshed_engine::histo::Histo,
}

impl LoadgenReport {
    /// The conservation law across the network boundary.
    pub fn conserved(&self) -> bool {
        self.sent
            == self.accepted + self.shed + self.rejected_capacity + self.rejected_closed + self.lost
    }

    /// One-line JSON rendering (for the `loadgen` binary and CI lanes).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"connections_target\":{},\"connections_established\":{},\
             \"connections_lost\":{},\"sent\":{},\"accepted\":{},\"shed\":{},\
             \"rejected_capacity\":{},\"rejected_closed\":{},\"lost\":{},\
             \"frames_sent\":{},\"replies\":{},\"error_replies\":{},\
             \"elapsed_s\":{:.3},\"send_rate_tps\":{:.1},\"accepted_rate_tps\":{:.1},\
             \"fairness_jain\":{:.4},\"shed_ratio_cv\":{:.4},\
             \"rtt_mean_ms\":{:.3},\"rtt_max_ms\":{:.3},\
             \"rtt_p50_ms\":{:.3},\"rtt_p99_ms\":{:.3},\"rtt_p999_ms\":{:.3},\
             \"conserved\":{}}}",
            self.connections_target,
            self.connections_established,
            self.connections_lost,
            self.sent,
            self.accepted,
            self.shed,
            self.rejected_capacity,
            self.rejected_closed,
            self.lost,
            self.frames_sent,
            self.replies,
            self.error_replies,
            self.elapsed_s,
            self.send_rate_tps,
            self.accepted_rate_tps,
            self.fairness_jain,
            self.shed_ratio_cv,
            self.rtt_mean_ms,
            self.rtt_max_ms,
            self.rtt_p50_ms,
            self.rtt_p99_ms,
            self.rtt_p999_ms,
            self.conserved(),
        )
    }
}

/// Per-connection fleet state.
struct ClientConn {
    stream: Option<TcpStream>,
    schedule: Vec<FrameAt>,
    next_frame: usize,
    seq_next: u64,
    /// In-flight frames awaiting replies, in order: `(seq, sent_at,
    /// tuples)`.
    outstanding: VecDeque<(u64, Instant, u32)>,
    rbuf: Vec<u8>,
    wbuf: VecDeque<u8>,
    // Fleet-side ledger.
    sent: u64,
    accepted: u64,
    shed: u64,
    rejected_capacity: u64,
    rejected_closed: u64,
    frames_sent: u64,
    replies: u64,
    error_replies: u64,
    rtt_sum_us: u64,
    rtt_max_us: u64,
    /// Per-connection RTT histogram (µs), merged into the fleet report.
    rtt_histo: streamshed_engine::histo::Histo,
    dead: bool,
}

impl ClientConn {
    fn unanswered(&self) -> u64 {
        self.outstanding.iter().map(|(_, _, n)| u64::from(*n)).sum()
    }
}

/// Builds the deterministic schedule for connection `c` of the fleet.
fn schedule_for(cfg: &LoadgenConfig, c: usize) -> Vec<FrameAt> {
    if cfg.rate <= 0.0 || cfg.secs <= 0.0 {
        return Vec::new();
    }
    let per_conn = cfg.rate / cfg.connections as f64;
    let conn_seed = cfg
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(c as u64);
    match cfg.arrivals {
        Arrivals::Uniform => {
            uniform_schedule((per_conn * cfg.secs).round() as u64, cfg.secs, cfg.batch)
        }
        Arrivals::Poisson => {
            frame_schedule(&PoissonTrace::new(per_conn, conn_seed), cfg.secs, cfg.batch)
        }
        Arrivals::Web => {
            // One ON/OFF source per connection, duty-cycle-corrected so
            // the *mean* per-connection rate matches (defaults: 4 s ON /
            // 6 s OFF → duty 0.4).
            let trace = WebLikeTrace::builder()
                .sources(1)
                .on_rate(per_conn / 0.4)
                .seed(conn_seed)
                .build();
            frame_schedule(&trace, cfg.secs, cfg.batch)
        }
    }
}

/// Runs the fleet to completion and aggregates the report. Fails fast
/// when the process's fd budget cannot hold the fleet.
pub fn run(cfg: &LoadgenConfig) -> std::io::Result<LoadgenReport> {
    if let Some(limit) = sys::nofile_limit() {
        let need = cfg.connections as u64 + 64;
        if need > limit {
            return Err(std::io::Error::other(format!(
                "fleet of {} connections needs ~{need} fds but RLIMIT_NOFILE is {limit}; \
                 lower --connections or raise ulimit -n",
                cfg.connections
            )));
        }
    }
    let threads_n = if cfg.threads == 0 {
        streamshed_engine::affinity::host_cores().min(8)
    } else {
        cfg.threads
    };
    let threads_n = threads_n.min(cfg.connections.max(1));
    let start = Instant::now();
    let mut joins = Vec::with_capacity(threads_n);
    for t in 0..threads_n {
        // Connection c belongs to thread c % threads_n.
        let ids: Vec<usize> = (0..cfg.connections).skip(t).step_by(threads_n).collect();
        let cfg = cfg.clone();
        joins.push(
            std::thread::Builder::new()
                .name(format!("streamshed-loadgen-{t}"))
                .spawn(move || fleet_thread(&cfg, &ids, start))
                .expect("spawn loadgen thread"),
        );
    }
    let mut conns: Vec<ClientConn> = Vec::new();
    let mut established = 0usize;
    for j in joins {
        let (part, est) = j.join().expect("loadgen thread panicked");
        conns.extend(part);
        established += est;
    }
    let elapsed = start.elapsed().as_secs_f64();

    let mut r = LoadgenReport {
        connections_target: cfg.connections,
        connections_established: established,
        elapsed_s: elapsed,
        ..LoadgenReport::default()
    };
    for c in &conns {
        r.sent += c.sent;
        r.accepted += c.accepted;
        r.shed += c.shed;
        r.rejected_capacity += c.rejected_capacity;
        r.rejected_closed += c.rejected_closed;
        r.lost += c.unanswered();
        r.frames_sent += c.frames_sent;
        r.replies += c.replies;
        r.error_replies += c.error_replies;
        if c.dead {
            r.connections_lost += 1;
        }
    }
    r.send_rate_tps = r.sent as f64 / elapsed.max(1e-9);
    r.accepted_rate_tps = r.accepted as f64 / elapsed.max(1e-9);
    let rtt_frames: u64 = conns.iter().map(|c| c.replies).sum();
    if rtt_frames > 0 {
        let sum: u64 = conns.iter().map(|c| c.rtt_sum_us).sum();
        r.rtt_mean_ms = sum as f64 / rtt_frames as f64 / 1000.0;
        r.rtt_max_ms = conns.iter().map(|c| c.rtt_max_us).max().unwrap_or(0) as f64 / 1000.0;
    }
    // Exact histogram merge across the fleet, then the tail quantiles.
    for c in &conns {
        r.rtt_histo.merge(&c.rtt_histo);
    }
    if r.rtt_histo.count() > 0 {
        r.rtt_p50_ms = r.rtt_histo.quantile(0.50) as f64 / 1000.0;
        r.rtt_p99_ms = r.rtt_histo.quantile(0.99) as f64 / 1000.0;
        r.rtt_p999_ms = r.rtt_histo.quantile(0.999) as f64 / 1000.0;
    }
    // Fairness across connections that actually offered load.
    let ratios: Vec<(f64, f64)> = conns
        .iter()
        .filter(|c| c.sent > 0)
        .map(|c| {
            (
                c.accepted as f64 / c.sent as f64,
                c.shed as f64 / c.sent as f64,
            )
        })
        .collect();
    if !ratios.is_empty() {
        let n = ratios.len() as f64;
        let sum: f64 = ratios.iter().map(|(a, _)| a).sum();
        let sq: f64 = ratios.iter().map(|(a, _)| a * a).sum();
        r.fairness_jain = if sq > 0.0 { sum * sum / (n * sq) } else { 1.0 };
        let shed_mean: f64 = ratios.iter().map(|(_, s)| s).sum::<f64>() / n;
        if shed_mean > 0.0 {
            let var: f64 =
                ratios.iter().map(|(_, s)| (s - shed_mean).powi(2)).sum::<f64>() / n;
            r.shed_ratio_cv = var.sqrt() / shed_mean;
        }
    } else {
        r.fairness_jain = 1.0;
    }
    Ok(r)
}

/// One fleet worker: connects its slice of the fleet, then drives every
/// connection through send/receive/drain. Returns per-connection states
/// plus how many established.
fn fleet_thread(cfg: &LoadgenConfig, ids: &[usize], start: Instant) -> (Vec<ClientConn>, usize) {
    let mut conns: Vec<ClientConn> = Vec::with_capacity(ids.len());
    let mut established = 0usize;
    for (k, &c) in ids.iter().enumerate() {
        // Ramp throttle: don't overrun the server's accept backlog.
        if k > 0 && k % 256 == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        let stream = TcpStream::connect_timeout(&cfg.addr, Duration::from_secs(5))
            .and_then(|s| {
                s.set_nonblocking(true)?;
                let _ = s.set_nodelay(true);
                Ok(s)
            })
            .ok();
        if stream.is_some() {
            established += 1;
        }
        conns.push(ClientConn {
            stream,
            schedule: schedule_for(cfg, c),
            next_frame: 0,
            seq_next: (c as u64) << 32,
            outstanding: VecDeque::new(),
            rbuf: Vec::new(),
            wbuf: VecDeque::new(),
            sent: 0,
            accepted: 0,
            shed: 0,
            rejected_capacity: 0,
            rejected_closed: 0,
            frames_sent: 0,
            replies: 0,
            error_replies: 0,
            rtt_sum_us: 0,
            rtt_max_us: 0,
            rtt_histo: streamshed_engine::histo::Histo::new(),
            dead: false,
        });
    }

    let send_deadline = start + Duration::from_secs_f64(cfg.secs.max(0.0));
    let hard_deadline = send_deadline + cfg.drain;
    let mut pollfds: Vec<PollFd> = Vec::with_capacity(conns.len());
    let mut scratch = vec![0u8; 64 * 1024];
    let mut key_scratch: Vec<u64> = Vec::with_capacity(cfg.batch);
    loop {
        let now = Instant::now();
        let sending = now < send_deadline;
        // Enqueue due frames.
        for conn in conns.iter_mut() {
            if conn.dead || conn.stream.is_none() {
                continue;
            }
            let elapsed_us = now.duration_since(start).as_micros() as u64;
            while conn.next_frame < conn.schedule.len() {
                let f = conn.schedule[conn.next_frame];
                // Past the send deadline every remaining frame is due
                // by construction (schedules end at `secs`); flush them
                // so totals match the deterministic schedule.
                if sending && f.at_us > elapsed_us {
                    break;
                }
                if cfg.mode == Mode::Closed && !conn.outstanding.is_empty() {
                    break; // one frame in flight
                }
                if conn.wbuf.len() > 1 << 20 {
                    break; // pathological backlog; let it flush first
                }
                let seq = conn.seq_next;
                conn.seq_next += 1;
                let mut tmp = Vec::with_capacity(wire::DATA_HEADER + f.tuples as usize * 8);
                if cfg.keyed {
                    key_scratch.clear();
                    // Deterministic keys: splitmix over (seq, index).
                    for i in 0..f.tuples as u64 {
                        let mut z = seq
                            .wrapping_add(i)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                        z ^= z >> 30;
                        key_scratch.push(z);
                    }
                    wire::encode_frame_into(&mut tmp, seq, f.tuples, Some(&key_scratch));
                } else {
                    wire::encode_frame_into(&mut tmp, seq, f.tuples, None);
                }
                conn.wbuf.extend(tmp);
                conn.outstanding.push_back((seq, now, f.tuples));
                conn.sent += u64::from(f.tuples);
                conn.frames_sent += 1;
                conn.next_frame += 1;
            }
        }

        // Poll the fleet.
        pollfds.clear();
        let mut any_alive = false;
        for conn in &conns {
            let Some(stream) = &conn.stream else {
                continue;
            };
            if conn.dead {
                continue;
            }
            any_alive = true;
            let mut events = POLLIN;
            if !conn.wbuf.is_empty() {
                events |= POLLOUT;
            }
            pollfds.push(PollFd {
                fd: stream.as_raw_fd(),
                events,
                revents: 0,
            });
        }
        if !any_alive {
            break;
        }
        sys::poll(&mut pollfds, 5);

        // Service I/O in pollfd order (alive conns only, same order as
        // built above).
        let mut p = 0usize;
        for conn in conns.iter_mut() {
            if conn.dead || conn.stream.is_none() {
                continue;
            }
            let revents = pollfds.get(p).map_or(0, |f| f.revents);
            p += 1;
            if revents & (POLLERR | POLLNVAL) != 0 {
                conn.dead = true;
                continue;
            }
            // Flush pending frames.
            if !conn.wbuf.is_empty() {
                let stream = conn.stream.as_mut().expect("checked above");
                while !conn.wbuf.is_empty() {
                    let (front, _) = conn.wbuf.as_slices();
                    match stream.write(front) {
                        Ok(0) => {
                            conn.dead = true;
                            break;
                        }
                        Ok(n) => {
                            conn.wbuf.drain(..n);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn.dead = true;
                            break;
                        }
                    }
                }
            }
            if conn.dead {
                continue;
            }
            // Read replies.
            if revents & (POLLIN | POLLHUP) != 0 {
                let stream = conn.stream.as_mut().expect("checked above");
                loop {
                    match stream.read(&mut scratch) {
                        Ok(0) => {
                            conn.dead = true;
                            break;
                        }
                        Ok(n) => {
                            conn.rbuf.extend_from_slice(&scratch[..n]);
                            if n < scratch.len() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn.dead = true;
                            break;
                        }
                    }
                }
                let now = Instant::now();
                let mut used = 0usize;
                while let Ok(Some((reply, n))) = wire::decode_reply(&conn.rbuf[used..]) {
                    used += n;
                    conn.replies += 1;
                    if reply.status != Reply::STATUS_OK {
                        conn.error_replies += 1;
                        // The server closes after an error reply; the
                        // outstanding tail becomes `lost`.
                        continue;
                    }
                    // Replies come back in frame order on a TCP stream.
                    if let Some((seq, sent_at, _tuples)) = conn.outstanding.pop_front() {
                        debug_assert_eq!(seq, reply.seq, "reply out of order");
                        let rtt = now.duration_since(sent_at).as_micros() as u64;
                        conn.rtt_sum_us += rtt;
                        conn.rtt_max_us = conn.rtt_max_us.max(rtt);
                        conn.rtt_histo.record(rtt);
                    }
                    conn.accepted += u64::from(reply.accepted);
                    conn.shed += u64::from(reply.shed);
                    conn.rejected_capacity += u64::from(reply.rejected_capacity);
                    conn.rejected_closed += u64::from(reply.rejected_closed);
                }
                if used > 0 {
                    conn.rbuf.drain(..used);
                }
            }
        }

        // Done when the schedule is exhausted and nothing is in flight,
        // or the drain window expires.
        let now = Instant::now();
        if now >= hard_deadline {
            break;
        }
        if now >= send_deadline {
            let all_done = conns.iter().all(|c| {
                c.dead
                    || c.stream.is_none()
                    || (c.next_frame >= c.schedule.len()
                        && c.outstanding.is_empty()
                        && c.wbuf.is_empty())
            });
            if all_done {
                break;
            }
        }
    }
    // Graceful goodbye: shut the write half so the server sees EOF and
    // drops the connection promptly.
    for conn in &mut conns {
        if let Some(s) = &conn.stream {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }
    (conns, established)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_conserve() {
        let cfg = LoadgenConfig {
            connections: 8,
            rate: 800.0,
            secs: 2.0,
            batch: 16,
            seed: 7,
            arrivals: Arrivals::Poisson,
            ..LoadgenConfig::default()
        };
        for c in 0..8 {
            let a = schedule_for(&cfg, c);
            let b = schedule_for(&cfg, c);
            assert_eq!(a, b, "schedule must be a pure function of (cfg, conn)");
        }
        // Distinct connections get distinct arrival streams.
        assert_ne!(schedule_for(&cfg, 0), schedule_for(&cfg, 1));
    }

    #[test]
    fn zero_rate_holds_without_frames() {
        let cfg = LoadgenConfig {
            rate: 0.0,
            ..LoadgenConfig::default()
        };
        assert!(schedule_for(&cfg, 0).is_empty());
    }

    #[test]
    fn report_conservation_arithmetic() {
        let mut r = LoadgenReport {
            sent: 100,
            accepted: 60,
            shed: 30,
            rejected_capacity: 6,
            rejected_closed: 2,
            lost: 2,
            ..LoadgenReport::default()
        };
        assert!(r.conserved());
        r.lost = 1;
        assert!(!r.conserved());
        let json = r.to_json();
        assert!(json.contains("\"conserved\":false"));
        assert!(json.contains("\"sent\":100"));
    }
}
