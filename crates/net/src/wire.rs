//! The length-prefixed binary wire protocol.
//!
//! Design goals, in order: (1) the *shed path must be nearly free* — a
//! frame the entry shedder drops should cost one header read, never a
//! per-tuple materialization; (2) zero copies between the socket buffer
//! and the engine's front door; (3) unambiguous framing that survives
//! arbitrary TCP segmentation and rejects garbage without desync.
//!
//! ## Data frame (client → server), little-endian
//!
//! | offset | size | field   | notes                                   |
//! |--------|------|---------|-----------------------------------------|
//! | 0      | 1    | magic₀  | `0xF5` (non-ASCII: never an HTTP method)|
//! | 1      | 1    | magic₁  | `0x9E`                                  |
//! | 2      | 1    | version | `1`                                     |
//! | 3      | 1    | flags   | bit 0 = keyed; other bits must be zero  |
//! | 4      | 4    | count   | tuples in the frame (u32)               |
//! | 8      | 8    | seq     | opaque client token, echoed in the reply|
//! | 16     | 8·n  | keys    | keyed frames only: `count` u64 keys     |
//!
//! An *unkeyed* frame carries no payload at all — `count` anonymous
//! tuples are admitted through `offer_batch(count)`, so a 1024-tuple
//! frame is 16 bytes on the wire. A *keyed* frame's keys are decoded
//! lazily through `offer_batch_keyed_with`: the entry shedder decides
//! per arrival first and only admitted indices are ever read out of the
//! receive buffer ([`FrameRef::key`] is a bounds-checked 8-byte load).
//!
//! ## Reply frame (server → client), 28 bytes
//!
//! | offset | size | field             |
//! |--------|------|-------------------|
//! | 0      | 2    | magic `0xF5 0x9F` |
//! | 2      | 1    | version (`1`)     |
//! | 3      | 1    | status            |
//! | 4      | 4    | accepted          |
//! | 8      | 4    | shed              |
//! | 12     | 4    | rejected_capacity |
//! | 16     | 4    | rejected_closed   |
//! | 20     | 8    | seq (echo)        |
//!
//! Every data frame gets exactly one reply echoing its `seq`, carrying
//! the PR 8 four-bucket ledger across the wire: `count == accepted +
//! shed + rejected_capacity + rejected_closed` for an OK reply. A
//! non-OK status ([`Reply::STATUS_BAD_FRAME`] / `STATUS_OVERSIZED`)
//! reports all-zero buckets and the server closes the connection —
//! after a framing error the stream offset is untrusted, so resync is
//! not attempted.
//!
//! ## Versioning
//!
//! The first four header bytes (magic, version, flags) sit at fixed
//! offsets in *every* protocol version, so a V1 endpoint rejects a
//! hypothetical V2 frame deterministically from its header alone
//! ([`WireError::BadVersion`]) instead of misparsing it; unknown flag
//! bits are likewise rejected, reserving them for compatible extension.

/// First magic byte, shared by both directions. Deliberately non-ASCII:
/// the server sniffs binary-vs-HTTP on this byte, and no HTTP/1.x
/// request can start with it.
pub const MAGIC0: u8 = 0xF5;
/// Second magic byte of a data frame.
pub const MAGIC1_DATA: u8 = 0x9E;
/// Second magic byte of a reply frame.
pub const MAGIC1_REPLY: u8 = 0x9F;
/// The protocol version this module speaks.
pub const VERSION: u8 = 1;
/// Flag bit 0: the frame carries one u64 key per tuple.
pub const FLAG_KEYED: u8 = 0x01;
/// Data frame header size, bytes.
pub const DATA_HEADER: usize = 16;
/// Reply frame size, bytes.
pub const REPLY_LEN: usize = 28;
/// Default cap on tuples per frame (keyed payload ≤ 512 KiB). Servers
/// may configure a lower cap; see [`decode_frame`].
pub const DEFAULT_MAX_TUPLES: u32 = 65_536;

/// A framing violation. All variants are protocol errors after which
/// the connection must be closed (the stream offset is untrusted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The first two bytes are not a data-frame magic.
    BadMagic([u8; 2]),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown flag bits set.
    BadFlags(u8),
    /// `count` exceeds the receiver's configured cap.
    Oversized {
        /// Tuples claimed by the header.
        count: u32,
        /// The receiver's cap.
        max: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadFlags(b) => write!(f, "unknown flag bits {b:#04x}"),
            WireError::Oversized { count, max } => {
                write!(f, "frame of {count} tuples exceeds cap {max}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A decoded data frame *borrowing* its key bytes from the receive
/// buffer — nothing is copied out; keys are read on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRef<'a> {
    /// Whether the frame carries keys.
    pub keyed: bool,
    /// Tuples in the frame.
    pub count: u32,
    /// The client's opaque token (echo it in the reply).
    pub seq: u64,
    keys: &'a [u8],
}

impl FrameRef<'_> {
    /// The `i`-th key (keyed frames; panics on out-of-range `i`, which
    /// is a caller bug — `decode_frame` guaranteed `count` keys).
    #[inline]
    pub fn key(&self, i: usize) -> u64 {
        let at = i * 8;
        u64::from_le_bytes(self.keys[at..at + 8].try_into().expect("8-byte key"))
    }
}

/// Attempts to decode one data frame from the front of `buf`.
///
/// * `Ok(None)` — `buf` holds a valid prefix but not a whole frame yet
///   (read more bytes).
/// * `Ok(Some((frame, consumed)))` — one frame decoded; drop `consumed`
///   bytes from the front and go again.
/// * `Err(_)` — protocol violation; reply with an error status and
///   close.
///
/// The header is validated *before* the payload is awaited, so an
/// oversized or corrupt frame is rejected from its first 16 bytes and
/// never causes unbounded buffering.
pub fn decode_frame(buf: &[u8], max_tuples: u32) -> Result<Option<(FrameRef<'_>, usize)>, WireError> {
    if buf.is_empty() {
        return Ok(None);
    }
    // Validate what has arrived of the fixed prefix eagerly — a bad
    // first byte fails immediately, not after 16 bytes trickle in.
    if buf[0] != MAGIC0 || (buf.len() >= 2 && buf[1] != MAGIC1_DATA) {
        if buf[0] != MAGIC0 {
            return Err(WireError::BadMagic([buf[0], *buf.get(1).unwrap_or(&0)]));
        }
        return Err(WireError::BadMagic([buf[0], buf[1]]));
    }
    if buf.len() >= 3 && buf[2] != VERSION {
        return Err(WireError::BadVersion(buf[2]));
    }
    if buf.len() >= 4 && buf[3] & !FLAG_KEYED != 0 {
        return Err(WireError::BadFlags(buf[3]));
    }
    if buf.len() < DATA_HEADER {
        return Ok(None);
    }
    let flags = buf[3];
    let count = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if count > max_tuples {
        return Err(WireError::Oversized { count, max: max_tuples });
    }
    let seq = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    let keyed = flags & FLAG_KEYED != 0;
    let payload = if keyed { count as usize * 8 } else { 0 };
    if buf.len() < DATA_HEADER + payload {
        return Ok(None);
    }
    Ok(Some((
        FrameRef {
            keyed,
            count,
            seq,
            keys: &buf[DATA_HEADER..DATA_HEADER + payload],
        },
        DATA_HEADER + payload,
    )))
}

/// Appends one data frame to `out`. `keys: Some(_)` encodes a keyed
/// frame (the count is `keys.len()`), `None` an unkeyed frame of
/// `count` anonymous tuples.
pub fn encode_frame_into(out: &mut Vec<u8>, seq: u64, count: u32, keys: Option<&[u64]>) {
    if let Some(k) = keys {
        debug_assert_eq!(k.len() as u32, count, "keyed frame count mismatch");
    }
    out.reserve(DATA_HEADER + keys.map_or(0, |k| k.len() * 8));
    out.push(MAGIC0);
    out.push(MAGIC1_DATA);
    out.push(VERSION);
    out.push(if keys.is_some() { FLAG_KEYED } else { 0 });
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    if let Some(keys) = keys {
        for k in keys {
            out.extend_from_slice(&k.to_le_bytes());
        }
    }
}

/// A per-frame backpressure reply: the four-bucket admission ledger for
/// exactly the tuples of the frame whose `seq` it echoes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Reply {
    /// [`Reply::STATUS_OK`] or an error status (buckets then zero).
    pub status: u8,
    /// Tuples dispatched into a shard ring.
    pub accepted: u32,
    /// Tuples dropped by the entry shedder (the controller's α).
    pub shed: u32,
    /// Tuples refused because the target ring was full.
    pub rejected_capacity: u32,
    /// Tuples refused because the engine is draining/closed.
    pub rejected_closed: u32,
    /// Echo of the data frame's token.
    pub seq: u64,
}

impl Reply {
    /// Frame admitted; buckets partition its `count`.
    pub const STATUS_OK: u8 = 0;
    /// Framing violation (magic/version/flags); connection closes.
    pub const STATUS_BAD_FRAME: u8 = 1;
    /// `count` above the server's cap; connection closes.
    pub const STATUS_OVERSIZED: u8 = 2;

    /// Sum of the four buckets — equals the data frame's `count` for an
    /// OK reply (the conservation law, now visible per frame).
    pub fn total(&self) -> u64 {
        u64::from(self.accepted)
            + u64::from(self.shed)
            + u64::from(self.rejected_capacity)
            + u64::from(self.rejected_closed)
    }
}

/// Appends one reply frame to `out`.
pub fn encode_reply_into(out: &mut Vec<u8>, r: &Reply) {
    out.reserve(REPLY_LEN);
    out.push(MAGIC0);
    out.push(MAGIC1_REPLY);
    out.push(VERSION);
    out.push(r.status);
    out.extend_from_slice(&r.accepted.to_le_bytes());
    out.extend_from_slice(&r.shed.to_le_bytes());
    out.extend_from_slice(&r.rejected_capacity.to_le_bytes());
    out.extend_from_slice(&r.rejected_closed.to_le_bytes());
    out.extend_from_slice(&r.seq.to_le_bytes());
}

/// Attempts to decode one reply from the front of `buf`; same contract
/// as [`decode_frame`].
pub fn decode_reply(buf: &[u8]) -> Result<Option<(Reply, usize)>, WireError> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf[0] != MAGIC0 || (buf.len() >= 2 && buf[1] != MAGIC1_REPLY) {
        return Err(WireError::BadMagic([buf[0], *buf.get(1).unwrap_or(&0)]));
    }
    if buf.len() >= 3 && buf[2] != VERSION {
        return Err(WireError::BadVersion(buf[2]));
    }
    if buf.len() < REPLY_LEN {
        return Ok(None);
    }
    let word = |at: usize| u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"));
    Ok(Some((
        Reply {
            status: buf[3],
            accepted: word(4),
            shed: word(8),
            rejected_capacity: word(12),
            rejected_closed: word(16),
            seq: u64::from_le_bytes(buf[20..28].try_into().expect("8 bytes")),
        },
        REPLY_LEN,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unkeyed_round_trip_is_header_only() {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, 0xDEAD_BEEF, 1024, None);
        assert_eq!(buf.len(), DATA_HEADER, "1024 anonymous tuples in 16 bytes");
        let (f, used) = decode_frame(&buf, DEFAULT_MAX_TUPLES).unwrap().unwrap();
        assert_eq!(used, DATA_HEADER);
        assert!(!f.keyed);
        assert_eq!((f.count, f.seq), (1024, 0xDEAD_BEEF));
    }

    #[test]
    fn keyed_round_trip_preserves_keys() {
        let keys: Vec<u64> = (0..37u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, 7, keys.len() as u32, Some(&keys));
        let (f, used) = decode_frame(&buf, DEFAULT_MAX_TUPLES).unwrap().unwrap();
        assert_eq!(used, buf.len());
        assert!(f.keyed);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(f.key(i), k);
        }
    }

    #[test]
    fn reply_round_trip_and_total() {
        let r = Reply {
            status: Reply::STATUS_OK,
            accepted: 10,
            shed: 5,
            rejected_capacity: 2,
            rejected_closed: 1,
            seq: 99,
        };
        let mut buf = Vec::new();
        encode_reply_into(&mut buf, &r);
        assert_eq!(buf.len(), REPLY_LEN);
        let (got, used) = decode_reply(&buf).unwrap().unwrap();
        assert_eq!(used, REPLY_LEN);
        assert_eq!(got, r);
        assert_eq!(got.total(), 18);
    }

    #[test]
    fn partial_prefixes_ask_for_more() {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, 1, 3, Some(&[1, 2, 3]));
        for cut in 0..buf.len() {
            assert_eq!(
                decode_frame(&buf[..cut], DEFAULT_MAX_TUPLES).unwrap().map(|_| ()),
                None,
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn early_rejection_from_first_bytes() {
        assert!(matches!(
            decode_frame(b"GET ", DEFAULT_MAX_TUPLES),
            Err(WireError::BadMagic(_))
        ));
        // Wrong version is detectable from 3 bytes.
        assert_eq!(
            decode_frame(&[MAGIC0, MAGIC1_DATA, 2], DEFAULT_MAX_TUPLES),
            Err(WireError::BadVersion(2))
        );
        // Unknown flag bits are detectable from 4 bytes.
        assert_eq!(
            decode_frame(&[MAGIC0, MAGIC1_DATA, VERSION, 0x80], DEFAULT_MAX_TUPLES),
            Err(WireError::BadFlags(0x80))
        );
    }

    #[test]
    fn oversized_rejected_before_payload() {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, 0, 10_000, None);
        assert_eq!(
            decode_frame(&buf, 4096),
            Err(WireError::Oversized { count: 10_000, max: 4096 })
        );
    }
}
