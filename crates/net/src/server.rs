//! The network front door: thread-per-core listeners feeding the
//! engine's batched admission path.
//!
//! Each worker thread owns a nonblocking clone of one shared listener
//! and runs a `poll(2)` event loop over its accepted connections. A
//! connection speaks either the binary protocol ([`crate::wire`]) or
//! HTTP/1.1 — sniffed from its first byte, which no HTTP method shares
//! with the frame magic — so one port serves ingest *and* the
//! observability endpoints.
//!
//! ## The admission path is the whole point
//!
//! A binary data frame is admitted without materializing tuples: an
//! unkeyed frame becomes one `offer_batch(count)` call (one shed pass +
//! one ring reservation per shard), and a keyed frame goes through
//! `offer_batch_keyed_with`, which consults the entry shedder *before*
//! each key is decoded — a shed arrival's key bytes are never even read
//! out of the receive buffer. Under overload, the marginal cost of shed
//! traffic is a 16-byte header parse per frame.
//!
//! ## Backpressure state machine (per connection)
//!
//! ```text
//!           reply fits            wbuf > max_write_buf
//!   OPEN ───────────────▶ OPEN ─────────────────────▶ PAUSED
//!    ▲   frame decoded,           (stop reading;        │
//!    │   engine ledger            peer's TCP window     │ wbuf flushed
//!    │   echoed per frame          eventually fills)    ▼
//!    └───────────────────────────────────────────── OPEN
//!
//!   OPEN/PAUSED ── wire error ──▶ CLOSING (error reply, flush, close)
//!   OPEN/PAUSED ── idle_timeout ─▶ CLOSED
//!   drain: listener closed; every conn flushes its replies and closes;
//!   workers join when conns are gone or drain_timeout ends.
//! ```
//!
//! Capacity refusals are *explicit*, mirroring the in-process four-bucket
//! ledger across the wire: every frame gets a reply echoing how many of
//! its tuples were accepted / shed / rejected-at-capacity /
//! rejected-closed, and a fleet above `max_conns` sees connections
//! closed at accept, not silent SYN drops.

use crate::sys::{self, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use crate::wire::{self, Reply, WireError};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use streamshed_engine::obs::{MetricsFn, ObsPlane};
use streamshed_engine::rt::RtEngine;
use streamshed_engine::shard::{BatchResult, ShardedEngine};
use streamshed_engine::spans::{SpanHandle, Stage};
use streamshed_engine::telemetry::PromText;

/// An engine front door the server can feed. Object-safe so the server
/// works over the sharded and single-worker engines without a type
/// parameter infecting every handle.
pub trait FrontDoor: Send + Sync + 'static {
    /// Admits `n` anonymous tuples (one batched shed pass).
    fn offer_batch(&self, n: usize) -> BatchResult;
    /// Admits `n` keyed tuples with lazy key decode: `key_at(i)` is
    /// called only for arrivals the entry shedder admits.
    fn offer_batch_keyed_lazy(
        &self,
        n: usize,
        key_at: &mut dyn FnMut(usize) -> u64,
    ) -> BatchResult;
}

impl FrontDoor for ShardedEngine {
    fn offer_batch(&self, n: usize) -> BatchResult {
        ShardedEngine::offer_batch(self, n)
    }
    fn offer_batch_keyed_lazy(
        &self,
        n: usize,
        key_at: &mut dyn FnMut(usize) -> u64,
    ) -> BatchResult {
        self.offer_batch_keyed_with(n, key_at)
    }
}

impl FrontDoor for RtEngine {
    fn offer_batch(&self, n: usize) -> BatchResult {
        RtEngine::offer_batch(self, n)
    }
    fn offer_batch_keyed_lazy(
        &self,
        n: usize,
        key_at: &mut dyn FnMut(usize) -> u64,
    ) -> BatchResult {
        self.offer_batch_keyed_with(n, key_at)
    }
}

/// Server tuning. The defaults suit a loopback CI host; production
/// knobs are the same fields, larger.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Worker event-loop threads; 0 means one per host core.
    pub workers: usize,
    /// Pin worker `i` to core `i % cores` (via `engine::affinity`).
    pub pin_workers: bool,
    /// Open-connection cap; accepts beyond it are closed immediately
    /// (counted in `streamshed_net_connections_rejected_total`).
    pub max_conns: usize,
    /// Per-frame tuple cap (oversized frames are refused from their
    /// header; bounds per-connection buffering).
    pub max_frame_tuples: u32,
    /// Write-buffer high water mark, bytes: above it the connection
    /// stops being read until replies flush (TCP backpressure).
    pub max_write_buf: usize,
    /// Connections idle longer than this are closed.
    pub idle_timeout: Duration,
    /// Grace period for flushing replies at shutdown.
    pub drain_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            pin_workers: false,
            max_conns: 16_384,
            max_frame_tuples: 16_384,
            max_write_buf: 256 * 1024,
            idle_timeout: Duration::from_secs(60),
            drain_timeout: Duration::from_secs(2),
        }
    }
}

/// Observability passthrough: the engine's `/metrics` renderer plus the
/// plane behind `/health`, `/ready` and `/trace`. Build it from
/// [`ShardedEngine::metrics_fn`] and `engine.obs()`.
#[derive(Clone)]
pub struct NetObs {
    /// Renders the engine's `streamshed_*` families (the net plane
    /// appends its own `streamshed_net_*` families after it).
    pub metrics: MetricsFn,
    /// The diagnostics plane, when the engine was spawned observed.
    pub plane: Option<ObsPlane>,
}

/// Front-door counters, shared across workers and exported as
/// `streamshed_net_*` Prometheus families.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections accepted.
    pub connections_accepted: AtomicU64,
    /// Connections currently open (gauge).
    pub connections_open: AtomicU64,
    /// Connections closed (any reason).
    pub connections_closed: AtomicU64,
    /// Connections refused at the `max_conns` cap.
    pub connections_rejected: AtomicU64,
    /// Connections closed by the idle timeout.
    pub connections_idle_closed: AtomicU64,
    /// Well-formed data frames admitted.
    pub frames_received: AtomicU64,
    /// Frames refused for framing violations (connection then closes).
    pub frames_bad: AtomicU64,
    /// Backpressure replies written.
    pub replies_sent: AtomicU64,
    /// Bytes read off sockets.
    pub bytes_read: AtomicU64,
    /// Bytes written to sockets.
    pub bytes_written: AtomicU64,
    /// HTTP requests served (ingest + observability).
    pub http_requests: AtomicU64,
    /// Tuples offered through the network front door.
    pub tuples_offered: AtomicU64,
    /// ... of which dispatched into a shard ring.
    pub tuples_accepted: AtomicU64,
    /// ... of which dropped by the entry shedder.
    pub tuples_shed: AtomicU64,
    /// ... of which refused on full rings.
    pub tuples_rejected_capacity: AtomicU64,
    /// ... of which refused after close.
    pub tuples_rejected_closed: AtomicU64,
}

impl NetStats {
    fn add_result(&self, res: &BatchResult) {
        self.tuples_offered.fetch_add(res.offered, Ordering::Relaxed);
        self.tuples_accepted.fetch_add(res.dispatched, Ordering::Relaxed);
        self.tuples_shed.fetch_add(res.dropped_entry, Ordering::Relaxed);
        self.tuples_rejected_capacity
            .fetch_add(res.rejected_capacity, Ordering::Relaxed);
        self.tuples_rejected_closed
            .fetch_add(res.rejected_closed, Ordering::Relaxed);
    }

    fn close_conns(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.connections_closed.fetch_add(n, Ordering::Relaxed);
        let _ = self
            .connections_open
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Renders the `streamshed_net_*` families. `listener` labels the
    /// info gauge with the bound address.
    pub fn render_prom(&self, listener: &str) -> String {
        const BUCKET_HELP: &str =
            "Tuples through the network front door, by admission bucket";
        let mut p = PromText::new("streamshed_net");
        let c = |v: &AtomicU64| v.load(Ordering::Relaxed) as f64;
        p.gauge_labeled(
            "listener_info",
            "Bound listener address (as a label)",
            "addr",
            listener,
            1.0,
        )
        .counter(
            "connections_accepted_total",
            "Connections accepted by the front door",
            c(&self.connections_accepted),
        )
        .gauge(
            "connections_open",
            "Connections currently open",
            c(&self.connections_open),
        )
        .counter(
            "connections_closed_total",
            "Connections closed (any reason)",
            c(&self.connections_closed),
        )
        .counter(
            "connections_rejected_total",
            "Connections refused at the max_conns cap",
            c(&self.connections_rejected),
        )
        .counter(
            "connections_idle_closed_total",
            "Connections closed by the idle timeout",
            c(&self.connections_idle_closed),
        )
        .counter(
            "frames_received_total",
            "Well-formed data frames admitted",
            c(&self.frames_received),
        )
        .counter(
            "frames_bad_total",
            "Frames refused for framing violations",
            c(&self.frames_bad),
        )
        .counter(
            "replies_sent_total",
            "Backpressure replies written",
            c(&self.replies_sent),
        )
        .counter("bytes_read_total", "Bytes read off sockets", c(&self.bytes_read))
        .counter(
            "bytes_written_total",
            "Bytes written to sockets",
            c(&self.bytes_written),
        )
        .counter(
            "http_requests_total",
            "HTTP requests served (ingest + observability)",
            c(&self.http_requests),
        )
        .counter_labeled("tuples_total", BUCKET_HELP, "bucket", "offered", c(&self.tuples_offered))
        .counter_labeled("tuples_total", BUCKET_HELP, "bucket", "accepted", c(&self.tuples_accepted))
        .counter_labeled("tuples_total", BUCKET_HELP, "bucket", "shed", c(&self.tuples_shed))
        .counter_labeled(
            "tuples_total",
            BUCKET_HELP,
            "bucket",
            "rejected_capacity",
            c(&self.tuples_rejected_capacity),
        )
        .counter_labeled(
            "tuples_total",
            BUCKET_HELP,
            "bucket",
            "rejected_closed",
            c(&self.tuples_rejected_closed),
        );
        p.finish()
    }

    /// The front-door conservation law over the network counters.
    pub fn tuples_balance(&self) -> bool {
        let l = |v: &AtomicU64| v.load(Ordering::Relaxed);
        l(&self.tuples_offered)
            == l(&self.tuples_accepted)
                + l(&self.tuples_shed)
                + l(&self.tuples_rejected_capacity)
                + l(&self.tuples_rejected_closed)
    }
}

/// Handle to a running server; dropping it drains (like
/// [`NetServer::shutdown`], which is the explicit spelling).
pub struct NetServer {
    addr: SocketAddr,
    stats: Arc<NetStats>,
    drain: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `cfg.addr` and spawns the worker event loops over `door`.
    pub fn start(
        cfg: NetConfig,
        door: Arc<dyn FrontDoor>,
        obs: Option<NetObs>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(cfg.addr.as_str())?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(NetStats::default());
        let drain = Arc::new(AtomicBool::new(false));
        let workers_n = if cfg.workers == 0 {
            streamshed_engine::affinity::host_cores()
        } else {
            cfg.workers
        };
        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let listener = listener.try_clone()?;
            let cfg = cfg.clone();
            let door = Arc::clone(&door);
            let obs = obs.clone();
            let stats = Arc::clone(&stats);
            let drain = Arc::clone(&drain);
            let spans = obs
                .as_ref()
                .and_then(|o| o.plane.as_ref())
                .map(|p| p.spans().handle(&format!("net{i}")));
            let handle = std::thread::Builder::new()
                .name(format!("streamshed-net-{i}"))
                .spawn(move || {
                    if cfg.pin_workers {
                        let cores = streamshed_engine::affinity::host_cores();
                        streamshed_engine::affinity::pin_current_thread(i % cores);
                    }
                    Worker {
                        listener,
                        cfg,
                        door,
                        obs,
                        stats,
                        drain,
                        addr,
                        conns: Vec::new(),
                        pollfds: Vec::new(),
                        spans,
                    }
                    .run();
                })
                .expect("spawn net worker");
            workers.push(handle);
        }
        Ok(Self {
            addr,
            stats,
            drain,
            workers,
        })
    }

    /// The bound address (OS-chosen port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live front-door counters.
    pub fn stats(&self) -> Arc<NetStats> {
        Arc::clone(&self.stats)
    }

    /// Graceful drain: stop accepting, let workers process buffered
    /// frames and flush replies (bounded by `drain_timeout`), join.
    pub fn shutdown(mut self) {
        self.drain_and_join();
    }

    fn drain_and_join(&mut self) {
        self.drain.store(true, Ordering::SeqCst);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.drain_and_join();
    }
}

/// What a connection turned out to speak.
enum Proto {
    /// First byte not seen yet.
    Unknown,
    /// The binary frame protocol.
    Binary,
    /// HTTP/1.1 (one request per connection, `Connection: close`).
    Http,
}

struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: VecDeque<u8>,
    last_activity: Instant,
    proto: Proto,
    /// Flush `wbuf` then close (set on wire errors and HTTP completion).
    closing: bool,
}

struct Worker {
    listener: TcpListener,
    cfg: NetConfig,
    door: Arc<dyn FrontDoor>,
    obs: Option<NetObs>,
    stats: Arc<NetStats>,
    drain: Arc<AtomicBool>,
    addr: SocketAddr,
    conns: Vec<Conn>,
    pollfds: Vec<PollFd>,
    /// Latency-truth-plane slot for this listener thread (`netN`), fed
    /// from the engine's span registry when the engine runs observed:
    /// per-stage wire timings plus the per-frame read→reply-enqueued
    /// turnaround (recorded as the slot's sojourn histogram, the
    /// server-side anchor for the loadgen RTT cross-check).
    spans: Option<SpanHandle>,
}

impl Worker {
    fn run(&mut self) {
        let mut scratch = vec![0u8; 64 * 1024];
        let mut drain_deadline: Option<Instant> = None;
        loop {
            let draining = self.drain.load(Ordering::Relaxed);
            if draining {
                if drain_deadline.is_none() {
                    drain_deadline = Some(Instant::now() + self.cfg.drain_timeout);
                }
                // Drop everything already flushed; give the rest more
                // poll rounds until the deadline.
                let before = self.conns.len();
                self.conns.retain(|c| !c.wbuf.is_empty());
                self.stats.close_conns((before - self.conns.len()) as u64);
                let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
                if self.conns.is_empty() || expired {
                    self.stats.close_conns(self.conns.len() as u64);
                    return;
                }
            }

            self.pollfds.clear();
            if !draining {
                self.pollfds.push(PollFd {
                    fd: self.listener.as_raw_fd(),
                    events: POLLIN,
                    revents: 0,
                });
            }
            for c in &self.conns {
                let mut events = 0i16;
                // Backpressure: above the high-water mark the socket is
                // not read; the peer's sends eventually block on TCP.
                if !c.closing && c.wbuf.len() <= self.cfg.max_write_buf {
                    events |= POLLIN;
                }
                if !c.wbuf.is_empty() {
                    events |= POLLOUT;
                }
                self.pollfds.push(PollFd {
                    fd: c.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
            }
            sys::poll(&mut self.pollfds, 100);

            let mut at = 0usize;
            if !draining {
                if self.pollfds[0].revents & POLLIN != 0 {
                    self.accept_burst();
                }
                at = 1;
            }
            // Walk connections against their poll entries (same order;
            // one removal per round keeps the correspondence honest —
            // swap_remove would hand the swapped-in connection a dead
            // socket's revents).
            let mut i = 0usize;
            while i < self.conns.len() {
                let revents = self.pollfds.get(at + i).map_or(0, |p| p.revents);
                if self.service(i, revents, &mut scratch) {
                    self.conns.remove(i);
                    self.stats.close_conns(1);
                    break;
                }
                i += 1;
            }
            self.sweep_idle();
        }
    }

    fn accept_burst(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let open = self.stats.connections_open.load(Ordering::Relaxed);
                    if open as usize >= self.cfg.max_conns {
                        // Explicit refusal: close immediately rather
                        // than letting the fleet starve in SYN limbo.
                        self.stats.connections_rejected.fetch_add(1, Ordering::Relaxed);
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.stats.connections_accepted.fetch_add(1, Ordering::Relaxed);
                    self.stats.connections_open.fetch_add(1, Ordering::Relaxed);
                    self.conns.push(Conn {
                        stream,
                        rbuf: Vec::new(),
                        wbuf: VecDeque::new(),
                        last_activity: Instant::now(),
                        proto: Proto::Unknown,
                        closing: false,
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Services one connection; returns `true` when it should be
    /// removed.
    fn service(&mut self, i: usize, revents: i16, scratch: &mut [u8]) -> bool {
        if revents & (POLLERR | POLLNVAL) != 0 {
            return true;
        }
        // Readable (or hangup with possibly-buffered final bytes).
        if revents & (POLLIN | POLLHUP) != 0 && !self.conns[i].closing {
            loop {
                let read_t0 = self.spans.as_ref().map(|_| Instant::now());
                let n = match self.conns[i].stream.read(scratch) {
                    Ok(0) => {
                        // Peer EOF: flush whatever replies remain, then
                        // close.
                        self.conns[i].closing = true;
                        break;
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => return true,
                };
                if let (Some(h), Some(t0)) = (self.spans.as_ref(), read_t0) {
                    h.record(Stage::NetRead, t0.elapsed().as_nanos() as u64);
                }
                self.stats.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                self.conns[i].last_activity = Instant::now();
                self.conns[i].rbuf.extend_from_slice(&scratch[..n]);
                if self.process(i) {
                    return true;
                }
                // Stop reading once backpressured; the rest stays in
                // the kernel buffer.
                if self.conns[i].wbuf.len() > self.cfg.max_write_buf || n < scratch.len() {
                    break;
                }
            }
        }
        if self.flush(i) {
            return true;
        }
        self.conns[i].closing && self.conns[i].wbuf.is_empty()
    }

    /// Decodes and admits everything buffered on connection `i`;
    /// returns `true` to drop the connection immediately.
    fn process(&mut self, i: usize) -> bool {
        if matches!(self.conns[i].proto, Proto::Unknown) {
            let Some(&first) = self.conns[i].rbuf.first() else {
                return false;
            };
            self.conns[i].proto = if first == wire::MAGIC0 {
                Proto::Binary
            } else {
                Proto::Http
            };
        }
        match self.conns[i].proto {
            Proto::Binary => self.process_binary(i),
            Proto::Http => self.process_http(i),
            Proto::Unknown => false,
        }
    }

    fn process_binary(&mut self, i: usize) -> bool {
        // Move the buffer out so frame decoding borrows a local slice
        // while the engine door and stats (fields of self) stay free.
        let rbuf = std::mem::take(&mut self.conns[i].rbuf);
        let mut replies: Vec<u8> = Vec::new();
        let mut consumed = 0usize;
        let mut closing = false;
        loop {
            if self.conns[i].wbuf.len() + replies.len() > self.cfg.max_write_buf {
                break; // backpressure: leave the rest buffered
            }
            // Per-frame wire staging: decode → admission → reply encode,
            // plus the frame's read→reply-enqueued turnaround closed as
            // the net slot's sojourn. Timestamps only exist when a span
            // slot is attached, so the unobserved hot path stays free of
            // clock reads.
            let frame_t0 = self.spans.as_ref().map(|_| Instant::now());
            match wire::decode_frame(&rbuf[consumed..], self.cfg.max_frame_tuples) {
                Ok(None) => break,
                Ok(Some((frame, used))) => {
                    let decode_done = frame_t0.map(|_| Instant::now());
                    // The admission call: shed decisions happen in here,
                    // *before* any key is read from the buffer.
                    let res = if frame.keyed {
                        self.door
                            .offer_batch_keyed_lazy(frame.count as usize, &mut |k| frame.key(k))
                    } else {
                        self.door.offer_batch(frame.count as usize)
                    };
                    let admit_done = frame_t0.map(|_| Instant::now());
                    consumed += used;
                    wire::encode_reply_into(
                        &mut replies,
                        &Reply {
                            status: Reply::STATUS_OK,
                            accepted: res.dispatched as u32,
                            shed: res.dropped_entry as u32,
                            rejected_capacity: res.rejected_capacity as u32,
                            rejected_closed: res.rejected_closed as u32,
                            seq: frame.seq,
                        },
                    );
                    if let (Some(h), Some(t0), Some(t1), Some(t2)) =
                        (self.spans.as_ref(), frame_t0, decode_done, admit_done)
                    {
                        let ns = |d: Duration| d.as_nanos() as u64;
                        h.record(Stage::Decode, ns(t1.duration_since(t0)));
                        h.record(Stage::Admission, ns(t2.duration_since(t1)));
                        h.record(Stage::Reply, ns(t2.elapsed()));
                        h.record_sojourn(ns(t0.elapsed()));
                    }
                    self.stats.frames_received.fetch_add(1, Ordering::Relaxed);
                    self.stats.replies_sent.fetch_add(1, Ordering::Relaxed);
                    self.stats.add_result(&res);
                }
                Err(err) => {
                    // Echo the seq when the header got far enough to
                    // carry one, so the client can attribute the error.
                    let rest = &rbuf[consumed..];
                    let seq = if rest.len() >= 16 {
                        u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"))
                    } else {
                        0
                    };
                    let status = match err {
                        WireError::Oversized { .. } => Reply::STATUS_OVERSIZED,
                        _ => Reply::STATUS_BAD_FRAME,
                    };
                    wire::encode_reply_into(
                        &mut replies,
                        &Reply {
                            status,
                            seq,
                            ..Reply::default()
                        },
                    );
                    self.stats.frames_bad.fetch_add(1, Ordering::Relaxed);
                    self.stats.replies_sent.fetch_add(1, Ordering::Relaxed);
                    closing = true; // desync: no resync attempted
                    break;
                }
            }
        }
        let conn = &mut self.conns[i];
        conn.wbuf.extend(replies);
        conn.rbuf = rbuf;
        if consumed > 0 {
            conn.rbuf.drain(..consumed);
        }
        if closing {
            conn.closing = true;
            conn.rbuf.clear();
        }
        false
    }

    fn process_http(&mut self, i: usize) -> bool {
        const MAX_HEAD: usize = 8 * 1024;
        const MAX_BODY: usize = 64 * 1024;
        let conn = &self.conns[i];
        let Some(head_end) = find_crlf2(&conn.rbuf) else {
            return conn.rbuf.len() > MAX_HEAD; // drop header floods
        };
        let head = String::from_utf8_lossy(&conn.rbuf[..head_end]).into_owned();
        let content_length = header_value(&head, "content-length")
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        let (status, ctype, body) = if content_length > MAX_BODY {
            (413, "application/json", "{\"error\":\"body too large\"}".to_string())
        } else {
            let total = head_end + 4 + content_length;
            if self.conns[i].rbuf.len() < total {
                return false; // await the body
            }
            let body =
                String::from_utf8_lossy(&self.conns[i].rbuf[head_end + 4..total]).into_owned();
            self.conns[i].rbuf.drain(..total);
            self.stats.http_requests.fetch_add(1, Ordering::Relaxed);
            let mut line = head.lines().next().unwrap_or("").split_whitespace();
            let method = line.next().unwrap_or("").to_string();
            let target = line.next().unwrap_or("/").to_string();
            self.route_http(&method, &target, &body)
        };
        self.respond(i, status, ctype, &body);
        // One request per connection: close after the reply (the fleet
        // path is the binary protocol; HTTP is for humans and
        // scrapers).
        self.conns[i].closing = true;
        false
    }

    /// Computes `(status, content_type, body)` for one HTTP request.
    fn route_http(&self, method: &str, target: &str, body: &str) -> (u16, &'static str, String) {
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        match (method, path) {
            ("POST", "/ingest") => {
                // Tuple count from ?count=N or a bare integer body.
                let count = query_param(query, "count")
                    .and_then(|v| v.parse::<u64>().ok())
                    .or_else(|| body.trim().parse::<u64>().ok())
                    .unwrap_or(0);
                if count > u64::from(self.cfg.max_frame_tuples) {
                    return (413, "application/json", "{\"error\":\"count above cap\"}".into());
                }
                let res = self.door.offer_batch(count as usize);
                self.stats.add_result(&res);
                let json = format!(
                    "{{\"offered\":{},\"accepted\":{},\"shed\":{},\
                     \"rejected_capacity\":{},\"rejected_closed\":{}}}",
                    res.offered,
                    res.dispatched,
                    res.dropped_entry,
                    res.rejected_capacity,
                    res.rejected_closed
                );
                (200, "application/json", json)
            }
            ("GET", "/metrics") => {
                let mut text = match &self.obs {
                    Some(obs) => (obs.metrics)(),
                    None => String::new(),
                };
                text.push_str(&self.stats.render_prom(&self.addr.to_string()));
                (200, "text/plain; version=0.0.4", text)
            }
            ("GET", "/health") => match self.obs.as_ref().and_then(|o| o.plane.as_ref()) {
                Some(plane) => {
                    let snap = plane.health();
                    (snap.http_status(), "application/json", snap.to_json())
                }
                None => (404, "application/json", "{\"error\":\"no obs plane\"}".into()),
            },
            ("GET", "/ready") => match self.obs.as_ref().and_then(|o| o.plane.as_ref()) {
                Some(plane) => {
                    let ready = plane.periods_observed() > 0;
                    let status = if ready { 200 } else { 503 };
                    (status, "application/json", format!("{{\"ready\":{ready}}}"))
                }
                None => (404, "application/json", "{\"error\":\"no obs plane\"}".into()),
            },
            ("GET", "/trace") => match self.obs.as_ref().and_then(|o| o.plane.as_ref()) {
                Some(plane) => {
                    // Hostile or absent `last` values fall back to 64;
                    // oversized ones clamp to the ring's length.
                    let last = query_param(query, "last")
                        .and_then(|v| v.parse::<usize>().ok())
                        .unwrap_or(64);
                    let traces = plane.recorder().snapshot();
                    let skip = traces.len().saturating_sub(last);
                    if query_param(query, "format") == Some("csv") {
                        let body = streamshed_engine::telemetry::export_csv(&traces[skip..]);
                        return (200, "text/csv; charset=utf-8", body);
                    }
                    let items: Vec<String> =
                        traces[skip..].iter().map(|t| t.to_jsonl()).collect();
                    (200, "application/json", format!("[{}]", items.join(",")))
                }
                None => (404, "application/json", "{\"error\":\"no obs plane\"}".into()),
            },
            ("GET", "/profile") => match self.obs.as_ref().and_then(|o| o.plane.as_ref()) {
                Some(plane) => (200, "application/json", plane.spans().snapshot().to_json()),
                None => (404, "application/json", "{\"error\":\"no obs plane\"}".into()),
            },
            _ => (404, "application/json", "{\"error\":\"not found\"}".into()),
        }
    }

    fn respond(&mut self, i: usize, status: u16, content_type: &str, body: &str) {
        let reason = match status {
            200 => "OK",
            404 => "Not Found",
            413 => "Payload Too Large",
            503 => "Service Unavailable",
            _ => "",
        };
        let head = format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        let conn = &mut self.conns[i];
        conn.wbuf.extend(head.as_bytes().iter().copied());
        conn.wbuf.extend(body.as_bytes().iter().copied());
    }

    /// Flushes as much of `wbuf` as the socket takes; returns `true`
    /// when the connection died writing.
    fn flush(&mut self, i: usize) -> bool {
        let conn = &mut self.conns[i];
        while !conn.wbuf.is_empty() {
            let (front, _) = conn.wbuf.as_slices();
            match conn.stream.write(front) {
                Ok(0) => return true,
                Ok(n) => {
                    conn.wbuf.drain(..n);
                    self.stats.bytes_written.fetch_add(n as u64, Ordering::Relaxed);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
        false
    }

    fn sweep_idle(&mut self) {
        let timeout = self.cfg.idle_timeout;
        let now = Instant::now();
        let before = self.conns.len();
        let stats = Arc::clone(&self.stats);
        self.conns.retain(|c| {
            let keep = now.duration_since(c.last_activity) < timeout;
            if !keep {
                stats.connections_idle_closed.fetch_add(1, Ordering::Relaxed);
            }
            keep
        });
        stats.close_conns((before - self.conns.len()) as u64);
    }
}

/// Finds the end of an HTTP head (`\r\n\r\n`), returning the offset of
/// its first byte.
fn find_crlf2(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Case-insensitive single-header lookup in a raw request head.
fn header_value<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines().skip(1).find_map(|l| {
        let (k, v) = l.split_once(':')?;
        k.trim().eq_ignore_ascii_case(name).then(|| v.trim())
    })
}

/// Extracts `name=value` from a query string (no percent decoding —
/// the accepted parameters are plain integers).
fn query_param<'a>(query: &'a str, name: &str) -> Option<&'a str> {
    query
        .split('&')
        .find_map(|kv| kv.split_once('=').filter(|(k, _)| *k == name).map(|(_, v)| v))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `streamshed_net_*` families survive a hostile listener
    /// label: backslash, double quote, and newline in the bound
    /// address are escaped per the exposition format, and the bucket
    /// series keep their label structure.
    #[test]
    fn net_prom_escapes_hostile_listener_label() {
        let stats = NetStats::default();
        stats.tuples_offered.store(7, Ordering::Relaxed);
        stats.tuples_accepted.store(7, Ordering::Relaxed);
        let text = stats.render_prom("evil\"addr\\with\nnewline");
        assert!(
            text.contains(
                "streamshed_net_listener_info{addr=\"evil\\\"addr\\\\with\\nnewline\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains("streamshed_net_tuples_total{bucket=\"offered\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("streamshed_net_tuples_total{bucket=\"accepted\"} 7"),
            "{text}"
        );
        // Exactly one HELP/TYPE pair per family, newline-structured.
        let helps = text.lines().filter(|l| l.starts_with("# HELP")).count();
        let types = text.lines().filter(|l| l.starts_with("# TYPE")).count();
        assert_eq!(helps, types);
        assert!(stats.tuples_balance());
    }

    #[test]
    fn http_head_helpers() {
        assert_eq!(find_crlf2(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        let head = "POST /ingest HTTP/1.1\r\nContent-Length: 5\r\nHost: x";
        assert_eq!(header_value(head, "content-length"), Some("5"));
        assert_eq!(header_value(head, "missing"), None);
        assert_eq!(query_param("count=10&x=1", "count"), Some("10"));
        assert_eq!(query_param("count=10", "x"), None);
    }
}
