//! # streamshed-net
//!
//! The network ingestion plane: everything between a TCP socket and the
//! engine's batched front door, plus the client fleet that loads it.
//!
//! * [`wire`] — the compact length-prefixed binary protocol: tuple
//!   batches with optional keys, one backpressure reply per frame
//!   carrying the four-bucket admission ledger across the wire.
//! * [`server`] — thread-per-core `poll(2)` listeners ([`NetServer`]):
//!   binary ingest and HTTP/1.1 (POST `/ingest` + passthrough to the
//!   obs-plane endpoints) on one port, per-connection bounded buffers,
//!   explicit backpressure, idle timeouts, graceful drain.
//! * [`loadgen`] — a seeded open/closed-loop client fleet
//!   ([`loadgen::run`]) reporting connections held, tuples/sec, and
//!   shedding fairness, with the cross-boundary conservation law
//!   checked from per-frame replies.
//! * [`sys`] — the crate's single audited unsafe module: `poll(2)`,
//!   SIGTERM flags, `getrlimit`.
//!
//! The design invariant inherited from the paper's control argument
//! (and the trustworthy-overload line of work): admission decisions are
//! made *before* per-tuple work. A shed frame costs one 16-byte header
//! parse — tuples are never materialized, keys never decoded.
//!
//! ```
//! use std::sync::Arc;
//! use streamshed_net::{LoadgenConfig, NetConfig, NetServer};
//! use streamshed_engine::shard::{ShardConfig, ShardedEngine};
//! use streamshed_engine::hook::NoShedding;
//! use streamshed_engine::worker::CostModel;
//! use std::time::Duration;
//!
//! // A tiny engine with a free cost model, fronted by the server.
//! let mut cfg = ShardConfig::demo(1);
//! cfg.cost = Duration::ZERO;
//! cfg.cost_model = CostModel::Spin;
//! let engine = Arc::new(ShardedEngine::spawn(cfg, NoShedding));
//! let server = NetServer::start(NetConfig::default(), engine.clone(), None).unwrap();
//!
//! // A one-connection fleet for a fraction of a second.
//! let report = streamshed_net::loadgen::run(&LoadgenConfig {
//!     addr: server.addr(),
//!     connections: 1,
//!     rate: 2000.0,
//!     secs: 0.2,
//!     ..LoadgenConfig::default()
//! })
//! .unwrap();
//! assert!(report.conserved());
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod loadgen;
pub mod server;
pub mod sys;
pub mod wire;

pub use loadgen::{Arrivals, LoadgenConfig, LoadgenReport, Mode};
pub use server::{FrontDoor, NetConfig, NetObs, NetServer, NetStats};
pub use wire::{FrameRef, Reply, WireError};
