//! Minimal OS plumbing for the network plane: `poll(2)`, signal flags,
//! and the open-file rlimit.
//!
//! The crate forbids unsafe code by default; this module is the single
//! audited exception (mirroring `engine::affinity`), holding three
//! direct libc wrappers the vendored dependency set does not provide:
//!
//! * [`poll`] — readiness multiplexing for the thread-per-core event
//!   loops (server and loadgen). `poll(2)` rather than `epoll(7)` keeps
//!   the wrapper to one call with no kernel object lifetime to manage;
//!   at the fleet sizes the 1-core CI host can hold, the O(fds) scan is
//!   not the bottleneck (the syscall is made once per loop iteration,
//!   not per connection).
//! * [`install_term_handlers`] — SIGTERM/SIGINT → a process-wide flag
//!   read via [`term_requested`], so `serve` can drain gracefully. A
//!   signal also interrupts a blocking `poll` (EINTR), which is exactly
//!   the wakeup the event loop needs.
//! * [`nofile_limit`] — `getrlimit(RLIMIT_NOFILE)`, so the loadgen can
//!   refuse fleet sizes the process could never hold instead of dying
//!   mid-ramp on EMFILE.
//!
//! Off Linux every wrapper degrades honestly: `poll` reports all
//! requested events ready (callers fall through to their nonblocking
//! reads/writes and see `WouldBlock`, i.e. correctness is preserved at
//! the cost of spinning), signals are not installed, and the rlimit is
//! unknown.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

/// One entry of a [`poll`] set — ABI-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// File descriptor to watch (from `AsRawFd::as_raw_fd`).
    pub fd: i32,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Returned events (kernel-filled; includes error conditions).
    pub revents: i16,
}

/// Readable (or a peer hangup pending read).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always polled implicitly).
pub const POLLERR: i16 = 0x008;
/// Peer hung up.
pub const POLLHUP: i16 = 0x010;
/// Invalid fd in the set.
pub const POLLNVAL: i16 = 0x020;

/// Waits up to `timeout_ms` (−1 = forever) for readiness on `fds`.
/// Returns the number of ready entries, 0 on timeout, or a negative
/// value on error/EINTR — callers treat negatives as a spurious wakeup
/// and re-check their stop flags.
#[cfg(target_os = "linux")]
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }
    if fds.is_empty() {
        // poll(2) with nfds 0 is a portable sleep; keep the semantics
        // without handing libc a dangling pointer.
        std::thread::sleep(std::time::Duration::from_millis(timeout_ms.max(0) as u64));
        return 0;
    }
    // SAFETY: `fds` is a live, exclusive slice of `#[repr(C)]` PollFd
    // entries matching `struct pollfd`; the kernel writes only `revents`
    // within the `fds.len()` entries passed.
    unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) }
}

/// Portable fallback: report every requested event as ready after a
/// short sleep. Callers' nonblocking I/O then observes `WouldBlock`,
/// degrading to a 1 ms-granularity spin — correct, just not efficient.
#[cfg(not(target_os = "linux"))]
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
    std::thread::sleep(std::time::Duration::from_millis(
        timeout_ms.clamp(0, 1) as u64
    ));
    for f in fds.iter_mut() {
        f.revents = f.events;
    }
    fds.len() as i32
}

/// The process-wide termination flag. A static because signal handlers
/// cannot capture state; read through [`term_requested`].
static TERM_FLAG: AtomicBool = AtomicBool::new(false);

/// Installs SIGTERM + SIGINT handlers that set the process-wide flag
/// behind [`term_requested`]. Idempotent.
#[cfg(target_os = "linux")]
pub fn install_term_handlers() {
    extern "C" fn on_term(_sig: i32) {
        // Only async-signal-safe work: one relaxed store.
        TERM_FLAG.store(true, Ordering::Relaxed);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `on_term` is `extern "C" fn(i32)` as signal(2) requires,
    // and its body is async-signal-safe (a single atomic store).
    unsafe {
        signal(SIGTERM, on_term as *const () as usize);
        signal(SIGINT, on_term as *const () as usize);
    }
}

/// Signals are not installed off Linux; [`term_requested`] then only
/// reflects [`request_term`] calls (callers still honor their own
/// deadlines).
#[cfg(not(target_os = "linux"))]
pub fn install_term_handlers() {}

/// True once SIGTERM/SIGINT has been delivered (or [`request_term`]
/// called).
pub fn term_requested() -> bool {
    TERM_FLAG.load(Ordering::Relaxed)
}

/// Sets the termination flag programmatically — tests and in-process
/// embedders use this where a real signal would be delivered.
pub fn request_term() {
    TERM_FLAG.store(true, Ordering::Relaxed);
}

/// Clears the termination flag (test hygiene between cases).
pub fn clear_term() {
    TERM_FLAG.store(false, Ordering::Relaxed);
}

/// The soft open-files limit (`RLIMIT_NOFILE`), or `None` when unknown.
#[cfg(target_os = "linux")]
pub fn nofile_limit() -> Option<u64> {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    }
    const RLIMIT_NOFILE: i32 = 7;
    let mut lim = RLimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a live, exclusive `#[repr(C)]` buffer matching
    // `struct rlimit` (two u64s on 64-bit Linux); getrlimit only writes
    // into it.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } == 0 {
        Some(lim.cur)
    } else {
        None
    }
}

/// Unknown off Linux.
#[cfg(not(target_os = "linux"))]
pub fn nofile_limit() -> Option<u64> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poll_times_out_on_idle_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut fds = [PollFd {
            fd: listener.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        let n = poll(&mut fds, 10);
        // No pending connection: timeout (0) on Linux; the portable
        // fallback reports ready, which is also allowed.
        assert!(n >= 0);
    }

    #[test]
    fn poll_reports_readable_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let mut fds = [PollFd {
            fd: listener.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        let n = poll(&mut fds, 1000);
        assert!(n >= 1, "pending accept must wake poll");
        assert!(fds[0].revents & POLLIN != 0);
    }

    #[test]
    fn poll_empty_set_sleeps() {
        let t = std::time::Instant::now();
        assert_eq!(poll(&mut [], 20), 0);
        assert!(t.elapsed() >= std::time::Duration::from_millis(15));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn nofile_limit_known_on_linux() {
        let lim = nofile_limit().expect("getrlimit works on linux");
        assert!(lim >= 64, "implausibly small fd limit: {lim}");
    }
}
