//! End-to-end conservation across the network boundary.
//!
//! PR 8 proved the in-process front-door ledger: `offered ==
//! dropped_entry + rejected_at_capacity + rejected_closed +
//! Σdispatched`. This suite extends the law across a real TCP hop and
//! three independently-maintained ledgers:
//!
//! * the **client fleet's** ledger, accumulated from per-frame replies
//!   (`LoadgenReport`),
//! * the **listener's** ledger ([`NetStats`]), accumulated from
//!   `BatchResult`s at admission time,
//! * the **engine's** ledger (`ShardReport`), the ground truth counters.
//!
//! Every tuple a client sent must land in exactly one bucket of each,
//! and the three must agree exactly — any double count, lost reply, or
//! phantom admission breaks an equality below.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use streamshed_engine::hook::Decision;
use streamshed_engine::shard::{ShardConfig, ShardedEngine};
use streamshed_engine::worker::CostModel;
use streamshed_net::loadgen::{self, Arrivals, LoadgenConfig, Mode};
use streamshed_net::server::{NetConfig, NetServer};
use streamshed_net::wire::{self, Reply};

/// A fast engine that sheds a fixed fraction at entry — overload
/// behavior without waiting for a real controller to engage.
fn shedding_engine(alpha: f64) -> Arc<ShardedEngine> {
    let mut cfg = ShardConfig::demo(1);
    cfg.cost = Duration::ZERO;
    cfg.cost_model = CostModel::Spin;
    cfg.period = Duration::from_millis(10);
    Arc::new(ShardedEngine::spawn(cfg, move |_s: &_| Decision::entry(alpha)))
}

fn quiet_net_cfg() -> NetConfig {
    NetConfig {
        addr: "127.0.0.1:0".into(),
        ..NetConfig::default()
    }
}

/// The tentpole invariant: fleet ledger == listener ledger == engine
/// ledger, bucket for bucket, with a nonzero shed bucket in play.
#[test]
fn three_ledgers_agree_exactly() {
    let engine = shedding_engine(0.3);
    let server = NetServer::start(quiet_net_cfg(), engine.clone(), None).unwrap();
    let stats = server.stats();

    let report = loadgen::run(&LoadgenConfig {
        addr: server.addr(),
        connections: 4,
        rate: 20_000.0,
        batch: 64,
        secs: 0.6,
        seed: 7,
        mode: Mode::Open,
        arrivals: Arrivals::Poisson,
        keyed: true,
        ..LoadgenConfig::default()
    })
    .unwrap();

    assert_eq!(report.connections_established, 4);
    assert_eq!(report.error_replies, 0);
    assert!(report.sent > 0, "fleet sent nothing");
    assert!(report.shed > 0, "alpha=0.3 must shed: {report:?}");
    assert!(report.conserved(), "fleet ledger broken: {report:?}");

    // Loadgen's reply-derived buckets match the listener's admission
    // counters exactly — nothing else talked to this server.
    let l = |v: &std::sync::atomic::AtomicU64| v.load(Ordering::Relaxed);
    assert_eq!(report.accepted, l(&stats.tuples_accepted));
    assert_eq!(report.shed, l(&stats.tuples_shed));
    assert_eq!(report.rejected_capacity, l(&stats.tuples_rejected_capacity));
    assert_eq!(report.rejected_closed, l(&stats.tuples_rejected_closed));
    // Tuples the fleet counts as lost never reached admission.
    assert_eq!(report.sent - report.lost, l(&stats.tuples_offered));
    assert!(stats.tuples_balance());

    // The engine's ground-truth ledger agrees with both.
    server.shutdown();
    let engine_report = Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("engine still referenced"))
        .shutdown();
    assert!(engine_report.counters_balance());
    assert_eq!(engine_report.offered, report.sent - report.lost);
    assert_eq!(engine_report.dropped_entry, report.shed);
    assert_eq!(engine_report.rejected_at_capacity, report.rejected_capacity);
    assert_eq!(engine_report.rejected_closed, report.rejected_closed);
    let engine_accepted = engine_report.offered
        - engine_report.dropped_entry
        - engine_report.rejected_at_capacity
        - engine_report.rejected_closed;
    assert_eq!(engine_accepted, report.accepted);
}

/// A framing violation earns an error reply with the offending seq
/// echoed, the connection closes, and no tuples are admitted.
#[test]
fn bad_frame_replies_then_closes_without_admission() {
    let engine = shedding_engine(0.0);
    let server = NetServer::start(quiet_net_cfg(), engine.clone(), None).unwrap();
    let stats = server.stats();

    let mut sock = TcpStream::connect(server.addr()).unwrap();
    // A full 16-byte header with an unknown version: seq must echo.
    let mut bad = vec![wire::MAGIC0, wire::MAGIC1_DATA, 99, 0];
    bad.extend_from_slice(&42u32.to_le_bytes());
    bad.extend_from_slice(&0xABCD_u64.to_le_bytes());
    sock.write_all(&bad).unwrap();

    let mut buf = Vec::new();
    sock.read_to_end(&mut buf).unwrap(); // server closes after reply
    let (reply, used) = wire::decode_reply(&buf).unwrap().expect("an error reply");
    assert_eq!(used, buf.len(), "exactly one reply then EOF");
    assert_eq!(reply.status, Reply::STATUS_BAD_FRAME);
    assert_eq!(reply.seq, 0xABCD);
    assert_eq!(reply.total(), 0);
    assert_eq!(stats.frames_bad.load(Ordering::Relaxed), 1);
    assert_eq!(stats.tuples_offered.load(Ordering::Relaxed), 0);

    server.shutdown();
    drop(engine);
}

/// An oversized header is refused from its 16 bytes alone — the claimed
/// payload is never awaited, never buffered, never admitted.
#[test]
fn oversized_frame_rejected_from_header() {
    let engine = shedding_engine(0.0);
    let server = NetServer::start(
        NetConfig {
            max_frame_tuples: 64,
            ..quiet_net_cfg()
        },
        engine.clone(),
        None,
    )
    .unwrap();
    let stats = server.stats();

    let mut sock = TcpStream::connect(server.addr()).unwrap();
    let mut frame = Vec::new();
    // Keyed frame claiming 1M tuples (an 8 MB payload we never send).
    wire::encode_frame_into(&mut frame, 5, 0, Some(&[]));
    frame[4..8].copy_from_slice(&1_000_000u32.to_le_bytes());
    sock.write_all(&frame).unwrap();

    let mut buf = Vec::new();
    sock.read_to_end(&mut buf).unwrap();
    let (reply, _) = wire::decode_reply(&buf).unwrap().expect("an error reply");
    assert_eq!(reply.status, Reply::STATUS_OVERSIZED);
    assert_eq!(reply.seq, 5);
    assert_eq!(stats.tuples_offered.load(Ordering::Relaxed), 0);

    server.shutdown();
    drop(engine);
}

fn http_get(addr: std::net::SocketAddr, target: &str) -> (u16, String) {
    let mut sock = TcpStream::connect(addr).unwrap();
    write!(sock, "GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut text = String::new();
    sock.read_to_string(&mut text).unwrap();
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = text.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

/// The HTTP side stays live while binary ingest is in flight: `/ingest`
/// admits through the same ledger, `/metrics` exports the
/// `streamshed_net_*` families mid-run.
#[test]
fn http_endpoints_live_during_binary_ingest() {
    let engine = shedding_engine(0.0);
    let server = NetServer::start(quiet_net_cfg(), engine.clone(), None).unwrap();
    let stats = server.stats();
    let addr = server.addr();

    // Keep a binary connection mid-stream (half a frame sent).
    let mut binary = TcpStream::connect(addr).unwrap();
    let mut frame = Vec::new();
    wire::encode_frame_into(&mut frame, 1, 100, None);
    binary.write_all(&frame[..9]).unwrap();

    // POST /ingest admits via the same four-bucket ledger.
    let mut post = TcpStream::connect(addr).unwrap();
    write!(post, "POST /ingest?count=10 HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut text = String::new();
    post.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(text.contains("\"offered\":10"), "{text}");

    // /metrics carries the net families and the admitted count.
    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("streamshed_net_tuples_total"), "{body}");
    assert!(body.contains("streamshed_net_connections_accepted"), "{body}");

    // Unknown paths 404 without disturbing ingest.
    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);

    // Now finish the binary frame: the half-open connection was
    // untouched by the HTTP traffic.
    binary.write_all(&frame[9..]).unwrap();
    let mut rbuf = [0u8; wire::REPLY_LEN];
    binary.read_exact(&mut rbuf).unwrap();
    let (reply, _) = wire::decode_reply(&rbuf).unwrap().unwrap();
    assert_eq!(reply.status, Reply::STATUS_OK);
    assert_eq!(reply.total(), 100);
    assert_eq!(stats.tuples_offered.load(Ordering::Relaxed), 110);

    server.shutdown();
    drop(engine);
}

/// Idle connections are reaped after the timeout and counted; active
/// ones are not.
#[test]
fn idle_timeout_reaps_silent_connections() {
    let engine = shedding_engine(0.0);
    let server = NetServer::start(
        NetConfig {
            idle_timeout: Duration::from_millis(150),
            ..quiet_net_cfg()
        },
        engine.clone(),
        None,
    )
    .unwrap();
    let stats = server.stats();

    let mut idle = TcpStream::connect(server.addr()).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 16];
    // The server closes us: read returns 0 (EOF) well within 5 s.
    let n = idle.read(&mut buf).unwrap();
    assert_eq!(n, 0, "expected EOF from idle sweep");
    assert_eq!(stats.connections_idle_closed.load(Ordering::Relaxed), 1);

    server.shutdown();
    drop(engine);
}

/// Graceful drain: in-flight frames are answered and admitted before
/// the listener goes away; afterwards the port refuses new work.
#[test]
fn shutdown_drains_inflight_frames() {
    let engine = shedding_engine(0.0);
    let server = NetServer::start(quiet_net_cfg(), engine.clone(), None).unwrap();
    let stats = server.stats();
    let addr = server.addr();

    let mut sock = TcpStream::connect(addr).unwrap();
    let mut frame = Vec::new();
    wire::encode_frame_into(&mut frame, 9, 50, None);
    sock.write_all(&frame).unwrap();
    // Wait for the reply so the frame is known-processed, then shut
    // down with the connection still open.
    let mut rbuf = [0u8; wire::REPLY_LEN];
    sock.read_exact(&mut rbuf).unwrap();
    let (reply, _) = wire::decode_reply(&rbuf).unwrap().unwrap();
    assert_eq!(reply.total(), 50);

    server.shutdown();
    assert_eq!(stats.tuples_offered.load(Ordering::Relaxed), 50);
    // The listener is gone: a fresh connect must fail (or be refused
    // on first read) — give the OS a beat to recycle the port.
    std::thread::sleep(Duration::from_millis(50));
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut s) => {
            s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let mut b = [0u8; 1];
            assert!(
                matches!(s.read(&mut b), Ok(0) | Err(_)),
                "listener still serving after shutdown"
            );
        }
    }
    drop(engine);
}
