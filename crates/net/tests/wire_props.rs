//! Property tests for the binary wire codec ([`streamshed_net::wire`]).
//!
//! The codec sits on an untrusted byte stream, so the properties attack
//! it the way a network does: arbitrary TCP segmentation (a stream of
//! frames delivered in arbitrary-sized chunks must decode to exactly
//! the same frames), truncation at every byte offset, single-byte
//! corruption anywhere in a frame, and raw random bytes. The decoder
//! must never panic, never consume bytes it did not decode, and —
//! after any framing error — be *expected* to desync (the protocol
//! mandates close-on-error, which the server enforces; the properties
//! here pin down that errors are deterministic and detected from the
//! fixed-offset prefix so a cross-version peer is rejected before its
//! payload is interpreted).

use proptest::prelude::*;
use streamshed_net::wire::{
    self, decode_frame, decode_reply, encode_frame_into, encode_reply_into, Reply, WireError,
    DATA_HEADER, DEFAULT_MAX_TUPLES, REPLY_LEN,
};

/// One frame to put on the wire: `None` keys ⇒ unkeyed `count` tuples.
#[derive(Debug, Clone)]
struct Frame {
    seq: u64,
    count: u32,
    keys: Option<Vec<u64>>,
}

fn frame_strategy() -> impl Strategy<Value = Frame> {
    prop_oneof![
        // Unkeyed: any count up to the default cap costs 16 bytes.
        (0u64..=u64::MAX, 0u32..=DEFAULT_MAX_TUPLES)
            .prop_map(|(seq, count)| Frame { seq, count, keys: None }),
        // Keyed: count follows the key vector.
        (0u64..=u64::MAX, proptest::collection::vec(0u64..=u64::MAX, 0..128)).prop_map(|(seq, keys)| {
            Frame {
                seq,
                count: keys.len() as u32,
                keys: Some(keys),
            }
        }),
    ]
}

fn encode(frames: &[Frame]) -> Vec<u8> {
    let mut buf = Vec::new();
    for f in frames {
        encode_frame_into(&mut buf, f.seq, f.count, f.keys.as_deref());
    }
    buf
}

/// Streaming decode: feed `bytes` in chunks of the given sizes (the
/// last chunk takes the remainder) and collect every completed frame,
/// exactly as the server's read loop does. Panics on a wire error —
/// the round-trip property feeds only well-formed streams.
fn decode_stream(bytes: &[u8], chunks: &[usize]) -> Vec<(u64, u32, Option<Vec<u64>>)> {
    let mut out = Vec::new();
    let mut rbuf: Vec<u8> = Vec::new();
    let mut fed = 0usize;
    let mut chunk_iter = chunks.iter();
    while fed < bytes.len() {
        let take = chunk_iter
            .next()
            .map_or(bytes.len() - fed, |&c| c.clamp(1, bytes.len() - fed));
        rbuf.extend_from_slice(&bytes[fed..fed + take]);
        fed += take;
        let mut consumed = 0usize;
        while let Some((frame, used)) =
            decode_frame(&rbuf[consumed..], DEFAULT_MAX_TUPLES).expect("well-formed stream")
        {
            let keys = frame
                .keyed
                .then(|| (0..frame.count as usize).map(|i| frame.key(i)).collect());
            out.push((frame.seq, frame.count, keys));
            consumed += used;
        }
        rbuf.drain(..consumed);
    }
    assert!(rbuf.is_empty(), "well-formed stream fully consumed");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any sequence of frames, segmented arbitrarily, decodes to exactly
    /// the frames that were sent — same order, same seq/count/keys.
    #[test]
    fn stream_round_trip_survives_arbitrary_segmentation(
        frames in proptest::collection::vec(frame_strategy(), 1..12),
        chunks in proptest::collection::vec(1usize..64, 0..64),
    ) {
        let bytes = encode(&frames);
        let got = decode_stream(&bytes, &chunks);
        prop_assert_eq!(got.len(), frames.len());
        for (g, f) in got.iter().zip(&frames) {
            prop_assert_eq!(g.0, f.seq);
            prop_assert_eq!(g.1, f.count);
            prop_assert_eq!(&g.2, &f.keys);
        }
    }

    /// Every strict prefix of a single frame yields `Ok(None)` — the
    /// decoder asks for more bytes and consumes nothing.
    #[test]
    fn truncation_never_decodes_and_never_panics(frame in frame_strategy()) {
        let bytes = encode(std::slice::from_ref(&frame));
        for cut in 0..bytes.len() {
            let r = decode_frame(&bytes[..cut], DEFAULT_MAX_TUPLES);
            prop_assert!(matches!(r, Ok(None)), "prefix {cut}/{} decoded: {r:?}", bytes.len());
        }
    }

    /// Flipping one byte anywhere in a frame either still decodes (the
    /// byte was payload/seq/count) or fails with a deterministic header
    /// error — never a panic, and header corruption is caught from the
    /// fixed-offset prefix.
    #[test]
    fn single_byte_corruption_is_rejected_or_benign(
        frame in frame_strategy(),
        at in 0usize..2048,
        xor in 1u8..=255,
    ) {
        let mut bytes = encode(std::slice::from_ref(&frame));
        let at = at % bytes.len();
        bytes[at] ^= xor;
        match decode_frame(&bytes, DEFAULT_MAX_TUPLES) {
            Err(WireError::BadMagic(_)) => prop_assert!(at <= 1),
            Err(WireError::BadVersion(_)) => prop_assert_eq!(at, 2),
            Err(WireError::BadFlags(_)) => prop_assert_eq!(at, 3),
            Err(WireError::Oversized { .. }) => prop_assert!((4..8).contains(&at)),
            // Corrupting count downward / seq / keys still frames.
            Ok(_) => {}
        }
    }

    /// Arbitrary bytes never panic the decoder, and anything that is not
    /// a valid prefix is rejected from the first four bytes.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255u8, 0..256)) {
        let _ = decode_frame(&bytes, DEFAULT_MAX_TUPLES);
        let _ = decode_reply(&bytes);
        if bytes.first().is_some_and(|&b| b != wire::MAGIC0) {
            prop_assert!(matches!(
                decode_frame(&bytes, DEFAULT_MAX_TUPLES),
                Err(WireError::BadMagic(_))
            ));
        }
    }

    /// Cross-version compat: the magic/version/flags prefix sits at the
    /// same offsets in every version, so a frame stamped with any other
    /// version byte is rejected as `BadVersion` no matter what follows —
    /// a V1 endpoint never misparses a hypothetical V2 stream.
    #[test]
    fn other_versions_rejected_from_header(
        frame in frame_strategy(),
        version in (0u8..=255).prop_filter("not v1", |v| *v != wire::VERSION),
        tail in proptest::collection::vec(0u8..=255u8, 0..64),
    ) {
        let mut bytes = encode(std::slice::from_ref(&frame));
        bytes[2] = version;
        bytes.extend_from_slice(&tail);
        prop_assert_eq!(
            decode_frame(&bytes, DEFAULT_MAX_TUPLES),
            Err(WireError::BadVersion(version))
        );
    }

    /// An oversized header is rejected before its payload exists: the
    /// error fires from the 16 header bytes alone, so a hostile count
    /// can never force the server to buffer the claimed payload.
    #[test]
    fn oversized_rejected_from_header_alone(
        seq in 0u64..=u64::MAX,
        over in 1u32..100_000,
        cap in 1u32..4096,
    ) {
        let mut bytes = Vec::new();
        encode_frame_into(&mut bytes, seq, cap + over, None);
        bytes.truncate(DATA_HEADER);
        prop_assert_eq!(
            decode_frame(&bytes, cap),
            Err(WireError::Oversized { count: cap + over, max: cap })
        );
    }

    /// Reply round trip over arbitrary ledgers, plus truncation safety.
    #[test]
    fn reply_round_trip(
        status in 0u8..3,
        accepted in 0u32..=u32::MAX,
        shed in 0u32..=u32::MAX,
        rejected_capacity in 0u32..=u32::MAX,
        rejected_closed in 0u32..=u32::MAX,
        seq in 0u64..=u64::MAX,
    ) {
        let r = Reply { status, accepted, shed, rejected_capacity, rejected_closed, seq };
        let mut buf = Vec::new();
        encode_reply_into(&mut buf, &r);
        prop_assert_eq!(buf.len(), REPLY_LEN);
        for cut in 0..buf.len() {
            prop_assert!(matches!(decode_reply(&buf[..cut]), Ok(None)));
        }
        let (got, used) = decode_reply(&buf).unwrap().unwrap();
        prop_assert_eq!(used, REPLY_LEN);
        prop_assert_eq!(got, r);
    }
}
