//! Model verification and parameter fitting (Figs. 6–7).
//!
//! Given a recorded identification run, compute the model's predicted
//! delays `ŷ(k) = (q(k−1)+1)·c/H`, the per-period modeling errors, and
//! fit the headroom `H` that minimises the error — the procedure that
//! leads the paper to `H = 0.97`.

use crate::IdentificationRun;
use serde::{Deserialize, Serialize};

/// Predicted delays (seconds) for an identification run under a candidate
/// `(c, H)` pair — Eq. 2 with the run's recorded queue lengths.
pub fn predict_delays_s(run: &IdentificationRun, cost_us: f64, headroom: f64) -> Vec<f64> {
    assert!(cost_us > 0.0 && headroom > 0.0);
    let c_s = cost_us / 1e6;
    let mut out = Vec::with_capacity(run.periods.len());
    let mut q_prev = 0u64;
    for p in &run.periods {
        out.push((q_prev as f64 + 1.0) * c_s / headroom);
        q_prev = p.q;
    }
    out
}

/// Per-period modeling error `y_real(k) − ŷ(k)` in seconds; `NaN` where
/// the real delay was unobserved.
pub fn model_error_s(run: &IdentificationRun, cost_us: f64, headroom: f64) -> Vec<f64> {
    let pred = predict_delays_s(run, cost_us, headroom);
    run.y_series_s()
        .iter()
        .zip(pred)
        .map(|(&real, model)| real - model)
        .collect()
}

/// Root-mean-square over the finite entries of an error series.
pub fn rmse(errors: &[f64]) -> f64 {
    let finite: Vec<f64> = errors.iter().copied().filter(|e| e.is_finite()).collect();
    if finite.is_empty() {
        return f64::NAN;
    }
    (finite.iter().map(|e| e * e).sum::<f64>() / finite.len() as f64).sqrt()
}

/// Result of a headroom fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelFit {
    /// The candidate headrooms evaluated.
    pub candidates: Vec<f64>,
    /// RMSE (seconds) for each candidate.
    pub rmse_s: Vec<f64>,
    /// The best headroom.
    pub best_headroom: f64,
    /// Its RMSE, seconds.
    pub best_rmse_s: f64,
}

/// Evaluates candidate headrooms against a run (with the run's measured
/// mean cost) and returns the best — Fig. 6's comparison of
/// H ∈ {0.95, 0.97, 1.00}.
pub fn fit_headroom(run: &IdentificationRun, cost_us: f64, candidates: &[f64]) -> ModelFit {
    assert!(!candidates.is_empty());
    let rmse_s: Vec<f64> = candidates
        .iter()
        .map(|&h| rmse(&model_error_s(run, cost_us, h)))
        .collect();
    // Exact ties break toward the LATER candidate: when the error curve
    // is flat at the knee (two headrooms fit equally well), the larger
    // headroom is the conservative pick — it implies less spare capacity,
    // so a controller built on it sheds no less than it must.
    let mut best_idx = 0;
    for (i, &r) in rmse_s.iter().enumerate().skip(1) {
        let cur = rmse_s[best_idx];
        if r.is_finite() && (!cur.is_finite() || r <= cur) {
            best_idx = i;
        }
    }
    ModelFit {
        candidates: candidates.to_vec(),
        rmse_s: rmse_s.clone(),
        best_headroom: candidates[best_idx],
        best_rmse_s: rmse_s[best_idx],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_identification, ObservedPeriod};
    use streamshed_engine::networks::identification_network;
    use streamshed_engine::sim::SimConfig;
    use streamshed_workload::{SineTrace, StepTrace};

    /// A synthetic run whose delays exactly follow the model at H = 0.9.
    fn synthetic_run(h: f64, c_us: f64) -> IdentificationRun {
        let qs = [0u64, 50, 120, 200, 260, 300];
        let mut periods = Vec::new();
        let mut q_prev = 0u64;
        for (k, &q) in qs.iter().enumerate() {
            let y_s = (q_prev as f64 + 1.0) * (c_us / 1e6) / h;
            periods.push(ObservedPeriod {
                k: k as u64,
                fin_tps: 300.0,
                q,
                y_real_ms: y_s * 1e3,
                measured_cost_us: c_us,
            });
            q_prev = q;
        }
        IdentificationRun {
            periods,
            mean_cost_us: c_us,
        }
    }

    #[test]
    fn exact_model_has_zero_error() {
        let run = synthetic_run(0.9, 5000.0);
        let err = model_error_s(&run, 5000.0, 0.9);
        assert!(err.iter().all(|e| e.abs() < 1e-12));
        assert!(rmse(&err) < 1e-12);
    }

    #[test]
    fn wrong_headroom_has_positive_error() {
        let run = synthetic_run(0.9, 5000.0);
        assert!(rmse(&model_error_s(&run, 5000.0, 1.0)) > 0.01);
    }

    #[test]
    fn fit_recovers_true_headroom() {
        let run = synthetic_run(0.9, 5000.0);
        let fit = fit_headroom(&run, 5000.0, &[0.85, 0.9, 0.95, 1.0]);
        assert_eq!(fit.best_headroom, 0.9);
        assert!(fit.best_rmse_s < 1e-9);
    }

    /// Regression: a cost curve exactly flat at the knee used to resolve
    /// to the FIRST (smaller) headroom; ties must break to the later one.
    /// The construction makes the tie bitwise-exact: with power-of-two
    /// headrooms and a unit cost, both predictions and their midpoint are
    /// exactly representable, so the two error series are exact negations
    /// of each other and square to identical RMSEs.
    #[test]
    fn flat_tie_at_the_knee_breaks_to_the_later_headroom() {
        let (h_lo, h_hi) = (0.25, 0.5);
        let c_us = 1e6; // c_s = 1.0 exactly
        let qs = [0u64, 3, 7, 12, 20];
        let mut periods = Vec::new();
        let mut q_prev = 0u64;
        for (k, &q) in qs.iter().enumerate() {
            let n = q_prev as f64 + 1.0;
            // Midpoint of the two candidate predictions: 4n and 2n → 3n.
            let y_s = 3.0 * n;
            periods.push(ObservedPeriod {
                k: k as u64,
                fin_tps: 300.0,
                q,
                y_real_ms: y_s * 1e3,
                measured_cost_us: c_us,
            });
            q_prev = q;
        }
        let run = IdentificationRun {
            periods,
            mean_cost_us: c_us,
        };
        let fit = fit_headroom(&run, c_us, &[h_lo, h_hi]);
        assert_eq!(
            fit.rmse_s[0].to_bits(),
            fit.rmse_s[1].to_bits(),
            "construction must produce a bitwise-exact tie"
        );
        assert_eq!(fit.best_headroom, h_hi, "tie must break to the later candidate");
    }

    #[test]
    fn nan_candidates_never_win_a_fit() {
        // An unobservable candidate (NaN RMSE) must lose to any finite one,
        // wherever it sits in the list.
        let run = synthetic_run(0.9, 5000.0);
        let mut damaged = run.clone();
        for p in &mut damaged.periods {
            p.y_real_ms = f64::NAN;
        }
        assert!(fit_headroom(&damaged, 5000.0, &[0.9, 0.95]).best_rmse_s.is_nan());
        let fit = fit_headroom(&run, 5000.0, &[0.85, 0.9, 0.95]);
        assert_eq!(fit.best_headroom, 0.9);
    }

    #[test]
    fn rmse_handles_nans() {
        assert!((rmse(&[3.0, f64::NAN, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
        assert!(rmse(&[f64::NAN]).is_nan());
    }

    #[test]
    fn engine_fit_prefers_engine_headroom() {
        // The engine's true headroom is 0.97; the fit over a step-overload
        // run must pick a value near it rather than 1.0 or 0.90.
        let run = run_identification(
            identification_network(),
            &StepTrace::paper_step(300.0),
            60,
            150,
            SimConfig::paper_default(),
        );
        let fit = fit_headroom(&run, run.mean_cost_us, &[0.90, 0.95, 0.97, 1.00]);
        assert!(
            (fit.best_headroom - 0.97).abs() < 0.021,
            "best H = {} (rmse {:?})",
            fit.best_headroom,
            fit.rmse_s
        );
    }

    #[test]
    fn sinusoidal_errors_are_small() {
        // Fig. 7: "small, periodical modeling errors" — RMSE well under
        // the multi-second delay swings themselves.
        let run = run_identification(
            identification_network(),
            &SineTrace::paper_sine(),
            120,
            120,
            SimConfig::paper_default(),
        );
        let err = model_error_s(&run, run.mean_cost_us, 0.97);
        let e = rmse(&err);
        let peak_y = run
            .y_series_s()
            .iter()
            .copied()
            .filter(|y| y.is_finite())
            .fold(0.0f64, f64::max);
        assert!(peak_y > 1.0, "sine overload must build delay: {peak_y}");
        assert!(e < peak_y * 0.25, "rmse {e} vs peak {peak_y}");
    }
}
