//! Multi-rate regression identification.
//!
//! In sustained overload the model predicts a delay *growth rate* linear
//! in the input rate:
//!
//! ```text
//! dy/dt = fin·(c/H) − 1        (seconds of delay per second)
//! ```
//!
//! Driving the engine at several overload rates and regressing the
//! measured `Δy` slopes against `fin` therefore recovers **both** model
//! parameters at once: the slope is `c/H` (capacity = 1/slope) and the
//! intercept must be −1 — a falsifiable structural check that the plant
//! really is the paper's integrator (an extra pole or dead time would
//! bend the line).

use crate::run_identification;
use serde::{Deserialize, Serialize};
use streamshed_engine::network::QueryNetwork;
use streamshed_engine::sim::SimConfig;
use streamshed_workload::StepTrace;

/// Result of the multi-rate regression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionFit {
    /// `(fin, measured dy/dt)` samples used.
    pub samples: Vec<(f64, f64)>,
    /// Fitted slope `c/H`, seconds per tuple.
    pub slope: f64,
    /// Fitted intercept (model predicts −1).
    pub intercept: f64,
    /// Implied processing capacity `H/c = 1/slope`, tuples/s.
    pub capacity_tps: f64,
    /// Coefficient of determination of the linear fit.
    pub r_squared: f64,
}

impl RegressionFit {
    /// Given an independently measured per-tuple cost (µs), the implied
    /// headroom `H = c/slope`.
    pub fn implied_headroom(&self, cost_us: f64) -> f64 {
        cost_us / 1e6 / self.slope
    }
}

/// Ordinary least squares for `y = a·x + b`; returns
/// `(slope, intercept, r²)`. Public so the online estimator
/// ([`crate::online::OnlineRegression`]) can be checked against the
/// batch solution it must converge to.
pub fn ols(samples: &[(f64, f64)]) -> (f64, f64, f64) {
    let n = samples.len() as f64;
    assert!(n >= 2.0, "need at least two samples");
    let mean_x = samples.iter().map(|&(x, _)| x).sum::<f64>() / n;
    let mean_y = samples.iter().map(|&(_, y)| y).sum::<f64>() / n;
    let sxx: f64 = samples.iter().map(|&(x, _)| (x - mean_x).powi(2)).sum();
    let sxy: f64 = samples
        .iter()
        .map(|&(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = samples.iter().map(|&(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = samples
        .iter()
        .map(|&(x, y)| (y - (slope * x + intercept)).powi(2))
        .sum();
    let r2 = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
    (slope, intercept, r2)
}

/// Runs the engine at each overload `rate` for `observe_s` seconds and
/// regresses the steady Δy slope against the rate.
///
/// All rates should exceed the capacity, or their Δy is ~0 and the fit
/// degrades toward the knee's corner.
pub fn regression_identify(
    make_network: impl Fn() -> QueryNetwork,
    rates: &[f64],
    observe_s: u64,
    cfg: &SimConfig,
) -> RegressionFit {
    assert!(rates.len() >= 2);
    let mut samples = Vec::with_capacity(rates.len());
    for &rate in rates {
        let run = run_identification(
            make_network(),
            &StepTrace::constant(rate),
            observe_s,
            observe_s * 4,
            cfg.clone(),
        );
        // Steady-state Δy: mean over the middle-to-late window (skip the
        // fill transient).
        let dys = run.delta_y_ms();
        let tail: Vec<f64> = dys[(dys.len() / 3)..]
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .collect();
        let dy_per_s = tail.iter().sum::<f64>() / tail.len().max(1) as f64 / 1e3
            / cfg.period.as_secs_f64();
        samples.push((rate, dy_per_s));
    }
    let (slope, intercept, r_squared) = ols(&samples);
    RegressionFit {
        samples,
        slope,
        intercept,
        capacity_tps: 1.0 / slope,
        r_squared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamshed_engine::networks::identification_network;

    #[test]
    fn ols_exact_on_linear_data() {
        let samples: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let (a, b, r2) = ols(&samples);
        assert!((a - 3.0).abs() < 1e-12);
        assert!((b + 2.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_capacity_and_integrator_structure() {
        let fit = regression_identify(
            identification_network,
            &[230.0, 260.0, 300.0, 340.0],
            40,
            &SimConfig::paper_default(),
        );
        // Capacity ≈ 190 t/s.
        assert!(
            (fit.capacity_tps - 190.0).abs() < 15.0,
            "capacity {}",
            fit.capacity_tps
        );
        // The structural check: intercept ≈ −1 (pure integrator).
        assert!(
            (fit.intercept + 1.0).abs() < 0.25,
            "intercept {}",
            fit.intercept
        );
        // Strongly linear.
        assert!(fit.r_squared > 0.98, "R² {}", fit.r_squared);
        // Implied headroom from the calibrated cost ≈ 0.97.
        let h = fit.implied_headroom(5105.0);
        assert!((h - 0.97).abs() < 0.08, "implied H {h}");
    }
}
