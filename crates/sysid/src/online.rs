//! Online (recursive) regression — the streaming counterpart of the
//! batch identification in [`regression`](crate::regression).
//!
//! [`OnlineRegression`] fits the affine model `y = slope·x + intercept`
//! one sample at a time with exponentially forgotten recursive least
//! squares. With the regressor vector `φ = [x, 1]ᵀ` and parameter vector
//! `θ = [slope, intercept]ᵀ`, each update is the standard RLS recursion
//!
//! ```text
//! K = Pφ / (λ + φᵀPφ)
//! θ ← θ + K·(y − φᵀθ)
//! P ← (P − K·φᵀP) / λ
//! ```
//!
//! At `λ = 1` and a diffuse prior the recursion converges to the batch
//! ordinary-least-squares solution ([`crate::regression::ols`]) — the
//! property-based tests pin the two against each other. With `λ < 1` old
//! samples are discounted geometrically, which is what the self-tuning
//! control plane needs: the same slope/intercept structure as the
//! offline multi-rate fit, re-estimated continuously from live
//! [`ControlTrace`](streamshed_engine::telemetry::ControlTrace) data so
//! drift in the per-tuple cost shows up within a window instead of a
//! re-calibration campaign.

use serde::{Deserialize, Serialize};

/// Recursive least squares for `y = slope·x + intercept` with
/// exponential forgetting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineRegression {
    theta: [f64; 2],
    p: [[f64; 2]; 2],
    forgetting: f64,
    samples: u64,
}

/// Diffuse-prior covariance: large enough that the first samples
/// dominate the (zero) prior, matching batch OLS at λ = 1.
const DIFFUSE_PRIOR: f64 = 1e9;

impl OnlineRegression {
    /// Creates an estimator with a zero prior and a diffuse prior
    /// covariance. `forgetting` is λ ∈ (0, 1]; `1.0` recovers ordinary
    /// least squares, smaller values discount old samples faster.
    pub fn new(forgetting: f64) -> Self {
        Self::with_prior(0.0, 0.0, DIFFUSE_PRIOR, forgetting)
    }

    /// Creates an estimator seeded with a prior `(slope, intercept)` and
    /// a scalar prior covariance (larger = trust data over the prior).
    pub fn with_prior(slope: f64, intercept: f64, prior_cov: f64, forgetting: f64) -> Self {
        assert!(prior_cov > 0.0 && prior_cov.is_finite());
        assert!(forgetting > 0.0 && forgetting <= 1.0);
        Self {
            theta: [slope, intercept],
            p: [[prior_cov, 0.0], [0.0, prior_cov]],
            forgetting,
            samples: 0,
        }
    }

    /// Feeds one `(x, y)` sample; returns the updated
    /// `(slope, intercept)`. Non-finite samples are ignored.
    pub fn update(&mut self, x: f64, y: f64) -> (f64, f64) {
        if !(x.is_finite() && y.is_finite()) {
            return (self.theta[0], self.theta[1]);
        }
        let phi = [x, 1.0];
        // Pφ and the scalar innovation denominator λ + φᵀPφ.
        let pphi = [
            self.p[0][0] * phi[0] + self.p[0][1] * phi[1],
            self.p[1][0] * phi[0] + self.p[1][1] * phi[1],
        ];
        let denom = self.forgetting + phi[0] * pphi[0] + phi[1] * pphi[1];
        let k = [pphi[0] / denom, pphi[1] / denom];
        let residual = y - (self.theta[0] * phi[0] + self.theta[1] * phi[1]);
        self.theta[0] += k[0] * residual;
        self.theta[1] += k[1] * residual;
        // P ← (P − K·(Pφ)ᵀ)/λ, kept symmetric by construction.
        for (row, ki) in self.p.iter_mut().zip(k) {
            for (pij, pphij) in row.iter_mut().zip(pphi) {
                *pij = (*pij - ki * pphij) / self.forgetting;
            }
        }
        self.samples += 1;
        (self.theta[0], self.theta[1])
    }

    /// Current slope estimate.
    pub fn slope(&self) -> f64 {
        self.theta[0]
    }

    /// Current intercept estimate.
    pub fn intercept(&self) -> f64 {
        self.theta[1]
    }

    /// Finite samples consumed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Prediction `slope·x + intercept` under the current estimate.
    pub fn predict(&self, x: f64) -> f64 {
        self.theta[0] * x + self.theta[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regression::ols;

    #[test]
    fn matches_batch_ols_on_stationary_data() {
        let samples: Vec<(f64, f64)> = (0..40)
            .map(|i| {
                let x = 200.0 + 10.0 * (i % 8) as f64;
                // A deterministic "noise" ripple so the fit is not exact.
                let y = 0.005 * x - 1.0 + 0.01 * ((i % 5) as f64 - 2.0);
                (x, y)
            })
            .collect();
        let (slope, intercept, _) = ols(&samples);
        let mut rls = OnlineRegression::new(1.0);
        for &(x, y) in &samples {
            rls.update(x, y);
        }
        assert!(
            (rls.slope() - slope).abs() < 1e-6 * slope.abs().max(1.0),
            "slope {} vs ols {slope}",
            rls.slope()
        );
        assert!(
            (rls.intercept() - intercept).abs() < 1e-4,
            "intercept {} vs ols {intercept}",
            rls.intercept()
        );
        assert_eq!(rls.samples(), 40);
    }

    #[test]
    fn forgetting_tracks_a_slope_change() {
        let mut rls = OnlineRegression::new(0.9);
        for i in 0..80 {
            let x = 1.0 + (i % 7) as f64;
            rls.update(x, 2.0 * x + 1.0);
        }
        assert!((rls.slope() - 2.0).abs() < 1e-6);
        for i in 0..80 {
            let x = 1.0 + (i % 7) as f64;
            rls.update(x, 5.0 * x - 3.0);
        }
        assert!((rls.slope() - 5.0).abs() < 0.05, "slope {}", rls.slope());
        assert!((rls.intercept() + 3.0).abs() < 0.3, "b {}", rls.intercept());
    }

    #[test]
    fn ignores_degenerate_samples() {
        let mut rls = OnlineRegression::with_prior(1.0, 0.0, 10.0, 1.0);
        rls.update(f64::NAN, 1.0);
        rls.update(1.0, f64::INFINITY);
        assert_eq!(rls.samples(), 0);
        assert_eq!(rls.slope(), 1.0);
        assert_eq!(rls.predict(2.0), 2.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// On arbitrary stationary linear traces (with bounded
            /// deterministic ripple and enough x-spread), the online
            /// estimator at λ = 1 agrees with the offline batch fit.
            #[test]
            fn online_rls_agrees_with_batch_ols(
                slope in -10.0..10.0f64,
                intercept in -100.0..100.0f64,
                x0 in 1.0..500.0f64,
                x_spread in 1.0..50.0f64,
                ripple in 0.0..0.5f64,
                n in 12usize..60,
            ) {
                let samples: Vec<(f64, f64)> = (0..n)
                    .map(|i| {
                        let x = x0 + x_spread * (i % 9) as f64 / 8.0;
                        let y = slope * x + intercept
                            + ripple * ((i % 7) as f64 - 3.0) / 3.0;
                        (x, y)
                    })
                    .collect();
                let (bs, bi, _) = ols(&samples);
                let mut rls = OnlineRegression::new(1.0);
                for &(x, y) in &samples {
                    rls.update(x, y);
                }
                // The diffuse prior leaves a residual bias ∝ ‖θ‖/prior,
                // so agreement is judged on predictions relative to the
                // trace's own y-scale.
                let y_scale = samples
                    .iter()
                    .map(|&(_, y)| y.abs())
                    .fold(1.0f64, f64::max);
                for &(x, _) in &samples {
                    let batch = bs * x + bi;
                    prop_assert!(
                        (rls.predict(x) - batch).abs() < 1e-4 * y_scale,
                        "predict({x}) = {} vs ols {batch} (scale {y_scale})",
                        rls.predict(x)
                    );
                }
            }
        }
    }
}
