//! # streamshed-sysid
//!
//! System identification for the stream engine, following §4.2 of the
//! paper: feed the engine synthetic streams with known arrival patterns,
//! record the responses, and verify/fit the dynamic model
//! `y(k) = (c/H)·(q(k−1) + 1)`.
//!
//! * [`run_identification`] — drives a network with a trace (no shedding)
//!   and collects the `(fin, q, y)` series;
//! * [`model`] — computes model predictions and modeling errors for
//!   candidate `(c, H)` (Figs. 6–7);
//! * [`knee`] — locates the processing-capacity knee by scanning arrival
//!   rates (Fig. 5's 190 tuples/s threshold);
//! * [`online`] — the streaming counterpart: exponentially forgotten
//!   recursive least squares re-fitting the same slope/intercept model
//!   from live data (the self-tuning plane's re-identification seam).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod knee;
pub mod model;
pub mod online;
pub mod regression;

use serde::{Deserialize, Serialize};
use streamshed_engine::hook::NoShedding;
use streamshed_engine::network::QueryNetwork;
use streamshed_engine::sim::{SimConfig, Simulator};
use streamshed_engine::time::{secs, SimTime};
use streamshed_workload::{to_micros, ArrivalTrace};

pub use knee::{find_capacity_knee, KneeEstimate};
pub use model::{fit_headroom, model_error_s, predict_delays_s, rmse, ModelFit};
pub use online::OnlineRegression;
pub use regression::{ols, regression_identify, RegressionFit};

/// One observed control period of an identification run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObservedPeriod {
    /// Period index.
    pub k: u64,
    /// Offered arrival rate, tuples/s.
    pub fin_tps: f64,
    /// Virtual queue length at the period boundary.
    pub q: u64,
    /// Measured mean delay (ms) of tuples that *arrived* in this period
    /// (the paper's `y(k)`), `NaN` if none departed.
    pub y_real_ms: f64,
    /// Measured per-tuple cost this period, µs (`NaN` if nothing
    /// completed).
    pub measured_cost_us: f64,
}

/// The collected series of an identification run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdentificationRun {
    /// Observed periods covering the observation window.
    pub periods: Vec<ObservedPeriod>,
    /// Mean of the (finite) measured per-tuple costs, µs.
    pub mean_cost_us: f64,
}

impl IdentificationRun {
    /// The `y(k)` series in seconds (`NaN` where unobserved).
    pub fn y_series_s(&self) -> Vec<f64> {
        self.periods.iter().map(|p| p.y_real_ms / 1e3).collect()
    }

    /// The virtual-queue series.
    pub fn q_series(&self) -> Vec<u64> {
        self.periods.iter().map(|p| p.q).collect()
    }

    /// The per-period delay increments `Δy(k) = y(k) − y(k−1)` in ms
    /// (Fig. 5C). `NaN` where either sample is missing.
    pub fn delta_y_ms(&self) -> Vec<f64> {
        let mut out = vec![f64::NAN];
        for w in self.periods.windows(2) {
            out.push(w[1].y_real_ms - w[0].y_real_ms);
        }
        out
    }
}

/// Runs the engine open-loop (no shedding) against an arrival trace and
/// collects the identification series.
///
/// `observe_s` is the window the returned series covers; the simulation
/// itself runs `observe_s + drain_s` seconds so that tuples arriving late
/// in the window still depart and contribute their delays (the engine can
/// only attribute a delay at departure).
pub fn run_identification(
    network: QueryNetwork,
    trace: &dyn ArrivalTrace,
    observe_s: u64,
    drain_s: u64,
    sim_cfg: SimConfig,
) -> IdentificationRun {
    let times = trace.arrival_times(observe_s as f64);
    let arrivals: Vec<SimTime> = to_micros(&times).into_iter().map(SimTime).collect();
    let sim = Simulator::new(network, sim_cfg.clone());
    let report = sim.run(&arrivals, &mut NoShedding, secs(observe_s + drain_s));

    let period_s = sim_cfg.period.as_secs_f64();
    let mut periods = Vec::new();
    let mut cost_sum = 0.0;
    let mut cost_n = 0u32;
    for p in report
        .periods
        .iter()
        .take_while(|p| p.time_s <= observe_s as f64 + 1e-9)
    {
        if p.measured_cost_us.is_finite() {
            cost_sum += p.measured_cost_us;
            cost_n += 1;
        }
        periods.push(ObservedPeriod {
            k: p.k,
            fin_tps: p.offered as f64 / period_s,
            q: p.outstanding,
            y_real_ms: p.arrival_mean_delay_ms,
            measured_cost_us: p.measured_cost_us,
        });
    }
    IdentificationRun {
        periods,
        mean_cost_us: if cost_n > 0 {
            cost_sum / cost_n as f64
        } else {
            f64::NAN
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamshed_engine::networks::identification_network;
    use streamshed_workload::StepTrace;

    #[test]
    fn collects_expected_number_of_periods() {
        let run = run_identification(
            identification_network(),
            &StepTrace::constant(100.0),
            20,
            5,
            SimConfig::paper_default(),
        );
        assert_eq!(run.periods.len(), 20);
        assert!(run.mean_cost_us.is_finite());
    }

    #[test]
    fn underload_delays_are_flat() {
        let run = run_identification(
            identification_network(),
            &StepTrace::constant(150.0),
            30,
            5,
            SimConfig::paper_default(),
        );
        let ys = run.y_series_s();
        // Constant small delay (Fig. 5B below the knee).
        for y in ys.iter().skip(2) {
            assert!(y.is_finite() && *y < 0.25, "delay {y}");
        }
    }

    #[test]
    fn overload_delta_y_converges() {
        // Fig. 5C: Δy converges to a stable positive value — the signature
        // of a pure integrator with no further dynamics.
        let run = run_identification(
            identification_network(),
            &StepTrace::paper_step(300.0),
            50,
            120,
            SimConfig::paper_default(),
        );
        let dys = run.delta_y_ms();
        let tail: Vec<f64> = dys[30..50]
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .collect();
        assert!(tail.len() > 10);
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let spread = tail.iter().map(|d| (d - mean).abs()).fold(0.0f64, f64::max);
        assert!(mean > 100.0, "Δy should be clearly positive: {mean}");
        assert!(spread < mean * 0.8, "Δy spread {spread} vs mean {mean}");
    }

    #[test]
    fn measured_cost_near_calibration() {
        let run = run_identification(
            identification_network(),
            &StepTrace::constant(150.0),
            30,
            5,
            SimConfig::paper_default(),
        );
        // Calibrated network: c ≈ 5105 µs.
        assert!(
            (run.mean_cost_us - 5105.0).abs() < 300.0,
            "mean cost {}",
            run.mean_cost_us
        );
    }
}
