//! Capacity-knee detection (Fig. 5's 190 tuples/s threshold).
//!
//! Below the processing capacity `H/c`, the engine drains every period
//! and delays stay constant; above it, the virtual queue integrates the
//! excess. The knee is located by bisection on the sustained arrival
//! rate, classifying each probe run by end-of-run queue growth.

use serde::{Deserialize, Serialize};
use streamshed_engine::hook::NoShedding;
use streamshed_engine::network::QueryNetwork;
use streamshed_engine::sim::{SimConfig, Simulator};
use streamshed_engine::time::{secs, SimTime};
use streamshed_workload::{to_micros, ArrivalTrace, StepTrace};

/// Result of a knee search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KneeEstimate {
    /// Estimated capacity, tuples/s.
    pub capacity_tps: f64,
    /// The naive per-tuple cost implied under H = 1 (the paper's first
    /// estimate, `c ≈ 1000/190 ms`), µs.
    pub naive_cost_us: f64,
    /// Probe runs performed.
    pub probes: u32,
}

/// Classifies one sustained rate as overloaded (queue grows) or not.
fn is_overloaded(
    make_network: &dyn Fn() -> QueryNetwork,
    rate: f64,
    probe_s: u64,
    cfg: &SimConfig,
) -> bool {
    let trace = StepTrace::constant(rate);
    let times = trace.arrival_times(probe_s as f64);
    let arrivals: Vec<SimTime> = to_micros(&times).into_iter().map(SimTime).collect();
    let sim = Simulator::new(make_network(), cfg.clone());
    let report = sim.run(&arrivals, &mut NoShedding, secs(probe_s));
    // Sustained overload: the queue at the end holds more than a couple of
    // seconds' worth of the *excess* — use an absolute threshold scaled to
    // the probe length so borderline rates classify stably.
    let q_end = report.periods.last().map(|p| p.outstanding).unwrap_or(0);
    q_end as f64 > (probe_s as f64) * 1.5 + 20.0
}

/// Bisects the capacity knee within `[lo, hi]` tuples/s to the requested
/// resolution.
pub fn find_capacity_knee(
    make_network: impl Fn() -> QueryNetwork,
    mut lo: f64,
    mut hi: f64,
    resolution_tps: f64,
    probe_s: u64,
    cfg: &SimConfig,
) -> KneeEstimate {
    assert!(lo > 0.0 && hi > lo && resolution_tps > 0.0);
    let f = &make_network;
    let mut probes = 0u32;
    assert!(
        !is_overloaded(&f, lo, probe_s, cfg),
        "lower bound {lo} t/s is already overloaded"
    );
    assert!(
        is_overloaded(&f, hi, probe_s, cfg),
        "upper bound {hi} t/s is not overloaded"
    );
    probes += 2;
    while hi - lo > resolution_tps {
        let mid = (lo + hi) / 2.0;
        if is_overloaded(&f, mid, probe_s, cfg) {
            hi = mid;
        } else {
            lo = mid;
        }
        probes += 1;
    }
    let capacity = (lo + hi) / 2.0;
    KneeEstimate {
        capacity_tps: capacity,
        naive_cost_us: 1e6 / capacity,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamshed_engine::networks::{identification_network, uniform_chain};
    use streamshed_engine::time::micros;

    #[test]
    fn finds_identification_network_knee_near_190() {
        let est = find_capacity_knee(
            identification_network,
            120.0,
            280.0,
            4.0,
            25,
            &SimConfig::paper_default(),
        );
        assert!(
            (est.capacity_tps - 190.0).abs() < 10.0,
            "knee at {} t/s",
            est.capacity_tps
        );
        // The paper's naive estimate: c ≈ 1000/190 ≈ 5.26 ms.
        assert!(
            (est.naive_cost_us - 5263.0).abs() < 300.0,
            "naive cost {} µs",
            est.naive_cost_us
        );
    }

    #[test]
    fn knee_scales_with_cost() {
        // A 10 ms chain at H = 0.97 has capacity 97 t/s.
        let est = find_capacity_knee(
            || uniform_chain(4, micros(10_000)),
            50.0,
            200.0,
            4.0,
            25,
            &SimConfig::paper_default(),
        );
        assert!(
            (est.capacity_tps - 97.0).abs() < 8.0,
            "knee at {} t/s",
            est.capacity_tps
        );
    }

    #[test]
    #[should_panic(expected = "not overloaded")]
    fn rejects_bad_bracket() {
        let _ = find_capacity_knee(
            identification_network,
            10.0,
            50.0,
            5.0,
            20,
            &SimConfig::paper_default(),
        );
    }
}
