//! Engine throughput: how fast the virtual-time simulator chews through
//! simulated workload (tuples and operator invocations per wall second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use streamshed_engine::hook::NoShedding;
use streamshed_engine::networks::{identification_network, monitoring_network, uniform_chain};
use streamshed_engine::operator::{Filter, Map, OperatorLogic, OutputBuffer};
use streamshed_engine::sim::{SimConfig, Simulator};
use streamshed_engine::time::{micros, secs, SimTime};
use streamshed_engine::tuple::{RootId, Tuple};

fn uniform_arrivals(rate: f64, dur_s: f64) -> Vec<SimTime> {
    let n = (rate * dur_s) as u64;
    let gap = 1e6 / rate;
    (0..n)
        .map(|i| SimTime((i as f64 * gap) as u64))
        .collect()
}

fn bench_operator_invocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("operator_process");
    group.throughput(Throughput::Elements(1));
    let tuple = Tuple::new(RootId(0), SimTime::ZERO, 3, 0.4);

    group.bench_function("filter", |b| {
        let mut op = Filter::value_below(0.5);
        let mut out = OutputBuffer::new();
        b.iter(|| {
            out.clear();
            op.process(0, black_box(&tuple), SimTime::ZERO, &mut out);
            out.len()
        });
    });
    group.bench_function("map", |b| {
        let mut op = Map::scale(2.0);
        let mut out = OutputBuffer::new();
        b.iter(|| {
            out.clear();
            op.process(0, black_box(&tuple), SimTime::ZERO, &mut out);
            out.len()
        });
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_60s");
    group.sample_size(10);

    type NetworkFactory = fn() -> streamshed_engine::network::QueryNetwork;
    fn chain4() -> streamshed_engine::network::QueryNetwork {
        uniform_chain(4, micros(5000))
    }
    let cases: [(&str, NetworkFactory); 3] = [
        ("chain4", chain4),
        ("identification14", identification_network),
        ("monitoring_joins", monitoring_network),
    ];
    for (name, make) in cases {
        let arrivals = uniform_arrivals(150.0, 60.0);
        group.throughput(Throughput::Elements(arrivals.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &arrivals, |b, arr| {
            b.iter(|| {
                let sim = Simulator::new(make(), SimConfig::paper_default());
                let report = sim.run(arr, &mut NoShedding, secs(60));
                black_box(report.completed)
            });
        });
    }
    group.finish();
}

fn bench_overloaded_simulation(c: &mut Criterion) {
    // Overload means long queues and in-buffer staging — a different
    // execution profile than the underloaded path.
    let mut group = c.benchmark_group("simulate_overloaded_60s");
    group.sample_size(10);
    let arrivals = uniform_arrivals(400.0, 60.0);
    group.throughput(Throughput::Elements(arrivals.len() as u64));
    group.bench_function("identification14_2x", |b| {
        b.iter(|| {
            let sim = Simulator::new(identification_network(), SimConfig::paper_default());
            let report = sim.run(&arrivals, &mut NoShedding, secs(60));
            black_box(report.completed)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_operator_invocation,
    bench_simulation,
    bench_overloaded_simulation
);
criterion_main!(benches);
