//! Actuator costs: the per-tuple entry coin flip and the per-boundary
//! in-network shed sweep.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use streamshed_control::loop_::{LoopConfig, ShedMode};
use streamshed_control::shedder::{EntryShedder, NetworkShedder};
use streamshed_control::strategy::CtrlStrategy;
use streamshed_engine::sim::{SimConfig, Simulator};
use streamshed_engine::networks::identification_network;
use streamshed_engine::time::{secs, SimTime};

fn bench_arithmetic(c: &mut Criterion) {
    let mut group = c.benchmark_group("shedder_arithmetic");
    group.throughput(Throughput::Elements(1));
    group.bench_function("entry_alpha", |b| {
        let mut v = 100.0;
        b.iter(|| {
            v = (v + 1.0) % 500.0;
            EntryShedder::alpha_for(black_box(v), 400.0)
        });
    });
    group.bench_function("network_ls", |b| {
        let mut v = 100.0;
        b.iter(|| {
            v = (v + 1.0) % 500.0;
            NetworkShedder::load_to_shed_us(1e6, 400.0, black_box(v), 5105.0, 1.0)
        });
    });
    group.finish();
}

fn bench_shed_modes_end_to_end(c: &mut Criterion) {
    // Full 60 s closed-loop runs under 2× overload: entry vs network
    // actuation (the wall-clock cost of the in-network queue sweep).
    let mut group = c.benchmark_group("closed_loop_60s");
    group.sample_size(10);
    let arrivals: Vec<SimTime> = {
        let gap = 1e6 / 400.0;
        (0..(400 * 60)).map(|i| SimTime((i as f64 * gap) as u64)).collect()
    };
    for (name, mode) in [("entry", ShedMode::Entry), ("network", ShedMode::Network)] {
        let cfg = LoopConfig::paper_default().with_shed_mode(mode);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut s = CtrlStrategy::from_config(&cfg);
                let sim =
                    Simulator::new(identification_network(), SimConfig::paper_default());
                let report = sim.run(&arrivals, &mut s, secs(60));
                black_box(report.completed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_arithmetic, bench_shed_modes_end_to_end);
criterion_main!(benches);
