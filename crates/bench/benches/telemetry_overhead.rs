//! Telemetry overhead: the cost of running the simulator hot path with
//! the full tracing stack engaged (ring recorder + per-period capture +
//! span timing) versus the identical run with telemetry disabled.
//!
//! The budget (DESIGN.md §7) is <5% wall-clock slowdown with the
//! recorder enabled; the recorder itself must never allocate on the hot
//! path — the ring is preallocated at construction.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use streamshed_control::loop_::LoopConfig;
use streamshed_control::strategy::CtrlStrategy;
use streamshed_engine::networks::identification_network;
use streamshed_engine::sim::{SimConfig, Simulator};
use streamshed_engine::telemetry::{SharedRecorder, TracingHook};
use streamshed_engine::time::{secs, SimTime};

const DURATION_S: u64 = 60;
const RATE_TPS: f64 = 300.0;

fn uniform_arrivals(rate: f64, dur_s: f64) -> Vec<SimTime> {
    let n = (rate * dur_s) as u64;
    let gap = 1e6 / rate;
    (0..n)
        .map(|i| SimTime((i as f64 * gap) as u64))
        .collect()
}

fn sim_config(cfg: &LoopConfig) -> SimConfig {
    SimConfig::paper_default()
        .with_period(cfg.period())
        .with_target_delay(cfg.target_delay())
        .with_seed(7)
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead_60s");
    group.sample_size(10);
    let arrivals = uniform_arrivals(RATE_TPS, DURATION_S as f64);
    group.throughput(Throughput::Elements(arrivals.len() as u64));
    let loop_cfg = LoopConfig::paper_default();

    // Baseline: controlled overload run, no telemetry anywhere.
    group.bench_function("bare", |b| {
        b.iter(|| {
            let sim = Simulator::new(identification_network(), sim_config(&loop_cfg));
            let mut hook = CtrlStrategy::from_config(&loop_cfg);
            let report = sim.run(&arrivals, &mut hook, secs(DURATION_S));
            black_box(report.completed)
        });
    });

    // Same run with the full stack: TracingHook capturing one record per
    // period into a shared ring, and the simulator timing shedder spans
    // into the same recorder.
    group.bench_function("traced", |b| {
        b.iter(|| {
            let recorder = SharedRecorder::with_capacity(DURATION_S as usize + 8);
            let sim = Simulator::new(identification_network(), sim_config(&loop_cfg))
                .with_telemetry(recorder.clone());
            let mut hook =
                TracingHook::shared(CtrlStrategy::from_config(&loop_cfg), recorder.clone());
            let report = sim.run(&arrivals, &mut hook, secs(DURATION_S));
            black_box((report.completed, recorder.len()))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
