//! Per-figure regeneration benches: one benchmark per table/figure of the
//! paper, timing the exact code path `reproduce <fig>` executes (the
//! cheap figures at full scale; the multi-run sweeps at reduced scale via
//! their building blocks).
//!
//! The ground-truth regeneration lives in the `reproduce` binary; these
//! benches keep the cost of each experiment visible and guard against
//! performance regressions in the harness.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use streamshed_control::loop_::LoopConfig;
use streamshed_experiments as exp;
use streamshed_experiments::runner::{run_with_strategy, StrategyKind};
use streamshed_workload::{ArrivalTrace, ParetoTrace, WebLikeTrace};

fn bench_identification_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_identification");
    group.sample_size(10);
    group.bench_function("fig05_step_responses", |b| {
        b.iter(|| black_box(exp::fig05::run()))
    });
    group.bench_function("fig06_model_step", |b| b.iter(|| black_box(exp::fig06::run())));
    group.bench_function("fig07_model_sine", |b| b.iter(|| black_box(exp::fig07::run())));
    group.bench_function("fig08_openloop_failures", |b| {
        b.iter(|| black_box(exp::fig08::run()))
    });
    group.finish();
}

fn bench_trace_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_traces");
    group.sample_size(10);
    group.bench_function("fig13_traces", |b| b.iter(|| black_box(exp::fig13::run(7))));
    group.bench_function("fig14_cost_trace", |b| b.iter(|| black_box(exp::fig14::run(7))));
    group.finish();
}

fn bench_headline_figures(c: &mut Criterion) {
    // Figs 12/15/16 share the same underlying runs; bench one strategy
    // run per trace at full scale, and the complete figures once.
    let mut group = c.benchmark_group("figures_headline");
    group.sample_size(10);

    let web = WebLikeTrace::paper_default(7).arrival_times(400.0);
    let cfg = LoopConfig::paper_default();
    group.bench_function("single_run_ctrl_web_400s", |b| {
        b.iter(|| {
            black_box(run_with_strategy(
                StrategyKind::Ctrl,
                &web,
                &cfg,
                400,
                None,
                None,
                7,
            ))
        })
    });
    group.bench_function("single_run_aurora_pareto_400s", |b| {
        let pareto = ParetoTrace::paper_default(7).arrival_times(400.0);
        b.iter(|| {
            black_box(run_with_strategy(
                StrategyKind::Aurora,
                &pareto,
                &cfg,
                400,
                None,
                None,
                7,
            ))
        })
    });
    group.bench_function("fig12_full", |b| b.iter(|| black_box(exp::fig12::run(7))));
    group.bench_function("fig15_full", |b| b.iter(|| black_box(exp::fig15::run(7))));
    group.bench_function("fig16_full", |b| b.iter(|| black_box(exp::fig16::run(7))));
    group.finish();
}

fn bench_sweep_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_sweeps");
    group.sample_size(10);
    group.bench_function("fig17_burstiness_sweep", |b| {
        b.iter(|| black_box(exp::fig17::run(7)))
    });
    group.bench_function("fig18_target_changes", |b| {
        b.iter(|| black_box(exp::fig18::run(7)))
    });
    group.bench_function("fig19_period_sweep", |b| {
        b.iter(|| black_box(exp::fig19::run(7)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_identification_figures,
    bench_trace_figures,
    bench_headline_figures,
    bench_sweep_figures
);
criterion_main!(benches);
