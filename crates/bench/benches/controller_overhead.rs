//! §5.1: controller computational overhead.
//!
//! The paper reports ~20 µs per control period on a 2.4 GHz Pentium 4.
//! These benches measure the difference equation (Eq. 10), the full CTRL
//! period decision (estimation + control + actuation), both heuristics,
//! and the offline design procedures.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use streamshed_control::controller::FeedbackController;
use streamshed_control::loop_::LoopConfig;
use streamshed_control::strategy::{AuroraStrategy, BaselineStrategy, CtrlStrategy};
use streamshed_engine::hook::{ControlHook, PeriodSnapshot};
use streamshed_engine::time::{secs, SimTime};
use streamshed_zdomain::design::{design_for_integrator, pole_placement, DesignSpec};
use streamshed_zdomain::poly::Poly;
use streamshed_zdomain::tf::TransferFunction;

fn snapshot(k: u64) -> PeriodSnapshot {
    PeriodSnapshot {
        k,
        now: SimTime::ZERO + secs(k + 1),
        period: secs(1),
        offered: 400,
        admitted: 300,
        dropped_entry: 100,
        dropped_network: 0,
        completed: 190,
        outstanding: 350 + (k % 50),
        queued_tuples: 350,
        queued_load_us: 350.0 * 5105.0,
        measured_cost_us: Some(5105.0 + (k % 7) as f64 * 10.0),
        mean_delay_ms: Some(1900.0),
        cpu_busy_us: 970_000,
    }
}

fn bench_difference_equation(c: &mut Criterion) {
    c.bench_function("controller/eq10_compute_commit", |b| {
        let mut ctrl = FeedbackController::paper();
        let mut i = 0u64;
        b.iter(|| {
            let e = (i % 100) as f64 / 50.0 - 1.0;
            let u = ctrl.compute(black_box(e), 5.105e-3, 1.0, 0.97);
            ctrl.commit(e, u);
            i += 1;
            u
        });
    });
}

fn bench_full_decisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("period_decision");
    group.bench_function("ctrl", |b| {
        let mut s = CtrlStrategy::from_config(&LoopConfig::paper_default());
        let mut k = 0u64;
        b.iter(|| {
            let d = s.on_period(&snapshot(k));
            k += 1;
            black_box(d)
        });
    });
    group.bench_function("baseline", |b| {
        let mut s = BaselineStrategy::from_config(&LoopConfig::paper_default());
        let mut k = 0u64;
        b.iter(|| {
            let d = s.on_period(&snapshot(k));
            k += 1;
            black_box(d)
        });
    });
    group.bench_function("aurora", |b| {
        let mut s = AuroraStrategy::from_config(&LoopConfig::paper_default());
        let mut k = 0u64;
        b.iter(|| {
            let d = s.on_period(&snapshot(k));
            k += 1;
            black_box(d)
        });
    });
    group.finish();
}

fn bench_design(c: &mut Criterion) {
    let mut group = c.benchmark_group("design");
    group.bench_function("closed_form_integrator", |b| {
        b.iter(|| design_for_integrator(black_box(&DesignSpec::paper_default())))
    });
    group.bench_function("general_pole_placement_2nd_order", |b| {
        let a = &Poly::new(vec![-1.0, 1.0]) * &Poly::new(vec![-0.9, 1.0]);
        let plant = TransferFunction::new(Poly::new(vec![0.1, 0.2]), a).unwrap();
        let desired = Poly::from_real_roots(&[0.5, 0.6, 0.7]);
        b.iter(|| pole_placement(black_box(&plant), black_box(&desired)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_difference_equation,
    bench_full_decisions,
    bench_design
);
criterion_main!(benches);
