//! Ablation benches: wall-clock cost of the design variants whose
//! *quality* is compared by `reproduce ablations`. Keeps the harness
//! honest that no variant wins by virtue of doing less work per period.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use streamshed_control::loop_::{LoopConfig, ShedMode};
use streamshed_experiments::runner::{run_with_strategy, StrategyKind};
use streamshed_workload::{ArrivalTrace, ParetoTrace};
use streamshed_zdomain::design::{design_for_integrator, DesignSpec};

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_runs_120s");
    group.sample_size(10);
    let times = ParetoTrace::builder()
        .mean_rate(300.0)
        .bias(0.5)
        .seed(11)
        .build()
        .arrival_times(120.0);

    let variants: Vec<(&str, LoopConfig)> = vec![
        ("default", LoopConfig::paper_default()),
        (
            "network_shed",
            LoopConfig::paper_default().with_shed_mode(ShedMode::Network),
        ),
        (
            "no_anti_windup",
            LoopConfig::paper_default().with_anti_windup(false),
        ),
        (
            "pole_0.5",
            LoopConfig::paper_default()
                .with_controller(design_for_integrator(&DesignSpec::from_double_pole(0.5))),
        ),
        (
            "pole_0.9",
            LoopConfig::paper_default()
                .with_controller(design_for_integrator(&DesignSpec::from_double_pole(0.9))),
        ),
    ];
    for (name, cfg) in variants {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(run_with_strategy(
                    StrategyKind::Ctrl,
                    &times,
                    &cfg,
                    120,
                    None,
                    None,
                    11,
                ))
            })
        });
    }
    group.finish();
}

fn bench_full_ablation_figure(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_figure");
    group.sample_size(10);
    group.bench_function("reproduce_ablations", |b| {
        b.iter(|| black_box(streamshed_experiments::ablations::run(11)))
    });
    group.finish();
}

criterion_group!(benches, bench_variants, bench_full_ablation_figure);
criterion_main!(benches);
