//! End-to-end performance report for the sharded data plane and the
//! observability plane riding on it.
//!
//! ```text
//! bench [--smoke] [--out PATH] [--check PATH]
//! ```
//!
//! Measures seven things and writes them to `BENCH_PR10.json` (or `--out`):
//!
//! 1. **Engine throughput** — tuples/sec of a 60 s overloaded simulation
//!    (identification network, 400 t/s uniform arrivals, no shedding),
//!    best-of-N wall time, reported next to the PR3 baseline: the sharding
//!    refactor must not slow the single-threaded hot path.
//! 2. **Shedder decision rate** — per-arrival Bernoulli coin flips vs the
//!    geometric-skip sampler vs the hybrid [`EntryShedder`] that picks
//!    between them per commanded α, at several α values.
//! 3. **Offer path** — front-door tuples/sec of per-tuple `offer()` vs
//!    `offer_batch()` at batch sizes {16, 256, 1024} against zero-cost
//!    workers (the drain is memory-speed, so the measured rate is the
//!    ingress path itself), plus the 4-shard *aggregate* spin microbench
//!    (100 ns/tuple of real CPU burn, batch-fed) that the multicore lane
//!    gates at ≥ 10M tuples/sec.
//! 4. **Loopback network ingest** — tuples/sec through a real
//!    `NetServer` over TCP loopback at frame sizes {16, 256, 1024},
//!    reported as a fraction of the in-process `offer_batch` ceiling;
//!    `--check` holds frame-1024 to an RNG-normalized floor plus an
//!    absolute ≥ 1M tuples/sec.
//! 5. **Shard scaling sweep** — aggregate tuples/sec of the real-time
//!    [`ShardedEngine`] at shards ∈ {1, 2, 4, N_cores} with a CPU-burning
//!    (spin) cost model, plus efficiency vs linear scaling. On hosts with
//!    fewer cores than shards the sweep still runs and records the honest
//!    (flat) numbers.
//! 6. **Parallel experiment runner** — wall time of regenerating every
//!    figure with `--jobs 1` vs `--jobs <cores>`.
//! 7. **Observability overhead** — ns/period of feeding the diagnostics
//!    plane, plus the 1-shard engine throughput with the full plane live
//!    (diagnostics + trace ring + HTTP server + the latency truth
//!    plane's 1/64 sojourn sampling and stage spans) vs plain: the plane
//!    must cost < 2% of the PR4 hot-path throughput. This is the
//!    spans-on gate — a plain spawn carries no span slots and zeroes
//!    `sample_every`, so the ratio prices exactly what observability
//!    (spans included) adds.
//!
//! `--smoke` shrinks the repetition counts for CI. `--check PATH` regates
//! against the report in PATH (up to three attempts each, to ride out
//! host-load spikes): the simulator hot path must stay within 20% of the
//! recorded normalized throughput, the 1-shard engine within 40%, the
//! offer path (single and batch-1024, RNG-normalized like the simulator
//! gate) within 40%, and the observed engine must keep ≥ 98% of the
//! plain engine's throughput. Only on hosts with ≥ 4 cores — 4 shards
//! must aggregate ≥ 3× the 1-shard throughput (1.5× against pre-PR8
//! reports), `offer_batch(1024)` must beat single `offer()` by ≥ 3×,
//! and the aggregate spin microbench must sustain ≥ 10M tuples/sec; all
//! three are reported as skipped on smaller hosts, like the `--jobs`
//! note in `BENCH_PR3.json`.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use streamshed_engine::hook::NoShedding;
use streamshed_engine::networks::identification_network;
use streamshed_engine::obs::{ObsOptions, ObsPlane};
use streamshed_engine::rng::{engine_rng, EntryShedder, GeometricSkip, BERNOULLI_ALPHA_MIN};
use streamshed_engine::shard::{Dispatch, ShardConfig, ShardedEngine};
use streamshed_engine::sim::{SimConfig, Simulator};
use streamshed_engine::telemetry::{ControlTrace, EventSink as _, LoopMode, MAX_TRACE_SHARDS};
use streamshed_engine::time::{secs, SimTime};
use streamshed_engine::worker::CostModel;
use streamshed_experiments as exp;
use streamshed_net::server::{NetConfig, NetServer};
use streamshed_net::wire;

/// Single-threaded hot-path throughput recorded by the PR3 harness
/// (`BENCH_PR3.json`, `throughput.after_tuples_per_sec`). The sharding
/// refactor keeps the simulator untouched, so this is the no-regression
/// reference for the same scenario.
const PR3_TUPLES_PER_SEC: f64 = 13_641_463.7;

/// RNG calibration speed recorded alongside [`PR3_TUPLES_PER_SEC`]
/// (`BENCH_PR3.json`, `throughput.calibration_rng_decisions_per_sec`).
/// Lets the report state a host-speed-normalized ratio vs PR3 — the raw
/// ratio conflates code changes with how loaded the host happens to be.
const PR3_CALIBRATION: f64 = 645_818_149.9;

/// Per-tuple spin cost of the shard sweep. Small enough that a sweep
/// point finishes in seconds, large enough that the worker — not the
/// dispatch front door — is the bottleneck.
const SWEEP_COST: Duration = Duration::from_micros(5);

/// 1-shard engine throughput recorded by the PR4 harness
/// (`BENCH_PR4.json`, `sharded.single_shard_tuples_per_sec`) — the
/// hot-path baseline the observability plane is gated against. The
/// gate itself compares plain vs observed on the *same* host in the
/// same run (host speed cancels); this constant is provenance.
const PR4_SINGLE_SHARD_TPS: f64 = 165_225.2;

fn uniform_arrivals(rate: f64, dur_s: f64) -> Vec<SimTime> {
    let n = (rate * dur_s) as u64;
    let gap = 1e6 / rate;
    (0..n).map(|i| SimTime((i as f64 * gap) as u64)).collect()
}

/// Best-of-`reps` wall time for the 60 s overloaded no-shedding run.
/// Returns `(best_wall_s, offered)`.
fn measure_throughput(reps: usize) -> (f64, u64) {
    let arrivals = uniform_arrivals(400.0, 60.0);
    let mut best = f64::INFINITY;
    let mut offered = 0;
    for _ in 0..reps {
        let sim = Simulator::new(identification_network(), SimConfig::paper_default());
        let t0 = Instant::now();
        let report = sim.run(&arrivals, &mut NoShedding, secs(60));
        best = best.min(t0.elapsed().as_secs_f64());
        offered = report.offered;
        black_box(&report);
    }
    (best, offered)
}

/// Host-speed calibration: decisions/sec of a fixed serial RNG loop.
/// Recorded next to the throughput numbers so `--check` can compare
/// *normalized* throughput (tuples/sec relative to raw RNG speed) and
/// stay meaningful across hosts of different speeds or under load.
fn measure_calibration() -> f64 {
    let mut best = 0.0f64;
    for _ in 0..3 {
        best = best.max(measure_bernoulli(20_000_000, 0.5));
    }
    best
}

/// Decisions/sec of the per-arrival Bernoulli coin flip over `n`
/// decisions at drop probability `alpha`.
fn measure_bernoulli(n: u64, alpha: f64) -> f64 {
    use rand::Rng as _;
    let mut rng = engine_rng(11);
    let t0 = Instant::now();
    let mut drops = 0u64;
    for _ in 0..n {
        if rng.gen::<f64>() < alpha {
            drops += 1;
        }
    }
    black_box(drops);
    n as f64 / t0.elapsed().as_secs_f64()
}

/// Decisions/sec of the geometric-skip sampler over `n` decisions.
fn measure_geometric_skip(n: u64, alpha: f64) -> f64 {
    let mut rng = engine_rng(11);
    let mut skip = GeometricSkip::new(alpha, &mut rng);
    let t0 = Instant::now();
    let mut drops = 0u64;
    for _ in 0..n {
        if skip.should_drop(&mut rng) {
            drops += 1;
        }
    }
    black_box(drops);
    n as f64 / t0.elapsed().as_secs_f64()
}

/// Decisions/sec of the hybrid shedder (picks Bernoulli or skip from α).
fn measure_hybrid(n: u64, alpha: f64) -> f64 {
    let mut rng = engine_rng(11);
    let mut shedder = EntryShedder::new(alpha, &mut rng);
    let t0 = Instant::now();
    let mut drops = 0u64;
    for _ in 0..n {
        if shedder.should_drop(&mut rng) {
            drops += 1;
        }
    }
    black_box(drops);
    n as f64 / t0.elapsed().as_secs_f64()
}

/// The shard sweep's engine configuration at a given shard count.
fn sweep_cfg(shards: usize) -> ShardConfig {
    ShardConfig {
        shards,
        cost: SWEEP_COST,
        period: Duration::from_millis(50),
        target_delay: Duration::from_secs(60),
        headroom: 1.0,
        queue_capacity: 4096,
        panic_on_tuple: None,
        cost_model: CostModel::Spin,
        dispatch: Dispatch::RoundRobin,
        sample_every: streamshed_engine::spans::DEFAULT_SAMPLE_EVERY,
        seed: ShardConfig::DEFAULT_SEED,
        pin_cores: false,
    }
}

/// Per-tuple CPU burn of the aggregate spin microbench: small enough
/// that the batched front door can keep 4 shards at ≥ 10M tuples/sec in
/// aggregate, large enough that the workers do real per-tuple work (the
/// zero-cost fast path is *not* taken).
const AGG_SPIN_COST: Duration = Duration::from_nanos(100);

/// Front-door tuples/sec: offers against a 1-shard engine whose worker
/// costs nothing per tuple (`cost = 0` takes the worker's zero-cost fast
/// path), so the drain runs at memory speed and the measured rate is the
/// ingress path — shed pass, dispatch, timestamp, ring push. `batch = 1`
/// uses per-tuple [`ShardedEngine::offer`]; larger batches use
/// [`ShardedEngine::offer_batch`].
fn measure_offer_path(batch: usize, dur: Duration) -> f64 {
    let mut cfg = sweep_cfg(1);
    cfg.cost = Duration::ZERO;
    cfg.queue_capacity = 1 << 16;
    let engine = ShardedEngine::spawn(cfg, NoShedding);
    let t0 = Instant::now();
    let mut accepted = 0u64;
    if batch == 1 {
        // Check the clock every 1024 offers so the loop's own
        // `Instant::now()` does not dominate the per-offer cost.
        let mut i = 0u64;
        loop {
            if i & 1023 == 0 && t0.elapsed() >= dur {
                break;
            }
            i += 1;
            if engine.offer() {
                accepted += 1;
            } else {
                std::thread::yield_now();
            }
        }
    } else {
        while t0.elapsed() < dur {
            let res = engine.offer_batch(batch);
            accepted += res.dispatched;
            if res.dispatched == 0 {
                std::thread::yield_now();
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    black_box(engine.shutdown());
    accepted as f64 / elapsed
}

/// Aggregate tuples/sec of `shards` spin workers each burning
/// [`AGG_SPIN_COST`] of CPU per tuple, fed through the batched front
/// door at batch 1024. Completions over the full wall time including
/// the drain — the number the ≥ 10M multicore gate reads.
fn measure_spin_aggregate(shards: usize, dur: Duration) -> f64 {
    let mut cfg = sweep_cfg(shards);
    cfg.cost = AGG_SPIN_COST;
    cfg.queue_capacity = 1 << 15;
    let engine = ShardedEngine::spawn(cfg, NoShedding);
    let t0 = Instant::now();
    while t0.elapsed() < dur {
        if engine.offer_batch(1024).dispatched == 0 {
            std::thread::yield_now();
        }
    }
    let report = engine.shutdown();
    let elapsed = t0.elapsed().as_secs_f64();
    black_box(&report);
    report.completed as f64 / elapsed
}

/// Loopback network ingest tuples/sec: a real `NetServer` fronting a
/// 1-shard zero-cost engine (the same memory-speed drain as
/// [`measure_offer_path`], so the difference *is* the network plane),
/// driven by one blocking connection sending bursts of 512 unkeyed
/// frames of `batch` tuples and reading the 512 replies back. Unkeyed
/// frames are 16 wire bytes regardless of `batch`, so this measures the
/// protocol + event loop, not memcpy.
fn measure_net_ingest(batch: u32, dur: Duration) -> f64 {
    use std::io::{Read as _, Write as _};
    let mut cfg = sweep_cfg(1);
    cfg.cost = Duration::ZERO;
    cfg.queue_capacity = 1 << 16;
    let engine = std::sync::Arc::new(ShardedEngine::spawn(cfg, NoShedding));
    let net = NetServer::start(
        NetConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..NetConfig::default()
        },
        engine.clone(),
        None,
    )
    .expect("net server binds");
    let mut sock = std::net::TcpStream::connect(net.addr()).expect("loopback connect");
    sock.set_nodelay(true).expect("nodelay");
    // 512 outstanding 16-byte frames (8 KiB in flight) stays far below
    // the server's write-buffer backpressure threshold for the replies.
    const BURST: usize = 512;
    let mut wbuf = Vec::with_capacity(BURST * wire::DATA_HEADER);
    for s in 0..BURST as u64 {
        wire::encode_frame_into(&mut wbuf, s, batch, None);
    }
    let mut rbuf = vec![0u8; BURST * wire::REPLY_LEN];
    let t0 = Instant::now();
    let mut tuples = 0u64;
    while t0.elapsed() < dur {
        sock.write_all(&wbuf).expect("burst write");
        sock.read_exact(&mut rbuf).expect("burst replies");
        let mut off = 0usize;
        while off < rbuf.len() {
            let (reply, used) = wire::decode_reply(&rbuf[off..])
                .expect("well-formed reply")
                .expect("complete reply");
            tuples += u64::from(reply.accepted);
            off += used;
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    drop(sock);
    net.shutdown();
    if let Ok(engine) = std::sync::Arc::try_unwrap(engine) {
        black_box(engine.shutdown());
    }
    tuples as f64 / elapsed
}

/// Feeds `engine` as fast as backpressure allows for `dur` and returns
/// completions over the full wall time including the drain.
fn drive_sharded(engine: ShardedEngine, dur: Duration) -> f64 {
    let t0 = Instant::now();
    while t0.elapsed() < dur {
        if !engine.offer() {
            // Queue full: let the workers run instead of spinning the door.
            std::thread::yield_now();
        }
    }
    let report = engine.shutdown();
    let elapsed = t0.elapsed().as_secs_f64();
    black_box(&report);
    report.completed as f64 / elapsed
}

/// Aggregate tuples/sec of the real-time sharded engine at `shards`
/// shards: one feeder offers as fast as backpressure allows for `dur`,
/// workers burn [`SWEEP_COST`] of CPU per tuple (spin — so aggregate
/// throughput is core-bound, not sleep-overlapped), and the rate is
/// completions over the full wall time including the drain.
fn measure_sharded(shards: usize, dur: Duration) -> f64 {
    drive_sharded(ShardedEngine::spawn(sweep_cfg(shards), NoShedding), dur)
}

/// Same workload with the full observability plane live: per-period
/// diagnostics, the trace ring, the HTTP server accepting on an
/// ephemeral port (nobody polls it — the gate measures the plane's
/// standing cost, not request handling), and the latency truth plane
/// (1/64 sojourn sampling, per-stage span stamps closed at worker
/// retirement).
fn measure_sharded_observed(shards: usize, dur: Duration) -> f64 {
    let options = ObsOptions::for_target(Duration::from_secs(60));
    let engine = ShardedEngine::spawn_observed(sweep_cfg(shards), NoShedding, &options)
        .expect("observability plane starts");
    drive_sharded(engine, dur)
}

/// Nanoseconds per trace of feeding the diagnostics plane directly
/// (ring record + classifier update), measured over `n` synthetic
/// periods that sweep the delay signal through the violation band so
/// the classifier exercises its episode tracking.
fn measure_plane_record(n: u64) -> f64 {
    let mut options = ObsOptions::for_target(Duration::from_millis(250));
    options.http = None;
    let mut plane = ObsPlane::new(&options);
    let mut trace = ControlTrace {
        k: 0,
        time_s: 0.0,
        period_s: 0.05,
        offered: 300,
        admitted: 250,
        dropped_entry: 50,
        dropped_network: 0,
        completed: 240,
        outstanding: 60,
        queued_tuples: 60,
        queued_load_us: 300_000.0,
        measured_cost_us: 5_000.0,
        mean_delay_ms: 200.0,
        cpu_busy_us: 45_000,
        alpha: 0.2,
        shed_load_us: 0.0,
        y_hat_s: 0.2,
        error_s: 0.05,
        u_tps: 260.0,
        cost_est_us: 5_000.0,
        mode: LoopMode::Engaged,
        fault_flags: 0,
        hook_ns: 1_000,
        shards: 1,
        shard_queues: [0; MAX_TRACE_SHARDS],
        adapt_cost_us: f64::NAN,
        adapt_generation: 0,
        adapt_swaps: 0,
        adapt_arm: -1,
    };
    let t0 = Instant::now();
    for k in 0..n {
        trace.k = k;
        trace.time_s = k as f64 * 0.05;
        // Sweep y through [50, 450] ms so violations start and end.
        let y_ms = 50.0 + 400.0 * ((k % 64) as f64 / 63.0);
        trace.mean_delay_ms = y_ms;
        trace.y_hat_s = y_ms / 1e3;
        trace.error_s = 0.25 - trace.y_hat_s;
        trace.alpha = (0.1 + 0.8 * ((k % 7) as f64 / 6.0)).clamp(0.0, 1.0);
        plane.record(&trace);
    }
    let elapsed = t0.elapsed();
    black_box(plane.health());
    elapsed.as_nanos() as f64 / n as f64
}

/// The shard counts to sweep: {1, 2, 4, N_cores}, deduplicated, sorted.
fn sweep_shards(cores: usize) -> Vec<usize> {
    let mut counts = vec![1, 2, 4, cores.max(1)];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Regenerates every figure with the given worker count and returns the
/// wall time. Results are discarded (nothing is written to disk).
fn measure_runner(jobs: usize, seed: u64) -> f64 {
    const NAMES: [&str; 16] = [
        "fig5", "fig6", "fig7", "fig8", "fig12", "fig13", "fig14", "fig15", "fig16",
        "fig17", "fig18", "fig19", "overhead", "ablations", "extensions", "faults",
    ];
    let t0 = Instant::now();
    let figs = exp::parallel::run_indexed(NAMES.len(), jobs, |i| match NAMES[i] {
        "fig5" => exp::fig05::run(),
        "fig6" => exp::fig06::run(),
        "fig7" => exp::fig07::run(),
        "fig8" => exp::fig08::run(),
        "fig12" => exp::fig12::run(seed),
        "fig13" => exp::fig13::run(seed),
        "fig14" => exp::fig14::run(seed),
        "fig15" => exp::fig15::run(seed),
        "fig16" => exp::fig16::run(seed),
        "fig17" => exp::fig17::run(seed),
        "fig18" => exp::fig18::run(seed),
        "fig19" => exp::fig19::run(seed),
        "overhead" => exp::overhead::run(),
        "ablations" => exp::ablations::run(seed),
        "extensions" => exp::extensions::run(seed),
        "faults" => exp::faults::run(seed),
        other => unreachable!("unknown figure {other}"),
    });
    black_box(&figs);
    t0.elapsed().as_secs_f64()
}

fn main() {
    let mut smoke = false;
    let mut out = PathBuf::from("BENCH_PR10.json");
    let mut check: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            "--check" => check = Some(PathBuf::from(args.next().expect("--check needs a path"))),
            "--help" | "-h" => {
                eprintln!("usage: bench [--smoke] [--out PATH] [--check PATH]");
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check {
        run_check(&path);
        return;
    }

    let reps = if smoke { 5 } else { 20 };
    let decisions: u64 = if smoke { 10_000_000 } else { 100_000_000 };
    let sweep_dur = Duration::from_secs(if smoke { 1 } else { 3 });
    let alphas = [0.005, 0.01, 0.05, 0.1];
    let cores = host_cores();

    eprintln!("[1/7] engine throughput (best of {reps})...");
    let (best_wall, offered) = measure_throughput(reps);
    let after_tps = offered as f64 / best_wall;
    let calibration = measure_calibration();

    eprintln!("[2/7] shedder decision rate ({decisions} decisions per alpha)...");
    let per_alpha: Vec<serde_json::Value> = alphas
        .iter()
        .map(|&alpha| {
            let bernoulli = measure_bernoulli(decisions, alpha);
            let geometric = measure_geometric_skip(decisions, alpha);
            let hybrid = measure_hybrid(decisions, alpha);
            let picks = if alpha >= BERNOULLI_ALPHA_MIN {
                "bernoulli"
            } else {
                "skip"
            };
            serde_json::json!({
                "alpha": alpha,
                "bernoulli_decisions_per_sec": bernoulli,
                "geometric_skip_decisions_per_sec": geometric,
                "hybrid_decisions_per_sec": hybrid,
                "hybrid_picks": picks,
                "skip_speedup_vs_bernoulli": geometric / bernoulli,
                "hybrid_speedup_vs_bernoulli": hybrid / bernoulli,
                "hybrid_win_vs_best_fixed": hybrid / bernoulli.max(geometric),
            })
        })
        .collect();

    let offer_dur = Duration::from_secs(if smoke { 1 } else { 2 });
    eprintln!("[3/7] offer path, single vs batched ({} s per point)...", offer_dur.as_secs());
    let single_offer_tps = measure_offer_path(1, offer_dur);
    eprintln!("    offer(): {single_offer_tps:.0} tuples/sec");
    let batch_sizes = [16usize, 256, 1024];
    let mut batch_tps = Vec::new();
    for &b in &batch_sizes {
        let tps = measure_offer_path(b, offer_dur);
        eprintln!("    offer_batch({b}): {tps:.0} tuples/sec ({:.2}x)", tps / single_offer_tps);
        batch_tps.push((b, tps));
    }
    let spin_shards = 4usize;
    let agg_tps = measure_spin_aggregate(spin_shards, offer_dur);
    eprintln!(
        "    aggregate spin ({spin_shards} shards @ {} ns/tuple): {agg_tps:.0} tuples/sec",
        AGG_SPIN_COST.as_nanos()
    );

    eprintln!(
        "[4/7] loopback network ingest ({} s per frame size)...",
        offer_dur.as_secs()
    );
    let mut net_points = Vec::new();
    for (&b, &(_, ceiling)) in batch_sizes.iter().zip(&batch_tps) {
        let tps = measure_net_ingest(b as u32, offer_dur);
        eprintln!(
            "    net_ingest(frame={b}): {tps:.0} tuples/sec ({:.1}% of in-process ceiling)",
            100.0 * tps / ceiling
        );
        net_points.push((b, tps, tps / ceiling));
    }

    eprintln!("[5/7] shard scaling sweep ({} s per point, {cores} cores)...", sweep_dur.as_secs());
    let counts = sweep_shards(cores);
    let mut sweep_points = Vec::new();
    let mut tps_by_count = std::collections::BTreeMap::new();
    for &shards in &counts {
        let tps = measure_sharded(shards, sweep_dur);
        eprintln!("    {shards} shard(s): {tps:.0} tuples/sec");
        tps_by_count.insert(shards, tps);
        sweep_points.push((shards, tps));
    }
    let single = tps_by_count[&1];
    let sharded_points: Vec<serde_json::Value> = sweep_points
        .iter()
        .map(|&(shards, tps)| {
            serde_json::json!({
                "shards": shards,
                "tuples_per_sec": tps,
                "speedup_vs_1_shard": tps / single,
                "efficiency_vs_linear": tps / (single * shards as f64),
            })
        })
        .collect();

    let jobs_n = exp::parallel::default_jobs();
    eprintln!("[6/7] experiment runner, --jobs 1 vs --jobs {jobs_n}...");
    let wall_1 = measure_runner(1, 7);
    let wall_n = measure_runner(jobs_n, 7);

    let plane_n: u64 = if smoke { 200_000 } else { 2_000_000 };
    eprintln!("[7/7] observability overhead ({plane_n} plane records, plain vs observed engine)...");
    let record_ns = measure_plane_record(plane_n);
    let (mut plain_tps, mut observed_tps) = (0.0f64, 0.0f64);
    for _ in 0..if smoke { 1 } else { 2 } {
        plain_tps = plain_tps.max(measure_sharded(1, sweep_dur));
        observed_tps = observed_tps.max(measure_sharded_observed(1, sweep_dur));
    }
    let observed_over_plain = observed_tps / plain_tps;
    eprintln!(
        "    plane record: {record_ns:.0} ns/period; 1 shard plain {plain_tps:.0} vs \
         observed {observed_tps:.0} tuples/sec ({:.2}% overhead)",
        (1.0 - observed_over_plain) * 100.0
    );

    let generated_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let throughput = serde_json::json!({
        "scenario": "identification network, NoShedding, 400 t/s uniform arrivals, 60 s sim",
        "offered_tuples": offered,
        "reps": reps,
        "metric": "offered tuples / best wall-clock run",
        "before_tuples_per_sec": PR3_TUPLES_PER_SEC,
        "before_provenance": "BENCH_PR3.json throughput.after_tuples_per_sec (same harness); the sharding refactor must not regress the single-threaded hot path",
        "after_best_wall_s": best_wall,
        "after_tuples_per_sec": after_tps,
        "ratio_vs_pr3": after_tps / PR3_TUPLES_PER_SEC,
        "normalized_ratio_vs_pr3": (after_tps / calibration) / (PR3_TUPLES_PER_SEC / PR3_CALIBRATION),
        "calibration_rng_decisions_per_sec": calibration,
        "pr3_calibration_rng_decisions_per_sec": PR3_CALIBRATION,
    });
    let shedder = serde_json::json!({
        "decisions_per_alpha": decisions,
        "bernoulli_alpha_min": BERNOULLI_ALPHA_MIN,
        "per_alpha": per_alpha,
        "note": "skip sampling amortises one RNG draw + one ln per drop, so it wins at small alpha and loses when drops are frequent (BENCH_PR3 measured 0.86x at alpha=0.05, 0.49x at 0.1); the hybrid picks the sampler per control period from the commanded alpha, so it should track the better column at every alpha",
    });
    let offer_path = serde_json::json!({
        "scenario": format!(
            "1-shard ShardedEngine, zero-cost workers (memory-speed drain), {} s per point: \
             front-door tuples/sec of offer() vs offer_batch(); aggregate spin point is \
             {} shards @ {} ns/tuple of real CPU burn, fed at batch 1024",
            offer_dur.as_secs(), spin_shards, AGG_SPIN_COST.as_nanos()
        ),
        "host_cores": cores,
        "single_offer_tuples_per_sec": single_offer_tps,
        "batch": batch_tps.iter().map(|&(b, tps)| serde_json::json!({
            "batch": b,
            "tuples_per_sec": tps,
            "speedup_vs_single": tps / single_offer_tps,
        })).collect::<Vec<_>>(),
        "batch_1024_speedup_vs_single": batch_tps.last().map(|&(_, tps)| tps / single_offer_tps),
        "aggregate_spin_shards": spin_shards,
        "aggregate_spin_cost_ns": AGG_SPIN_COST.as_nanos() as u64,
        "aggregate_spin_tuples_per_sec": agg_tps,
        "per_shard_spin_tuples_per_sec": agg_tps / spin_shards as f64,
        "calibration_rng_decisions_per_sec": calibration,
        "gate": "offer path RNG-normalized within 40% of recorded; on hosts with >= 4 cores \
                 additionally batch_1024 >= 3x single offer() and aggregate spin >= 10M \
                 tuples/sec (checked by --check)",
        "note": "one shed pass, one timestamp, one routing resolution, and one ring \
                 release/acquire pair per batch — the per-tuple path pays each of those \
                 per tuple; on a 1-core host the aggregate spin point is core-bound and \
                 legitimately far below the multicore gate",
    });
    let net_ingest = serde_json::json!({
        "scenario": format!(
            "loopback TCP, 1 worker NetServer over the same zero-cost 1-shard engine as \
             offer_path, one connection pipelining 512-frame bursts of unkeyed frames, \
             {} s per point; unkeyed frames are 16 wire bytes at any count",
            offer_dur.as_secs()
        ),
        "host_cores": cores,
        "frames": net_points.iter().map(|&(b, tps, frac)| serde_json::json!({
            "frame_tuples": b,
            "tuples_per_sec": tps,
            "fraction_of_inprocess_ceiling": frac,
        })).collect::<Vec<_>>(),
        "frame_1024_tuples_per_sec": net_points.last().map(|&(_, tps, _)| tps),
        "calibration_rng_decisions_per_sec": calibration,
        "gate": "frame-1024 loopback ingest RNG-normalized within 40% of recorded, and \
                 >= 1M tuples/sec absolute on any host (checked by --check)",
        "note": "the fraction-of-ceiling column isolates the network plane's cost: \
                 syscalls, poll wakeups, frame decode, and reply encode amortized over \
                 the frame's tuple count — larger frames approach the in-process rate",
    });
    let sharded = serde_json::json!({
        "scenario": format!(
            "real-time ShardedEngine, NoShedding, spin cost {} us/tuple, round-robin dispatch, {} s per point, completions / wall incl. drain",
            SWEEP_COST.as_micros(), sweep_dur.as_secs()
        ),
        "host_cores": cores,
        "sweep": sharded_points,
        "single_shard_tuples_per_sec": single,
        "note": "spin cost holds the CPU, so aggregate throughput is core-bound: hosts with fewer cores than shards legitimately report ~1.0x; the >=3x @ 4 shards gate in --check only applies when host_cores >= 4",
    });
    let parallel_runner = serde_json::json!({
        "figures": 16,
        "jobs_1_wall_s": wall_1,
        "jobs_n": jobs_n,
        "jobs_n_wall_s": wall_n,
        "speedup": wall_1 / wall_n,
        "note": "single-core hosts report jobs_n = 1 and ~1.0x; figure outputs are byte-identical for any jobs value",
    });
    let diagnostics = serde_json::json!({
        "scenario": format!(
            "1-shard ShardedEngine, NoShedding, spin cost {} us/tuple, {} s per point: \
             plain spawn vs spawn_observed (diagnostics + trace ring + HTTP server on an \
             ephemeral port, unpolled, plus the latency truth plane: 1/{} sojourn \
             sampling and per-stage span stamps)",
            SWEEP_COST.as_micros(), sweep_dur.as_secs(),
            streamshed_engine::spans::DEFAULT_SAMPLE_EVERY
        ),
        "plane_record_ns_per_period": record_ns,
        "plane_records_measured": plane_n,
        "plain_tuples_per_sec": plain_tps,
        "observed_tuples_per_sec": observed_tps,
        "observed_over_plain": observed_over_plain,
        "overhead_pct": (1.0 - observed_over_plain) * 100.0,
        "span_sample_every": streamshed_engine::spans::DEFAULT_SAMPLE_EVERY,
        "pr4_single_shard_tuples_per_sec": PR4_SINGLE_SHARD_TPS,
        "pr4_provenance": "BENCH_PR4.json sharded.single_shard_tuples_per_sec (same harness); the gate compares plain vs observed on this host so host speed cancels",
        "gate": "observed_over_plain >= 0.98 with spans on (checked by --check)",
        "note": "the diagnostics plane runs once per 50 ms control period on the controller thread; the span layer's per-tuple cost is one atomic counter walk per admission batch plus two clock reads per sampled tuple (1/64), and a plain spawn pays neither",
    });
    let report = serde_json::json!({
        "bench": "PR10 latency truth plane: per-stage spans, sampled sojourns, and /profile riding the observed engine",
        "mode": if smoke { "smoke" } else { "full" },
        "generated_unix": generated_unix,
        "host_cores": cores,
        "throughput": throughput,
        "shedder": shedder,
        "offer_path": offer_path,
        "net_ingest": net_ingest,
        "sharded": sharded,
        "parallel_runner": parallel_runner,
        "diagnostics": diagnostics,
    });
    let body = serde_json::to_string_pretty(&report).unwrap();
    std::fs::write(&out, format!("{body}\n")).unwrap_or_else(|e| {
        eprintln!("failed to write {}: {e}", out.display());
        std::process::exit(1);
    });
    println!("{body}");
    println!("report written to {}", out.display());
}

/// The offer-path gates of `--check` (PR8+ reports only): RNG-normalized
/// no-regression floors for single `offer()` and `offer_batch(1024)`
/// front-door throughput, plus — on hosts with ≥ 4 cores — the ≥ 3×
/// batch speedup and the ≥ 10M tuples/sec aggregate spin microbench.
fn check_offer_path(
    report: &serde_json::Value,
    path: &std::path::Path,
    recorded_cal: f64,
    cal: f64,
    cores: usize,
    dur: Duration,
) {
    let recorded_single = report_f64(report, path, "offer_path.single_offer_tuples_per_sec");
    let recorded_batch = report_f64(report, path, "offer_path.batch_1024_speedup_vs_single")
        * recorded_single;
    let norm = recorded_cal / cal;
    let (mut single, mut batch) = (0.0f64, 0.0f64);
    let mut ok = false;
    for attempt in 1..=3 {
        single = measure_offer_path(1, dur);
        batch = measure_offer_path(1024, dur);
        println!(
            "offer-path gate, attempt {attempt}: offer() {single:.0} (normalized {:.0}, \
             floor {:.0}), offer_batch(1024) {batch:.0} (normalized {:.0}, floor {:.0})",
            single * norm,
            recorded_single * 0.6,
            batch * norm,
            recorded_batch * 0.6,
        );
        if single * norm >= recorded_single * 0.6 && batch * norm >= recorded_batch * 0.6 {
            println!("OK: offer path within 40% of the recorded baseline (RNG-normalized)");
            ok = true;
            break;
        }
    }
    if !ok {
        eprintln!("FAIL: offer-path throughput regressed more than 40% vs {}", path.display());
        std::process::exit(1);
    }

    if cores < 4 {
        println!(
            "batch-speedup and aggregate-spin gates skipped: host has {cores} core(s) < 4 \
             (see offer_path.note in the report)"
        );
        return;
    }
    let speedup = batch / single;
    if speedup < 3.0 {
        eprintln!("FAIL: offer_batch(1024) only {speedup:.2}x single offer() (need >= 3x)");
        std::process::exit(1);
    }
    println!("OK: offer_batch(1024) is {speedup:.2}x single offer() (need >= 3x)");
    ok = false;
    for attempt in 1..=3 {
        let agg = measure_spin_aggregate(4, dur);
        println!(
            "aggregate-spin gate, attempt {attempt}: {agg:.0} tuples/sec (need >= 10000000)"
        );
        if agg >= 10_000_000.0 {
            println!("OK: 4-shard aggregate spin microbench sustains >= 10M tuples/sec");
            ok = true;
            break;
        }
    }
    if !ok {
        eprintln!("FAIL: aggregate spin microbench below 10M tuples/sec on a {cores}-core host");
        std::process::exit(1);
    }
}

/// The loopback ingest gate of `--check` (PR9+ reports only): frame-1024
/// network throughput must hold an RNG-normalized 60% of the recorded
/// value *and* an absolute ≥ 1M tuples/sec on any host — the acceptance
/// floor for a single connection on the 1-core reference machine.
fn check_net_ingest(
    report: &serde_json::Value,
    path: &std::path::Path,
    recorded_cal: f64,
    cal: f64,
    dur: Duration,
) {
    const ABS_FLOOR: f64 = 1_000_000.0;
    let recorded = report_f64(report, path, "net_ingest.frame_1024_tuples_per_sec");
    let norm = recorded_cal / cal;
    let floor = recorded * 0.6;
    let mut ok = false;
    for attempt in 1..=3 {
        let tps = measure_net_ingest(1024, dur);
        println!(
            "net-ingest gate, attempt {attempt}: recorded {recorded:.0} tuples/sec, \
             measured {tps:.0} (normalized {:.0}), floor (60%) {floor:.0}, \
             absolute floor {ABS_FLOOR:.0}",
            tps * norm
        );
        if tps * norm >= floor && tps >= ABS_FLOOR {
            println!(
                "OK: loopback frame-1024 ingest within 40% of recorded and >= 1M tuples/sec"
            );
            ok = true;
            break;
        }
    }
    if !ok {
        eprintln!(
            "FAIL: loopback network ingest below the recorded baseline or the 1M \
             tuples/sec floor vs {}",
            path.display()
        );
        std::process::exit(1);
    }
}

/// Reads `field` (a dotted path) as f64 from the report, or exits.
fn report_f64(report: &serde_json::Value, path: &std::path::Path, dotted: &str) -> f64 {
    let mut v = report;
    for key in dotted.split('.') {
        v = &v[key];
    }
    v.as_f64().unwrap_or_else(|| {
        eprintln!("{} lacks {dotted}", path.display());
        std::process::exit(1);
    })
}

/// Regression gates against a recorded report:
///
/// 1. Simulator hot path: normalized throughput ≥ 80% of recorded.
/// 2. 1-shard engine: normalized throughput ≥ 60% of recorded (the
///    wall-clock engine sees more scheduler noise than the simulator,
///    hence the looser floor).
/// 3. 4-shard scaling ≥ 3× the 1-shard measurement for PR8+ reports
///    (1.5× against pre-batching reports) — only on hosts with ≥ 4
///    cores; reported as skipped otherwise.
/// 4. Offer path (only for reports carrying an `offer_path` section):
///    single `offer()` and `offer_batch(1024)` normalized throughput
///    ≥ 60% of recorded; on hosts with ≥ 4 cores additionally
///    batch-1024 ≥ 3× single and the aggregate spin microbench ≥ 10M
///    tuples/sec.
/// 5. Observability overhead: the observed 1-shard engine keeps ≥ 98%
///    of the plain engine's throughput, both measured fresh on this
///    host (only for reports carrying a `diagnostics` section). The
///    observed spawn runs with the latency truth plane live (span
///    slots + 1/64 sojourn sampling) while the plain spawn zeroes
///    `sample_every`, so this is also the span-overhead check.
fn run_check(path: &std::path::Path) {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        std::process::exit(1);
    });
    let report: serde_json::Value = serde_json::from_str(&body).unwrap_or_else(|e| {
        eprintln!("{} is not valid JSON: {e}", path.display());
        std::process::exit(1);
    });
    let recorded = report_f64(&report, path, "throughput.after_tuples_per_sec");
    let recorded_cal = report_f64(&report, path, "throughput.calibration_rng_decisions_per_sec");

    // The host running the check is not the host that recorded the
    // baseline (and either may be under load), so compare *normalized*
    // throughput: tuples/sec scaled by the ratio of RNG calibration
    // speeds. Up to three attempts — a genuine code regression fails all
    // of them, a transient load spike only costs a retry.
    let floor = recorded * 0.8;
    let mut cal = measure_calibration();
    let mut ok = false;
    for attempt in 1..=3 {
        let (best_wall, offered) = measure_throughput(10);
        let measured = offered as f64 / best_wall;
        let normalized = measured * (recorded_cal / cal);
        println!(
            "sim gate, attempt {attempt}: recorded {recorded:.0} tuples/sec, measured \
             {measured:.0} (normalized {normalized:.0} at host-speed ratio {:.2}), \
             floor (80%) {floor:.0}",
            cal / recorded_cal
        );
        if normalized >= floor {
            println!("OK: simulator throughput within 20% of the recorded baseline");
            ok = true;
            break;
        }
        cal = measure_calibration();
    }
    if !ok {
        eprintln!("FAIL: simulator throughput regressed more than 20% vs {}", path.display());
        std::process::exit(1);
    }

    // Gate 2 + 3 only exist for reports that carry a sharded section
    // (BENCH_PR3.json predates it — checking against it still works).
    if report.get("sharded").is_none() {
        println!("no sharded section in {}; shard gates skipped", path.display());
        return;
    }
    let recorded_single = report_f64(&report, path, "sharded.single_shard_tuples_per_sec");
    let single_floor = recorded_single * 0.6;
    let dur = Duration::from_secs(1);
    let mut single = 0.0f64;
    ok = false;
    for attempt in 1..=3 {
        single = measure_sharded(1, dur);
        let normalized = single * (recorded_cal / cal);
        println!(
            "1-shard gate, attempt {attempt}: recorded {recorded_single:.0} tuples/sec, \
             measured {single:.0} (normalized {normalized:.0}), floor (60%) {single_floor:.0}"
        );
        if normalized >= single_floor {
            println!("OK: 1-shard engine throughput within 40% of the recorded baseline");
            ok = true;
            break;
        }
    }
    if !ok {
        eprintln!("FAIL: 1-shard throughput regressed more than 40% vs {}", path.display());
        std::process::exit(1);
    }

    // PR8+ reports (those carrying an offer_path section) demonstrate
    // real batched multicore scaling and are held to 3×; older reports
    // keep their original 1.5× contract.
    let scaling_floor = if report.get("offer_path").is_some() { 3.0 } else { 1.5 };
    let cores = host_cores();
    if cores < 4 {
        println!(
            "scaling gate skipped: host has {cores} core(s) < 4 (spin workers cannot \
             scale without cores; see sharded.note in the report)"
        );
    } else {
        ok = false;
        for attempt in 1..=3 {
            let four = measure_sharded(4, dur);
            let speedup = four / single;
            println!(
                "scaling gate, attempt {attempt}: 4 shards {four:.0} vs 1 shard {single:.0} \
                 tuples/sec = {speedup:.2}x (need >= {scaling_floor}x)"
            );
            if speedup >= scaling_floor {
                println!(
                    "OK: 4-shard aggregate throughput scales >= {scaling_floor}x on a \
                     {cores}-core host"
                );
                ok = true;
                break;
            }
            // A fresh 1-shard sample in case the first was inflated.
            single = measure_sharded(1, dur);
        }
        if !ok {
            eprintln!("FAIL: 4-shard scaling below {scaling_floor}x on a {cores}-core host");
            std::process::exit(1);
        }
    }

    if report.get("offer_path").is_some() {
        check_offer_path(&report, path, recorded_cal, cal, cores, dur);
    } else {
        println!("no offer_path section in {}; offer-path gates skipped", path.display());
    }

    if report.get("net_ingest").is_some() {
        check_net_ingest(&report, path, recorded_cal, cal, dur);
    } else {
        println!("no net_ingest section in {}; net-ingest gate skipped", path.display());
    }

    // Gate 4 only exists for reports that carry a diagnostics section
    // (BENCH_PR4.json predates the observability plane).
    if report.get("diagnostics").is_none() {
        println!("no diagnostics section in {}; observability gate skipped", path.display());
        return;
    }
    ok = false;
    for attempt in 1..=3 {
        let plain = measure_sharded(1, dur);
        let observed = measure_sharded_observed(1, dur);
        let ratio = observed / plain;
        println!(
            "observability gate, attempt {attempt}: plain {plain:.0} vs observed (spans on) \
             {observed:.0} tuples/sec = {ratio:.3}x (need >= 0.98)"
        );
        if ratio >= 0.98 {
            println!(
                "OK: the live observability plane (span sampling included) costs < 2% of \
                 hot-path throughput"
            );
            ok = true;
            break;
        }
    }
    if !ok {
        eprintln!(
            "FAIL: observability plane (span sampling included) costs more than 2% of \
             hot-path throughput"
        );
        std::process::exit(1);
    }
}
