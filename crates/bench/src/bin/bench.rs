//! End-to-end performance report for the hot-path engine overhaul.
//!
//! ```text
//! bench [--smoke] [--out PATH] [--check PATH]
//! ```
//!
//! Measures three things and writes them to `BENCH_PR3.json` (or `--out`):
//!
//! 1. **Engine throughput** — tuples/sec of a 60 s overloaded simulation
//!    (identification network, 400 t/s uniform arrivals, no shedding),
//!    best-of-N wall time, reported next to the pre-overhaul baseline.
//! 2. **Shedder decision rate** — per-arrival Bernoulli coin flips vs the
//!    geometric-skip sampler at the same drop probability.
//! 3. **Parallel experiment runner** — wall time of regenerating every
//!    figure with `--jobs 1` vs `--jobs <cores>`.
//!
//! `--smoke` shrinks the repetition counts for CI. `--check PATH` reruns
//! the throughput measurement (up to three attempts, to ride out host-load
//! spikes) and exits non-zero if every attempt lands below 80% of the
//! `after_tuples_per_sec` recorded in PATH (the >20% regression gate).

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;
use streamshed_engine::hook::NoShedding;
use streamshed_engine::networks::identification_network;
use streamshed_engine::rng::{engine_rng, GeometricSkip};
use streamshed_engine::sim::{SimConfig, Simulator};
use streamshed_engine::time::{secs, SimTime};
use streamshed_experiments as exp;

/// Pre-overhaul throughput on the benchmark scenario, measured at commit
/// 8436e73 (the parent of this change) with this same harness, best-of-20,
/// interleaved with the post-overhaul runs on the same machine so both
/// numbers saw identical load. Units: tuples/sec.
const BASELINE_TUPLES_PER_SEC: f64 = 5.5e6;

fn uniform_arrivals(rate: f64, dur_s: f64) -> Vec<SimTime> {
    let n = (rate * dur_s) as u64;
    let gap = 1e6 / rate;
    (0..n).map(|i| SimTime((i as f64 * gap) as u64)).collect()
}

/// Best-of-`reps` wall time for the 60 s overloaded no-shedding run.
/// Returns `(best_wall_s, offered)`.
fn measure_throughput(reps: usize) -> (f64, u64) {
    let arrivals = uniform_arrivals(400.0, 60.0);
    let mut best = f64::INFINITY;
    let mut offered = 0;
    for _ in 0..reps {
        let sim = Simulator::new(identification_network(), SimConfig::paper_default());
        let t0 = Instant::now();
        let report = sim.run(&arrivals, &mut NoShedding, secs(60));
        best = best.min(t0.elapsed().as_secs_f64());
        offered = report.offered;
        black_box(&report);
    }
    (best, offered)
}

/// Host-speed calibration: decisions/sec of a fixed serial RNG loop.
/// Recorded next to the throughput number so `--check` can compare
/// *normalized* throughput (engine tuples/sec relative to raw RNG speed)
/// and stay meaningful across hosts of different speeds or under load.
fn measure_calibration() -> f64 {
    let mut best = 0.0f64;
    for _ in 0..3 {
        best = best.max(measure_bernoulli(20_000_000, 0.5));
    }
    best
}

/// Decisions/sec of the per-arrival Bernoulli coin flip (the pre-overhaul
/// entry shedder) over `n` decisions at drop probability `alpha`.
fn measure_bernoulli(n: u64, alpha: f64) -> f64 {
    use rand::Rng as _;
    let mut rng = engine_rng(11);
    let t0 = Instant::now();
    let mut drops = 0u64;
    for _ in 0..n {
        if rng.gen::<f64>() < alpha {
            drops += 1;
        }
    }
    black_box(drops);
    n as f64 / t0.elapsed().as_secs_f64()
}

/// Decisions/sec of the geometric-skip sampler over `n` decisions.
fn measure_geometric_skip(n: u64, alpha: f64) -> f64 {
    let mut rng = engine_rng(11);
    let mut skip = GeometricSkip::new(alpha, &mut rng);
    let t0 = Instant::now();
    let mut drops = 0u64;
    for _ in 0..n {
        if skip.should_drop(&mut rng) {
            drops += 1;
        }
    }
    black_box(drops);
    n as f64 / t0.elapsed().as_secs_f64()
}

/// Regenerates every figure with the given worker count and returns the
/// wall time. Results are discarded (nothing is written to disk).
fn measure_runner(jobs: usize, seed: u64) -> f64 {
    const NAMES: [&str; 16] = [
        "fig5", "fig6", "fig7", "fig8", "fig12", "fig13", "fig14", "fig15", "fig16",
        "fig17", "fig18", "fig19", "overhead", "ablations", "extensions", "faults",
    ];
    let t0 = Instant::now();
    let figs = exp::parallel::run_indexed(NAMES.len(), jobs, |i| match NAMES[i] {
        "fig5" => exp::fig05::run(),
        "fig6" => exp::fig06::run(),
        "fig7" => exp::fig07::run(),
        "fig8" => exp::fig08::run(),
        "fig12" => exp::fig12::run(seed),
        "fig13" => exp::fig13::run(seed),
        "fig14" => exp::fig14::run(seed),
        "fig15" => exp::fig15::run(seed),
        "fig16" => exp::fig16::run(seed),
        "fig17" => exp::fig17::run(seed),
        "fig18" => exp::fig18::run(seed),
        "fig19" => exp::fig19::run(seed),
        "overhead" => exp::overhead::run(),
        "ablations" => exp::ablations::run(seed),
        "extensions" => exp::extensions::run(seed),
        "faults" => exp::faults::run(seed),
        other => unreachable!("unknown figure {other}"),
    });
    black_box(&figs);
    t0.elapsed().as_secs_f64()
}

fn main() {
    let mut smoke = false;
    let mut out = PathBuf::from("BENCH_PR3.json");
    let mut check: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            "--check" => check = Some(PathBuf::from(args.next().expect("--check needs a path"))),
            "--help" | "-h" => {
                eprintln!("usage: bench [--smoke] [--out PATH] [--check PATH]");
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check {
        run_check(&path);
        return;
    }

    let reps = if smoke { 5 } else { 20 };
    let decisions: u64 = if smoke { 10_000_000 } else { 100_000_000 };
    let alphas = [0.01, 0.05, 0.1];

    eprintln!("[1/3] engine throughput (best of {reps})...");
    let (best_wall, offered) = measure_throughput(reps);
    let after_tps = offered as f64 / best_wall;
    let calibration = measure_calibration();

    eprintln!("[2/3] shedder decision rate ({decisions} decisions per alpha)...");
    let per_alpha: Vec<serde_json::Value> = alphas
        .iter()
        .map(|&alpha| {
            let bernoulli = measure_bernoulli(decisions, alpha);
            let geometric = measure_geometric_skip(decisions, alpha);
            serde_json::json!({
                "alpha": alpha,
                "bernoulli_decisions_per_sec": bernoulli,
                "geometric_skip_decisions_per_sec": geometric,
                "speedup": geometric / bernoulli,
            })
        })
        .collect();

    let jobs_n = exp::parallel::default_jobs();
    eprintln!("[3/3] experiment runner, --jobs 1 vs --jobs {jobs_n}...");
    let wall_1 = measure_runner(1, 7);
    let wall_n = measure_runner(jobs_n, 7);

    let generated_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let throughput = serde_json::json!({
        "scenario": "identification network, NoShedding, 400 t/s uniform arrivals, 60 s sim",
        "offered_tuples": offered,
        "reps": reps,
        "metric": "offered tuples / best wall-clock run",
        "before_tuples_per_sec": BASELINE_TUPLES_PER_SEC,
        "before_provenance": "commit 8436e73 (pre-overhaul), same harness, best-of-20 interleaved on the same machine",
        "after_best_wall_s": best_wall,
        "after_tuples_per_sec": after_tps,
        "speedup": after_tps / BASELINE_TUPLES_PER_SEC,
        "calibration_rng_decisions_per_sec": calibration,
    });
    let shedder = serde_json::json!({
        "decisions_per_alpha": decisions,
        "per_alpha": per_alpha,
        "note": "skip sampling amortises one RNG draw + one ln per drop, so it wins in the small-alpha regime (mild overload, the common case) and loses when drops are frequent; inside the engine it additionally removes the per-arrival RNG call from the admission loop",
    });
    let parallel_runner = serde_json::json!({
        "figures": 16,
        "jobs_1_wall_s": wall_1,
        "jobs_n": jobs_n,
        "jobs_n_wall_s": wall_n,
        "speedup": wall_1 / wall_n,
        "note": "single-core hosts report jobs_n = 1 and ~1.0x; figure outputs are byte-identical for any jobs value",
    });
    let report = serde_json::json!({
        "bench": "PR3 hot-path engine overhaul",
        "mode": if smoke { "smoke" } else { "full" },
        "generated_unix": generated_unix,
        "throughput": throughput,
        "shedder": shedder,
        "parallel_runner": parallel_runner,
    });
    let body = serde_json::to_string_pretty(&report).unwrap();
    std::fs::write(&out, format!("{body}\n")).unwrap_or_else(|e| {
        eprintln!("failed to write {}: {e}", out.display());
        std::process::exit(1);
    });
    println!("{body}");
    println!("report written to {}", out.display());
}

/// Regression gate: remeasure throughput (smoke-sized) and fail if it is
/// more than 20% below the `after_tuples_per_sec` recorded in `path`.
fn run_check(path: &std::path::Path) {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        std::process::exit(1);
    });
    let report: serde_json::Value = serde_json::from_str(&body).unwrap_or_else(|e| {
        eprintln!("{} is not valid JSON: {e}", path.display());
        std::process::exit(1);
    });
    let recorded = report["throughput"]["after_tuples_per_sec"]
        .as_f64()
        .unwrap_or_else(|| {
            eprintln!(
                "{} lacks throughput.after_tuples_per_sec",
                path.display()
            );
            std::process::exit(1);
        });
    let recorded_cal = report["throughput"]["calibration_rng_decisions_per_sec"]
        .as_f64()
        .unwrap_or_else(|| {
            eprintln!(
                "{} lacks throughput.calibration_rng_decisions_per_sec",
                path.display()
            );
            std::process::exit(1);
        });
    // The host running the check is not the host that recorded the
    // baseline (and either may be under load), so compare *normalized*
    // throughput: tuples/sec scaled by the ratio of RNG calibration
    // speeds. Up to three attempts — a genuine >20% code regression fails
    // all of them, a transient load spike only costs a retry.
    let floor = recorded * 0.8;
    for attempt in 1..=3 {
        let cal = measure_calibration();
        let (best_wall, offered) = measure_throughput(10);
        let measured = offered as f64 / best_wall;
        let normalized = measured * (recorded_cal / cal);
        println!(
            "attempt {attempt}: recorded {recorded:.0} tuples/sec, measured {measured:.0} \
             (normalized {normalized:.0} at host-speed ratio {:.2}), floor (80%) {floor:.0}",
            cal / recorded_cal
        );
        if normalized >= floor {
            println!("OK: normalized throughput within 20% of the recorded baseline");
            return;
        }
    }
    eprintln!("FAIL: throughput regressed more than 20% vs {}", path.display());
    std::process::exit(1);
}
