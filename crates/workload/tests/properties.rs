//! Property-based tests for the workload generators.

use proptest::prelude::*;
use streamshed_workload::*;

fn assert_valid_trace(times: &[f64], duration: f64) -> Result<(), TestCaseError> {
    prop_assert!(times.windows(2).all(|w| w[0] <= w[1]), "sorted");
    prop_assert!(
        times.iter().all(|&t| (0.0..duration).contains(&t)),
        "bounded"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn step_traces_valid(
        low in 0.0..200.0f64,
        high in 0.0..800.0f64,
        jump in 1.0..20.0f64,
        duration in 5.0..60.0f64,
    ) {
        let trace = StepTrace::single(low, high, jump);
        let times = trace.arrival_times(duration);
        assert_valid_trace(&times, duration)?;
    }

    #[test]
    fn sine_traces_valid(
        min in 0.0..100.0f64,
        span in 1.0..400.0f64,
        period in 5.0..60.0f64,
    ) {
        let trace = SineTrace::new(min, min + span, period);
        let times = trace.arrival_times(30.0);
        assert_valid_trace(&times, 30.0)?;
        // Count ≈ ∫ r(t) dt over the horizon (a partial cycle does not
        // average to the midpoint rate).
        let want: f64 = (0..30_000)
            .map(|i| trace.rate_at(i as f64 * 1e-3) * 1e-3)
            .sum();
        prop_assert!(
            (times.len() as f64 - want).abs() < want.max(10.0) * 0.02 + 2.0,
            "count {} want {want:.1}", times.len()
        );
    }

    #[test]
    fn pareto_traces_valid(
        rate in 20.0..500.0f64,
        bias in 0.1..2.0f64,
        seed in 0u64..500,
    ) {
        let trace = ParetoTrace::builder()
            .mean_rate(rate)
            .bias(bias)
            .seed(seed)
            .build();
        let times = trace.arrival_times(300.0);
        assert_valid_trace(&times, 300.0)?;
        // Heavy-tailed sample means converge slowly; require the right
        // order of magnitude (factor-2 band over 300 samples).
        let got = times.len() as f64 / 300.0;
        prop_assert!(
            got > rate * 0.5 && got < rate * 2.0,
            "rate {got} want {rate} (bias {bias})"
        );
    }

    #[test]
    fn web_traces_valid(seed in 0u64..200, sources in 5usize..60) {
        let trace = WebLikeTrace::builder().sources(sources).seed(seed).build();
        let times = trace.arrival_times(40.0);
        assert_valid_trace(&times, 40.0)?;
    }

    #[test]
    fn poisson_and_mmpp_valid(rate in 20.0..400.0f64, seed in 0u64..200) {
        let p = PoissonTrace::new(rate, seed);
        assert_valid_trace(&p.arrival_times(30.0), 30.0)?;
        let m = MmppTrace::three_regime(rate, seed);
        assert_valid_trace(&m.arrival_times(30.0), 30.0)?;
    }

    #[test]
    fn rate_series_conserves_count(
        times in prop::collection::vec(0.0..100.0f64, 0..500),
        bin in 0.25..5.0f64,
    ) {
        let mut sorted = times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let series = rate_series(&sorted, bin, 100.0);
        let total: f64 = series.iter().map(|r| r * bin).sum();
        prop_assert!((total - sorted.len() as f64).abs() < 1e-6);
    }

    #[test]
    fn cost_trace_positive_and_deterministic(base in 1.0..20.0f64, seed in 0u64..200) {
        let a = CostTrace::paper_fig14(base, seed);
        let pts = a.points_ms(400.0);
        prop_assert!(pts.iter().all(|&(_, ms)| ms > 0.0 && ms.is_finite()));
        let b = CostTrace::paper_fig14(base, seed);
        prop_assert_eq!(pts, b.points_ms(400.0));
    }

    #[test]
    fn tracefile_roundtrip(times in prop::collection::vec(0.0..1000.0f64, 0..200)) {
        let mut sorted = times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ft = FileTrace::from_times(sorted.clone()).unwrap();
        let replay = ft.arrival_times(f64::INFINITY);
        prop_assert_eq!(replay, sorted);
    }
}
