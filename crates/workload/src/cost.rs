//! Time-varying per-tuple cost traces (the paper's Fig. 14).
//!
//! §5: "We first generate the cost variations following a Pareto
//! distribution and then modify the trace by adding 'circumstances' to it
//! ... a small peak at the 50th second, a large peak with a sudden jump
//! (starting from the 125th second), and a high terrace with a sudden
//! drop (250th to 350th second)."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scripted "circumstance" layered on the Pareto base cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Circumstance {
    /// A smooth triangular peak centred at `at_s`, reaching `peak_ms`.
    Peak {
        /// Centre of the peak, seconds.
        at_s: f64,
        /// Half-width, seconds.
        half_width_s: f64,
        /// Peak cost, ms.
        peak_ms: f64,
    },
    /// A sudden jump to `peak_ms` at `at_s` followed by a linear decay
    /// over `decay_s` seconds.
    JumpDecay {
        /// Jump instant, seconds.
        at_s: f64,
        /// Peak cost at the jump, ms.
        peak_ms: f64,
        /// Seconds to decay back to base.
        decay_s: f64,
    },
    /// A gradual ramp up to a sustained `level_ms` terrace between
    /// `from_s` and `to_s`, with a sudden drop at the end.
    Terrace {
        /// Ramp start, seconds.
        ramp_from_s: f64,
        /// Terrace start (ramp complete), seconds.
        from_s: f64,
        /// Sudden drop instant, seconds.
        to_s: f64,
        /// Terrace level, ms.
        level_ms: f64,
    },
}

/// The Fig. 14 cost trace: Pareto base noise plus scripted circumstances.
#[derive(Debug, Clone, PartialEq)]
pub struct CostTrace {
    /// Baseline cost, ms.
    pub base_ms: f64,
    /// Pareto tail index of the multiplicative noise.
    pub noise_shape: f64,
    /// Cap on the noise factor.
    pub noise_cap: f64,
    /// Scripted circumstances.
    pub circumstances: Vec<Circumstance>,
    /// RNG seed.
    pub seed: u64,
}

impl CostTrace {
    /// A constant cost trace (no variation).
    pub fn constant(base_ms: f64) -> Self {
        Self {
            base_ms,
            noise_shape: f64::INFINITY,
            noise_cap: 1.0,
            circumstances: Vec::new(),
            seed: 0,
        }
    }

    /// The paper's Fig. 14 profile over 400 s: base ≈ 4 ms with noise in
    /// the 3–8 ms band, a small peak at 50 s (~10 ms), a sudden jump to
    /// ~22 ms at 125 s, and a ~15 ms terrace over 250–350 s reached by a
    /// gradual rise and ended by a sudden drop.
    pub fn paper_fig14(base_ms: f64, seed: u64) -> Self {
        Self {
            base_ms,
            noise_shape: 3.0,
            noise_cap: 2.0,
            circumstances: vec![
                Circumstance::Peak {
                    at_s: 50.0,
                    half_width_s: 8.0,
                    peak_ms: base_ms * 2.2,
                },
                Circumstance::JumpDecay {
                    at_s: 125.0,
                    peak_ms: base_ms * 4.5,
                    decay_s: 40.0,
                },
                Circumstance::Terrace {
                    ramp_from_s: 220.0,
                    from_s: 250.0,
                    to_s: 350.0,
                    level_ms: base_ms * 3.0,
                },
            ],
            seed,
        }
    }

    /// A deterministic doubling staircase for the self-tuning
    /// experiments: the per-tuple cost steps *instantly* to ×2, ×4 and
    /// ×8 of `base_ms` at `step_s`, `2·step_s` and `3·step_s`, and the
    /// final level holds for the rest of the run. Noise is disabled
    /// (factor exactly 1.0), so the plant-gain shift is the only
    /// disturbance — the sharpest test of re-identification, since each
    /// doubling halves the true plant gain that the fixed paper tuning
    /// was derived for.
    pub fn doubling_staircase(base_ms: f64, step_s: f64) -> Self {
        assert!(base_ms > 0.0 && step_s > 0.0);
        let steps = [2.0, 4.0, 8.0];
        let circumstances = steps
            .iter()
            .enumerate()
            .map(|(i, &mult)| {
                let from_s = step_s * (i as f64 + 1.0);
                let to_s = if i + 1 == steps.len() {
                    f64::INFINITY
                } else {
                    step_s * (i as f64 + 2.0)
                };
                Circumstance::Terrace {
                    // ramp_from_s == from_s: an empty ramp, i.e. a step.
                    ramp_from_s: from_s,
                    from_s,
                    to_s,
                    level_ms: base_ms * mult,
                }
            })
            .collect();
        Self {
            base_ms,
            noise_shape: f64::INFINITY,
            noise_cap: 1.0,
            circumstances,
            seed: 0,
        }
    }

    fn circumstance_ms(&self, t: f64) -> f64 {
        let mut extra = 0.0f64;
        for c in &self.circumstances {
            let v = match *c {
                Circumstance::Peak {
                    at_s,
                    half_width_s,
                    peak_ms,
                } => {
                    let d = (t - at_s).abs();
                    if d < half_width_s {
                        (peak_ms - self.base_ms) * (1.0 - d / half_width_s)
                    } else {
                        0.0
                    }
                }
                Circumstance::JumpDecay {
                    at_s,
                    peak_ms,
                    decay_s,
                } => {
                    if t >= at_s && t < at_s + decay_s {
                        (peak_ms - self.base_ms) * (1.0 - (t - at_s) / decay_s)
                    } else {
                        0.0
                    }
                }
                Circumstance::Terrace {
                    ramp_from_s,
                    from_s,
                    to_s,
                    level_ms,
                } => {
                    if t >= ramp_from_s && t < from_s {
                        (level_ms - self.base_ms) * (t - ramp_from_s) / (from_s - ramp_from_s)
                    } else if t >= from_s && t < to_s {
                        level_ms - self.base_ms
                    } else {
                        0.0
                    }
                }
            };
            extra = extra.max(v);
        }
        extra
    }

    /// Samples the cost (ms) once per second over `duration_s` seconds,
    /// returning `(time_s, cost_ms)` points.
    pub fn points_ms(&self, duration_s: f64) -> Vec<(f64, f64)> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = duration_s.ceil() as usize;
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            let t = k as f64;
            let noise = if self.noise_shape.is_finite() {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                (1.0 / u.powf(1.0 / self.noise_shape)).min(self.noise_cap)
            } else {
                1.0
            };
            // Noise perturbs the base; circumstances add on top.
            let ms = self.base_ms * noise + self.circumstance_ms(t);
            out.push((t, ms));
        }
        out
    }

    /// Same profile expressed as multipliers of the base cost, suitable
    /// for the engine's `CostSchedule`.
    pub fn multiplier_points(&self, duration_s: f64) -> Vec<(f64, f64)> {
        self.points_ms(duration_s)
            .into_iter()
            .map(|(t, ms)| (t, ms / self.base_ms))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_is_flat() {
        let trace = CostTrace::constant(5.0);
        let pts = trace.points_ms(10.0);
        assert_eq!(pts.len(), 10);
        for (_, ms) in pts {
            assert_eq!(ms, 5.0);
        }
    }

    #[test]
    fn fig14_has_paper_features() {
        let trace = CostTrace::paper_fig14(4.5, 42);
        let pts = trace.points_ms(400.0);
        let at = |s: usize| pts[s].1;

        // Small peak near 50 s clearly above the local baseline.
        assert!(at(50) > at(20) + 2.0, "peak at 50s: {} vs {}", at(50), at(20));
        // Sudden jump at 125 s: cost at 125 far above cost at 124.
        assert!(at(125) > at(123) + 5.0, "jump: {} vs {}", at(125), at(123));
        // Terrace: sustained high level at 300 s...
        assert!(at(300) > at(20) + 4.0, "terrace at 300s: {}", at(300));
        // ...with a sudden drop after 350 s.
        assert!(at(349) > at(360) + 4.0, "drop: {} vs {}", at(349), at(360));
    }

    #[test]
    fn costs_stay_in_plot_range() {
        // Fig. 14's y-axis spans 0–25 ms.
        let trace = CostTrace::paper_fig14(4.5, 7);
        for (t, ms) in trace.points_ms(400.0) {
            assert!(ms > 2.0 && ms < 26.0, "cost {ms} at {t}");
        }
    }

    #[test]
    fn multipliers_normalise_base() {
        let trace = CostTrace::paper_fig14(4.5, 7);
        let pts = trace.multiplier_points(400.0);
        // Quiet stretch: multiplier near 1.
        let early: f64 = pts[5..15].iter().map(|&(_, m)| m).sum::<f64>() / 10.0;
        assert!(early > 0.9 && early < 1.8, "early multiplier {early}");
        // Jump region: multiplier well above 3.
        assert!(pts[125].1 > 3.0);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = CostTrace::paper_fig14(4.5, 3).points_ms(100.0);
        let b = CostTrace::paper_fig14(4.5, 3).points_ms(100.0);
        assert_eq!(a, b);
    }

    #[test]
    fn doubling_staircase_steps_exactly() {
        let trace = CostTrace::doubling_staircase(5.0, 60.0);
        let pts = trace.points_ms(300.0);
        let at = |s: usize| pts[s].1;
        // Exact levels — no noise, instant steps, last level held.
        assert_eq!(at(0), 5.0);
        assert_eq!(at(59), 5.0);
        assert_eq!(at(60), 10.0);
        assert_eq!(at(119), 10.0);
        assert_eq!(at(120), 20.0);
        assert_eq!(at(180), 40.0);
        assert_eq!(at(299), 40.0);
        // Multipliers normalise to exact powers of two.
        let mult = trace.multiplier_points(300.0);
        assert_eq!(mult[0].1, 1.0);
        assert_eq!(mult[200].1, 8.0);
        // Deterministic regardless of seed field (no noise drawn).
        assert_eq!(pts, CostTrace::doubling_staircase(5.0, 60.0).points_ms(300.0));
    }

    #[test]
    fn gradual_rise_before_terrace() {
        // The paper notes the cost "increases gradually before the
        // terrace", which is what lets CTRL track it (Fig. 15 analysis).
        let trace = CostTrace::paper_fig14(4.5, 3);
        let pts = trace.points_ms(400.0);
        let ramp_mid = pts[235].1;
        assert!(
            ramp_mid > pts[210].1 && ramp_mid < pts[300].1 + 3.0,
            "ramp at 235s: {ramp_mid}"
        );
    }
}
