//! Step-function arrival traces (system identification, Figs. 5–6).

use crate::ArrivalTrace;

/// Evenly spaced arrivals whose rate follows a step function of time.
///
/// The paper's identification input: "rate starts at very low and jumps to
/// a high value at the 10-th second" (Fig. 5A).
#[derive(Debug, Clone, PartialEq)]
pub struct StepTrace {
    /// `(from_time_s, rate_tps)` breakpoints, sorted by time. The rate
    /// before the first breakpoint is the first breakpoint's rate.
    pub steps: Vec<(f64, f64)>,
}

impl StepTrace {
    /// A single step: `low` t/s until `jump_at_s`, then `high` t/s.
    pub fn single(low: f64, high: f64, jump_at_s: f64) -> Self {
        Self {
            steps: vec![(0.0, low), (jump_at_s, high)],
        }
    }

    /// A constant rate.
    pub fn constant(rate: f64) -> Self {
        Self {
            steps: vec![(0.0, rate)],
        }
    }

    /// The paper's Fig. 5 input: 20 t/s for 10 s, then `high` t/s.
    pub fn paper_step(high: f64) -> Self {
        Self::single(20.0, high, 10.0)
    }

    /// Arbitrary breakpoints; times must be non-negative and ascending.
    pub fn from_steps(steps: Vec<(f64, f64)>) -> Self {
        assert!(!steps.is_empty(), "at least one step required");
        assert!(
            steps.windows(2).all(|w| w[0].0 < w[1].0),
            "step times must be ascending"
        );
        assert!(steps.iter().all(|&(t, r)| t >= 0.0 && r >= 0.0));
        Self { steps }
    }

    fn rate_at(&self, t: f64) -> f64 {
        let mut rate = self.steps[0].1;
        for &(from, r) in &self.steps {
            if t >= from {
                rate = r;
            } else {
                break;
            }
        }
        rate
    }
}

impl ArrivalTrace for StepTrace {
    fn arrival_times(&self, duration_s: f64) -> Vec<f64> {
        let mut out = Vec::new();
        // Piecewise: within each regime, arrivals are evenly spaced at the
        // regime's rate, phase-continuing from the regime boundary.
        let mut boundaries: Vec<f64> = self.steps.iter().map(|&(t, _)| t).collect();
        boundaries.push(duration_s);
        for w in boundaries.windows(2) {
            let (from, to) = (w[0], w[1].min(duration_s));
            if from >= duration_s {
                break;
            }
            let rate = self.rate_at(from);
            if rate <= 0.0 {
                continue;
            }
            let gap = 1.0 / rate;
            let mut t = from;
            while t < to {
                out.push(t);
                t += gap;
            }
        }
        out
    }

    fn mean_rate(&self) -> f64 {
        // Time-weighted over the declared breakpoints is ill-defined
        // without a horizon; report the final (sustained) rate.
        self.steps.last().map(|&(_, r)| r).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate_series;

    #[test]
    fn single_step_counts() {
        let trace = StepTrace::single(10.0, 100.0, 5.0);
        let times = trace.arrival_times(10.0);
        let rates = rate_series(&times, 1.0, 10.0);
        for rate in &rates[..5] {
            assert!((rate - 10.0).abs() < 1.5, "pre-step rate {rate}");
        }
        for rate in &rates[5..10] {
            assert!((rate - 100.0).abs() < 2.0, "post-step rate {rate}");
        }
    }

    #[test]
    fn constant_rate_is_even() {
        let trace = StepTrace::constant(50.0);
        let times = trace.arrival_times(4.0);
        assert_eq!(times.len(), 200);
        // Evenly spaced.
        for w in times.windows(2) {
            assert!((w[1] - w[0] - 0.02).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_rate_regime_produces_nothing() {
        let trace = StepTrace::from_steps(vec![(0.0, 0.0), (2.0, 10.0)]);
        let times = trace.arrival_times(4.0);
        assert!(times.iter().all(|&t| t >= 2.0));
        assert_eq!(times.len(), 20);
    }

    #[test]
    fn times_sorted_and_within_duration() {
        let trace = StepTrace::paper_step(300.0);
        let times = trace.arrival_times(50.0);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|&t| t < 50.0));
        assert_eq!(trace.mean_rate(), 300.0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn rejects_unsorted_steps() {
        let _ = StepTrace::from_steps(vec![(5.0, 1.0), (2.0, 2.0)]);
    }
}
