//! # streamshed-workload
//!
//! Arrival-rate and processing-cost trace generators for the paper's
//! experiments (§5, Figs. 13–14):
//!
//! * [`step::StepTrace`] — step-function arrival rates (system
//!   identification, Fig. 5–6);
//! * [`sine::SineTrace`] — sinusoidal rates (model verification, Fig. 7);
//! * [`pareto::ParetoTrace`] — long-tailed per-period tuple counts with a
//!   bias factor β controlling burstiness (the paper's synthetic data);
//! * [`web::WebLikeTrace`] — a self-similar web-server-like trace built
//!   from superposed heavy-tailed ON/OFF sources (Paxson & Floyd), our
//!   substitute for the unavailable LBL-PKT-4 Internet Traffic Archive
//!   trace;
//! * [`cost::CostTrace`] — the time-varying per-tuple cost profile of
//!   Fig. 14 (Pareto base + scripted peaks/jumps/terrace).
//!
//! This crate is engine-independent: traces are plain `f64`-second arrival
//! instants; the experiment harness converts them to simulator time.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod catalog;
pub mod combine;
pub mod cost;
pub mod mmpp;
pub mod pareto;
pub mod poisson;
pub mod schedule;
pub mod sine;
pub mod step;
pub mod tracefile;
pub mod web;

pub use catalog::WorkloadKind;
pub use combine::{Overlay, Splice, Thin, TimeScale};
pub use cost::CostTrace;
pub use mmpp::{MmppState, MmppTrace};
pub use pareto::ParetoTrace;
pub use poisson::PoissonTrace;
pub use schedule::{frame_schedule, schedule_tuples, uniform_schedule, FrameAt};
pub use sine::SineTrace;
pub use step::StepTrace;
pub use tracefile::FileTrace;
pub use web::WebLikeTrace;

/// A generator of tuple-arrival instants.
pub trait ArrivalTrace {
    /// Generates sorted arrival instants (seconds) covering
    /// `[0, duration_s)`.
    fn arrival_times(&self, duration_s: f64) -> Vec<f64>;

    /// The long-run mean arrival rate this trace targets, tuples/second.
    fn mean_rate(&self) -> f64;
}

/// Converts second-based instants to integer microseconds (the engine's
/// clock unit), preserving order.
pub fn to_micros(times: &[f64]) -> Vec<u64> {
    times.iter().map(|&t| (t * 1e6).round() as u64).collect()
}

/// Bins arrival instants into per-interval rates — the "rate trace" view
/// plotted in Fig. 13.
pub fn rate_series(times: &[f64], bin_s: f64, duration_s: f64) -> Vec<f64> {
    assert!(bin_s > 0.0);
    let bins = (duration_s / bin_s).ceil() as usize;
    let mut counts = vec![0.0; bins];
    for &t in times {
        let idx = (t / bin_s) as usize;
        if idx < bins {
            counts[idx] += 1.0;
        }
    }
    for c in counts.iter_mut() {
        *c /= bin_s;
    }
    counts
}

/// Coefficient of variation of a series — the burstiness summary used in
/// tests to verify that the bias factor behaves as the paper describes.
pub fn coefficient_of_variation(series: &[f64]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    let n = series.len() as f64;
    let mean = series.iter().sum::<f64>() / n;
    if mean.abs() < 1e-12 {
        return 0.0;
    }
    let var = series.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_micros_rounds() {
        assert_eq!(to_micros(&[0.0, 0.0000015, 1.0]), vec![0, 2, 1_000_000]);
    }

    #[test]
    fn rate_series_counts_per_bin() {
        let times = [0.1, 0.2, 0.9, 1.5, 2.7];
        let series = rate_series(&times, 1.0, 3.0);
        assert_eq!(series, vec![3.0, 1.0, 1.0]);
    }

    #[test]
    fn rate_series_fractional_bins() {
        let times = [0.1, 0.3, 0.6];
        let series = rate_series(&times, 0.5, 1.0);
        // 2 arrivals in [0,0.5) → rate 4/s; 1 in [0.5,1) → rate 2/s.
        assert_eq!(series, vec![4.0, 2.0]);
    }

    #[test]
    fn cv_of_constant_is_zero() {
        assert_eq!(coefficient_of_variation(&[5.0; 10]), 0.0);
        assert_eq!(coefficient_of_variation(&[]), 0.0);
    }

    #[test]
    fn cv_orders_burstiness() {
        let calm = [9.0, 10.0, 11.0, 10.0];
        let bursty = [0.0, 0.0, 40.0, 0.0];
        assert!(coefficient_of_variation(&bursty) > coefficient_of_variation(&calm));
    }
}
