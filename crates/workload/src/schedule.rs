//! Frame schedules for client fleets.
//!
//! The network load generator drives each connection from a
//! *precomputed, seeded* schedule: a list of `(send_time_us, tuples)`
//! frames derived from an [`ArrivalTrace`]. Precomputing keeps the fleet
//! deterministic (two runs with the same seed offer the same tuples on
//! the same connections in the same frames, regardless of wall-clock
//! pacing jitter) and keeps the send loop allocation-free.
//!
//! Grouping rule: consecutive arrivals are packed into frames of at most
//! `batch` tuples, and a frame's send time is the arrival time of its
//! *last* tuple — a frame is sent once every tuple in it has "arrived",
//! so batching never sends traffic earlier than the trace generated it.

use crate::ArrivalTrace;

/// One scheduled frame: send at `at_us` microseconds from the run start,
/// carrying `tuples` tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameAt {
    /// Send time, µs from run start.
    pub at_us: u64,
    /// Tuples in the frame (≥ 1).
    pub tuples: u32,
}

/// Packs a trace's arrivals over `duration_s` into frames of at most
/// `batch` tuples each (see the module docs for the grouping rule).
pub fn frame_schedule(trace: &dyn ArrivalTrace, duration_s: f64, batch: usize) -> Vec<FrameAt> {
    assert!(batch >= 1, "batch must be >= 1");
    let times = trace.arrival_times(duration_s);
    let mut frames = Vec::with_capacity(times.len() / batch + 1);
    for group in times.chunks(batch) {
        let last = *group.last().expect("chunks yields non-empty groups");
        frames.push(FrameAt {
            at_us: (last.max(0.0) * 1e6) as u64,
            tuples: group.len() as u32,
        });
    }
    frames
}

/// An analytic uniform schedule: `total` tuples spread evenly over
/// `duration_s` in frames of `batch`. No trace and no RNG — this is the
/// loadgen's constant-rate mode, usable at rates where materializing
/// per-arrival times would dominate memory.
pub fn uniform_schedule(total: u64, duration_s: f64, batch: usize) -> Vec<FrameAt> {
    assert!(batch >= 1, "batch must be >= 1");
    let frames_n = total.div_ceil(batch as u64);
    let mut frames = Vec::with_capacity(frames_n as usize);
    for f in 0..frames_n {
        let tuples = (total - f * batch as u64).min(batch as u64) as u32;
        // Send time of the last tuple in the frame under even spacing.
        let last_idx = (f * batch as u64 + tuples as u64).min(total);
        let at_us = if total == 0 {
            0
        } else {
            (duration_s * 1e6 * last_idx as f64 / total as f64) as u64
        };
        frames.push(FrameAt { at_us, tuples });
    }
    frames
}

/// Total tuples across a schedule.
pub fn schedule_tuples(frames: &[FrameAt]) -> u64 {
    frames.iter().map(|f| u64::from(f.tuples)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PoissonTrace, WebLikeTrace};

    #[test]
    fn frames_conserve_and_order() {
        let trace = PoissonTrace::new(500.0, 7);
        let frames = frame_schedule(&trace, 2.0, 16);
        let total = schedule_tuples(&frames);
        assert_eq!(total, trace.arrival_times(2.0).len() as u64);
        assert!(frames.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert!(frames.iter().all(|f| (1..=16).contains(&f.tuples)));
    }

    #[test]
    fn frames_never_early() {
        // A frame's send time is >= every member arrival: check against
        // the raw trace times.
        let trace = WebLikeTrace::builder().sources(3).seed(11).build();
        let times = trace.arrival_times(3.0);
        let frames = frame_schedule(&trace, 3.0, 8);
        let mut i = 0usize;
        for f in &frames {
            for _ in 0..f.tuples {
                assert!((times[i].max(0.0) * 1e6) as u64 <= f.at_us);
                i += 1;
            }
        }
        assert_eq!(i, times.len());
    }

    #[test]
    fn deterministic_for_seed() {
        let a = frame_schedule(&PoissonTrace::new(200.0, 42), 1.5, 32);
        let b = frame_schedule(&PoissonTrace::new(200.0, 42), 1.5, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_is_exact() {
        let frames = uniform_schedule(1000, 2.0, 64);
        assert_eq!(schedule_tuples(&frames), 1000);
        assert!(frames.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert_eq!(frames.last().unwrap().at_us, 2_000_000);
        assert!(uniform_schedule(0, 1.0, 8).is_empty());
    }
}
