//! Workload catalog: grid enumeration for the scenario-campaign harness.
//!
//! The campaign sweeps the cross product *workload × fault × topology ×
//! shards × controller*; this module supplies the workload axis as a
//! closed enum so the grid is enumerable, each variant has a stable key
//! usable in scenario identifiers, and every variant can be instantiated
//! at an arbitrary target rate (the campaign scales offered load to each
//! topology's capacity).
//!
//! Variants that do not natively take a rate parameter (Pareto, Web) are
//! rescaled in time ([`TimeScale`]) so their burstiness shape survives
//! while the long-run mean hits the target. Everything is a pure function
//! of `(rate, duration, seed)` — byte-identical on every call.

use crate::{
    ArrivalTrace, CostTrace, MmppTrace, ParetoTrace, PoissonTrace, SineTrace, StepTrace,
    TimeScale, WebLikeTrace,
};

/// One workload family of the campaign grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Memoryless Poisson arrivals at the target rate.
    Poisson,
    /// Sinusoidal rate swinging ±50% around the target (60 s period).
    Sine,
    /// A step: 60% of target for the first third, 140% afterwards.
    Step,
    /// Markov-modulated Poisson (quiet / normal / flash-crowd regimes).
    Mmpp,
    /// Long-tailed per-period tuple counts (the paper's synthetic data),
    /// time-scaled to the target mean rate.
    Pareto,
    /// Self-similar web-server-like ON/OFF superposition, time-scaled to
    /// the target mean rate.
    Web,
    /// Poisson arrivals plus the Fig. 14 time-varying per-tuple cost
    /// profile (the only variant with a cost dimension).
    Cost,
}

impl WorkloadKind {
    /// Every variant, in grid order.
    pub const ALL: [WorkloadKind; 7] = [
        WorkloadKind::Poisson,
        WorkloadKind::Sine,
        WorkloadKind::Step,
        WorkloadKind::Mmpp,
        WorkloadKind::Pareto,
        WorkloadKind::Web,
        WorkloadKind::Cost,
    ];

    /// The stable key used in campaign cell identifiers.
    pub fn key(self) -> &'static str {
        match self {
            WorkloadKind::Poisson => "poisson",
            WorkloadKind::Sine => "sine",
            WorkloadKind::Step => "step",
            WorkloadKind::Mmpp => "mmpp",
            WorkloadKind::Pareto => "pareto",
            WorkloadKind::Web => "web",
            WorkloadKind::Cost => "cost",
        }
    }

    /// Parses a key back into the variant.
    pub fn from_key(key: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.key() == key)
    }

    /// Whether this workload perturbs per-tuple cost as well as arrivals
    /// (see [`WorkloadKind::cost_profile`]).
    pub fn has_cost_profile(self) -> bool {
        matches!(self, WorkloadKind::Cost)
    }

    /// Arrival instants (seconds) targeting `mean_rate` tuples/s over
    /// `[0, duration_s)`.
    pub fn arrival_times(self, mean_rate: f64, duration_s: f64, seed: u64) -> Vec<f64> {
        assert!(mean_rate > 0.0 && mean_rate.is_finite());
        match self {
            WorkloadKind::Poisson | WorkloadKind::Cost => {
                PoissonTrace::new(mean_rate, seed).arrival_times(duration_s)
            }
            WorkloadKind::Sine => {
                SineTrace::new(0.5 * mean_rate, 1.5 * mean_rate, 60.0)
                    .arrival_times(duration_s)
            }
            WorkloadKind::Step => {
                // Low phase for the first third, high for the rest;
                // low/3 + 2·high/3 = mean_rate, so the long-run mean
                // matches the target exactly.
                StepTrace::single(0.6 * mean_rate, 1.2 * mean_rate, duration_s / 3.0)
                    .arrival_times(duration_s)
            }
            WorkloadKind::Mmpp => {
                MmppTrace::three_regime(mean_rate, seed).arrival_times(duration_s)
            }
            WorkloadKind::Pareto => {
                rescaled(ParetoTrace::paper_default(seed), mean_rate, duration_s)
            }
            WorkloadKind::Web => {
                rescaled(WebLikeTrace::paper_default(seed), mean_rate, duration_s)
            }
        }
    }

    /// The time-varying per-tuple cost profile for workloads that carry
    /// one (`None` for pure arrival workloads). `base_ms` is the
    /// network's nominal per-tuple cost in milliseconds.
    pub fn cost_profile(self, base_ms: f64, seed: u64) -> Option<CostTrace> {
        if self.has_cost_profile() {
            Some(CostTrace::paper_fig14(base_ms, seed))
        } else {
            None
        }
    }
}

/// Time-scales `inner` so its long-run mean rate becomes `mean_rate`.
fn rescaled<T: ArrivalTrace>(inner: T, mean_rate: f64, duration_s: f64) -> Vec<f64> {
    let native = inner.mean_rate();
    assert!(native > 0.0 && native.is_finite(), "trace has no usable mean rate");
    TimeScale::new(inner, mean_rate / native).arrival_times(duration_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_unique_and_round_trip() {
        for kind in WorkloadKind::ALL {
            assert_eq!(WorkloadKind::from_key(kind.key()), Some(kind));
        }
        let mut keys: Vec<&str> = WorkloadKind::ALL.iter().map(|k| k.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), WorkloadKind::ALL.len());
        assert_eq!(WorkloadKind::from_key("nope"), None);
    }

    #[test]
    fn every_kind_hits_the_target_mean_rate() {
        let (rate, dur) = (200.0, 120.0);
        for kind in WorkloadKind::ALL {
            let times = kind.arrival_times(rate, dur, 7);
            assert!(!times.is_empty(), "{kind:?} generated nothing");
            assert!(
                times.windows(2).all(|w| w[0] <= w[1]),
                "{kind:?} arrivals unsorted"
            );
            assert!(times.iter().all(|&t| t >= 0.0 && t < dur + 1e-6));
            let measured = times.len() as f64 / dur;
            let rel = (measured - rate).abs() / rate;
            // Bursty families (MMPP flash crowds, Pareto/Web tails) wander
            // further from their long-run mean over a finite horizon.
            let tol = match kind {
                WorkloadKind::Poisson | WorkloadKind::Cost | WorkloadKind::Sine
                | WorkloadKind::Step => 0.10,
                _ => 0.45,
            };
            assert!(
                rel < tol,
                "{kind:?}: measured {measured:.1} t/s vs target {rate} (rel {rel:.2})"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for kind in WorkloadKind::ALL {
            let a = kind.arrival_times(150.0, 60.0, 42);
            let b = kind.arrival_times(150.0, 60.0, 42);
            assert_eq!(a, b, "{kind:?} not reproducible");
        }
    }

    #[test]
    fn only_the_cost_workload_carries_a_cost_profile() {
        for kind in WorkloadKind::ALL {
            let profile = kind.cost_profile(5.0, 3);
            assert_eq!(profile.is_some(), kind == WorkloadKind::Cost, "{kind:?}");
        }
        let profile = WorkloadKind::Cost.cost_profile(5.0, 3).unwrap();
        assert!(!profile.multiplier_points(60.0).is_empty());
    }
}
