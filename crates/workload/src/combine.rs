//! Trace combinators: compose arrival traces into richer scenarios
//! (overlay a flash crowd on a baseline, scale a recorded trace, splice
//! phases together) without writing new generators.

use crate::ArrivalTrace;

/// The superposition of two traces (both streams arrive).
pub struct Overlay<A, B>(pub A, pub B);

impl<A: ArrivalTrace, B: ArrivalTrace> ArrivalTrace for Overlay<A, B> {
    fn arrival_times(&self, duration_s: f64) -> Vec<f64> {
        let mut out = self.0.arrival_times(duration_s);
        out.extend(self.1.arrival_times(duration_s));
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out
    }

    fn mean_rate(&self) -> f64 {
        self.0.mean_rate() + self.1.mean_rate()
    }
}

/// Thins a trace: each arrival survives with probability `keep`
/// (deterministic stride-based thinning, so composition stays
/// reproducible without an RNG).
pub struct Thin<A> {
    inner: A,
    keep: f64,
}

impl<A> Thin<A> {
    /// Keeps approximately `keep` ∈ (0, 1] of the arrivals.
    pub fn new(inner: A, keep: f64) -> Self {
        assert!(keep > 0.0 && keep <= 1.0);
        Self { inner, keep }
    }
}

impl<A: ArrivalTrace> ArrivalTrace for Thin<A> {
    fn arrival_times(&self, duration_s: f64) -> Vec<f64> {
        // Deterministic low-discrepancy thinning: keep arrival i when the
        // fractional accumulator crosses an integer.
        let mut acc = 0.0f64;
        self.inner
            .arrival_times(duration_s)
            .into_iter()
            .filter(|_| {
                acc += self.keep;
                if acc >= 1.0 {
                    acc -= 1.0;
                    true
                } else {
                    false
                }
            })
            .collect()
    }

    fn mean_rate(&self) -> f64 {
        self.inner.mean_rate() * self.keep
    }
}

/// Plays `first` for `switch_at_s` seconds, then `second` (time-shifted
/// to start at the splice point).
pub struct Splice<A, B> {
    first: A,
    second: B,
    switch_at_s: f64,
}

impl<A, B> Splice<A, B> {
    /// Creates the splice.
    pub fn new(first: A, second: B, switch_at_s: f64) -> Self {
        assert!(switch_at_s >= 0.0);
        Self {
            first,
            second,
            switch_at_s,
        }
    }
}

impl<A: ArrivalTrace, B: ArrivalTrace> ArrivalTrace for Splice<A, B> {
    fn arrival_times(&self, duration_s: f64) -> Vec<f64> {
        let cut = self.switch_at_s.min(duration_s);
        let mut out: Vec<f64> = self
            .first
            .arrival_times(cut)
            .into_iter()
            .filter(|&t| t < cut)
            .collect();
        if duration_s > cut {
            out.extend(
                self.second
                    .arrival_times(duration_s - cut)
                    .into_iter()
                    .map(|t| t + cut),
            );
        }
        out
    }

    fn mean_rate(&self) -> f64 {
        // Ill-defined without a horizon; report the steady-state (second
        // phase) rate, matching StepTrace's convention.
        self.second.mean_rate()
    }
}

/// Compresses or stretches a trace in time by `factor` (a factor of 2
/// doubles the rate: the same arrivals land in half the time).
pub struct TimeScale<A> {
    inner: A,
    factor: f64,
}

impl<A> TimeScale<A> {
    /// Creates the scaler; `factor > 1` speeds the trace up.
    pub fn new(inner: A, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite());
        Self { inner, factor }
    }
}

impl<A: ArrivalTrace> ArrivalTrace for TimeScale<A> {
    fn arrival_times(&self, duration_s: f64) -> Vec<f64> {
        self.inner
            .arrival_times(duration_s * self.factor)
            .into_iter()
            .map(|t| t / self.factor)
            .collect()
    }

    fn mean_rate(&self) -> f64 {
        self.inner.mean_rate() * self.factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PoissonTrace, StepTrace};

    #[test]
    fn overlay_sums_rates_and_counts() {
        let o = Overlay(StepTrace::constant(100.0), StepTrace::constant(50.0));
        assert_eq!(o.mean_rate(), 150.0);
        let times = o.arrival_times(10.0);
        assert!((times.len() as i64 - 1500).abs() <= 2, "{}", times.len());
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn thin_keeps_requested_fraction() {
        let t = Thin::new(StepTrace::constant(100.0), 0.3);
        assert!((t.mean_rate() - 30.0).abs() < 1e-9);
        let times = t.arrival_times(10.0);
        assert!((times.len() as f64 - 300.0).abs() <= 1.0, "{}", times.len());
    }

    #[test]
    fn thin_is_deterministic() {
        let a = Thin::new(PoissonTrace::new(200.0, 5), 0.5).arrival_times(10.0);
        let b = Thin::new(PoissonTrace::new(200.0, 5), 0.5).arrival_times(10.0);
        assert_eq!(a, b);
    }

    #[test]
    fn splice_switches_phases() {
        let s = Splice::new(
            StepTrace::constant(10.0),
            StepTrace::constant(100.0),
            5.0,
        );
        let times = s.arrival_times(10.0);
        let early = times.iter().filter(|&&t| t < 5.0).count() as i64;
        let late = times.iter().filter(|&&t| t >= 5.0).count() as i64;
        assert!((early - 50).abs() <= 1, "early {early}");
        assert!((late - 500).abs() <= 1, "late {late}");
    }

    #[test]
    fn splice_beyond_duration_is_first_only() {
        let s = Splice::new(
            StepTrace::constant(10.0),
            StepTrace::constant(100.0),
            20.0,
        );
        let n = s.arrival_times(10.0).len() as i64;
        assert!((n - 100).abs() <= 1, "{n}");
    }

    #[test]
    fn timescale_compresses() {
        let t = TimeScale::new(StepTrace::constant(100.0), 2.0);
        assert_eq!(t.mean_rate(), 200.0);
        let times = t.arrival_times(5.0);
        // 10 s of original arrivals squeezed into 5 s.
        assert!((times.len() as i64 - 1000).abs() <= 1, "{}", times.len());
        assert!(times.iter().all(|&x| x < 5.0));
    }

    #[test]
    fn combinators_compose() {
        // Flash crowd: baseline Poisson + a compressed burst overlaid
        // after 5 s, thinned by an edge filter.
        let scenario = Thin::new(
            Overlay(
                PoissonTrace::new(100.0, 1),
                Splice::new(
                    StepTrace::constant(0.0),
                    TimeScale::new(PoissonTrace::new(100.0, 2), 3.0),
                    5.0,
                ),
            ),
            0.9,
        );
        let times = scenario.arrival_times(10.0);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        let early = times.iter().filter(|&&t| t < 5.0).count() as f64 / 5.0;
        let late = times.iter().filter(|&&t| t >= 5.0).count() as f64 / 5.0;
        assert!(late > early * 2.5, "late {late} vs early {early}");
    }
}
