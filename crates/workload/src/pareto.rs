//! Long-tailed (Pareto) arrival traces with a burstiness bias factor.
//!
//! The paper (§5): "The synthetic data are generated in such a way that
//! the number of data tuples per control period follows a long-tailed
//! (Pareto) distribution. The skewness of the arrival rates is regulated
//! by a bias factor β." Smaller β → heavier tail → burstier input
//! (Fig. 17 sweeps β ∈ {0.1, 0.25, 0.5, 1, 1.25, 1.5}).

use crate::ArrivalTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-period tuple counts drawn from a truncated Pareto distribution,
/// normalised so the long-run mean rate equals `mean_rate`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoTrace {
    mean_rate: f64,
    bias: f64,
    period_s: f64,
    cap: f64,
    seed: u64,
}

/// Builder for [`ParetoTrace`].
#[derive(Debug, Clone)]
pub struct ParetoTraceBuilder {
    mean_rate: f64,
    bias: f64,
    period_s: f64,
    cap: f64,
    seed: u64,
}

impl Default for ParetoTraceBuilder {
    fn default() -> Self {
        Self {
            mean_rate: 200.0,
            bias: 1.0,
            period_s: 1.0,
            cap: 50.0,
            seed: 0x9A7E70,
        }
    }
}

impl ParetoTraceBuilder {
    /// Target long-run mean arrival rate, tuples/s.
    pub fn mean_rate(mut self, rate: f64) -> Self {
        assert!(rate > 0.0);
        self.mean_rate = rate;
        self
    }

    /// Bias factor β: smaller is burstier. The paper sweeps 0.1–1.5.
    pub fn bias(mut self, beta: f64) -> Self {
        assert!(beta > 0.0, "bias factor must be positive");
        self.bias = beta;
        self
    }

    /// Length of one burst period (the paper draws one count per control
    /// period; default 1 s).
    pub fn period_s(mut self, p: f64) -> Self {
        assert!(p > 0.0);
        self.period_s = p;
        self
    }

    /// Truncation of the normalised Pareto samples (multiples of the
    /// scale), bounding the largest single burst.
    pub fn cap(mut self, cap: f64) -> Self {
        assert!(cap > 1.0);
        self.cap = cap;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Finalises the trace.
    pub fn build(self) -> ParetoTrace {
        ParetoTrace {
            mean_rate: self.mean_rate,
            bias: self.bias,
            period_s: self.period_s,
            cap: self.cap,
            seed: self.seed,
        }
    }
}

impl ParetoTrace {
    /// Starts building a trace.
    pub fn builder() -> ParetoTraceBuilder {
        ParetoTraceBuilder::default()
    }

    /// The paper's default synthetic input: β = 1, mean 200 t/s.
    pub fn paper_default(seed: u64) -> Self {
        Self::builder().bias(1.0).mean_rate(200.0).seed(seed).build()
    }

    /// The configured bias factor β.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Pareto tail index used for the per-period counts: `a = 1 + β`.
    /// β → 0 approaches the infinite-variance regime.
    fn shape(&self) -> f64 {
        1.0 + self.bias
    }

    /// Mean of the truncated Pareto(a, xm=1) on `[1, cap]`.
    fn truncated_mean(&self) -> f64 {
        let a = self.shape();
        let h = self.cap;
        // E[X] for Pareto truncated at h:
        //   a/(a-1) · (1 - h^(1-a)) / (1 - h^(-a))   for a ≠ 1.
        if (a - 1.0).abs() < 1e-9 {
            (h.ln()) / (1.0 - 1.0 / h)
        } else {
            a / (a - 1.0) * (1.0 - h.powf(1.0 - a)) / (1.0 - h.powf(-a))
        }
    }

    /// Draws one normalised (mean-1) burst factor.
    fn draw_factor(&self, rng: &mut StdRng) -> f64 {
        let a = self.shape();
        let u: f64 = rng.gen_range(0.0..1.0);
        // Inverse-CDF sampling of Pareto truncated at `cap`.
        let h = self.cap;
        let x = (1.0 - u * (1.0 - h.powf(-a))).powf(-1.0 / a);
        x / self.truncated_mean()
    }
}

impl ArrivalTrace for ParetoTrace {
    fn arrival_times(&self, duration_s: f64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        let periods = (duration_s / self.period_s).ceil() as usize;
        for k in 0..periods {
            let start = k as f64 * self.period_s;
            let end = (start + self.period_s).min(duration_s);
            let factor = self.draw_factor(&mut rng);
            let count = (self.mean_rate * self.period_s * factor).round() as usize;
            if count == 0 {
                continue;
            }
            // Spread the burst uniformly through the period with jitter.
            let span = end - start;
            for i in 0..count {
                let frac = (i as f64 + rng.gen_range(0.0..1.0)) / count as f64;
                out.push(start + frac * span);
            }
        }
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out
    }

    fn mean_rate(&self) -> f64 {
        self.mean_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{coefficient_of_variation, rate_series};

    #[test]
    fn mean_rate_is_respected() {
        let trace = ParetoTrace::builder().mean_rate(200.0).seed(1).build();
        let times = trace.arrival_times(400.0);
        let rate = times.len() as f64 / 400.0;
        assert!((rate - 200.0).abs() < 20.0, "rate {rate}");
    }

    #[test]
    fn smaller_bias_is_burstier() {
        let cv = |beta: f64| {
            let trace = ParetoTrace::builder()
                .bias(beta)
                .mean_rate(200.0)
                .seed(1)
                .build();
            let times = trace.arrival_times(400.0);
            coefficient_of_variation(&rate_series(&times, 1.0, 400.0))
        };
        let bursty = cv(0.1);
        let calm = cv(1.5);
        assert!(
            bursty > calm * 1.3,
            "cv(0.1) = {bursty}, cv(1.5) = {calm}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = ParetoTrace::builder().seed(3).build().arrival_times(50.0);
        let b = ParetoTrace::builder().seed(3).build().arrival_times(50.0);
        assert_eq!(a, b);
        let c = ParetoTrace::builder().seed(4).build().arrival_times(50.0);
        assert_ne!(a, c);
    }

    #[test]
    fn times_sorted_and_in_range() {
        let trace = ParetoTrace::paper_default(11);
        let times = trace.arrival_times(100.0);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|&t| (0.0..100.0).contains(&t)));
    }

    #[test]
    fn truncated_mean_is_sane() {
        // Mean of truncated Pareto must lie in (1, cap).
        for beta in [0.1, 0.5, 1.0, 1.5] {
            let trace = ParetoTrace::builder().bias(beta).build();
            let m = trace.truncated_mean();
            assert!(m > 1.0 && m < 50.0, "β={beta}: mean {m}");
        }
    }

    #[test]
    fn burst_factors_have_mean_one() {
        let trace = ParetoTrace::builder().bias(0.5).seed(9).build();
        let mut rng = StdRng::seed_from_u64(123);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| trace.draw_factor(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean factor {mean}");
    }
}
