//! Markov-modulated Poisson process (MMPP) arrivals.
//!
//! A continuous-time Markov chain switches between states, each with its
//! own Poisson intensity — the classic model for regime-switching
//! traffic (quiet/normal/flash-crowd). Complements the Pareto and ON/OFF
//! generators with *correlated* burst structure whose sojourn times are
//! exponential rather than heavy-tailed.

use crate::ArrivalTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One regime of the modulating chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmppState {
    /// Poisson intensity while in this state, tuples/s.
    pub rate: f64,
    /// Mean sojourn time in this state, seconds.
    pub mean_sojourn_s: f64,
}

/// A cyclic-or-random-switching MMPP.
#[derive(Debug, Clone, PartialEq)]
pub struct MmppTrace {
    states: Vec<MmppState>,
    seed: u64,
}

impl MmppTrace {
    /// Creates an MMPP over the given states (uniform random switching
    /// among the *other* states at each transition).
    pub fn new(states: Vec<MmppState>, seed: u64) -> Self {
        assert!(states.len() >= 2, "need at least two regimes");
        assert!(states
            .iter()
            .all(|s| s.rate >= 0.0 && s.mean_sojourn_s > 0.0));
        Self { states, seed }
    }

    /// A quiet/normal/flash-crowd instance around the given mean rate.
    pub fn three_regime(mean_rate: f64, seed: u64) -> Self {
        // Occupancies ≈ sojourn shares: 0.35 / 0.5 / 0.15.
        // Rates chosen so the weighted mean hits `mean_rate`:
        // 0.35·0.3r + 0.5·r + 0.15·2.8r = 1.025r ≈ mean.
        let r = mean_rate / 1.025;
        Self::new(
            vec![
                MmppState { rate: 0.3 * r, mean_sojourn_s: 7.0 },
                MmppState { rate: r, mean_sojourn_s: 10.0 },
                MmppState { rate: 2.8 * r, mean_sojourn_s: 3.0 },
            ],
            seed,
        )
    }

    /// The configured states.
    pub fn states(&self) -> &[MmppState] {
        &self.states
    }
}

impl ArrivalTrace for MmppTrace {
    fn arrival_times(&self, duration_s: f64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        let mut t = 0.0f64;
        let mut state = 0usize;
        while t < duration_s {
            let s = self.states[state];
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let sojourn = -u.ln() * s.mean_sojourn_s;
            let end = (t + sojourn).min(duration_s);
            if s.rate > 0.0 {
                let mut at = t;
                loop {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    at += -u.ln() / s.rate;
                    if at >= end {
                        break;
                    }
                    out.push(at);
                }
            }
            t = end;
            // Uniform switch to one of the other states.
            let step = rng.gen_range(1..self.states.len());
            state = (state + step) % self.states.len();
        }
        out
    }

    fn mean_rate(&self) -> f64 {
        let total_sojourn: f64 = self.states.iter().map(|s| s.mean_sojourn_s).sum();
        self.states
            .iter()
            .map(|s| s.rate * s.mean_sojourn_s / total_sojourn)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{coefficient_of_variation, rate_series, PoissonTrace};

    #[test]
    fn mean_rate_roughly_matches() {
        let trace = MmppTrace::three_regime(200.0, 5);
        let times = trace.arrival_times(600.0);
        let rate = times.len() as f64 / 600.0;
        let want = trace.mean_rate();
        assert!((rate - want).abs() < want * 0.25, "rate {rate}, want {want}");
    }

    #[test]
    fn burstier_than_poisson() {
        let mmpp = MmppTrace::three_regime(200.0, 7);
        let poisson = PoissonTrace::new(200.0, 7);
        let m_cv = coefficient_of_variation(&rate_series(
            &mmpp.arrival_times(400.0),
            1.0,
            400.0,
        ));
        let p_cv = coefficient_of_variation(&rate_series(
            &poisson.arrival_times(400.0),
            1.0,
            400.0,
        ));
        assert!(m_cv > p_cv * 1.5, "mmpp {m_cv} vs poisson {p_cv}");
    }

    #[test]
    fn regimes_visibly_switch() {
        // With a flash-crowd regime at 2.8× the base, some 1-second bins
        // should exceed twice the long-run mean.
        let trace = MmppTrace::three_regime(200.0, 11);
        let rates = rate_series(&trace.arrival_times(400.0), 1.0, 400.0);
        assert!(rates.iter().any(|&r| r > 400.0));
        assert!(rates.iter().any(|&r| r < 120.0));
    }

    #[test]
    fn deterministic_sorted() {
        let a = MmppTrace::three_regime(100.0, 2).arrival_times(60.0);
        let b = MmppTrace::three_regime(100.0, 2).arrival_times(60.0);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "two regimes")]
    fn rejects_single_state() {
        let _ = MmppTrace::new(
            vec![MmppState { rate: 1.0, mean_sojourn_s: 1.0 }],
            0,
        );
    }
}
