//! A self-similar, web-server-like arrival trace.
//!
//! **Substitution note (see DESIGN.md):** the paper replays requests to a
//! web-server cluster from the Internet Traffic Archive (LBL-PKT-4),
//! which is not available in this environment. Following the classic
//! result of Paxson & Floyd (the paper's own reference \[24\]) that
//! wide-area traffic is well modelled by superposing many ON/OFF sources
//! with heavy-tailed ON and OFF durations, this generator produces an
//! aggregate trace with the same qualitative properties as the paper's
//! Fig. 13 "Web" series: sustained baseline around 100–300 t/s with
//! bursts towards ~800 t/s and long-range dependence.

use crate::ArrivalTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Superposition of heavy-tailed ON/OFF sources.
#[derive(Debug, Clone, PartialEq)]
pub struct WebLikeTrace {
    sources: usize,
    on_rate: f64,
    mean_on_s: f64,
    mean_off_s: f64,
    tail_shape: f64,
    seed: u64,
}

/// Builder for [`WebLikeTrace`].
#[derive(Debug, Clone)]
pub struct WebLikeTraceBuilder {
    sources: usize,
    on_rate: f64,
    mean_on_s: f64,
    mean_off_s: f64,
    tail_shape: f64,
    seed: u64,
}

impl Default for WebLikeTraceBuilder {
    fn default() -> Self {
        Self {
            sources: 40,
            on_rate: 12.0,
            mean_on_s: 4.0,
            mean_off_s: 6.0,
            tail_shape: 1.4,
            seed: 0x1_EB94,
        }
    }
}

impl WebLikeTraceBuilder {
    /// Number of superposed ON/OFF sources.
    pub fn sources(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sources = n;
        self
    }

    /// Emission rate of one source while ON, tuples/s.
    pub fn on_rate(mut self, r: f64) -> Self {
        assert!(r > 0.0);
        self.on_rate = r;
        self
    }

    /// Mean ON duration, seconds.
    pub fn mean_on_s(mut self, s: f64) -> Self {
        assert!(s > 0.0);
        self.mean_on_s = s;
        self
    }

    /// Mean OFF duration, seconds.
    pub fn mean_off_s(mut self, s: f64) -> Self {
        assert!(s > 0.0);
        self.mean_off_s = s;
        self
    }

    /// Pareto tail index of ON/OFF durations; 1 < shape < 2 yields
    /// long-range-dependent aggregates (Paxson & Floyd).
    pub fn tail_shape(mut self, a: f64) -> Self {
        assert!(a > 1.0, "tail shape must exceed 1 for finite means");
        self.tail_shape = a;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Finalises the trace.
    pub fn build(self) -> WebLikeTrace {
        WebLikeTrace {
            sources: self.sources,
            on_rate: self.on_rate,
            mean_on_s: self.mean_on_s,
            mean_off_s: self.mean_off_s,
            tail_shape: self.tail_shape,
            seed: self.seed,
        }
    }
}

impl WebLikeTrace {
    /// Starts building a trace.
    pub fn builder() -> WebLikeTraceBuilder {
        WebLikeTraceBuilder::default()
    }

    /// Defaults tuned to resemble the paper's Fig. 13 "Web" trace
    /// (baseline ~200 t/s, bursts toward 800 t/s).
    pub fn paper_default(seed: u64) -> Self {
        Self::builder().seed(seed).build()
    }

    /// Draws a Pareto-tailed duration with the given mean.
    fn draw_duration(&self, mean: f64, rng: &mut StdRng) -> f64 {
        let a = self.tail_shape;
        // Pareto(xm, a) has mean a·xm/(a−1); choose xm to hit `mean`.
        let xm = mean * (a - 1.0) / a;
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        xm / u.powf(1.0 / a)
    }
}

impl ArrivalTrace for WebLikeTrace {
    fn arrival_times(&self, duration_s: f64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        for src in 0..self.sources {
            let mut src_rng =
                StdRng::seed_from_u64(self.seed ^ (0xD1F4_u64.wrapping_mul(src as u64 + 1)));
            // Random initial phase: start OFF for a random fraction.
            let mut t = src_rng.gen_range(0.0..self.mean_off_s);
            let mut on = src_rng.gen_bool(
                self.mean_on_s / (self.mean_on_s + self.mean_off_s),
            );
            while t < duration_s {
                if on {
                    let dur = self.draw_duration(self.mean_on_s, &mut src_rng);
                    let end = (t + dur).min(duration_s);
                    let gap = 1.0 / self.on_rate;
                    let mut at = t;
                    while at < end {
                        // Small jitter keeps sources from phase-locking.
                        out.push(at + src_rng.gen_range(0.0..gap * 0.5));
                        at += gap;
                    }
                    t += dur;
                } else {
                    t += self.draw_duration(self.mean_off_s, &mut src_rng);
                }
                on = !on;
            }
        }
        let _ = &mut rng;
        out.retain(|&t| t < duration_s);
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out
    }

    fn mean_rate(&self) -> f64 {
        let duty = self.mean_on_s / (self.mean_on_s + self.mean_off_s);
        self.sources as f64 * self.on_rate * duty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{coefficient_of_variation, rate_series};

    #[test]
    fn mean_rate_roughly_matches() {
        let trace = WebLikeTrace::paper_default(5);
        let times = trace.arrival_times(400.0);
        let rate = times.len() as f64 / 400.0;
        let want = trace.mean_rate();
        assert!(
            (rate - want).abs() < want * 0.35,
            "rate {rate}, want {want}"
        );
    }

    #[test]
    fn trace_is_bursty_but_less_than_pareto() {
        // Fig. 13: "fluctuations in the Pareto data are more dramatic than
        // in the Web data".
        let web = WebLikeTrace::paper_default(5);
        let web_cv = coefficient_of_variation(&rate_series(
            &web.arrival_times(400.0),
            1.0,
            400.0,
        ));
        let pareto = crate::ParetoTrace::builder().bias(1.0).seed(5).build();
        let pareto_cv = coefficient_of_variation(&rate_series(
            &pareto.arrival_times(400.0),
            1.0,
            400.0,
        ));
        assert!(web_cv > 0.1, "web trace should fluctuate: cv {web_cv}");
        assert!(
            pareto_cv > web_cv,
            "pareto cv {pareto_cv} should exceed web cv {web_cv}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = WebLikeTrace::paper_default(9).arrival_times(60.0);
        let b = WebLikeTrace::paper_default(9).arrival_times(60.0);
        assert_eq!(a, b);
    }

    #[test]
    fn sorted_and_bounded() {
        let times = WebLikeTrace::paper_default(2).arrival_times(100.0);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|&t| t < 100.0));
    }

    #[test]
    fn aggregation_smooths_slowly() {
        // Self-similarity indicator: CV decays slower than sqrt(m) when
        // aggregating m bins (compared to Poisson). We only check that
        // burstiness survives 10× aggregation.
        let trace = WebLikeTrace::paper_default(13);
        let times = trace.arrival_times(400.0);
        let fine = coefficient_of_variation(&rate_series(&times, 1.0, 400.0));
        let coarse = coefficient_of_variation(&rate_series(&times, 10.0, 400.0));
        assert!(
            coarse > fine / 10.0_f64.sqrt(),
            "coarse {coarse} vs fine {fine}"
        );
    }
}
