//! Trace persistence and replay.
//!
//! The paper replays a recorded trace (the Internet Traffic Archive
//! timestamps). This module provides the same workflow for user data:
//! save any generated trace to a one-column CSV of arrival timestamps
//! (seconds), and replay a CSV — optionally rescaled — as an
//! [`ArrivalTrace`].

use crate::ArrivalTrace;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// A trace loaded from (or destined for) a timestamp file.
#[derive(Debug, Clone, PartialEq)]
pub struct FileTrace {
    times: Vec<f64>,
}

/// Errors from trace file I/O.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed as a timestamp.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Offending content.
        content: String,
    },
    /// Timestamps were not sorted or contained negatives.
    Invalid(&'static str),
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file I/O: {e}"),
            TraceFileError::Parse { line, content } => {
                write!(f, "line {line}: cannot parse timestamp {content:?}")
            }
            TraceFileError::Invalid(why) => write!(f, "invalid trace: {why}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<std::io::Error> for TraceFileError {
    fn from(e: std::io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

impl FileTrace {
    /// Wraps an in-memory list of arrival instants (must be sorted,
    /// non-negative).
    pub fn from_times(times: Vec<f64>) -> Result<Self, TraceFileError> {
        if times.iter().any(|t| !t.is_finite() || *t < 0.0) {
            return Err(TraceFileError::Invalid("negative or non-finite timestamp"));
        }
        if times.windows(2).any(|w| w[0] > w[1]) {
            return Err(TraceFileError::Invalid("timestamps not sorted"));
        }
        Ok(Self { times })
    }

    /// Loads a one-timestamp-per-line file. Blank lines and lines
    /// starting with `#` are skipped.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        let file = std::fs::File::open(path)?;
        let mut times = Vec::new();
        for (i, line) in BufReader::new(file).lines().enumerate() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let t: f64 = trimmed.parse().map_err(|_| TraceFileError::Parse {
                line: i + 1,
                content: trimmed.to_string(),
            })?;
            times.push(t);
        }
        Self::from_times(times)
    }

    /// Saves any trace to a timestamp file replayable by [`Self::load`].
    pub fn save(
        trace: &dyn ArrivalTrace,
        duration_s: f64,
        path: impl AsRef<Path>,
    ) -> Result<(), TraceFileError> {
        let times = trace.arrival_times(duration_s);
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(out, "# streamshed arrival trace: {} tuples", times.len())?;
        for t in times {
            writeln!(out, "{t:.9}")?;
        }
        Ok(())
    }

    /// Number of recorded arrivals.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Rescales the trace in time so its span maps onto `new_duration_s`
    /// (the paper compresses/stretches recorded traces to the experiment
    /// length the same way).
    pub fn rescaled_to(&self, new_duration_s: f64) -> FileTrace {
        assert!(new_duration_s > 0.0);
        let span = self.times.last().copied().unwrap_or(0.0).max(f64::EPSILON);
        FileTrace {
            times: self
                .times
                .iter()
                .map(|t| t / span * new_duration_s * (1.0 - 1e-12))
                .collect(),
        }
    }
}

impl ArrivalTrace for FileTrace {
    fn arrival_times(&self, duration_s: f64) -> Vec<f64> {
        self.times
            .iter()
            .copied()
            .take_while(|&t| t < duration_s)
            .collect()
    }

    fn mean_rate(&self) -> f64 {
        match (self.times.first(), self.times.last()) {
            (Some(&a), Some(&b)) if b > a => self.times.len() as f64 / (b - a),
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParetoTrace;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("streamshed_trace_{name}_{}.csv", std::process::id()))
    }

    #[test]
    fn save_load_roundtrip() {
        let path = tmp("roundtrip");
        let trace = ParetoTrace::builder().mean_rate(100.0).seed(3).build();
        FileTrace::save(&trace, 20.0, &path).unwrap();
        let loaded = FileTrace::load(&path).unwrap();
        let original = trace.arrival_times(20.0);
        assert_eq!(loaded.len(), original.len());
        let replayed = loaded.arrival_times(20.0);
        for (a, b) in replayed.iter().zip(&original) {
            assert!((a - b).abs() < 1e-8);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_skips_comments_and_blanks() {
        let path = tmp("comments");
        std::fs::write(&path, "# header\n\n0.5\n1.5\n\n# trailing\n2.5\n").unwrap();
        let t = FileTrace::load(&path).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.arrival_times(10.0), vec![0.5, 1.5, 2.5]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_reports_bad_line() {
        let path = tmp("bad");
        std::fs::write(&path, "0.5\nnot-a-number\n").unwrap();
        match FileTrace::load(&path) {
            Err(TraceFileError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_unsorted_and_negative() {
        assert!(matches!(
            FileTrace::from_times(vec![1.0, 0.5]),
            Err(TraceFileError::Invalid(_))
        ));
        assert!(matches!(
            FileTrace::from_times(vec![-1.0]),
            Err(TraceFileError::Invalid(_))
        ));
    }

    #[test]
    fn rescaling_preserves_count_and_order() {
        let t = FileTrace::from_times(vec![0.0, 5.0, 10.0]).unwrap();
        let r = t.rescaled_to(2.0);
        assert_eq!(r.len(), 3);
        let times = r.arrival_times(2.0);
        assert_eq!(times.len(), 3);
        assert!(times[2] < 2.0);
    }

    #[test]
    fn truncation_by_duration() {
        let t = FileTrace::from_times(vec![0.1, 0.9, 5.0]).unwrap();
        assert_eq!(t.arrival_times(1.0), vec![0.1, 0.9]);
        assert!((t.mean_rate() - 3.0 / 4.9).abs() < 1e-9);
    }
}
