//! Homogeneous Poisson arrivals — the memoryless baseline against which
//! the heavy-tailed traces are compared (the paper's reference \[24\],
//! Paxson & Floyd, is titled "the failure of Poisson modeling" for a
//! reason: real traffic is burstier; tests verify that ordering here).

use crate::ArrivalTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Poisson arrivals at a constant intensity.
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonTrace {
    rate: f64,
    seed: u64,
}

impl PoissonTrace {
    /// Creates a Poisson trace with the given intensity (tuples/s).
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(rate > 0.0 && rate.is_finite());
        Self { rate, seed }
    }
}

impl ArrivalTrace for PoissonTrace {
    fn arrival_times(&self, duration_s: f64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity((self.rate * duration_s * 1.1) as usize);
        let mut t = 0.0f64;
        loop {
            // Exponential inter-arrival via inverse CDF.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / self.rate;
            if t >= duration_s {
                break;
            }
            out.push(t);
        }
        out
    }

    fn mean_rate(&self) -> f64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{coefficient_of_variation, rate_series, ParetoTrace};

    #[test]
    fn mean_rate_is_respected() {
        let trace = PoissonTrace::new(200.0, 3);
        let times = trace.arrival_times(200.0);
        let rate = times.len() as f64 / 200.0;
        assert!((rate - 200.0).abs() < 10.0, "rate {rate}");
    }

    #[test]
    fn interarrivals_are_memoryless() {
        // CV of exponential inter-arrivals is 1.
        let trace = PoissonTrace::new(500.0, 5);
        let times = trace.arrival_times(100.0);
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let cv = coefficient_of_variation(&gaps);
        assert!((cv - 1.0).abs() < 0.05, "interarrival CV {cv}");
    }

    #[test]
    fn poisson_is_calmer_than_pareto() {
        let poisson = PoissonTrace::new(200.0, 9);
        let pareto = ParetoTrace::builder().mean_rate(200.0).bias(0.5).seed(9).build();
        let p_cv = coefficient_of_variation(&rate_series(
            &poisson.arrival_times(300.0),
            1.0,
            300.0,
        ));
        let h_cv = coefficient_of_variation(&rate_series(
            &pareto.arrival_times(300.0),
            1.0,
            300.0,
        ));
        assert!(h_cv > p_cv * 2.0, "pareto {h_cv} vs poisson {p_cv}");
    }

    #[test]
    fn sorted_and_deterministic() {
        let a = PoissonTrace::new(100.0, 1).arrival_times(10.0);
        let b = PoissonTrace::new(100.0, 1).arrival_times(10.0);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }
}
