//! Sinusoidal arrival traces (model verification, Fig. 7).

use crate::ArrivalTrace;

/// Arrivals whose instantaneous rate follows
/// `r(t) = offset + amplitude · sin(2πt / period + phase)`, clamped at 0.
///
/// The paper's Fig. 7 uses a sinusoid sweeping `[0, 400]` tuples/s.
/// Arrival instants are produced deterministically by inverting the
/// cumulative rate function: the n-th arrival occurs when
/// `∫₀ᵗ r(τ)dτ = n`.
#[derive(Debug, Clone, PartialEq)]
pub struct SineTrace {
    /// Minimum instantaneous rate (t/s).
    pub min_rate: f64,
    /// Maximum instantaneous rate (t/s).
    pub max_rate: f64,
    /// Oscillation period, seconds.
    pub period_s: f64,
    /// Phase offset, radians.
    pub phase: f64,
}

impl SineTrace {
    /// Creates a sinusoid sweeping `[min_rate, max_rate]` with the given
    /// period.
    pub fn new(min_rate: f64, max_rate: f64, period_s: f64) -> Self {
        assert!(min_rate >= 0.0 && max_rate >= min_rate && period_s > 0.0);
        Self {
            min_rate,
            max_rate,
            period_s,
            phase: -std::f64::consts::FRAC_PI_2, // start at the minimum
        }
    }

    /// The paper's Fig. 7 input: rate sweeping `[0, 400]` t/s. A 40-second
    /// oscillation matches the figure's visible period.
    pub fn paper_sine() -> Self {
        Self::new(0.0, 400.0, 40.0)
    }

    /// Instantaneous rate at time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        let offset = (self.max_rate + self.min_rate) / 2.0;
        let amplitude = (self.max_rate - self.min_rate) / 2.0;
        let omega = 2.0 * std::f64::consts::PI / self.period_s;
        (offset + amplitude * (omega * t + self.phase).sin()).max(0.0)
    }
}

impl ArrivalTrace for SineTrace {
    fn arrival_times(&self, duration_s: f64) -> Vec<f64> {
        // Integrate the rate with a fine fixed step; emit an arrival each
        // time the accumulated mass crosses the next integer.
        let dt = (self.period_s / 10_000.0).min(1e-3);
        let mut out = Vec::new();
        let mut mass = 0.0f64;
        let mut next = 1.0f64;
        let mut t = 0.0f64;
        while t < duration_s {
            mass += self.rate_at(t) * dt;
            while mass >= next {
                // Linear back-interpolation inside the step.
                out.push(t.min(duration_s));
                next += 1.0;
            }
            t += dt;
        }
        out
    }

    fn mean_rate(&self) -> f64 {
        (self.max_rate + self.min_rate) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate_series;

    #[test]
    fn total_mass_matches_mean_rate() {
        let trace = SineTrace::new(0.0, 400.0, 40.0);
        // Over one full period the count should equal mean_rate · period.
        let times = trace.arrival_times(40.0);
        let want = trace.mean_rate() * 40.0;
        assert!(
            (times.len() as f64 - want).abs() < want * 0.01,
            "count {} want {want}",
            times.len()
        );
    }

    #[test]
    fn rate_oscillates_between_bounds() {
        let trace = SineTrace::new(50.0, 350.0, 20.0);
        let times = trace.arrival_times(60.0);
        let rates = rate_series(&times, 1.0, 60.0);
        let max = rates.iter().cloned().fold(0.0, f64::max);
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 300.0, "max {max}");
        assert!(min < 100.0, "min {min}");
    }

    #[test]
    fn starts_at_minimum() {
        let trace = SineTrace::new(0.0, 400.0, 40.0);
        assert!(trace.rate_at(0.0) < 1.0);
        assert!((trace.rate_at(10.0) - 200.0).abs() < 1.0);
        assert!((trace.rate_at(20.0) - 400.0).abs() < 1.0);
    }

    #[test]
    fn times_sorted_and_bounded() {
        let trace = SineTrace::paper_sine();
        let times = trace.arrival_times(30.0);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|&t| t <= 30.0));
    }

    #[test]
    fn rate_never_negative() {
        // min_rate 0 with phase at the trough must clamp at 0.
        let trace = SineTrace::new(0.0, 100.0, 10.0);
        for i in 0..100 {
            assert!(trace.rate_at(i as f64 * 0.1) >= 0.0);
        }
    }
}
