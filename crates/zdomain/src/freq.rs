//! Frequency-domain analysis: Bode data, sensitivity functions, and
//! stability margins for the closed loop.
//!
//! §4.3.1 argues closed-loop disturbance rejection improves with loop
//! gain (`y ≈ r + di/K + do/K`); these tools make the claim quantitative:
//! the sensitivity `S = 1/(1+CG)` *is* the factor by which disturbances
//! are attenuated at each frequency.

use crate::complex::Complex;
use crate::tf::TransferFunction;
use serde::{Deserialize, Serialize};

/// One row of Bode data at a normalised frequency (rad/sample).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BodePoint {
    /// Frequency, rad/sample, in `(0, π]`.
    pub omega: f64,
    /// Magnitude, absolute (not dB).
    pub magnitude: f64,
    /// Magnitude in decibels.
    pub magnitude_db: f64,
    /// Phase, radians.
    pub phase: f64,
}

/// Samples the frequency response at `n` log-spaced frequencies in
/// `[omega_min, π]`.
pub fn bode(tf: &TransferFunction, omega_min: f64, n: usize) -> Vec<BodePoint> {
    assert!(omega_min > 0.0 && omega_min < std::f64::consts::PI);
    assert!(n >= 2);
    let ratio = (std::f64::consts::PI / omega_min).powf(1.0 / (n - 1) as f64);
    (0..n)
        .map(|i| {
            let omega = omega_min * ratio.powi(i as i32);
            let h = tf.freq_response(omega);
            BodePoint {
                omega,
                magnitude: h.abs(),
                magnitude_db: 20.0 * h.abs().log10(),
                phase: h.arg(),
            }
        })
        .collect()
}

/// The sensitivity function `S(z) = 1 / (1 + L(z))` of a loop `L = C·G`:
/// output-disturbance → output. `|S| < 1` marks the frequencies at which
/// feedback *attenuates* disturbances.
pub fn sensitivity(open_loop: &TransferFunction) -> TransferFunction {
    // 1/(1+L) = D / (D + N)
    TransferFunction::new(
        open_loop.den().clone(),
        open_loop.den() + open_loop.num(),
    )
    .expect("sensitivity of a proper loop is proper")
}

/// The complementary sensitivity `T(z) = L/(1+L)` (reference → output).
pub fn complementary_sensitivity(open_loop: &TransferFunction) -> TransferFunction {
    open_loop.close_unity_feedback()
}

/// Classical stability margins of an open loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Margins {
    /// Gain margin (absolute factor; `INFINITY` if the phase never
    /// crosses −180°).
    pub gain_margin: f64,
    /// Phase margin, radians (`NAN` if the gain never crosses 1).
    pub phase_margin: f64,
    /// Gain-crossover frequency, rad/sample (`NAN` if none).
    pub crossover: f64,
}

/// Estimates gain/phase margins by dense frequency sweep.
pub fn margins(open_loop: &TransferFunction) -> Margins {
    let n = 20_000;
    let mut gain_margin = f64::INFINITY;
    let mut phase_margin = f64::NAN;
    let mut crossover = f64::NAN;
    let mut prev: Option<(f64, Complex)> = None;
    for i in 1..=n {
        let omega = std::f64::consts::PI * i as f64 / n as f64;
        let h = open_loop.freq_response(omega);
        if let Some((pomega, ph)) = prev {
            // Phase crossing of −π (where imag changes sign with real < 0).
            if ph.im.signum() != h.im.signum() && (h.re < 0.0 || ph.re < 0.0) {
                let mag = h.abs().min(ph.abs());
                if mag > 1e-12 {
                    gain_margin = gain_margin.min(1.0 / mag);
                }
            }
            // Gain crossover |L| = 1.
            let (m0, m1) = (ph.abs(), h.abs());
            if (m0 - 1.0) * (m1 - 1.0) <= 0.0 && m0 != m1 {
                let t = (1.0 - m0) / (m1 - m0);
                let w = pomega + t * (omega - pomega);
                if crossover.is_nan() {
                    crossover = w;
                    let phase = h.arg();
                    phase_margin = std::f64::consts::PI + phase;
                }
            }
        }
        prev = Some((omega, h));
    }
    Margins {
        gain_margin,
        phase_margin,
        crossover,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::ControllerParams;
    use crate::poly::Poly;

    fn paper_open_loop() -> TransferFunction {
        ControllerParams::PAPER
            .transfer_function()
            .series(&TransferFunction::integrator(1.0))
    }

    #[test]
    fn bode_is_log_spaced_and_finite() {
        let pts = bode(&paper_open_loop(), 1e-3, 50);
        assert_eq!(pts.len(), 50);
        assert!(pts.windows(2).all(|w| w[1].omega > w[0].omega));
        assert!((pts.last().unwrap().omega - std::f64::consts::PI).abs() < 1e-9);
        assert!(pts.iter().all(|p| p.magnitude.is_finite()));
    }

    #[test]
    fn integrator_loop_has_high_gain_at_low_freq() {
        // §4.3.1: large K ⇒ disturbances divided by K. The integrator
        // gives unbounded DC gain.
        let pts = bode(&paper_open_loop(), 1e-4, 10);
        assert!(pts[0].magnitude > 100.0, "low-freq gain {}", pts[0].magnitude);
    }

    #[test]
    fn sensitivity_small_at_low_freq_one_at_high() {
        let s = sensitivity(&paper_open_loop());
        let low = s.freq_response(1e-4).abs();
        let high = s.freq_response(std::f64::consts::PI).abs();
        assert!(low < 0.01, "low-frequency sensitivity {low}");
        assert!(high > 0.3 && high < 3.0, "high-frequency sensitivity {high}");
    }

    #[test]
    fn s_plus_t_equals_one() {
        let l = paper_open_loop();
        let s = sensitivity(&l);
        let t = complementary_sensitivity(&l);
        for &omega in &[0.01, 0.1, 1.0, 3.0] {
            let sum = s.freq_response(omega) + t.freq_response(omega);
            assert!((sum - crate::complex::Complex::ONE).abs() < 1e-9, "ω = {omega}");
        }
    }

    #[test]
    fn sensitivity_poles_match_closed_loop() {
        let s = sensitivity(&paper_open_loop());
        for p in s.poles() {
            assert!((p.re - 0.7).abs() < 1e-6 && p.im.abs() < 1e-6);
        }
    }

    #[test]
    fn paper_loop_has_healthy_margins() {
        let m = margins(&paper_open_loop());
        assert!(m.crossover.is_finite() && m.crossover > 0.0);
        // Phase margin comfortably positive (critically damped design).
        assert!(
            m.phase_margin > 0.5,
            "phase margin {} rad",
            m.phase_margin
        );
        assert!(m.gain_margin > 1.5, "gain margin {}", m.gain_margin);
    }

    #[test]
    fn margins_of_pure_gain_loop() {
        // L = 0.5: never crosses unity gain, no phase crossover.
        let l = TransferFunction::new(Poly::constant(0.5), Poly::constant(1.0)).unwrap();
        let m = margins(&l);
        assert!(m.crossover.is_nan());
        assert!(m.gain_margin.is_infinite() || m.gain_margin > 1.0);
    }
}
