//! A minimal complex-number type over `f64`.
//!
//! The workspace deliberately avoids pulling in `num-complex`; the handful
//! of operations needed by root finding and pole analysis fit in ~100 lines
//! and keep the dependency set within the approved list.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + im·i` over `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Magnitude (modulus) `|z|`, computed with `hypot` for robustness.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude, avoiding the square root.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Principal argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Multiplicative inverse. Returns NaNs when `self` is zero.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Principal natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        Self::new(self.abs().ln(), self.arg())
    }

    /// Complex exponential.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        if r == 0.0 {
            return Self::ZERO;
        }
        let re = ((r + self.re) / 2.0).max(0.0).sqrt();
        let im_mag = ((r - self.re) / 2.0).max(0.0).sqrt();
        Self::new(re, if self.im >= 0.0 { im_mag } else { -im_mag })
    }

    /// `true` if both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// `true` if the imaginary part is negligible relative to the magnitude.
    #[inline]
    pub fn is_approx_real(self, tol: f64) -> bool {
        self.im.abs() <= tol * self.abs().max(1.0)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        // Smith's algorithm avoids overflow for extreme magnitudes.
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Self::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Self::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self::new(self.re * rhs, self.im * rhs)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert!(close(z + Complex::ZERO, z));
        assert!(close(z * Complex::ONE, z));
        assert!(close(z - z, Complex::ZERO));
        assert!(close(z * z.inv(), Complex::ONE));
    }

    #[test]
    fn abs_and_arg() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-12);
        let w = Complex::I;
        assert!((w.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn division_matches_multiplication_by_inverse() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert!(close(a / b, a * b.inv()));
    }

    #[test]
    fn division_is_robust_to_large_magnitudes() {
        let a = Complex::new(1e300, 1e300);
        let b = Complex::new(2e300, 1e300);
        let q = a / b;
        assert!(q.is_finite());
        assert!((q.re - 0.6).abs() < 1e-12);
        assert!((q.im - 0.2).abs() < 1e-12);
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (0.0, 2.0), (-1.0, 0.0), (3.0, -4.0)] {
            let z = Complex::new(re, im);
            let s = z.sqrt();
            assert!(close(s * s, z), "sqrt({z}) = {s}");
        }
    }

    #[test]
    fn exp_ln_roundtrip() {
        let z = Complex::new(0.3, -0.8);
        assert!(close(z.ln().exp(), z));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex::new(1.5, -2.5);
        assert!(close(z.conj().conj(), z));
        let prod = z * z.conj();
        assert!((prod.im).abs() < 1e-12);
        assert!((prod.re - z.norm_sqr()).abs() < 1e-12);
    }

    #[test]
    fn approx_real_detection() {
        assert!(Complex::new(5.0, 1e-14).is_approx_real(1e-9));
        assert!(!Complex::new(5.0, 0.1).is_approx_real(1e-9));
    }
}
