//! Rational discrete-time transfer functions `H(z) = N(z) / D(z)`.

use crate::complex::Complex;
use crate::poly::Poly;
use crate::roots;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A proper rational transfer function in the z-domain.
///
/// Invariants: the denominator is non-zero and `deg N ≤ deg D`
/// (properness — required for causal simulation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferFunction {
    num: Poly,
    den: Poly,
}

/// Error constructing a [`TransferFunction`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TfError {
    /// Denominator was the zero polynomial.
    ZeroDenominator,
    /// Numerator degree exceeded denominator degree.
    Improper,
}

impl fmt::Display for TfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TfError::ZeroDenominator => write!(f, "denominator polynomial is zero"),
            TfError::Improper => write!(f, "numerator degree exceeds denominator degree"),
        }
    }
}

impl std::error::Error for TfError {}

impl TransferFunction {
    /// Creates a transfer function, validating properness.
    pub fn new(num: Poly, den: Poly) -> Result<Self, TfError> {
        if den.is_zero() {
            return Err(TfError::ZeroDenominator);
        }
        if num.degree() > den.degree() && !num.is_zero() {
            return Err(TfError::Improper);
        }
        Ok(Self { num, den })
    }

    /// The paper's plant: an integrator with gain, `G(z) = g / (z − 1)`
    /// where `g = c·T/H` (Eq. 4).
    pub fn integrator(gain: f64) -> Self {
        Self {
            num: Poly::constant(gain),
            den: Poly::new(vec![-1.0, 1.0]),
        }
    }

    /// A pure gain (degree-zero) transfer function.
    pub fn gain(k: f64) -> Self {
        Self {
            num: Poly::constant(k),
            den: Poly::constant(1.0),
        }
    }

    /// Numerator polynomial.
    pub fn num(&self) -> &Poly {
        &self.num
    }

    /// Denominator polynomial.
    pub fn den(&self) -> &Poly {
        &self.den
    }

    /// System poles (roots of the denominator).
    pub fn poles(&self) -> Vec<Complex> {
        roots::roots(&self.den)
    }

    /// System zeros (roots of the numerator).
    pub fn zeros(&self) -> Vec<Complex> {
        roots::roots(&self.num)
    }

    /// BIBO stability: all poles strictly inside the unit circle.
    pub fn is_stable(&self) -> bool {
        self.poles().iter().all(|p| p.abs() < 1.0 - 1e-9)
    }

    /// Marginal stability: poles inside or on the unit circle, with any
    /// on-circle poles simple. (The raw integrator plant is marginally
    /// stable — its unbounded ramp response to sustained overload is
    /// exactly the instability Example 1 of the paper describes.)
    pub fn is_marginally_stable(&self) -> bool {
        let poles = self.poles();
        let mut on_circle: Vec<Complex> = Vec::new();
        for p in &poles {
            let m = p.abs();
            if m > 1.0 + 1e-9 {
                return false;
            }
            if m > 1.0 - 1e-9 {
                // Repeated pole on the circle → polynomial growth.
                if on_circle.iter().any(|q| (*q - *p).abs() < 1e-6) {
                    return false;
                }
                on_circle.push(*p);
            }
        }
        true
    }

    /// Static (DC) gain `H(1)`. Infinite for systems with an integrator.
    pub fn dc_gain(&self) -> f64 {
        self.num.sum() / self.den.sum()
    }

    /// Frequency response at normalised frequency `omega` (rad/sample):
    /// `H(e^{jω})`.
    pub fn freq_response(&self, omega: f64) -> Complex {
        let z = Complex::from_polar(1.0, omega);
        self.num.eval_complex(z) / self.den.eval_complex(z)
    }

    /// Series (cascade) connection `self · other`.
    pub fn series(&self, other: &TransferFunction) -> TransferFunction {
        TransferFunction {
            num: &self.num * &other.num,
            den: &self.den * &other.den,
        }
    }

    /// Unity negative feedback closure of the open loop `L = self`:
    /// `L / (1 + L)`.
    pub fn close_unity_feedback(&self) -> TransferFunction {
        TransferFunction {
            num: self.num.clone(),
            den: &self.den + &self.num,
        }
    }

    /// Closed-loop transfer function from an *input disturbance* (added at
    /// the plant input) to the output, for loop `C·G` with plant `G`:
    /// `G / (1 + C·G)`. `self` is the plant, `c` the controller.
    pub fn disturbance_to_output(&self, c: &TransferFunction) -> TransferFunction {
        // G/(1+CG) = (Ng·Dc) / (Dg·Dc + Nc·Ng)
        TransferFunction {
            num: &self.num * &c.den,
            den: &(&self.den * &c.den) + &(&c.num * &self.num),
        }
    }

    /// Simulates the system response to an arbitrary input sequence with
    /// zero initial conditions, returning the output sequence of the same
    /// length.
    pub fn simulate(&self, input: &[f64]) -> Vec<f64> {
        let d = self.den.degree();
        let lead = self.den.leading();
        let mut output = vec![0.0; input.len()];
        for k in 0..input.len() {
            // y[k]·den[d] = Σ_i num[i]·u[k-d+i] − Σ_{j<d} den[j]·y[k-d+j]
            let mut acc = 0.0;
            for i in 0..=self.num.degree() {
                let idx = k as isize - d as isize + i as isize;
                if idx >= 0 {
                    acc += self.num.coeff(i) * input[idx as usize];
                }
            }
            for j in 0..d {
                let idx = k as isize - d as isize + j as isize;
                if idx >= 0 {
                    acc -= self.den.coeff(j) * output[idx as usize];
                }
            }
            output[k] = acc / lead;
        }
        output
    }

    /// Unit step response of length `n`.
    pub fn step_response(&self, n: usize) -> Vec<f64> {
        self.simulate(&vec![1.0; n])
    }

    /// Unit impulse response of length `n`.
    pub fn impulse_response(&self, n: usize) -> Vec<f64> {
        let mut input = vec![0.0; n];
        if n > 0 {
            input[0] = 1.0;
        }
        self.simulate(&input)
    }
}

impl fmt::Display for TransferFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}) / ({})", self.num, self.den)
    }
}

/// Summary statistics of a step response, used to check design goals
/// (damping / convergence-rate claims of Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepMetrics {
    /// Final value the response settles to (mean of the tail).
    pub final_value: f64,
    /// Peak overshoot beyond the final value, as a fraction (0 = none).
    pub overshoot: f64,
    /// First sample index where the response enters and stays within ±2%
    /// of the final value, or `None` if it never settles.
    pub settling_index: Option<usize>,
    /// First index where the response reaches 63.2% of the final value.
    pub rise_63_index: Option<usize>,
}

impl StepMetrics {
    /// Computes metrics from a simulated step response.
    pub fn from_response(y: &[f64]) -> Self {
        assert!(!y.is_empty(), "empty response");
        let tail = y.len().saturating_sub(y.len() / 10).max(y.len() - 1);
        let final_value =
            y[tail..].iter().sum::<f64>() / (y.len() - tail) as f64;
        let peak = y.iter().cloned().fold(f64::MIN, f64::max);
        let overshoot = if final_value.abs() > 1e-12 {
            ((peak - final_value) / final_value.abs()).max(0.0)
        } else {
            0.0
        };
        let band = 0.02 * final_value.abs().max(1e-12);
        let settling_index = (0..y.len())
            .find(|&k| y[k..].iter().all(|&v| (v - final_value).abs() <= band));
        let rise_target = 0.632 * final_value;
        let rise_63_index = y.iter().position(|&v| {
            if final_value >= 0.0 {
                v >= rise_target
            } else {
                v <= rise_target
            }
        });
        Self {
            final_value,
            overshoot,
            settling_index,
            rise_63_index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert_eq!(
            TransferFunction::new(Poly::constant(1.0), Poly::zero()),
            Err(TfError::ZeroDenominator)
        );
        assert_eq!(
            TransferFunction::new(Poly::new(vec![0.0, 0.0, 1.0]), Poly::new(vec![1.0, 1.0])),
            Err(TfError::Improper)
        );
    }

    #[test]
    fn integrator_pole_at_one() {
        let g = TransferFunction::integrator(2.0);
        let poles = g.poles();
        assert_eq!(poles.len(), 1);
        assert!((poles[0].re - 1.0).abs() < 1e-12);
        assert!(!g.is_stable());
        assert!(g.is_marginally_stable());
    }

    #[test]
    fn double_integrator_not_marginally_stable() {
        let g = TransferFunction::integrator(1.0);
        let gg = g.series(&g);
        assert!(!gg.is_marginally_stable());
    }

    #[test]
    fn integrator_step_response_is_ramp() {
        let g = TransferFunction::integrator(1.0);
        let y = g.step_response(5);
        // y(k) = sum of past inputs: 0,1,2,3,4
        assert_eq!(y, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn gain_passes_through() {
        let g = TransferFunction::gain(3.0);
        assert_eq!(g.simulate(&[1.0, 2.0]), vec![3.0, 6.0]);
        assert_eq!(g.dc_gain(), 3.0);
    }

    #[test]
    fn first_order_lag_converges_to_dc_gain() {
        // H(z) = 0.3 / (z - 0.7): DC gain 1.
        let h = TransferFunction::new(Poly::constant(0.3), Poly::new(vec![-0.7, 1.0])).unwrap();
        assert!((h.dc_gain() - 1.0).abs() < 1e-12);
        let y = h.step_response(200);
        assert!((y.last().unwrap() - 1.0).abs() < 1e-6);
        assert!(h.is_stable());
    }

    #[test]
    fn series_multiplies_responses() {
        let a = TransferFunction::gain(2.0);
        let b = TransferFunction::gain(5.0);
        let ab = a.series(&b);
        assert_eq!(ab.dc_gain(), 10.0);
    }

    #[test]
    fn closed_loop_of_paper_design_has_designed_poles() {
        // C·G = (0.4z - 0.31) / ((z + (-0.8))(z - 1)) with gains cancelling.
        let cg = TransferFunction::new(
            Poly::new(vec![-0.31, 0.4]),
            &Poly::new(vec![-0.8, 1.0]) * &Poly::new(vec![-1.0, 1.0]),
        )
        .unwrap();
        let cl = cg.close_unity_feedback();
        for p in cl.poles() {
            assert!((p.re - 0.7).abs() < 1e-6 && p.im.abs() < 1e-6, "pole {p}");
        }
        assert!((cl.dc_gain() - 1.0).abs() < 1e-9);
        assert!(cl.is_stable());
    }

    #[test]
    fn freq_response_dc_matches_dc_gain() {
        let h = TransferFunction::new(Poly::constant(0.3), Poly::new(vec![-0.7, 1.0])).unwrap();
        let r = h.freq_response(0.0);
        assert!((r.re - h.dc_gain()).abs() < 1e-12);
        assert!(r.im.abs() < 1e-12);
    }

    #[test]
    fn disturbance_rejection_of_closed_loop() {
        // Plant integrator, paper controller: a step input disturbance must
        // be rejected (output returns to 0) because the controller has
        // integral action through the loop.
        let plant = TransferFunction::integrator(1.0);
        let ctrl =
            TransferFunction::new(Poly::new(vec![-0.31, 0.4]), Poly::new(vec![-0.8, 1.0])).unwrap();
        let dist_tf = plant.disturbance_to_output(&ctrl);
        let y = dist_tf.step_response(300);
        assert!(y.iter().take(10).any(|&v| v.abs() > 1e-3), "responds at first");
        // The integrator plant + proportional-lag controller leaves a
        // constant steady-state offset for input disturbances; it must at
        // least be bounded and converge.
        let tail: Vec<f64> = y[250..].to_vec();
        let spread = tail.iter().cloned().fold(f64::MIN, f64::max)
            - tail.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 1e-6, "settles to a constant");
    }

    #[test]
    fn impulse_response_sums_to_dc_gain_for_stable_system() {
        let h = TransferFunction::new(Poly::constant(0.3), Poly::new(vec![-0.7, 1.0])).unwrap();
        let sum: f64 = h.impulse_response(400).iter().sum();
        assert!((sum - h.dc_gain()).abs() < 1e-9);
    }

    #[test]
    fn step_metrics_detects_overshoot_and_settling() {
        // Underdamped second-order: poles 0.6 ± 0.55i (damping < 0.7).
        let den = Poly::from_complex_roots(
            &[Complex::new(0.6, 0.55), Complex::new(0.6, -0.55)],
            1e-9,
        );
        let num = Poly::constant(den.sum()); // DC gain 1
        let h = TransferFunction::new(num, den).unwrap();
        let y = h.step_response(200);
        let m = StepMetrics::from_response(&y);
        assert!((m.final_value - 1.0).abs() < 1e-6);
        assert!(m.overshoot > 0.05, "visible oscillation expected");
        assert!(m.settling_index.is_some());

        // Critically damped paper design: negligible overshoot.
        let cg = TransferFunction::new(
            Poly::new(vec![-0.31, 0.4]),
            &Poly::new(vec![-0.8, 1.0]) * &Poly::new(vec![-1.0, 1.0]),
        )
        .unwrap();
        let cl = cg.close_unity_feedback();
        let m2 = StepMetrics::from_response(&cl.step_response(100));
        assert!(m2.overshoot < 0.05, "overshoot {}", m2.overshoot);
    }

    #[test]
    fn paper_convergence_rate_three_periods() {
        // Appendix A: poles at 0.7 ≈ e^{-1/3} → ~63% of target in ~3
        // periods, 98% within ~12 periods.
        let cg = TransferFunction::new(
            Poly::new(vec![-0.31, 0.4]),
            &Poly::new(vec![-0.8, 1.0]) * &Poly::new(vec![-1.0, 1.0]),
        )
        .unwrap();
        let cl = cg.close_unity_feedback();
        let y = cl.step_response(40);
        let m = StepMetrics::from_response(&y);
        let rise = m.rise_63_index.expect("must rise");
        assert!(rise <= 4, "63% rise within ~3-4 periods, got {rise}");
        assert!((y[12] - 1.0).abs() < 0.06, "98% within 12 periods: {}", y[12]);
    }
}
