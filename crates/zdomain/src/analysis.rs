//! Pole-location analysis: damping, natural frequency, time constants.
//!
//! Section 4.4.1 of the paper reasons about closed-loop poles in terms of
//! *convergence rate* and *damping*. These helpers make that reasoning
//! executable: a discrete pole `z` maps to an equivalent continuous pole
//! `s = ln(z) / T`, from which damping ratio and natural frequency follow.

use crate::complex::Complex;
use serde::{Deserialize, Serialize};

/// Characterisation of a single discrete-time pole (unit sampling period).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiscretePoleInfo {
    /// The pole location in the z-plane.
    pub pole: (f64, f64),
    /// Pole magnitude `|z|`. Stable iff < 1.
    pub magnitude: f64,
    /// Damping ratio ζ of the equivalent continuous pole.
    /// 1 for positive real poles; < 1 for complex pairs (oscillatory).
    pub damping: f64,
    /// Natural frequency ωₙ (rad/sample) of the equivalent continuous pole.
    pub natural_freq: f64,
    /// Time constant in sampling periods: `−1 / ln|z|`.
    /// Infinite for poles on the unit circle.
    pub time_constant_periods: f64,
}

/// Analyses a discrete pole assuming a unit sampling period.
///
/// For a pole at `z`, the equivalent continuous pole is `s = ln z`, and the
/// damping ratio is `ζ = −Re(s) / |s|` (clamped to `[−1, 1]`).
pub fn damping_of_pole(z: Complex) -> DiscretePoleInfo {
    let magnitude = z.abs();
    let s = z.ln();
    let natural_freq = s.abs();
    let damping = if natural_freq < 1e-12 {
        // z = 1: pure integrator — no decay at all.
        0.0
    } else {
        (-s.re / natural_freq).clamp(-1.0, 1.0)
    };
    let time_constant_periods = if (magnitude - 1.0).abs() < 1e-12 {
        f64::INFINITY
    } else {
        -1.0 / magnitude.ln()
    };
    DiscretePoleInfo {
        pole: (z.re, z.im),
        magnitude,
        damping,
        natural_freq,
        time_constant_periods,
    }
}

/// Converts a desired *convergence horizon* (the number of sampling periods
/// to reach `1 − 1/e ≈ 63%` of a step) into a real pole location:
/// `z = e^{−1/periods}`.
///
/// The paper picks 3 periods and rounds `e^{−1/3} ≈ 0.717` down to 0.7.
pub fn pole_for_convergence_periods(periods: f64) -> f64 {
    assert!(periods > 0.0, "convergence horizon must be positive");
    (-1.0 / periods).exp()
}

/// Whether a set of poles satisfies the paper's design guidance:
/// all stable, damping ≥ `min_damping` (paper: 0.7–1), and time constant
/// ≤ `max_periods`.
pub fn satisfies_design_goals(
    poles: &[Complex],
    min_damping: f64,
    max_periods: f64,
) -> bool {
    poles.iter().all(|&p| {
        let info = damping_of_pole(p);
        info.magnitude < 1.0
            && info.damping >= min_damping - 1e-9
            && info.time_constant_periods <= max_periods + 1e-9
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_real_pole_is_critically_damped() {
        let info = damping_of_pole(Complex::real(0.7));
        assert!((info.damping - 1.0).abs() < 1e-12);
        assert!((info.magnitude - 0.7).abs() < 1e-12);
        // Time constant of 0.7-pole ≈ 2.8 periods (paper: "3 periods").
        assert!((info.time_constant_periods - 2.803).abs() < 0.01);
    }

    #[test]
    fn complex_pole_is_underdamped() {
        let info = damping_of_pole(Complex::new(0.6, 0.5));
        assert!(info.damping < 1.0);
        assert!(info.damping > 0.0);
        assert!(info.magnitude < 1.0);
    }

    #[test]
    fn pole_at_one_has_zero_damping_and_infinite_time_constant() {
        let info = damping_of_pole(Complex::real(1.0));
        assert_eq!(info.damping, 0.0);
        assert!(info.time_constant_periods.is_infinite());
    }

    #[test]
    fn negative_real_pole_rings() {
        // A pole at −0.5 alternates sign every sample — damping well below
        // the ζ ≥ 0.7 design zone.
        let info = damping_of_pole(Complex::real(-0.5));
        assert!(info.damping < 0.7);
    }

    #[test]
    fn convergence_periods_maps_to_paper_pole() {
        let p = pole_for_convergence_periods(3.0);
        assert!((p - 0.7165).abs() < 1e-3);
        // ... which the paper rounds to 0.7.
    }

    #[test]
    fn design_goal_predicate() {
        let good = [Complex::real(0.7), Complex::real(0.7)];
        assert!(satisfies_design_goals(&good, 0.7, 3.5));
        let oscillatory = [Complex::new(0.3, 0.8), Complex::new(0.3, -0.8)];
        assert!(!satisfies_design_goals(&oscillatory, 0.7, 10.0));
        let slow = [Complex::real(0.99)];
        assert!(!satisfies_design_goals(&slow, 0.7, 3.5));
        let unstable = [Complex::real(1.2)];
        assert!(!satisfies_design_goals(&unstable, 0.0, f64::INFINITY));
    }

    #[test]
    fn faster_pole_smaller_time_constant() {
        let fast = damping_of_pole(Complex::real(0.3));
        let slow = damping_of_pole(Complex::real(0.9));
        assert!(fast.time_constant_periods < slow.time_constant_periods);
    }
}
