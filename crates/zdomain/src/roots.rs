//! Polynomial root finding.
//!
//! Closed forms handle degrees 1–2; higher degrees use the
//! Durand–Kerner (Weierstrass) simultaneous iteration, which is simple,
//! derivative-free, and more than accurate enough for the low-degree
//! characteristic polynomials that arise in controller analysis.

use crate::complex::Complex;
use crate::poly::Poly;

/// Maximum Durand–Kerner iterations before giving up.
const MAX_ITERS: usize = 500;
/// Convergence tolerance on the largest per-root update.
const TOL: f64 = 1e-13;

/// Finds all complex roots of `p`.
///
/// Returns an empty vector for constant polynomials. Roots of real
/// polynomials come back in no particular order; conjugate symmetry is
/// enforced as a post-processing step so downstream pairing is exact.
pub fn roots(p: &Poly) -> Vec<Complex> {
    let p = trim_leading(p);
    match p.degree() {
        0 => Vec::new(),
        1 => vec![Complex::real(-p.coeff(0) / p.coeff(1))],
        2 => quadratic_roots(p.coeff(0), p.coeff(1), p.coeff(2)),
        _ => durand_kerner(&p.monic()),
    }
}

/// Returns only the real roots (imaginary part below `tol`).
pub fn real_roots(p: &Poly, tol: f64) -> Vec<f64> {
    roots(p)
        .into_iter()
        .filter(|r| r.is_approx_real(tol))
        .map(|r| r.re)
        .collect()
}

/// Largest root magnitude — the spectral radius of the companion matrix.
/// Returns 0 for constants.
pub fn spectral_radius(p: &Poly) -> f64 {
    roots(p).iter().map(|r| r.abs()).fold(0.0, f64::max)
}

fn trim_leading(p: &Poly) -> Poly {
    // `Poly::new` already trims; clone for a uniform owned value.
    Poly::new(p.coeffs().to_vec())
}

/// Stable quadratic formula (avoids catastrophic cancellation).
fn quadratic_roots(c0: f64, c1: f64, c2: f64) -> Vec<Complex> {
    debug_assert!(c2 != 0.0);
    let (a, b, c) = (c2, c1, c0);
    let mut disc = b * b - 4.0 * a * c;
    // Snap a rounding-error-sized discriminant to zero so double real
    // roots (e.g. the paper's (z − 0.7)²) do not come out faintly complex.
    let scale = b * b + (4.0 * a * c).abs();
    if disc.abs() <= 1e-12 * scale {
        disc = 0.0;
    }
    if disc >= 0.0 {
        let sq = disc.sqrt();
        // q = -(b + sign(b)·sqrt(disc)) / 2 ; roots are q/a and c/q.
        let q = -0.5 * (b + b.signum() * sq);
        if q == 0.0 {
            // b == 0 and disc == 0 → double root at 0... or both zero.
            let r = Complex::real(0.0);
            return vec![r, r];
        }
        vec![Complex::real(q / a), Complex::real(c / q)]
    } else {
        let re = -b / (2.0 * a);
        let im = (-disc).sqrt() / (2.0 * a);
        vec![Complex::new(re, im), Complex::new(re, -im)]
    }
}

/// Durand–Kerner iteration on a monic polynomial of degree ≥ 3.
fn durand_kerner(p: &Poly) -> Vec<Complex> {
    let n = p.degree();
    // Initial guesses: points on a circle whose radius bounds the roots
    // (Cauchy bound), with an irrational angle offset to break symmetry.
    let radius = cauchy_bound(p);
    let mut xs: Vec<Complex> = (0..n)
        .map(|i| {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / n as f64 + 0.4;
            Complex::from_polar(radius.max(0.5), theta)
        })
        .collect();

    for _ in 0..MAX_ITERS {
        let mut max_step = 0.0_f64;
        for i in 0..n {
            let xi = xs[i];
            let mut denom = Complex::ONE;
            for (j, &xj) in xs.iter().enumerate() {
                if j != i {
                    denom *= xi - xj;
                }
            }
            let delta = p.eval_complex(xi) / denom;
            xs[i] = xi - delta;
            max_step = max_step.max(delta.abs());
        }
        if max_step < TOL {
            break;
        }
    }
    enforce_conjugate_symmetry(&mut xs);
    xs
}

/// Cauchy's bound: all roots satisfy |z| ≤ 1 + max|cᵢ / c_n|.
fn cauchy_bound(p: &Poly) -> f64 {
    let lead = p.leading().abs();
    1.0 + p.coeffs()[..p.degree()]
        .iter()
        .map(|c| (c / lead).abs())
        .fold(0.0, f64::max)
}

/// Snaps nearly-real roots to the real axis and pairs the rest into exact
/// conjugates, so that `Poly::from_complex_roots` round-trips.
fn enforce_conjugate_symmetry(xs: &mut [Complex]) {
    const REAL_TOL: f64 = 1e-8;
    for x in xs.iter_mut() {
        if x.is_approx_real(REAL_TOL) {
            x.im = 0.0;
        }
    }
    let n = xs.len();
    let mut paired = vec![false; n];
    for i in 0..n {
        if paired[i] || xs[i].im == 0.0 {
            continue;
        }
        // Find the closest unpaired conjugate candidate.
        let mut best: Option<(usize, f64)> = None;
        for j in (i + 1)..n {
            if paired[j] || xs[j].im == 0.0 {
                continue;
            }
            let d = (xs[j] - xs[i].conj()).abs();
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((j, d));
            }
        }
        if let Some((j, d)) = best {
            if d <= 1e-6 * xs[i].abs().max(1.0) {
                let avg = (xs[i] + xs[j].conj()) * 0.5;
                xs[i] = avg;
                xs[j] = avg.conj();
                paired[i] = true;
                paired[j] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_real(mut v: Vec<f64>) -> Vec<f64> {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    #[test]
    fn linear_root() {
        let p = Poly::new(vec![-3.0, 1.5]); // 1.5z - 3
        let r = roots(&p);
        assert_eq!(r.len(), 1);
        assert!((r[0].re - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quadratic_real_roots() {
        // (z - 0.7)² = z² - 1.4z + 0.49 — the paper's CLCE.
        let p = Poly::new(vec![0.49, -1.4, 1.0]);
        let r = real_roots(&p, 1e-9);
        assert_eq!(r.len(), 2);
        for root in r {
            assert!((root - 0.7).abs() < 1e-7, "root {root}");
        }
    }

    #[test]
    fn quadratic_complex_roots() {
        // z² + 1 → ±i
        let p = Poly::new(vec![1.0, 0.0, 1.0]);
        let r = roots(&p);
        assert_eq!(r.len(), 2);
        assert!(r.iter().any(|z| (z.im - 1.0).abs() < 1e-12));
        assert!(r.iter().any(|z| (z.im + 1.0).abs() < 1e-12));
    }

    #[test]
    fn quadratic_cancellation_resistant() {
        // Roots 1e-8 and 1e8: naive formula loses the small root.
        let p = Poly::from_real_roots(&[1e-8, 1e8]);
        let r = sorted_real(real_roots(&p, 1e-6));
        assert!((r[0] - 1e-8).abs() / 1e-8 < 1e-6);
        assert!((r[1] - 1e8).abs() / 1e8 < 1e-6);
    }

    #[test]
    fn cubic_known_roots() {
        let p = Poly::from_real_roots(&[0.2, 0.5, 0.9]);
        let r = sorted_real(real_roots(&p, 1e-7));
        assert_eq!(r.len(), 3);
        for (got, want) in r.iter().zip([0.2, 0.5, 0.9]) {
            assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn quartic_mixed_roots() {
        // (z² - z + 0.5)(z - 0.3)(z + 0.6)
        let pair = Poly::new(vec![0.5, -1.0, 1.0]);
        let p = &(&pair * &Poly::new(vec![-0.3, 1.0])) * &Poly::new(vec![0.6, 1.0]);
        let r = roots(&p);
        assert_eq!(r.len(), 4);
        // All roots must actually be roots.
        for z in &r {
            assert!(p.eval_complex(*z).abs() < 1e-8, "residual at {z}");
        }
        // And we can rebuild the polynomial from them.
        let rebuilt = Poly::from_complex_roots(&r, 1e-6).scale(p.leading());
        for i in 0..=p.degree() {
            assert!((rebuilt.coeff(i) - p.coeff(i)).abs() < 1e-7);
        }
    }

    #[test]
    fn spectral_radius_of_stable_poly() {
        let p = Poly::from_real_roots(&[0.7, 0.7]);
        assert!((spectral_radius(&p) - 0.7).abs() < 1e-7);
        let unstable = Poly::from_real_roots(&[1.2, 0.1]);
        assert!(spectral_radius(&unstable) > 1.0);
    }

    #[test]
    fn constant_has_no_roots() {
        assert!(roots(&Poly::constant(5.0)).is_empty());
    }

    #[test]
    fn high_degree_residuals_small() {
        // Degree-7 with clustered roots.
        let want = [0.1, 0.2, 0.3, 0.7, 0.7, -0.5, 0.95];
        let p = Poly::from_real_roots(&want);
        let r = roots(&p);
        assert_eq!(r.len(), 7);
        for z in &r {
            assert!(p.eval_complex(*z).abs() < 1e-6, "residual at {z}");
        }
    }
}
