//! Tiny dense linear algebra: just enough to solve the Diophantine systems
//! that arise in pole placement (a handful of unknowns).

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "dimension mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }
}

/// Error from [`solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is singular (or numerically so) — no unique solution.
    Singular,
    /// Dimension mismatch between matrix and right-hand side.
    DimensionMismatch,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Singular => write!(f, "matrix is singular to working precision"),
            SolveError::DimensionMismatch => write!(f, "matrix/vector dimension mismatch"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Solves the square system `A·x = b` by Gaussian elimination with partial
/// pivoting. `A` is consumed as a working copy.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(SolveError::DimensionMismatch);
    }
    let mut m = a.clone();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Partial pivot: largest magnitude in this column at/below diagonal.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m.get(i, col)
                    .abs()
                    .partial_cmp(&m.get(j, col).abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        let pivot = m.get(pivot_row, col);
        if pivot.abs() < 1e-300 {
            return Err(SolveError::Singular);
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = m.get(col, c);
                m.set(col, c, m.get(pivot_row, c));
                m.set(pivot_row, c, tmp);
            }
            rhs.swap(col, pivot_row);
        }
        // Eliminate below.
        for row in (col + 1)..n {
            let factor = m.get(row, col) / m.get(col, col);
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = m.get(row, c) - factor * m.get(col, c);
                m.set(row, c, v);
            }
            rhs[row] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for (c, xc) in x.iter().enumerate().take(n).skip(row + 1) {
            acc -= m.get(row, c) * xc;
        }
        let diag = m.get(row, row);
        if diag.abs() < 1e-300 {
            return Err(SolveError::Singular);
        }
        x[row] = acc / diag;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        let x = solve(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_general_system() {
        // 2x + y = 5 ; x - y = 1 → x = 2, y = 1
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, -1.0]);
        let x = solve(&a, &[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // First diagonal entry zero — requires a row swap.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = solve(&a, &[3.0, 4.0]).unwrap();
        assert!((x[0] - 4.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(SolveError::Singular));
    }

    #[test]
    fn detects_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(SolveError::DimensionMismatch));
    }

    #[test]
    fn residual_is_small_for_ill_conditioned() {
        // Hilbert-like 4×4: solvable but poorly conditioned.
        let n = 4;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, 1.0 / ((i + j + 1) as f64));
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
        let x = solve(&a, &b).unwrap();
        for (i, bi) in b.iter().enumerate() {
            let acc: f64 = x
                .iter()
                .enumerate()
                .map(|(j, xj)| a.get(i, j) * xj)
                .sum();
            assert!((acc - bi).abs() < 1e-7, "row {i} residual");
        }
    }
}
