//! Controller design by pole placement (Appendix A of the paper).
//!
//! Two levels are provided:
//!
//! 1. [`design_for_integrator`] — the paper's closed-form design for the
//!    integrator plant `G(z) = g/(z−1)` with a first-order controller
//!    `C(z) = (1/g)·(b0·z + b1)/(z + a)`. The plant gain `g = cT/H`
//!    cancels, so the returned parameters are gain-normalised; the runtime
//!    controller multiplies by `H/(cT)` exactly as Eq. (10) does.
//! 2. [`pole_placement`] — a general Diophantine solver
//!    `D(z)A(z) + N(z)B(z) = P*(z)` via a Sylvester linear system, for
//!    arbitrary coprime plants. Used for ablations and as an independent
//!    check of the closed form.

use crate::linalg::{solve, Matrix, SolveError};
use crate::poly::Poly;
use crate::tf::TransferFunction;
use serde::{Deserialize, Serialize};

/// Gain-normalised parameters of the paper's first-order controller.
///
/// The runtime control law (Eq. 10) is
/// `u(k) = (H/cT)·[b0·e(k) + b1·e(k−1)] − a·u(k−1)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerParams {
    /// Controller pole parameter (denominator `z + a`).
    pub a: f64,
    /// Current-error weight.
    pub b0: f64,
    /// Previous-error weight.
    pub b1: f64,
}

impl ControllerParams {
    /// The parameters reported in §5 of the paper:
    /// `b0 = 0.4, b1 = −0.31, a = −0.8`.
    pub const PAPER: ControllerParams = ControllerParams {
        a: -0.8,
        b0: 0.4,
        b1: -0.31,
    };

    /// The gain-normalised controller transfer function
    /// `(b0·z + b1) / (z + a)`.
    pub fn transfer_function(&self) -> TransferFunction {
        TransferFunction::new(
            Poly::new(vec![self.b1, self.b0]),
            Poly::new(vec![self.a, 1.0]),
        )
        .expect("first-order controller is always proper")
    }

    /// Closed loop `CG/(1+CG)` for the nominal integrator plant (plant
    /// gain cancels against the controller's `1/g` factor).
    pub fn closed_loop(&self) -> TransferFunction {
        let open = self
            .transfer_function()
            .series(&TransferFunction::integrator(1.0));
        open.close_unity_feedback()
    }

    /// The closed-loop characteristic polynomial
    /// `z² + (a − 1 + b0)·z + (b1 − a)`.
    pub fn clce(&self) -> Poly {
        Poly::new(vec![self.b1 - self.a, self.a - 1.0 + self.b0, 1.0])
    }

    /// Verifies Appendix A's static-gain condition (Eq. 19): the
    /// closed-loop DC gain must be 1. For the integrator plant this holds
    /// identically whenever `b0 + b1 ≠ 0` — the design's hidden redundancy.
    pub fn static_gain(&self) -> f64 {
        self.closed_loop().dc_gain()
    }
}

/// Specification for [`design_for_integrator`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpec {
    /// Desired monic closed-loop characteristic polynomial (degree 2).
    pub clce: Poly,
    /// The design's free parameter: the current-error weight `b0`.
    ///
    /// Eq. (19) of the paper is automatically satisfied for the integrator
    /// plant, leaving one degree of freedom; the paper implicitly fixes it
    /// at `b0 = 0.4`. Larger `b0` reacts harder to the newest error sample.
    pub b0: f64,
}

impl DesignSpec {
    /// Double real pole at `p`, paper default free parameter.
    pub fn from_double_pole(p: f64) -> Self {
        Self {
            clce: Poly::from_real_roots(&[p, p]),
            b0: 0.4,
        }
    }

    /// Two (possibly distinct) real poles.
    pub fn from_poles(p1: f64, p2: f64) -> Self {
        Self {
            clce: Poly::from_real_roots(&[p1, p2]),
            b0: 0.4,
        }
    }

    /// The paper's design: `(z − 0.7)²` and `b0 = 0.4`, which yields
    /// exactly `b0 = 0.4, b1 = −0.31, a = −0.8`.
    pub fn paper_default() -> Self {
        Self::from_double_pole(0.7)
    }

    /// Overrides the free parameter.
    pub fn with_b0(mut self, b0: f64) -> Self {
        self.b0 = b0;
        self
    }
}

/// Solves Appendix A's design equations for the integrator plant.
///
/// Matching `(z + a)(z − 1) + (b0·z + b1) = z² + p1·z + p0` gives
/// `a = p1 + 1 − b0` and `b1 = p0 + a`. Panics if the specification's CLCE
/// is not a monic quadratic.
///
/// The paper places a double closed-loop pole at `z = 0.7`, i.e.
/// `(z − 0.7)² = z² − 1.4z + 0.49`, and fixes `b0 = 0.4`; the design
/// equations then give exactly the published constants `b1 = −0.31`
/// and `a = −0.8`:
///
/// ```
/// use streamshed_zdomain::design::{design_for_integrator, DesignSpec};
///
/// let params = design_for_integrator(&DesignSpec::from_double_pole(0.7));
/// assert!((params.b0 - 0.4).abs() < 1e-12);
/// assert!((params.b1 - (-0.31)).abs() < 1e-12); // b1 = 0.49 + a
/// assert!((params.a - (-0.8)).abs() < 1e-12);   // a  = −1.4 + 1 − 0.4
/// ```
pub fn design_for_integrator(spec: &DesignSpec) -> ControllerParams {
    assert_eq!(spec.clce.degree(), 2, "CLCE must be quadratic");
    let clce = spec.clce.monic();
    let p1 = clce.coeff(1);
    let p0 = clce.coeff(0);
    let b0 = spec.b0;
    let a = p1 + 1.0 - b0;
    let b1 = p0 + a;
    ControllerParams { a, b0, b1 }
}

/// Error from [`pole_placement`].
#[derive(Debug, Clone, PartialEq)]
pub enum DesignError {
    /// The desired characteristic polynomial has the wrong degree
    /// (must be `deg A + controller order`).
    DegreeMismatch {
        /// Expected degree of the desired polynomial.
        expected: usize,
        /// Actual degree supplied.
        actual: usize,
    },
    /// The Sylvester system was singular — plant not coprime, or the
    /// placement is infeasible at this controller order.
    Infeasible(SolveError),
}

impl std::fmt::Display for DesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignError::DegreeMismatch { expected, actual } => write!(
                f,
                "desired polynomial degree {actual}, expected {expected}"
            ),
            DesignError::Infeasible(e) => write!(f, "placement infeasible: {e}"),
        }
    }
}

impl std::error::Error for DesignError {}

/// General pole placement: finds controller `C = N/D` with
/// `deg D = deg N = deg A − 1` and `D` monic such that
/// `D·A + N·B = desired`, by solving the Sylvester linear system.
///
/// For a plant of order `n`, `desired` must be monic of degree `2n − 1`.
/// This is the textbook minimal-order placement; the paper instead uses an
/// order-`n` controller with one free parameter (see
/// [`design_for_integrator`]), and tests verify the two agree on achieved
/// pole locations.
pub fn pole_placement(
    plant: &TransferFunction,
    desired: &Poly,
) -> Result<TransferFunction, DesignError> {
    let a = plant.den().monic();
    let scale = plant.den().leading();
    let b = plant.num().scale(1.0 / scale);
    let n = a.degree();
    assert!(n >= 1, "plant must be dynamic");
    let m = n - 1; // controller order
    let target_deg = n + m;
    if desired.degree() != target_deg {
        return Err(DesignError::DegreeMismatch {
            expected: target_deg,
            actual: desired.degree(),
        });
    }
    let desired = desired.monic();

    // Unknowns: d_0..d_{m-1} (D monic of degree m) and n_0..n_m.
    // Equation: D·A + N·B = desired, matched coefficient by coefficient.
    let unknowns = m + (m + 1);
    let mut mat = Matrix::zeros(target_deg + 1, unknowns.max(1));
    let mut rhs = vec![0.0; target_deg + 1];

    // Contribution of the fixed monic part z^m · A.
    for (k, r) in rhs.iter_mut().enumerate() {
        *r = desired.coeff(k) - if k >= m { a.coeff(k - m) } else { 0.0 };
    }
    // Columns for d_j (j = 0..m-1): coefficient of z^{j}·A at degree k.
    for j in 0..m {
        for i in 0..=a.degree() {
            mat.set(i + j, j, mat.get(i + j, j) + a.coeff(i));
        }
    }
    // Columns for n_j (j = 0..m): coefficient of z^{j}·B at degree k.
    for j in 0..=m {
        for i in 0..=b.degree() {
            let row = i + j;
            let col = m + j;
            mat.set(row, col, mat.get(row, col) + b.coeff(i));
        }
    }

    // The system has target_deg+1 equations and `unknowns` unknowns;
    // they are equal (2n = 2n). Solve directly.
    debug_assert_eq!(target_deg + 1, unknowns.max(1).max(target_deg + 1));
    let square = {
        // Rows = target_deg+1 = 2n; unknowns = 2m+1 = 2n−1. The top row
        // (z^{2n−1}... wait—coefficients run 0..=2n−1, i.e. 2n rows) —
        // highest coefficient row is forced by monicity and must already
        // match; drop it after checking.
        let top = target_deg;
        let resid = rhs[top];
        if resid.abs() > 1e-9 {
            return Err(DesignError::Infeasible(SolveError::Singular));
        }
        let mut sq = Matrix::zeros(target_deg, unknowns.max(1));
        for r in 0..target_deg {
            for c in 0..unknowns.max(1) {
                sq.set(r, c, mat.get(r, c));
            }
        }
        sq
    };
    let x = solve(&square, &rhs[..target_deg]).map_err(DesignError::Infeasible)?;

    let mut d_coeffs: Vec<f64> = x[..m].to_vec();
    d_coeffs.push(1.0); // monic
    let n_coeffs: Vec<f64> = x[m..].to_vec();
    let d_poly = Poly::new(d_coeffs);
    let n_poly = Poly::new(n_coeffs);
    TransferFunction::new(n_poly, d_poly)
        .map_err(|_| DesignError::Infeasible(SolveError::Singular))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roots;

    #[test]
    fn paper_parameters_reproduced_exactly() {
        let params = design_for_integrator(&DesignSpec::paper_default());
        assert!((params.b0 - 0.4).abs() < 1e-12);
        assert!((params.b1 - (-0.31)).abs() < 1e-12);
        assert!((params.a - (-0.8)).abs() < 1e-12);
    }

    #[test]
    fn clce_matches_specification() {
        let spec = DesignSpec::paper_default();
        let params = design_for_integrator(&spec);
        let clce = params.clce();
        // (z − 0.7)² = z² − 1.4z + 0.49
        assert!((clce.coeff(1) - (-1.4)).abs() < 1e-12);
        assert!((clce.coeff(0) - 0.49).abs() < 1e-12);
    }

    #[test]
    fn static_gain_is_one_for_any_b0() {
        // The paper's Eq. (19) is redundant for the integrator plant:
        // every choice of the free parameter yields unity DC gain.
        for &b0 in &[0.1, 0.4, 0.9, 2.0] {
            let params =
                design_for_integrator(&DesignSpec::paper_default().with_b0(b0));
            assert!(
                (params.static_gain() - 1.0).abs() < 1e-9,
                "b0 = {b0}: gain {}",
                params.static_gain()
            );
        }
    }

    #[test]
    fn all_b0_choices_share_closed_loop_poles() {
        let reference = design_for_integrator(&DesignSpec::paper_default());
        for &b0 in &[0.2, 0.6, 1.1] {
            let other =
                design_for_integrator(&DesignSpec::paper_default().with_b0(b0));
            let pr = reference.closed_loop().poles();
            let po = other.closed_loop().poles();
            for (x, y) in pr.iter().zip(po.iter()) {
                assert!((x.abs() - y.abs()).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn distinct_pole_design() {
        let spec = DesignSpec::from_poles(0.5, 0.8);
        let params = design_for_integrator(&spec);
        let poles = params.closed_loop().poles();
        let mut mags: Vec<f64> = poles.iter().map(|p| p.re).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((mags[0] - 0.5).abs() < 1e-7);
        assert!((mags[1] - 0.8).abs() < 1e-7);
    }

    #[test]
    fn closed_loop_is_stable_for_stable_specs() {
        for &p in &[0.0, 0.3, 0.7, 0.95] {
            let params = design_for_integrator(&DesignSpec::from_double_pole(p));
            assert!(params.closed_loop().is_stable(), "pole {p}");
        }
    }

    #[test]
    fn unstable_spec_produces_unstable_loop() {
        // Garbage in, garbage out — but predictably so.
        let params = design_for_integrator(&DesignSpec::from_double_pole(1.1));
        assert!(!params.closed_loop().is_stable());
    }

    #[test]
    fn general_placement_on_first_order_plant() {
        // Plant 1/(z−1): minimal controller is a pure gain; CLCE degree 1.
        let plant = TransferFunction::integrator(1.0);
        let desired = Poly::from_real_roots(&[0.7]);
        let c = pole_placement(&plant, &desired).unwrap();
        // (z − 1) + n0 = z − 0.7 → n0 = 0.3
        assert_eq!(c.den().degree(), 0);
        assert!((c.num().coeff(0) - 0.3).abs() < 1e-9);
        let cl = plant.series(&c).close_unity_feedback();
        let poles = cl.poles();
        assert!((poles[0].re - 0.7).abs() < 1e-9);
    }

    #[test]
    fn general_placement_on_second_order_plant() {
        // Plant B/A with A = (z−1)(z−0.9), B = 0.2z + 0.1.
        let a = &Poly::new(vec![-1.0, 1.0]) * &Poly::new(vec![-0.9, 1.0]);
        let b = Poly::new(vec![0.1, 0.2]);
        let plant = TransferFunction::new(b, a).unwrap();
        let desired = Poly::from_real_roots(&[0.5, 0.6, 0.7]);
        let c = pole_placement(&plant, &desired).unwrap();
        let cl = plant.series(&c).close_unity_feedback();
        let mut achieved: Vec<f64> = roots::real_roots(cl.den(), 1e-6);
        achieved.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(achieved.len(), 3);
        for (got, want) in achieved.iter().zip([0.5, 0.6, 0.7]) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn general_placement_rejects_wrong_degree() {
        let plant = TransferFunction::integrator(1.0);
        let desired = Poly::from_real_roots(&[0.7, 0.7]);
        assert!(matches!(
            pole_placement(&plant, &desired),
            Err(DesignError::DegreeMismatch { .. })
        ));
    }
}
