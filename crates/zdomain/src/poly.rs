//! Real-coefficient polynomials.
//!
//! Coefficients are stored in **ascending** order of degree:
//! `Poly::new(vec![c0, c1, c2])` represents `c0 + c1·z + c2·z²`.

use crate::complex::Complex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A polynomial over ℝ with `f64` coefficients in ascending degree order.
///
/// The zero polynomial is represented by an empty coefficient vector (its
/// degree is reported as 0 for convenience). Trailing (highest-degree) zero
/// coefficients are trimmed on construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Poly {
    coeffs: Vec<f64>,
}

impl Poly {
    /// Creates a polynomial from ascending-degree coefficients, trimming
    /// trailing zeros.
    pub fn new(mut coeffs: Vec<f64>) -> Self {
        while coeffs.len() > 1 && coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Self { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { coeffs: vec![0.0] }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Self::new(vec![c])
    }

    /// The monomial `z`.
    pub fn z() -> Self {
        Self::new(vec![0.0, 1.0])
    }

    /// Builds the monic polynomial with the given real roots:
    /// `∏ (z − rᵢ)`.
    pub fn from_real_roots(roots: &[f64]) -> Self {
        let mut p = Self::constant(1.0);
        for &r in roots {
            p = &p * &Self::new(vec![-r, 1.0]);
        }
        p
    }

    /// Builds a real polynomial from complex roots. Complex roots must come
    /// in conjugate pairs (within `tol`); each pair contributes a real
    /// quadratic factor. Panics if an unpaired complex root remains.
    pub fn from_complex_roots(roots: &[Complex], tol: f64) -> Self {
        let mut remaining: Vec<Complex> = roots.to_vec();
        let mut p = Self::constant(1.0);
        while let Some(r) = remaining.pop() {
            if r.is_approx_real(tol) {
                p = &p * &Self::new(vec![-r.re, 1.0]);
            } else {
                // Find and consume the conjugate partner.
                let idx = remaining
                    .iter()
                    .position(|c| (*c - r.conj()).abs() <= tol * r.abs().max(1.0))
                    .expect("complex roots must come in conjugate pairs");
                remaining.swap_remove(idx);
                // (z - r)(z - r̄) = z² - 2·Re(r)·z + |r|²
                p = &p * &Self::new(vec![r.norm_sqr(), -2.0 * r.re, 1.0]);
            }
        }
        p
    }

    /// Degree of the polynomial (0 for constants, including zero).
    #[inline]
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Coefficient of `z^i`, or 0 beyond the degree.
    #[inline]
    pub fn coeff(&self, i: usize) -> f64 {
        self.coeffs.get(i).copied().unwrap_or(0.0)
    }

    /// All coefficients in ascending degree order.
    #[inline]
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Leading (highest-degree) coefficient.
    #[inline]
    pub fn leading(&self) -> f64 {
        *self.coeffs.last().expect("coeffs is never empty")
    }

    /// `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0.0)
    }

    /// Evaluates at a real point using Horner's method.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluates at a complex point using Horner's method.
    pub fn eval_complex(&self, z: Complex) -> Complex {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex::ZERO, |acc, &c| acc * z + Complex::real(c))
    }

    /// Formal derivative.
    pub fn derivative(&self) -> Poly {
        if self.degree() == 0 {
            return Poly::zero();
        }
        let coeffs = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &c)| c * i as f64)
            .collect();
        Poly::new(coeffs)
    }

    /// Divides by the leading coefficient, making the polynomial monic.
    /// Panics if the polynomial is zero.
    pub fn monic(&self) -> Poly {
        let lead = self.leading();
        assert!(lead != 0.0, "cannot normalise the zero polynomial");
        Poly::new(self.coeffs.iter().map(|c| c / lead).collect())
    }

    /// Multiplies every coefficient by a scalar.
    pub fn scale(&self, s: f64) -> Poly {
        Poly::new(self.coeffs.iter().map(|c| c * s).collect())
    }

    /// Polynomial long division, returning `(quotient, remainder)`.
    /// Panics if the divisor is zero.
    pub fn div_rem(&self, divisor: &Poly) -> (Poly, Poly) {
        assert!(!divisor.is_zero(), "division by the zero polynomial");
        if self.degree() < divisor.degree() {
            return (Poly::zero(), self.clone());
        }
        let mut rem = self.coeffs.clone();
        let dlead = divisor.leading();
        let ddeg = divisor.degree();
        let qdeg = self.degree() - ddeg;
        let mut q = vec![0.0; qdeg + 1];
        for i in (0..=qdeg).rev() {
            let factor = rem[i + ddeg] / dlead;
            q[i] = factor;
            for (j, &dc) in divisor.coeffs.iter().enumerate() {
                rem[i + j] -= factor * dc;
            }
        }
        rem.truncate(ddeg.max(1));
        (Poly::new(q), Poly::new(rem))
    }

    /// Returns `self` shifted up by `n` degrees (multiplication by `zⁿ`).
    pub fn shift_up(&self, n: usize) -> Poly {
        if self.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![0.0; n];
        coeffs.extend_from_slice(&self.coeffs);
        Poly::new(coeffs)
    }

    /// Sum of all coefficients — the value at `z = 1`; useful for static
    /// (DC) gain computations.
    pub fn sum(&self) -> f64 {
        self.coeffs.iter().sum()
    }
}

impl Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let coeffs = (0..n).map(|i| self.coeff(i) + rhs.coeff(i)).collect();
        Poly::new(coeffs)
    }
}

impl Sub for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let coeffs = (0..n).map(|i| self.coeff(i) - rhs.coeff(i)).collect();
        Poly::new(coeffs)
    }
}

impl Mul for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![0.0; self.degree() + rhs.degree() + 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Poly::new(coeffs)
    }
}

impl Neg for &Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        self.scale(-1.0)
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate().rev() {
            if c == 0.0 && self.degree() > 0 {
                continue;
            }
            if !first {
                write!(f, " {} ", if c >= 0.0 { "+" } else { "-" })?;
            } else if c < 0.0 {
                write!(f, "-")?;
            }
            let mag = c.abs();
            match i {
                0 => write!(f, "{mag}")?,
                1 => {
                    if mag == 1.0 {
                        write!(f, "z")?
                    } else {
                        write!(f, "{mag}z")?
                    }
                }
                _ => {
                    if mag == 1.0 {
                        write!(f, "z^{i}")?
                    } else {
                        write!(f, "{mag}z^{i}")?
                    }
                }
            }
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_trims_trailing_zeros() {
        let p = Poly::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
    }

    #[test]
    fn eval_horner() {
        // 2 - 3z + z²  at z=4 → 2 - 12 + 16 = 6
        let p = Poly::new(vec![2.0, -3.0, 1.0]);
        assert_eq!(p.eval(4.0), 6.0);
        let z = Complex::new(4.0, 0.0);
        assert!((p.eval_complex(z).re - 6.0).abs() < 1e-12);
    }

    #[test]
    fn from_real_roots_expands() {
        // (z-1)(z-2) = z² - 3z + 2
        let p = Poly::from_real_roots(&[1.0, 2.0]);
        assert_eq!(p.coeffs(), &[2.0, -3.0, 1.0]);
    }

    #[test]
    fn from_complex_roots_conjugate_pair() {
        // roots 0.5 ± 0.5i → z² - z + 0.5
        let r = Complex::new(0.5, 0.5);
        let p = Poly::from_complex_roots(&[r, r.conj()], 1e-9);
        assert!((p.coeff(2) - 1.0).abs() < 1e-12);
        assert!((p.coeff(1) + 1.0).abs() < 1e-12);
        assert!((p.coeff(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "conjugate pairs")]
    fn from_complex_roots_rejects_unpaired() {
        let _ = Poly::from_complex_roots(&[Complex::new(0.5, 0.5)], 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = Poly::new(vec![1.0, 1.0]); // 1 + z
        let b = Poly::new(vec![-1.0, 1.0]); // -1 + z
        assert_eq!((&a + &b).coeffs(), &[0.0, 2.0]);
        assert_eq!((&a - &b).coeffs(), &[2.0]);
        assert_eq!((&a * &b).coeffs(), &[-1.0, 0.0, 1.0]); // z² - 1
    }

    #[test]
    fn derivative_rules() {
        // d/dz (2 + 3z + 4z³) = 3 + 12z²
        let p = Poly::new(vec![2.0, 3.0, 0.0, 4.0]);
        assert_eq!(p.derivative().coeffs(), &[3.0, 0.0, 12.0]);
        assert!(Poly::constant(7.0).derivative().is_zero());
    }

    #[test]
    fn div_rem_reconstructs() {
        let n = Poly::new(vec![1.0, 0.0, -2.0, 1.0]); // z³ - 2z² + 1
        let d = Poly::new(vec![-1.0, 1.0]); // z - 1
        let (q, r) = n.div_rem(&d);
        let back = &(&q * &d) + &r;
        for i in 0..=n.degree() {
            assert!((back.coeff(i) - n.coeff(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn div_rem_degenerate() {
        let n = Poly::constant(3.0);
        let d = Poly::new(vec![0.0, 1.0]);
        let (q, r) = n.div_rem(&d);
        assert!(q.is_zero());
        assert_eq!(r.coeffs(), &[3.0]);
    }

    #[test]
    fn monic_normalises() {
        let p = Poly::new(vec![2.0, 4.0]).monic();
        assert_eq!(p.coeffs(), &[0.5, 1.0]);
    }

    #[test]
    fn shift_up_multiplies_by_z_powers() {
        let p = Poly::new(vec![1.0, 2.0]);
        assert_eq!(p.shift_up(2).coeffs(), &[0.0, 0.0, 1.0, 2.0]);
        assert!(Poly::zero().shift_up(3).is_zero());
    }

    #[test]
    fn display_formats() {
        let p = Poly::new(vec![0.49, -1.4, 1.0]);
        assert_eq!(format!("{p}"), "z^2 - 1.4z + 0.49");
    }
}
