//! The Jury stability criterion: an *analytic* Schur–Cohn test for
//! discrete-time characteristic polynomials, requiring no root finding.
//!
//! Used to cross-check the root-based `TransferFunction::is_stable`
//! (property tests verify the two always agree) and to give closed-form
//! stability margins for controller-parameter sweeps.

use crate::poly::Poly;

/// Outcome of the Jury test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stability {
    /// All roots strictly inside the unit circle.
    Stable,
    /// At least one root on or outside the unit circle.
    Unstable,
    /// The test degenerated (a leading array element vanished —
    /// roots exactly on the unit circle); resolve with root finding.
    Marginal,
}

/// Applies the Jury criterion to a polynomial (in `z`, ascending
/// coefficients). Constants are trivially stable.
pub fn jury_test(p: &Poly) -> Stability {
    let n = p.degree();
    if n == 0 {
        return Stability::Stable;
    }
    // Normalise so the leading coefficient is positive.
    let mut a: Vec<f64> = p.coeffs().to_vec();
    if a[n] < 0.0 {
        for c in a.iter_mut() {
            *c = -*c;
        }
    }

    // Necessary conditions: P(1) > 0 and (−1)ⁿ·P(−1) > 0.
    let p1: f64 = a.iter().sum();
    let pm1: f64 = a
        .iter()
        .enumerate()
        .map(|(i, &c)| if i % 2 == 0 { c } else { -c })
        .sum();
    let pm1_signed = if n.is_multiple_of(2) { pm1 } else { -pm1 };
    const EPS: f64 = 1e-12;
    if p1.abs() <= EPS || pm1_signed.abs() <= EPS {
        return Stability::Marginal;
    }
    if p1 < 0.0 || pm1_signed < 0.0 {
        return Stability::Unstable;
    }
    // |a0| < a_n.
    if a[0].abs() >= a[n] - EPS {
        return if (a[0].abs() - a[n]).abs() <= EPS {
            Stability::Marginal
        } else {
            Stability::Unstable
        };
    }

    // Jury table reduction: b_k = a_0·a_k − a_n·a_{n−k}, iterate until
    // order 2.
    let mut row = a;
    while row.len() > 3 {
        let m = row.len() - 1;
        let mut next = Vec::with_capacity(m);
        for k in 0..m {
            next.push(row[0] * row[k] - row[m] * row[m - k]);
        }
        // Constraint per stage: |b_0| > |b_{m−1}|.
        let b0 = next[0].abs();
        let blast = next[m - 1].abs();
        if (b0 - blast).abs() <= EPS * b0.max(1.0) {
            return Stability::Marginal;
        }
        if b0 < blast {
            return Stability::Unstable;
        }
        next.reverse(); // keep |leading| largest at the high end
        row = next;
    }
    Stability::Stable
}

/// Convenience: `true` iff the polynomial passes the Jury test strictly.
pub fn is_schur_stable(p: &Poly) -> bool {
    jury_test(p) == Stability::Stable
}

/// For the paper's closed loop with parameters `(a, b0, b1)`, the CLCE is
/// `z² + (a − 1 + b0)·z + (b1 − a)`. Returns its Jury verdict — a cheap
/// analytic guard a deployment can evaluate before accepting retuned
/// controller parameters.
pub fn clce_stability(a: f64, b0: f64, b1: f64) -> Stability {
    jury_test(&Poly::new(vec![b1 - a, a - 1.0 + b0, 1.0]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_second_order() {
        // (z − 0.7)²: the paper's CLCE.
        let p = Poly::from_real_roots(&[0.7, 0.7]);
        assert_eq!(jury_test(&p), Stability::Stable);
    }

    #[test]
    fn unstable_second_order() {
        let p = Poly::from_real_roots(&[1.2, 0.3]);
        assert_eq!(jury_test(&p), Stability::Unstable);
    }

    #[test]
    fn marginal_integrator() {
        // z − 1: root exactly on the circle.
        let p = Poly::new(vec![-1.0, 1.0]);
        assert_ne!(jury_test(&p), Stability::Stable);
    }

    #[test]
    fn higher_order_stable() {
        let p = Poly::from_real_roots(&[0.1, -0.4, 0.8, 0.6, -0.2]);
        assert_eq!(jury_test(&p), Stability::Stable);
    }

    #[test]
    fn higher_order_unstable_complex() {
        // Complex pair outside the circle: |0.8 ± 0.8i| ≈ 1.13.
        use crate::complex::Complex;
        let pair = Poly::from_complex_roots(
            &[Complex::new(0.8, 0.8), Complex::new(0.8, -0.8)],
            1e-9,
        );
        let p = &pair * &Poly::from_real_roots(&[0.2]);
        assert_eq!(jury_test(&p), Stability::Unstable);
    }

    #[test]
    fn constants_and_linears() {
        assert_eq!(jury_test(&Poly::constant(3.0)), Stability::Stable);
        assert_eq!(jury_test(&Poly::from_real_roots(&[0.5])), Stability::Stable);
        assert_eq!(jury_test(&Poly::from_real_roots(&[-1.5])), Stability::Unstable);
    }

    #[test]
    fn negative_leading_coefficient_normalised() {
        let p = Poly::from_real_roots(&[0.5, -0.5]).scale(-2.0);
        assert_eq!(jury_test(&p), Stability::Stable);
    }

    #[test]
    fn paper_parameters_pass() {
        assert_eq!(clce_stability(-0.8, 0.4, -0.31), Stability::Stable);
        // A destabilising retune: poles pushed outside.
        assert_eq!(clce_stability(-0.8, -1.6, 1.0), Stability::Unstable);
    }

    #[test]
    fn agrees_with_root_finding_on_grid() {
        use crate::roots::spectral_radius;
        for &r1 in &[-1.3, -0.9, -0.2, 0.4, 0.95, 1.1] {
            for &r2 in &[-0.8, 0.0, 0.7, 1.05] {
                let p = Poly::from_real_roots(&[r1, r2]);
                let by_roots = spectral_radius(&p) < 1.0 - 1e-9;
                let by_jury = is_schur_stable(&p);
                assert_eq!(by_jury, by_roots, "roots {r1}, {r2}");
            }
        }
    }
}
