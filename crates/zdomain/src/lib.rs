//! Discrete-time (z-domain) control mathematics.
//!
//! This crate provides the analysis and design tools the paper uses
//! implicitly ("by mathematical reasoning exclusively", §5.2): complex
//! arithmetic, polynomials over ℝ, numerically robust root finding,
//! rational transfer functions, closed-loop algebra, step-response
//! simulation, and the pole-placement design of Appendix A.
//!
//! Everything is `f64`-based and allocation-light; the heaviest routine
//! (Durand–Kerner root finding) only allocates the root vector.
//!
//! # Example: re-deriving the paper's controller
//!
//! ```
//! use streamshed_zdomain::design::{design_for_integrator, DesignSpec};
//!
//! // Plant G(z) = g / (z - 1) with g = cT/H (the units cancel in the
//! // normalised controller parameters).
//! let spec = DesignSpec::paper_default(); // double pole at 0.7, b0 = 0.4
//! let params = design_for_integrator(&spec);
//! assert!((params.b0 - 0.4).abs() < 1e-12);
//! assert!((params.b1 - (-0.31)).abs() < 1e-12);
//! assert!((params.a - (-0.8)).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod analysis;
pub mod complex;
pub mod design;
pub mod freq;
pub mod jury;
pub mod linalg;
pub mod poly;
pub mod roots;
pub mod tf;

pub use analysis::{damping_of_pole, DiscretePoleInfo};
pub use complex::Complex;
pub use design::{design_for_integrator, ControllerParams, DesignSpec};
pub use poly::Poly;
pub use tf::TransferFunction;
