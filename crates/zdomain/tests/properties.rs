//! Property-based tests for the z-domain mathematics.

use proptest::prelude::*;
use streamshed_zdomain::design::{design_for_integrator, DesignSpec};
use streamshed_zdomain::poly::Poly;
use streamshed_zdomain::roots;
use streamshed_zdomain::tf::TransferFunction;
use streamshed_zdomain::Complex;

fn small_coeff() -> impl Strategy<Value = f64> {
    prop_oneof![(-10.0..10.0f64), (-1.0..1.0f64)]
}

fn poly_strategy(max_deg: usize) -> impl Strategy<Value = Poly> {
    prop::collection::vec(small_coeff(), 1..=max_deg + 1).prop_map(Poly::new)
}

proptest! {
    #[test]
    fn poly_add_commutes(a in poly_strategy(6), b in poly_strategy(6)) {
        let ab = &a + &b;
        let ba = &b + &a;
        prop_assert_eq!(ab.coeffs(), ba.coeffs());
    }

    #[test]
    fn poly_mul_degree_adds(a in poly_strategy(5), b in poly_strategy(5)) {
        prop_assume!(!a.is_zero() && !b.is_zero());
        let prod = &a * &b;
        prop_assert_eq!(prod.degree(), a.degree() + b.degree());
    }

    #[test]
    fn poly_eval_is_ring_homomorphism(
        a in poly_strategy(5),
        b in poly_strategy(5),
        x in -3.0..3.0f64,
    ) {
        let sum = &a + &b;
        let prod = &a * &b;
        let scale = a.eval(x).abs().max(b.eval(x).abs()).max(1.0);
        prop_assert!((sum.eval(x) - (a.eval(x) + b.eval(x))).abs() < 1e-9 * scale);
        prop_assert!((prod.eval(x) - a.eval(x) * b.eval(x)).abs() < 1e-6 * scale * scale);
    }

    #[test]
    fn div_rem_reconstructs(a in poly_strategy(6), b in poly_strategy(3)) {
        prop_assume!(b.leading().abs() > 1e-3);
        let (q, r) = a.div_rem(&b);
        let back = &(&q * &b) + &r;
        // An ill-conditioned divisor (tiny leading coefficient) blows the
        // quotient up; the reconstruction error scales with |q|·|b|.
        let max_abs = |p: &Poly| p.coeffs().iter().fold(1.0f64, |m, c| m.max(c.abs()));
        let scale = max_abs(&a).max(max_abs(&q) * max_abs(&b));
        for i in 0..=a.degree() {
            prop_assert!((back.coeff(i) - a.coeff(i)).abs() < 1e-9 * scale);
        }
        prop_assert!(r.degree() < b.degree() || r.is_zero() || b.degree() == 0);
    }

    #[test]
    fn roots_are_actually_roots(roots_in in prop::collection::vec(-0.95..0.95f64, 1..6)) {
        let p = Poly::from_real_roots(&roots_in);
        let found = roots::roots(&p);
        prop_assert_eq!(found.len(), roots_in.len());
        for z in &found {
            prop_assert!(p.eval_complex(*z).abs() < 1e-5, "residual {} at {}", p.eval_complex(*z).abs(), z);
        }
    }

    #[test]
    fn spectral_radius_bounds_real_roots(roots_in in prop::collection::vec(-2.0..2.0f64, 1..5)) {
        let p = Poly::from_real_roots(&roots_in);
        let sr = roots::spectral_radius(&p);
        let max_root = roots_in.iter().fold(0.0f64, |m, r| m.max(r.abs()));
        prop_assert!((sr - max_root).abs() < 1e-4 * max_root.max(1.0));
    }

    #[test]
    fn designed_loop_always_hits_spec_poles(p1 in 0.05..0.95f64, p2 in 0.05..0.95f64, b0 in 0.1..2.0f64) {
        let spec = DesignSpec::from_poles(p1, p2).with_b0(b0);
        let params = design_for_integrator(&spec);
        let cl = params.closed_loop();
        prop_assert!(cl.is_stable());
        prop_assert!((cl.dc_gain() - 1.0).abs() < 1e-6);
        let mut achieved: Vec<f64> = cl.poles().iter().map(|z| z.re).collect();
        achieved.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut want = [p1, p2];
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (got, want) in achieved.iter().zip(want) {
            prop_assert!((got - want).abs() < 1e-5, "{got} vs {want}");
        }
    }

    #[test]
    fn stable_system_step_response_is_bounded(
        pole1 in -0.9..0.9f64,
        pole2 in -0.9..0.9f64,
        gain in 0.01..5.0f64,
    ) {
        let den = Poly::from_real_roots(&[pole1, pole2]);
        let num = Poly::constant(gain);
        let h = TransferFunction::new(num, den).unwrap();
        prop_assert!(h.is_stable());
        let y = h.step_response(500);
        let dc = h.dc_gain();
        prop_assert!((y.last().unwrap() - dc).abs() < 1e-3 * dc.abs().max(1.0));
        prop_assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn freq_response_conjugate_symmetry(
        pole in -0.9..0.9f64,
        omega in 0.0..std::f64::consts::PI,
    ) {
        let h = TransferFunction::new(Poly::constant(1.0), Poly::from_real_roots(&[pole])).unwrap();
        let pos = h.freq_response(omega);
        let neg = h.freq_response(-omega);
        prop_assert!((pos - neg.conj()).abs() < 1e-10);
    }

    #[test]
    fn jury_agrees_with_root_finding(
        roots_in in prop::collection::vec(-1.4..1.4f64, 1..6),
    ) {
        use streamshed_zdomain::jury::{jury_test, Stability};
        // Avoid roots too near the unit circle where both methods are
        // legitimately ambiguous.
        prop_assume!(roots_in.iter().all(|r| (r.abs() - 1.0).abs() > 0.02));
        let p = Poly::from_real_roots(&roots_in);
        let stable_by_roots = roots_in.iter().all(|r| r.abs() < 1.0);
        match jury_test(&p) {
            Stability::Stable => prop_assert!(stable_by_roots),
            Stability::Unstable => prop_assert!(!stable_by_roots),
            Stability::Marginal => prop_assert!(false, "marginal away from the circle"),
        }
    }

    #[test]
    fn sensitivity_plus_complement_is_one(
        pole in -0.9..0.9f64,
        gain in 0.05..3.0f64,
        omega in 0.01..3.0f64,
    ) {
        use streamshed_zdomain::freq::{complementary_sensitivity, sensitivity};
        let l = TransferFunction::new(
            Poly::constant(gain),
            Poly::from_real_roots(&[pole]),
        ).unwrap();
        let s = sensitivity(&l).freq_response(omega);
        let t = complementary_sensitivity(&l).freq_response(omega);
        prop_assert!(((s + t) - Complex::ONE).abs() < 1e-9);
    }

    #[test]
    fn complex_field_axioms(
        are in -5.0..5.0f64, aim in -5.0..5.0f64,
        bre in -5.0..5.0f64, bim in -5.0..5.0f64,
    ) {
        let a = Complex::new(are, aim);
        let b = Complex::new(bre, bim);
        prop_assert!(((a * b) - (b * a)).abs() < 1e-9);
        prop_assume!(b.abs() > 1e-3);
        prop_assert!(((a / b) * b - a).abs() < 1e-9 * a.abs().max(1.0));
    }
}
