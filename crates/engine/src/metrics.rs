//! Run metrics: the paper's evaluation quantities (§3).
//!
//! * accumulated delay violations `Σ (y − yd)⁺` over all tuples,
//! * total delayed tuples (`y > yd`),
//! * maximal overshoot `max (y − yd)`,
//! * data loss ratio,
//!
//! plus per-period series for the transient plots (Figs. 5–7, 15, 18) and
//! a log-bucketed delay histogram for percentile reporting.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A log-bucketed histogram of delays (milliseconds).
///
/// Buckets grow geometrically by ~12%/bucket from 0.1 ms, giving better
/// than 12% relative error on percentiles across six orders of magnitude
/// with a few hundred buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayHistogram {
    counts: Vec<u64>,
    total: u64,
}

const HIST_BASE_MS: f64 = 0.1;
const HIST_GROWTH: f64 = 1.12;
const HIST_BUCKETS: usize = 220; // covers up to ~0.1·1.12²²⁰ ≈ 7·10⁸ ms
/// `1 / log₂(HIST_GROWTH)`, for the bit-pattern bucket estimate (checked
/// against `HIST_GROWTH` by test).
const HIST_INV_LOG2_GROWTH: f64 = 6.1162553741996994;

/// Bucket upper bounds in ms (`HIST_BASE_MS · HIST_GROWTH^k`), built once.
fn bucket_uppers() -> &'static [f64; HIST_BUCKETS] {
    static UPPERS: std::sync::OnceLock<[f64; HIST_BUCKETS]> = std::sync::OnceLock::new();
    UPPERS.get_or_init(|| {
        let mut u = [0.0; HIST_BUCKETS];
        for (i, v) in u.iter_mut().enumerate() {
            *v = HIST_BASE_MS * HIST_GROWTH.powi(i as i32);
        }
        u
    })
}

impl DelayHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; HIST_BUCKETS],
            total: 0,
        }
    }

    fn bucket_for(delay_ms: f64) -> usize {
        if delay_ms <= HIST_BASE_MS {
            return 0;
        }
        let uppers = bucket_uppers();
        let r = delay_ms / HIST_BASE_MS; // > 1 here
        // Start from a cheap log₂ estimate read straight off the f64 bit
        // pattern (linear-mantissa approximation, error < 0.09 before
        // scaling), then walk up the precomputed bucket boundaries to the
        // exact answer: the smallest k with delay ≤ base·growthᵏ. The
        // estimate only ever undershoots, so the walk is 1–3 compares and
        // no libm call.
        let bits = r.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
        let frac = (bits & ((1u64 << 52) - 1)) as f64 * (1.0 / (1u64 << 52) as f64);
        let log2_est = exp as f64 + frac;
        let mut k = ((log2_est * HIST_INV_LOG2_GROWTH) as usize)
            .saturating_sub(1)
            .min(HIST_BUCKETS - 1);
        while k < HIST_BUCKETS - 1 && delay_ms > uppers[k] {
            k += 1;
        }
        k
    }

    /// Upper bound (ms) of a bucket.
    fn bucket_upper_ms(idx: usize) -> f64 {
        HIST_BASE_MS * HIST_GROWTH.powi(idx as i32)
    }

    /// Records one delay sample.
    pub fn record(&mut self, delay_ms: f64) {
        self.counts[Self::bucket_for(delay_ms)] += 1;
        self.total += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate quantile (e.g. `0.99`), or `None` when empty.
    ///
    /// `q` is clamped to `[0, 1]`; `q = 0` answers with the first
    /// occupied bucket, so a histogram whose samples all landed in one
    /// bucket reports the same value for every quantile.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::bucket_upper_ms(i));
            }
        }
        // Degenerate layouts (total out of sync with counts) saturate at
        // the last bucket rather than panicking.
        Some(Self::bucket_upper_ms(self.counts.len().max(1) - 1))
    }

    /// Merges another histogram into this one.
    ///
    /// Robust to bucket-count mismatches (histograms that crossed a
    /// serialisation boundary, or were built by an older layout): the
    /// receiver grows to the larger layout and no sample is silently
    /// dropped, so `Σ counts == total` holds afterwards.
    pub fn merge(&mut self, other: &DelayHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

impl Default for DelayHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Aggregate delay statistics over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayStats {
    count: u64,
    sum_ms: f64,
    max_ms: f64,
    histogram: DelayHistogram,
}

impl DelayStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum_ms: 0.0,
            max_ms: 0.0,
            histogram: DelayHistogram::new(),
        }
    }

    /// Records a tuple's total processing delay.
    pub fn record(&mut self, delay: SimDuration) {
        let ms = delay.as_millis_f64();
        self.count += 1;
        self.sum_ms += ms;
        self.max_ms = self.max_ms.max(ms);
        self.histogram.record(ms);
    }

    /// Number of delay samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean delay in ms (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ms / self.count as f64
        }
    }

    /// Maximum delay in ms.
    pub fn max_ms(&self) -> f64 {
        self.max_ms
    }

    /// Approximate delay quantile in ms.
    pub fn quantile_ms(&self, q: f64) -> Option<f64> {
        self.histogram.quantile(q)
    }
}

impl Default for DelayStats {
    fn default() -> Self {
        Self::new()
    }
}

/// One row of the per-period series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodRecord {
    /// Period index `k`.
    pub k: u64,
    /// Period end time, seconds.
    pub time_s: f64,
    /// Offered arrivals this period.
    pub offered: u64,
    /// Admitted past the entry shedder.
    pub admitted: u64,
    /// Dropped at entry + from queues.
    pub dropped: u64,
    /// Roots departed this period (fout).
    pub completed: u64,
    /// Virtual queue length at the boundary.
    pub outstanding: u64,
    /// Entry drop probability in force during this period.
    pub alpha: f64,
    /// Mean *true* delay (ms) of tuples that **arrived** in this period
    /// (the paper's y(k)); `NaN` until those tuples depart or if none do.
    pub arrival_mean_delay_ms: f64,
    /// Measured mean cost per completed root this period (µs), `NaN` if
    /// nothing completed.
    pub measured_cost_us: f64,
    /// CPU busy fraction during the period.
    pub cpu_utilisation: f64,
}

/// Per-operator counters over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeStat {
    /// Operator name.
    pub name: String,
    /// Input tuples processed.
    pub processed: u64,
    /// Output tuples emitted (post-selectivity, pre-fanout).
    pub emitted: u64,
    /// Tuples shed from this operator's queues (for entry operators this
    /// includes input-buffer victims destined for them).
    pub shed: u64,
    /// EWMA of the operator's per-invocation CPU cost, µs (`NaN` if the
    /// operator never ran). Tracks cost drift the way the controller's
    /// own estimator does, per operator.
    pub cost_ewma_us: f64,
}

impl NodeStat {
    /// Observed selectivity: emitted / processed (`NaN` if unused).
    pub fn observed_selectivity(&self) -> f64 {
        if self.processed == 0 {
            f64::NAN
        } else {
            self.emitted as f64 / self.processed as f64
        }
    }
}

/// Complete results of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// The delay target the violation metrics were evaluated against.
    pub target_delay_ms: f64,
    /// Per-period series.
    pub periods: Vec<PeriodRecord>,
    /// Total tuples offered by the source.
    pub offered: u64,
    /// Tuples dropped at entry.
    pub dropped_entry: u64,
    /// Tuples dropped from in-network queues.
    pub dropped_network: u64,
    /// Roots that departed the network normally.
    pub completed: u64,
    /// Σ (y − yd)⁺ over all departed tuples, in ms.
    pub accumulated_violation_ms: f64,
    /// Number of departed tuples with y > yd.
    pub delayed_tuples: u64,
    /// max (y − yd) over all departed tuples, ms (0 if never violated).
    pub max_overshoot_ms: f64,
    /// Delay distribution over all departed tuples.
    pub delay_stats: DelayStats,
    /// Per-operator counters (empty for runs that skip collection).
    pub node_stats: Vec<NodeStat>,
}

impl RunReport {
    /// Data loss ratio: all dropped tuples over all offered tuples.
    pub fn loss_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.dropped_entry + self.dropped_network) as f64 / self.offered as f64
        }
    }

    /// Mean true delay over the run, ms.
    pub fn delay_stats(&self) -> &DelayStats {
        &self.delay_stats
    }

    /// Virtual-queue length at the last recorded period boundary (0 for
    /// a run with no periods).
    pub fn outstanding_at_end(&self) -> u64 {
        self.periods.last().map_or(0, |p| p.outstanding)
    }

    /// Tuple-conservation residual:
    /// `offered − (dropped_entry + dropped_network + completed +
    /// outstanding_at_end)`.
    ///
    /// The simulator's accounting makes this identity exact whenever the
    /// run length is a whole number of control periods (the last period
    /// boundary then coincides with the end of the run); campaign
    /// invariant checking gates on it being zero.
    pub fn conservation_residual(&self) -> i64 {
        self.offered as i64
            - (self.dropped_entry + self.dropped_network + self.completed
                + self.outstanding_at_end()) as i64
    }

    /// Whether the tuple counters balance exactly (see
    /// [`RunReport::conservation_residual`]).
    pub fn counters_balance(&self) -> bool {
        self.conservation_residual() == 0
    }

    /// The y(k) series (mean delay by arrival period, ms). Periods with no
    /// samples carry `NaN`.
    pub fn y_series_ms(&self) -> Vec<f64> {
        self.periods
            .iter()
            .map(|p| p.arrival_mean_delay_ms)
            .collect()
    }

    /// The offered arrival-rate series (tuples/s).
    pub fn fin_series(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.periods.len());
        let mut prev_t = 0.0;
        for p in &self.periods {
            let dt = (p.time_s - prev_t).max(1e-9);
            out.push(p.offered as f64 / dt);
            prev_t = p.time_s;
        }
        out
    }

    /// A multi-line human-readable summary of the run — the paper's four
    /// metrics plus throughput and delay percentiles (what the examples
    /// print).
    pub fn render_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "offered               : {}", self.offered);
        let _ = writeln!(out, "completed             : {}", self.completed);
        let _ = writeln!(
            out,
            "dropped (entry/queue) : {} / {}",
            self.dropped_entry, self.dropped_network
        );
        let _ = writeln!(out, "loss ratio            : {:.3}", self.loss_ratio());
        let _ = writeln!(
            out,
            "mean / p50 / p99 delay: {:.1} / {:.1} / {:.1} ms",
            self.delay_stats.mean_ms(),
            self.delay_stats.quantile_ms(0.50).unwrap_or(0.0),
            self.delay_stats.quantile_ms(0.99).unwrap_or(0.0)
        );
        let _ = writeln!(
            out,
            "violations            : {:.1} tuple·s over {} tuples (target {} ms)",
            self.accumulated_violation_ms / 1e3,
            self.delayed_tuples,
            self.target_delay_ms
        );
        let _ = writeln!(
            out,
            "max overshoot         : {:.1} ms",
            self.max_overshoot_ms
        );
        out
    }
}

/// Internal accumulator used by the simulator; converted to [`RunReport`]
/// at the end of a run.
#[derive(Debug)]
pub(crate) struct MetricsAccumulator {
    pub target_delay: SimDuration,
    pub periods: Vec<PeriodRecord>,
    pub offered: u64,
    pub dropped_entry: u64,
    pub dropped_network: u64,
    pub completed: u64,
    pub accumulated_violation_ms: f64,
    pub delayed_tuples: u64,
    pub max_overshoot_ms: f64,
    pub delay_stats: DelayStats,
    // Mean-delay-by-arrival-period accumulation.
    arrival_sum_ms: Vec<f64>,
    arrival_cnt: Vec<u64>,
    period: SimDuration,
    // Precomputed per-departure constants and a one-entry period-index
    // cache: departures cluster in arrival time, so the integer division
    // runs only when a departure crosses into another period.
    target_ms: f64,
    idx_cache: usize,
    idx_lo_us: u64,
    idx_hi_us: u64,
}

impl MetricsAccumulator {
    pub fn new(target_delay: SimDuration, period: SimDuration) -> Self {
        Self {
            target_delay,
            periods: Vec::new(),
            offered: 0,
            dropped_entry: 0,
            dropped_network: 0,
            completed: 0,
            accumulated_violation_ms: 0.0,
            delayed_tuples: 0,
            max_overshoot_ms: 0.0,
            delay_stats: DelayStats::new(),
            arrival_sum_ms: Vec::new(),
            arrival_cnt: Vec::new(),
            period,
            target_ms: target_delay.as_millis_f64(),
            idx_cache: 0,
            idx_lo_us: 0,
            idx_hi_us: 0,
        }
    }

    /// Records a root departure.
    pub fn record_departure(&mut self, arrival: SimTime, departure: SimTime) {
        let delay = departure - arrival;
        let delay_ms = delay.as_millis_f64();
        self.completed += 1;
        self.delay_stats.record(delay);
        let over_ms = delay_ms - self.target_ms;
        if over_ms > 0.0 {
            self.accumulated_violation_ms += over_ms;
            self.delayed_tuples += 1;
            self.max_overshoot_ms = self.max_overshoot_ms.max(over_ms);
        }
        let idx = if arrival.0 >= self.idx_lo_us && arrival.0 < self.idx_hi_us {
            self.idx_cache
        } else {
            let p = self.period.0.max(1);
            let i = (arrival.0 / p) as usize;
            self.idx_cache = i;
            self.idx_lo_us = i as u64 * p;
            self.idx_hi_us = self.idx_lo_us + p;
            i
        };
        if idx >= self.arrival_sum_ms.len() {
            self.arrival_sum_ms.resize(idx + 1, 0.0);
            self.arrival_cnt.resize(idx + 1, 0);
        }
        self.arrival_sum_ms[idx] += delay_ms;
        self.arrival_cnt[idx] += 1;
    }

    #[cfg(test)]
    pub fn finish(self) -> RunReport {
        self.finish_with_nodes(Vec::new())
    }

    pub fn finish_with_nodes(mut self, node_stats: Vec<NodeStat>) -> RunReport {
        // Fill arrival-attributed mean delays into the period rows.
        for p in self.periods.iter_mut() {
            let idx = p.k as usize;
            p.arrival_mean_delay_ms = if idx < self.arrival_cnt.len() && self.arrival_cnt[idx] > 0
            {
                self.arrival_sum_ms[idx] / self.arrival_cnt[idx] as f64
            } else {
                f64::NAN
            };
        }
        RunReport {
            target_delay_ms: self.target_delay.as_millis_f64(),
            periods: self.periods,
            offered: self.offered,
            dropped_entry: self.dropped_entry,
            dropped_network: self.dropped_network,
            completed: self.completed,
            accumulated_violation_ms: self.accumulated_violation_ms,
            delayed_tuples: self.delayed_tuples,
            max_overshoot_ms: self.max_overshoot_ms,
            delay_stats: self.delay_stats,
            node_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{millis, secs};

    #[test]
    fn histogram_inv_log2_growth_constant_is_consistent() {
        assert!(
            (HIST_INV_LOG2_GROWTH - 1.0 / HIST_GROWTH.log2()).abs() < 1e-12,
            "HIST_INV_LOG2_GROWTH drifted from 1/log2(HIST_GROWTH): want {}",
            1.0 / HIST_GROWTH.log2()
        );
    }

    #[test]
    fn histogram_bucket_lookup_matches_boundary_table() {
        // Ground truth: the smallest k with delay ≤ base·growthᵏ.
        let uppers = bucket_uppers();
        let linear = |d: f64| -> usize {
            uppers
                .iter()
                .position(|&u| d <= u)
                .unwrap_or(HIST_BUCKETS - 1)
        };
        // Sweep six orders of magnitude, hitting boundaries exactly and
        // on both sides.
        let mut d = 0.01f64;
        while d < 1e7 {
            assert_eq!(DelayHistogram::bucket_for(d), linear(d), "delay {d}");
            d *= 1.017;
        }
        for k in 0..HIST_BUCKETS {
            let u = uppers[k];
            for d in [u * (1.0 - 1e-12), u, u * (1.0 + 1e-12)] {
                assert_eq!(DelayHistogram::bucket_for(d), linear(d), "boundary {d}");
            }
        }
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = DelayHistogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((50.0..=60.0).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((99.0..=115.0).contains(&p99), "p99 = {p99}");
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn histogram_empty_quantile_is_none() {
        assert_eq!(DelayHistogram::new().quantile(0.5), None);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = DelayHistogram::new();
        a.record(10.0);
        let mut b = DelayHistogram::new();
        b.record(20.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn histogram_merge_empty_is_identity_both_ways() {
        let mut a = DelayHistogram::new();
        a.record(10.0);
        let before = a.clone();
        a.merge(&DelayHistogram::new());
        assert_eq!(a, before, "merging an empty histogram changes nothing");
        let mut empty = DelayHistogram::new();
        empty.merge(&before);
        assert_eq!(empty, before, "merging into an empty histogram copies");
    }

    #[test]
    fn histogram_merge_handles_bucket_count_mismatch() {
        // A truncated layout (e.g. an older serialised histogram) must
        // not lose the wider histogram's tail samples.
        let mut small = DelayHistogram::new();
        small.counts.truncate(3);
        small.record(0.05); // bucket 0
        let mut wide = DelayHistogram::new();
        wide.record(1e6); // deep-tail bucket, far beyond index 2
        small.merge(&wide);
        assert_eq!(small.count(), 2);
        let sum: u64 = small.counts.iter().sum();
        assert_eq!(sum, small.count(), "no sample silently dropped");
        assert!(small.quantile(1.0).unwrap() >= 1e6 * 0.8);
    }

    #[test]
    fn histogram_single_bucket_quantiles_coincide() {
        let mut h = DelayHistogram::new();
        for _ in 0..50 {
            h.record(10.0);
        }
        let q0 = h.quantile(0.0).unwrap();
        let q50 = h.quantile(0.5).unwrap();
        let q100 = h.quantile(1.0).unwrap();
        assert_eq!(q0, q50);
        assert_eq!(q50, q100);
        assert!((9.0..=12.0).contains(&q100), "bucket bounds 10 ms, got {q100}");
    }

    #[test]
    fn histogram_quantile_bounds_are_clamped() {
        let mut h = DelayHistogram::new();
        h.record(5.0);
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
        assert_eq!(DelayHistogram::new().quantile(1.0), None);
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = DelayHistogram::new();
        h.record(0.0);
        h.record(1e12);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn delay_stats_mean_and_max() {
        let mut s = DelayStats::new();
        s.record(millis(100));
        s.record(millis(300));
        assert_eq!(s.count(), 2);
        assert!((s.mean_ms() - 200.0).abs() < 1e-9);
        assert!((s.max_ms() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn accumulator_violation_accounting() {
        let mut acc = MetricsAccumulator::new(secs(2), secs(1));
        let t0 = SimTime::ZERO;
        // On-time tuple: 1 s delay.
        acc.record_departure(t0, t0 + secs(1));
        // Violating tuple: 5 s delay → 3 s violation.
        acc.record_departure(t0, t0 + secs(5));
        let report = acc.finish();
        assert_eq!(report.completed, 2);
        assert_eq!(report.delayed_tuples, 1);
        assert!((report.accumulated_violation_ms - 3000.0).abs() < 1e-9);
        assert!((report.max_overshoot_ms - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn arrival_period_attribution() {
        let mut acc = MetricsAccumulator::new(secs(2), secs(1));
        // Two tuples arriving in period 0, departing later.
        acc.record_departure(SimTime(100), SimTime(100) + millis(500));
        acc.record_departure(SimTime(200), SimTime(200) + millis(1500));
        // One tuple arriving in period 2.
        acc.record_departure(SimTime::ZERO + secs(2), SimTime::ZERO + secs(2) + millis(100));
        acc.periods = (0..3)
            .map(|k| PeriodRecord {
                k,
                time_s: (k + 1) as f64,
                offered: 0,
                admitted: 0,
                dropped: 0,
                completed: 0,
                outstanding: 0,
                alpha: 0.0,
                arrival_mean_delay_ms: f64::NAN,
                measured_cost_us: f64::NAN,
                cpu_utilisation: 0.0,
            })
            .collect();
        let report = acc.finish();
        assert!((report.periods[0].arrival_mean_delay_ms - 1000.0).abs() < 1e-9);
        assert!(report.periods[1].arrival_mean_delay_ms.is_nan());
        assert!((report.periods[2].arrival_mean_delay_ms - 100.0).abs() < 1e-9);
    }

    #[test]
    fn conservation_probe_balances_and_detects_leaks() {
        let mut acc = MetricsAccumulator::new(secs(2), secs(1));
        acc.offered = 100;
        acc.dropped_entry = 30;
        acc.dropped_network = 10;
        acc.record_departure(SimTime::ZERO, SimTime::ZERO + secs(1));
        acc.record_departure(SimTime::ZERO, SimTime::ZERO + secs(1));
        acc.periods.push(PeriodRecord {
            k: 0,
            time_s: 1.0,
            offered: 100,
            admitted: 70,
            dropped: 40,
            completed: 2,
            outstanding: 58,
            alpha: 0.3,
            arrival_mean_delay_ms: f64::NAN,
            measured_cost_us: f64::NAN,
            cpu_utilisation: 0.5,
        });
        let mut report = acc.finish();
        assert_eq!(report.outstanding_at_end(), 58);
        assert_eq!(report.conservation_residual(), 0);
        assert!(report.counters_balance());
        // A lost tuple (counter increment dropped) breaks the balance.
        report.completed -= 1;
        assert_eq!(report.conservation_residual(), 1);
        assert!(!report.counters_balance());
    }

    #[test]
    fn loss_ratio() {
        let mut acc = MetricsAccumulator::new(secs(2), secs(1));
        acc.offered = 100;
        acc.dropped_entry = 10;
        acc.dropped_network = 5;
        let report = acc.finish();
        assert!((report.loss_ratio() - 0.15).abs() < 1e-12);
    }
}
