//! A sharded real-time data plane under one global controller.
//!
//! This generalizes the single-worker [`RtEngine`](crate::rt::RtEngine)
//! to `N` worker shards. Each shard owns a bounded lock-free ingress
//! ring ([`SpscRing`]), a supervised worker (panic-catch-and-restart,
//! shared with `rt` via [`worker`](crate::worker)), a local
//! measured-cost EWMA (its cost model), and local drop counters. A
//! shared [`ShardedEngine::offer`] front door dispatches tuples
//! round-robin or by key hash, reusing the hybrid entry-shedder seam
//! ([`AtomicShedder`]) so admission control is one decision regardless
//! of shard count.
//!
//! **Batch-first ingress.** [`ShardedEngine::offer_batch`] (and its
//! keyed sibling [`ShardedEngine::offer_batch_keyed`]) admit up to 1024
//! tuples per internal chunk with one entry-shedder pass (the hybrid
//! Bernoulli/geometric state is loaded into registers once per chunk and
//! the geometric skip counter is carried across it), one timestamp, one
//! routing resolution, and one ring reservation per target shard. The
//! per-tuple `offer()` path remains and shares the same counters, so
//! mixing the two is safe.
//!
//! **One controller suffices.** Per the paper's §4.2, the plant
//! `G(z) = cT/(H(z−1))` models the *aggregate* system: the path
//! structure of the query network (and, here, its partitioning across
//! workers) only changes the constant `c`. The controller therefore
//! observes the global virtual-queue signal `q(k) = Σᵢ qᵢ(k)` — the sum
//! of per-shard queue lengths — runs the unchanged pole-placement loop,
//! and broadcasts a single output: one entry drop probability `α(k)`
//! applied at the shared front door, plus an in-queue shed load divided
//! among shards in proportion to their queue lengths (each shard
//! converts its share to tuples through its own measured cost). This is
//! the paper's per-node shedder with a global coordinator.
//!
//! Counter balance is an invariant, not an aspiration — the stress tests
//! assert, under concurrent offers, worker panics, and shutdown:
//!
//! ```text
//! offered == dropped_entry + rejected_capacity + rejected_closed + Σᵢ dispatchedᵢ
//! Σᵢ dispatchedᵢ == completed + dropped_shed + worker_panics   (drained)
//! ```
//!
//! The four front-door buckets are disjoint: `dropped_entry` counts
//! *only* entry-shedder (α) drops, `rejected_capacity` counts arrivals
//! refused because the target shard's ring was full, `rejected_closed`
//! counts arrivals after close, and every caught worker panic loses
//! exactly the tuple being processed. (See DESIGN.md "The counter
//! ledger" — earlier revisions double-counted capacity rejections into
//! `dropped_entry`.)

use crate::hook::PeriodSnapshot;
use crate::obs::{MetricsFn, ObsHandle, ObsOptions, ObsPlane, ObsServer};
use crate::ring::{Push, SpscRing};
use crate::rng::AtomicShedder;
use crate::telemetry::{ControlTrace, EventSink, InstrumentedHook, PromText, SharedRecorder};
use crate::time::{SimDuration, SimTime};
use crate::worker::{spawn_supervised, CostModel, WorkerConfig, WorkerStats};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maximum tuples admitted per internal chunk of a batched offer: one
/// shed pass, one timestamp, and one routing resolution cover at most
/// this many arrivals.
pub const OFFER_BATCH_MAX: usize = 1024;

/// How the front door routes an admitted tuple to a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dispatch {
    /// Rotation over shards — the best load balance when tuples are
    /// exchangeable. When `shards` is a power of two the rotation is
    /// strict (a mask of the arrival sequence, exact even across
    /// `u64::MAX` wraparound); otherwise the sequence is bit-mixed to a
    /// uniform shard choice, since a plain `seq % shards` would skew
    /// dispatch at wraparound.
    #[default]
    RoundRobin,
    /// Route by key hash, so equal keys always land on the same shard
    /// (what a partitioned-state operator needs). [`ShardedEngine::offer`]
    /// without an explicit key uses the arrival sequence number as the
    /// key; [`ShardedEngine::offer_keyed`] always hashes its argument.
    KeyHash,
}

/// Configuration of the sharded data plane.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of worker shards (≥ 1).
    pub shards: usize,
    /// Nominal CPU work per tuple.
    pub cost: Duration,
    /// Control period of the global controller.
    pub period: Duration,
    /// Delay target for violation accounting.
    pub target_delay: Duration,
    /// Headroom factor `H` applied by every shard.
    pub headroom: f64,
    /// Capacity of each shard's bounded queue.
    pub queue_capacity: usize,
    /// Fault injection: every shard panics while processing its n-th
    /// local tuple (1-based). Each panic is caught, the shard restarted,
    /// and exactly one tuple lost.
    pub panic_on_tuple: Option<u64>,
    /// How shards burn the per-tuple service time ([`CostModel::Sleep`]
    /// overlaps on one core; [`CostModel::Spin`] scales with cores).
    pub cost_model: CostModel,
    /// Front-door routing policy.
    pub dispatch: Dispatch,
    /// Seed of the front-door entry-shedder RNG, so shedding decisions
    /// replay exactly for a given seed (wall-clock pacing still varies
    /// between runs). [`ShardConfig::DEFAULT_SEED`] preserves the
    /// historical stream.
    pub seed: u64,
    /// Pin each shard worker to CPU `shard_index % host_cores` (best
    /// effort, Linux only; a failed pin is ignored). Off by default —
    /// pinning helps steady multicore throughput but hurts on
    /// oversubscribed or single-core hosts.
    pub pin_cores: bool,
    /// Sojourn sampling rate for the latency truth plane: roughly every
    /// Nth admitted tuple carries a span mark the worker closes at
    /// retirement ([`spans`](crate::spans)). `0` disables sampling;
    /// sampling only records when the engine is spawned observed.
    pub sample_every: u32,
}

impl ShardConfig {
    /// The entry-shedder seed used before seeds became configurable.
    pub const DEFAULT_SEED: u64 = 0xA076_1D64_78BD_642F;

    /// A fast demo configuration mirroring [`RtConfig::demo`]
    /// (2 ms tuples, 100 ms period, 200 ms target) at `shards` shards.
    ///
    /// [`RtConfig::demo`]: crate::rt::RtConfig::demo
    pub fn demo(shards: usize) -> Self {
        Self {
            shards,
            cost: Duration::from_millis(2),
            period: Duration::from_millis(100),
            target_delay: Duration::from_millis(200),
            headroom: 0.97,
            queue_capacity: 4096,
            panic_on_tuple: None,
            cost_model: CostModel::Sleep,
            dispatch: Dispatch::RoundRobin,
            seed: Self::DEFAULT_SEED,
            pin_cores: false,
            sample_every: crate::spans::DEFAULT_SAMPLE_EVERY,
        }
    }
}

/// One shard: its worker stats, its lock-free ingress ring, its dispatch
/// counter, and its supervisor handle.
struct Shard {
    stats: Arc<WorkerStats>,
    /// Bounded lock-free mailbox. Its close flag makes close-vs-offer
    /// race-free: after [`SpscRing::close`] returns, no offer can sneak
    /// a tuple into a queue nobody will drain (in-flight pushes are
    /// drained by the worker), so the balance invariant is exact.
    ring: Arc<SpscRing>,
    /// Tuples successfully pushed to this shard's ring. `Arc` so the
    /// observed-mode `/metrics` closure can read it without borrowing
    /// the engine.
    dispatched: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

/// The cloneable per-shard counters the Prometheus renderer reads —
/// shared between [`ShardedEngine::prometheus_text`] and the
/// observed-mode HTTP `/metrics` closure.
#[derive(Clone)]
struct ShardView {
    stats: Arc<WorkerStats>,
    dispatched: Arc<AtomicU64>,
}

impl Shard {
    fn view(&self) -> ShardView {
        ShardView {
            stats: Arc::clone(&self.stats),
            dispatched: Arc::clone(&self.dispatched),
        }
    }
}

/// Front-door and controller counters shared across threads.
struct Global {
    alpha_bits: AtomicU64,
    offered: AtomicU64,
    dropped_entry: AtomicU64,
    rejected_capacity: AtomicU64,
    rejected_closed: AtomicU64,
    deadline_misses: AtomicU64,
    periods: AtomicU64,
    hook_ns_total: AtomicU64,
    rr_next: AtomicU64,
    stop: AtomicBool,
    shedder: AtomicShedder,
    /// Admitted-tuple accumulator driving sojourn sampling
    /// ([`spans::sample_crossed`](crate::spans::sample_crossed)).
    sample_acc: AtomicU64,
}

impl Global {
    fn new(seed: u64) -> Self {
        Self {
            alpha_bits: AtomicU64::new(0.0f64.to_bits()),
            offered: AtomicU64::new(0),
            dropped_entry: AtomicU64::new(0),
            rejected_capacity: AtomicU64::new(0),
            rejected_closed: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            periods: AtomicU64::new(0),
            hook_ns_total: AtomicU64::new(0),
            rr_next: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            shedder: AtomicShedder::new(seed),
            sample_acc: AtomicU64::new(0),
        }
    }

    fn alpha(&self) -> f64 {
        f64::from_bits(self.alpha_bits.load(Ordering::Relaxed))
    }
}

/// Fibonacci hash of a dispatch key onto a shard index.
#[inline]
fn key_to_shard(key: u64, shards: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % shards
}

/// splitmix64 finalizer: a full-avalanche bit mix.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Round-robin routing of arrival sequence `seq` onto a shard. A power
/// of two shard count masks the sequence directly — strict rotation,
/// exact across `u64::MAX` wraparound because a power of two divides
/// 2⁶⁴. Any other count bit-mixes the sequence first: `seq % shards`
/// would be near-rotational but skewed at wraparound (2⁶⁴ mod 3 ≠ 0),
/// while the mix gives uniform wrap-safe dispatch.
#[inline]
fn rr_to_shard(seq: u64, shards: usize) -> usize {
    let n = shards as u64;
    if n.is_power_of_two() {
        (seq & (n - 1)) as usize
    } else {
        (mix64(seq) % n) as usize
    }
}

/// Outcome of one batched offer: how the batch's arrivals split across
/// the front-door ledger. `offered` always equals
/// `dispatched + dropped_entry + rejected_capacity + rejected_closed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchResult {
    /// Arrivals presented (the batch size).
    pub offered: u64,
    /// Arrivals admitted and enqueued on some shard.
    pub dispatched: u64,
    /// Arrivals dropped by the entry shedder (α decisions).
    pub dropped_entry: u64,
    /// Arrivals rejected because the target shard's ring was full.
    pub rejected_capacity: u64,
    /// Arrivals rejected because the engine was closed.
    pub rejected_closed: u64,
}

impl BatchResult {
    /// Folds another batch outcome into this one.
    pub fn merge(&mut self, o: &BatchResult) {
        self.offered += o.offered;
        self.dispatched += o.dispatched;
        self.dropped_entry += o.dropped_entry;
        self.rejected_capacity += o.rejected_capacity;
        self.rejected_closed += o.rejected_closed;
    }
}

/// Per-shard slice of a [`ShardReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStat {
    /// Tuples dispatched to this shard's queue.
    pub dispatched: u64,
    /// Tuples this shard fully processed.
    pub completed: u64,
    /// Tuples this shard dropped by consuming shed budget.
    pub dropped_shed: u64,
    /// Panics this shard's supervisor caught (one tuple lost each).
    pub worker_panics: u64,
    /// Mean delay of this shard's completions, ms.
    pub mean_delay_ms: f64,
    /// The shard's measured per-tuple cost EWMA, µs (`NaN` if it never
    /// completed a tuple).
    pub cost_ewma_us: f64,
}

/// Final report of a sharded run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Tuples offered at the front door.
    pub offered: u64,
    /// Tuples dropped by the entry shedder (α decisions only; disjoint
    /// from the rejection buckets below).
    pub dropped_entry: u64,
    /// Arrivals rejected because the target shard's queue was full.
    pub rejected_at_capacity: u64,
    /// Arrivals rejected because the engine was closed or shut down.
    pub rejected_closed: u64,
    /// Tuples dropped across shards by in-queue shedding.
    pub dropped_shed: u64,
    /// Tuples fully processed across shards.
    pub completed: u64,
    /// Worker panics caught across shards.
    pub worker_panics: u64,
    /// Control-period boundaries serviced more than T/2 late.
    pub deadline_misses: u64,
    /// Control-hook invocations.
    pub periods: u64,
    /// Mean delay across all completed tuples, ms.
    pub mean_delay_ms: f64,
    /// Per-shard breakdown, indexed by shard id.
    pub per_shard: Vec<ShardStat>,
}

impl ShardReport {
    /// The exact counter-balance invariant; `true` when every offered
    /// tuple is accounted for in exactly one outcome. Valid after
    /// shutdown (queues drained).
    pub fn counters_balance(&self) -> bool {
        let dispatched: u64 = self.per_shard.iter().map(|s| s.dispatched).sum();
        self.offered
            == self.dropped_entry + self.rejected_at_capacity + self.rejected_closed + dispatched
            && dispatched == self.completed + self.dropped_shed + self.worker_panics
    }

    /// Data loss ratio: everything the running system failed to process
    /// — entry-shedder drops, capacity rejections, and in-queue shedding
    /// — over everything offered. (Closed-door rejections are excluded:
    /// they are shutdown artifacts, not load shedding.)
    pub fn loss_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.dropped_entry + self.rejected_at_capacity + self.dropped_shed) as f64
                / self.offered as f64
        }
    }
}

/// Handle for feeding tuples into a running sharded engine.
pub struct ShardedEngine {
    global: Arc<Global>,
    shards: Vec<Shard>,
    controller: Option<JoinHandle<()>>,
    cfg: ShardConfig,
    obs: Option<ObsHandle>,
    /// Shared time origin of every shard ring, so one batched timestamp
    /// serves all shards.
    epoch: Instant,
}

impl ShardedEngine {
    /// Spawns `cfg.shards` supervised workers plus one global controller
    /// thread driving `hook`.
    pub fn spawn<H>(cfg: ShardConfig, hook: H) -> Self
    where
        H: InstrumentedHook + Send + 'static,
    {
        Self::spawn_recorded(cfg, hook, None)
    }

    /// Like [`Self::spawn`], additionally capturing one [`ControlTrace`]
    /// per control period (with per-shard queue lengths attached) into
    /// `recorder`.
    pub fn spawn_recorded<H>(
        cfg: ShardConfig,
        hook: H,
        recorder: Option<SharedRecorder>,
    ) -> Self
    where
        H: InstrumentedHook + Send + 'static,
    {
        Self::spawn_sink(cfg, hook, recorder, None)
    }

    /// Spawns the engine with the live observability plane attached: the
    /// per-period [`ControlTrace`] stream (with per-shard queue lengths)
    /// feeds an [`ObsPlane`] — trace ring, controller-health diagnostics,
    /// optional anomaly flight recorder — and, when `options.http` is
    /// set, an HTTP server answers `/metrics`, `/health`, `/ready` and
    /// `/trace` for this engine. Fails only if the HTTP bind fails.
    pub fn spawn_observed<H>(
        cfg: ShardConfig,
        hook: H,
        options: &ObsOptions,
    ) -> std::io::Result<Self>
    where
        H: InstrumentedHook + Send + 'static,
    {
        let plane = ObsPlane::new(options);
        let spans = plane.spans().clone();
        let mut engine = Self::spawn_sink(cfg, hook, Some(plane.clone()), Some(&spans));
        let server = match &options.http {
            Some(http) => {
                let metrics = metrics_fn(&engine, Some(plane.clone()));
                Some(ObsServer::start(http.clone(), plane.clone(), metrics)?)
            }
            None => None,
        };
        engine.obs = Some(ObsHandle::from_parts(plane, server));
        Ok(engine)
    }

    /// A `/metrics` renderer over this engine's live counters — the same
    /// closure [`spawn_observed`](Self::spawn_observed) hands its HTTP
    /// server, exposed so an external front end (e.g. the network
    /// ingestion plane) can serve the engine's `streamshed_*` families
    /// from its own listener. Includes the diagnostics and adapt
    /// families when the engine was spawned with an observability plane
    /// attached. The closure captures only `Arc`s, so it stays valid
    /// for the engine's whole lifetime.
    pub fn metrics_fn(&self) -> MetricsFn {
        metrics_fn(self, self.obs.as_ref().map(|o| o.plane.clone()))
    }

    /// The observability attachment, when spawned via
    /// [`ShardedEngine::spawn_observed`].
    pub fn obs(&self) -> Option<&ObsHandle> {
        self.obs.as_ref()
    }

    /// The shared implementation: spawns workers plus the global
    /// controller, recording each period's trace into `sink` when given.
    fn spawn_sink<H, S>(
        cfg: ShardConfig,
        mut hook: H,
        sink: Option<S>,
        spans: Option<&crate::spans::SpanRegistry>,
    ) -> Self
    where
        H: InstrumentedHook + Send + 'static,
        S: EventSink + Send + 'static,
    {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.headroom > 0.0 && cfg.headroom <= 1.0);
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        // Sampling marks are only closed by span-carrying workers, so a
        // plain (unobserved) engine disables them and pays nothing.
        let mut cfg = cfg;
        if spans.is_none() {
            cfg.sample_every = 0;
        }
        let global = Arc::new(Global::new(cfg.seed));
        let epoch = Instant::now();
        let cores = crate::affinity::host_cores();
        let shards: Vec<Shard> = (0..cfg.shards)
            .map(|i| {
                let stats = Arc::new(WorkerStats::new());
                let ring = Arc::new(SpscRing::with_epoch(cfg.queue_capacity, epoch));
                let handle = spawn_supervised(
                    Arc::clone(&stats),
                    Arc::clone(&ring),
                    WorkerConfig {
                        cost: cfg.cost,
                        headroom: cfg.headroom,
                        target_delay: cfg.target_delay,
                        panic_on_tuple: cfg.panic_on_tuple,
                        cost_model: cfg.cost_model,
                        pin_core: cfg.pin_cores.then_some(i % cores),
                        spans: spans.map(|r| r.handle(&i.to_string())),
                    },
                );
                Shard {
                    stats,
                    ring,
                    dispatched: Arc::new(AtomicU64::new(0)),
                    handle: Some(handle),
                }
            })
            .collect();

        let controller = {
            let global = Arc::clone(&global);
            let stats: Vec<Arc<WorkerStats>> =
                shards.iter().map(|s| Arc::clone(&s.stats)).collect();
            let cfg = cfg.clone();
            let mut sink = sink;
            std::thread::spawn(move || {
                let start = Instant::now();
                let mut k = 0u64;
                let mut last = Totals::default();
                let mut queues = vec![0u64; cfg.shards];
                while !global.stop.load(Ordering::Relaxed) {
                    std::thread::sleep(cfg.period);
                    let due = cfg.period.mul_f64((k + 1) as f64);
                    if start.elapsed().saturating_sub(due) > cfg.period / 2 {
                        global.deadline_misses.fetch_add(1, Ordering::Relaxed);
                    }

                    // Monitor: the global virtual-queue signal is the sum
                    // of per-shard queue lengths, q(k) = Σ qᵢ(k).
                    for (i, st) in stats.iter().enumerate() {
                        queues[i] = st.queue_len.load(Ordering::Relaxed);
                    }
                    let q_total: u64 = queues.iter().sum();
                    let now = Totals::read(&global, &stats);
                    let delta = now.minus(&last);
                    last = now;

                    // Aggregate cost model: completed-weighted mean of
                    // the per-shard EWMAs (falls back to the nominal
                    // cost until any shard has a measurement).
                    let mut cost_w = 0.0f64;
                    let mut cost_n = 0.0f64;
                    for st in stats.iter() {
                        let c = st.cost_ewma_us();
                        if c.is_finite() {
                            let w = (st.completed.load(Ordering::Relaxed) as f64).max(1.0);
                            cost_w += c * w;
                            cost_n += w;
                        }
                    }
                    let measured = cost_n > 0.0;
                    let cost_us = if measured {
                        cost_w / cost_n
                    } else {
                        cfg.cost.as_micros() as f64
                    };
                    // The *plant* constant the controller must see is the
                    // aggregate per-tuple cost: N shards drain the global
                    // queue concurrently, so one queued tuple holds the
                    // system for c/N wall-clock (the paper's §4.2 — the
                    // plant structure only changes the constant c). The
                    // undivided local cost is still what a shard's shed
                    // budget must use below.
                    let plant_cost_us = cost_us / cfg.shards as f64;

                    let completed = delta.completed;
                    // The controller's view of front-door loss stays
                    // inclusive: α drops and capacity rejections both
                    // reduce admitted load, so `dropped_entry` here is
                    // their sum even though the report ledger keeps the
                    // buckets disjoint.
                    let front_door_drops = delta.dropped_entry + delta.rejected_capacity;
                    let snapshot = PeriodSnapshot {
                        k,
                        now: SimTime(start.elapsed().as_micros() as u64),
                        period: SimDuration(cfg.period.as_micros() as u64),
                        offered: delta.offered,
                        admitted: delta
                            .offered
                            .saturating_sub(front_door_drops + delta.rejected_closed),
                        dropped_entry: front_door_drops,
                        dropped_network: delta.dropped_shed,
                        completed,
                        outstanding: q_total,
                        queued_tuples: q_total,
                        queued_load_us: q_total as f64 * plant_cost_us,
                        measured_cost_us: measured.then_some(plant_cost_us),
                        mean_delay_ms: (completed > 0)
                            .then(|| delta.delay_sum_us as f64 / completed as f64 / 1e3),
                        cpu_busy_us: (completed as f64 * cost_us) as u64,
                    };

                    let t0 = Instant::now();
                    let decision = hook.on_period(&snapshot);
                    let hook_ns = t0.elapsed().as_nanos() as u64;
                    global.hook_ns_total.fetch_add(hook_ns, Ordering::Relaxed);
                    global.periods.fetch_add(1, Ordering::Relaxed);

                    // Actuate: one α broadcast to the shared front door…
                    let new_bits = decision.entry_drop_prob.clamp(0.0, 1.0).to_bits();
                    let old_bits = global.alpha_bits.swap(new_bits, Ordering::Relaxed);
                    if old_bits != new_bits {
                        global.shedder.reset_skip();
                    }
                    // …and the in-queue shed load divided among shards in
                    // proportion to their queues, each share converted to
                    // tuples through that shard's own measured cost.
                    if decision.shed_load_us > 0.0 && q_total > 0 {
                        for (i, st) in stats.iter().enumerate() {
                            if queues[i] == 0 {
                                continue;
                            }
                            let share =
                                decision.shed_load_us * queues[i] as f64 / q_total as f64;
                            let local_cost = {
                                let c = st.cost_ewma_us();
                                if c.is_finite() && c > 0.0 {
                                    c
                                } else {
                                    cfg.cost.as_micros() as f64
                                }
                            };
                            let tuples = (share / local_cost).ceil() as u64;
                            if tuples > 0 {
                                st.shed_budget.fetch_add(tuples, Ordering::Relaxed);
                            }
                        }
                    }

                    if let Some(rec) = sink.as_mut() {
                        let state = hook.control_state();
                        let trace =
                            ControlTrace::capture(&snapshot, &decision, state.as_ref(), hook_ns)
                                .with_adapt(hook.adapt_state())
                                .with_shard_queues(&queues);
                        rec.record(&trace);
                    }
                    k += 1;
                }
            })
        };

        Self {
            global,
            shards,
            controller: Some(controller),
            cfg,
            obs: None,
            epoch,
        }
    }

    /// Offers one tuple through the configured [`Dispatch`] policy.
    /// Returns `false` if the entry shedder dropped it, the target
    /// shard's queue was full, or the engine is closed.
    pub fn offer(&self) -> bool {
        let seq = self.global.rr_next.fetch_add(1, Ordering::Relaxed);
        let idx = match self.cfg.dispatch {
            Dispatch::RoundRobin => rr_to_shard(seq, self.cfg.shards),
            Dispatch::KeyHash => key_to_shard(seq, self.cfg.shards),
        };
        self.offer_to(idx)
    }

    /// Offers one tuple routed by `key` (equal keys always reach the
    /// same shard), regardless of the configured dispatch policy.
    pub fn offer_keyed(&self, key: u64) -> bool {
        self.offer_to(key_to_shard(key, self.cfg.shards))
    }

    fn offer_to(&self, idx: usize) -> bool {
        self.global.offered.fetch_add(1, Ordering::Relaxed);
        let alpha = self.global.alpha();
        if alpha > 0.0 && self.global.shedder.should_drop(alpha) {
            self.global.dropped_entry.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let shard = &self.shards[idx];
        let mut stamp = shard.ring.stamp_now();
        if crate::spans::sample_crossings(&self.global.sample_acc, self.cfg.sample_every, 1) > 0 {
            stamp |= crate::spans::SAMPLE_BIT;
        }
        match shard.ring.push(stamp) {
            Push::Pushed(1) => {
                shard.stats.queue_len.fetch_add(1, Ordering::Relaxed);
                shard.dispatched.fetch_add(1, Ordering::Relaxed);
                true
            }
            Push::Pushed(_) => {
                self.global.rejected_capacity.fetch_add(1, Ordering::Relaxed);
                false
            }
            Push::Closed => {
                self.global.rejected_closed.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Offers `n` anonymous tuples in one batched admission. Internally
    /// chunked at [`OFFER_BATCH_MAX`]; each chunk costs one entry-shedder
    /// pass (the hybrid state is register-local for the whole chunk and
    /// the geometric skip counter carries across it), one timestamp, and
    /// one ring reservation per target shard. Statistically the α
    /// semantics are identical to `n` calls of [`offer`](Self::offer):
    /// the batch pass replays the exact per-arrival decision sequence
    /// the scalar path would have made from the same shedder state.
    pub fn offer_batch(&self, n: usize) -> BatchResult {
        let mut res = BatchResult::default();
        let mut remaining = n;
        let mut counts = vec![0u64; self.cfg.shards];
        while remaining > 0 {
            let chunk = remaining.min(OFFER_BATCH_MAX);
            remaining -= chunk;
            self.global.offered.fetch_add(chunk as u64, Ordering::Relaxed);
            res.offered += chunk as u64;
            let alpha = self.global.alpha();
            let drops = self.global.shedder.shed_batch(alpha, chunk as u64);
            if drops > 0 {
                self.global.dropped_entry.fetch_add(drops, Ordering::Relaxed);
                res.dropped_entry += drops;
            }
            let admit = chunk as u64 - drops;
            if admit == 0 {
                continue;
            }
            // One routing resolution for the whole chunk: survivors take
            // consecutive arrival sequence numbers.
            let seq0 = self.global.rr_next.fetch_add(admit, Ordering::Relaxed);
            counts.iter_mut().for_each(|c| *c = 0);
            let shards = self.cfg.shards;
            match self.cfg.dispatch {
                Dispatch::RoundRobin if (shards as u64).is_power_of_two() => {
                    // Closed-form strict rotation: shard (seq0 + k) & mask
                    // for k in 0..admit.
                    let base = admit / shards as u64;
                    let extra = admit % shards as u64;
                    let start = rr_to_shard(seq0, shards) as u64;
                    for (i, c) in counts.iter_mut().enumerate() {
                        let offset = (i as u64 + shards as u64 - start) % shards as u64;
                        *c = base + u64::from(offset < extra);
                    }
                }
                Dispatch::RoundRobin => {
                    for k in 0..admit {
                        counts[rr_to_shard(seq0.wrapping_add(k), shards)] += 1;
                    }
                }
                Dispatch::KeyHash => {
                    for k in 0..admit {
                        counts[key_to_shard(seq0.wrapping_add(k), shards)] += 1;
                    }
                }
            }
            self.push_counts(&counts, &mut res);
        }
        res
    }

    /// Offers one keyed tuple per element of `keys` in one batched
    /// admission: equal keys always reach the same shard (sticky-batch
    /// dispatch — the batch is grouped by target shard with one hash per
    /// key and one grouping pass, then pushed as per-shard sub-batches).
    /// Entry-shedder decisions are per arrival, exactly as
    /// [`offer_keyed`](Self::offer_keyed) would have made them.
    pub fn offer_batch_keyed(&self, keys: &[u64]) -> BatchResult {
        self.offer_batch_keyed_with(keys.len(), |i| keys[i])
    }

    /// Keyed batch admission with *lazy* key materialization: `key_at(i)`
    /// is called only for arrivals the entry shedder admits. This is the
    /// network plane's shed-before-decode seam — a frame of `n` keys can
    /// be admitted straight out of the receive buffer, and keys the
    /// shedder drops are never decoded at all (under heavy shedding a
    /// frame costs one header read plus one shedder pass). Semantics are
    /// otherwise identical to [`offer_batch_keyed`](Self::offer_batch_keyed):
    /// per-arrival decisions in index order, sticky key→shard routing,
    /// one grouping pass and one ring reservation per target shard.
    pub fn offer_batch_keyed_with<F>(&self, n: usize, mut key_at: F) -> BatchResult
    where
        F: FnMut(usize) -> u64,
    {
        let mut res = BatchResult::default();
        let mut counts = vec![0u64; self.cfg.shards];
        let mut base = 0usize;
        while base < n {
            let len = (n - base).min(OFFER_BATCH_MAX);
            self.global.offered.fetch_add(len as u64, Ordering::Relaxed);
            res.offered += len as u64;
            let alpha = self.global.alpha();
            counts.iter_mut().for_each(|c| *c = 0);
            let shards = self.cfg.shards;
            let drops = self.global.shedder.shed_batch_each(alpha, len as u64, |i| {
                counts[key_to_shard(key_at(base + i), shards)] += 1;
            });
            if drops > 0 {
                self.global.dropped_entry.fetch_add(drops, Ordering::Relaxed);
                res.dropped_entry += drops;
            }
            self.push_counts(&counts, &mut res);
            base += len;
        }
        res
    }

    /// Pushes `counts[i]` stamps to shard `i` in one reservation each,
    /// folding outcomes into `res`. One timestamp serves the whole call
    /// (all rings share the engine epoch).
    fn push_counts(&self, counts: &[u64], res: &mut BatchResult) {
        let mut stamp = None;
        for (shard, &want) in self.shards.iter().zip(counts) {
            if want == 0 {
                continue;
            }
            let stamp = *stamp.get_or_insert_with(|| self.epoch.elapsed().as_nanos() as u64);
            // Sojourn sampling: the marked head of the sub-batch carries
            // SAMPLE_BIT, preserving the 1-in-`sample_every` rate across
            // batched admission. A second reservation only happens when
            // this sub-batch crossed a sampling point.
            let marked = crate::spans::sample_crossings(
                &self.global.sample_acc,
                self.cfg.sample_every,
                want,
            )
            .min(want);
            let mut got = 0u64;
            let mut closed = false;
            if marked > 0 {
                match shard
                    .ring
                    .push_repeat(stamp | crate::spans::SAMPLE_BIT, marked as usize)
                {
                    Push::Pushed(g) => got += g as u64,
                    Push::Closed => closed = true,
                }
            }
            if !closed && want > marked {
                match shard.ring.push_repeat(stamp, (want - marked) as usize) {
                    Push::Pushed(g) => got += g as u64,
                    Push::Closed => closed = true,
                }
            }
            if got > 0 {
                shard.stats.queue_len.fetch_add(got, Ordering::Relaxed);
                shard.dispatched.fetch_add(got, Ordering::Relaxed);
                res.dispatched += got;
            }
            if closed {
                self.global.rejected_closed.fetch_add(want - got, Ordering::Relaxed);
                res.rejected_closed += want - got;
            } else if got < want {
                self.global
                    .rejected_capacity
                    .fetch_add(want - got, Ordering::Relaxed);
                res.rejected_capacity += want - got;
            }
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.cfg.shards
    }

    /// The global virtual-queue signal: Σᵢ qᵢ.
    pub fn queue_len(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.stats.queue_len.load(Ordering::Relaxed))
            .sum()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// Closes the front door: every subsequent offer is counted
    /// `rejected_closed`, and workers exit once their queues drain.
    /// Idempotent; safe to race with concurrent `offer()` calls (a
    /// racing push either lands before the close and is drained, or
    /// observes the close flag and is rejected — never stranded).
    pub fn close(&self) {
        for shard in &self.shards {
            shard.ring.close();
        }
    }

    /// A live snapshot in the Prometheus text exposition format:
    /// `streamshed_*` global counters plus `streamshed_shard_*` families
    /// labelled `{shard="i"}`.
    pub fn prometheus_text(&self) -> String {
        let views: Vec<ShardView> = self.shards.iter().map(|s| s.view()).collect();
        let mut p = PromText::new("streamshed");
        render_prometheus(&self.global, &views, &mut p);
        if let Some(obs) = &self.obs {
            obs.plane.health().render_prom(&mut p);
            obs.plane.render_adapt_prom(&mut p);
            obs.plane.spans().snapshot().render_prom(&mut p);
        }
        p.finish()
    }
}

/// Builds the `/metrics` closure over cloned counter handles (and the
/// observability plane's families when one is attached) — shared by
/// [`ShardedEngine::spawn_observed`] and [`ShardedEngine::metrics_fn`].
fn metrics_fn(engine: &ShardedEngine, plane: Option<ObsPlane>) -> MetricsFn {
    let global = Arc::clone(&engine.global);
    let views: Vec<ShardView> = engine.shards.iter().map(|s| s.view()).collect();
    Arc::new(move || {
        let mut p = PromText::new("streamshed");
        render_prometheus(&global, &views, &mut p);
        if let Some(plane) = &plane {
            plane.health().render_prom(&mut p);
            plane.render_adapt_prom(&mut p);
            plane.spans().snapshot().render_prom(&mut p);
        }
        p.finish()
    })
}

/// Renders the global counters plus the `{shard="i"}`-labelled families
/// into `p` — shared by [`ShardedEngine::prometheus_text`] and the
/// observed-mode `/metrics` closure (which captures cloned counter
/// handles instead of the engine).
fn render_prometheus(g: &Global, shards: &[ShardView], p: &mut PromText) {
    let per = |f: &dyn Fn(&ShardView) -> f64| -> Vec<f64> { shards.iter().map(f).collect() };
    let completed: u64 = shards
        .iter()
        .map(|s| s.stats.completed.load(Ordering::Relaxed))
        .sum();
    let delay_sum: u64 = shards
        .iter()
        .map(|s| s.stats.delay_sum_us.load(Ordering::Relaxed))
        .sum();
    let queue_len: u64 = shards
        .iter()
        .map(|s| s.stats.queue_len.load(Ordering::Relaxed))
        .sum();
    p.counter(
            "offered_total",
            "Tuples offered at the front door",
            g.offered.load(Ordering::Relaxed) as f64,
        )
        .counter(
            "dropped_entry_total",
            "Tuples dropped by the entry shedder (alpha decisions only)",
            g.dropped_entry.load(Ordering::Relaxed) as f64,
        )
        .counter(
            "rejected_capacity_total",
            "Arrivals rejected because the target shard's queue was full",
            g.rejected_capacity.load(Ordering::Relaxed) as f64,
        )
        .counter(
            "rejected_closed_total",
            "Arrivals rejected because the engine was closed",
            g.rejected_closed.load(Ordering::Relaxed) as f64,
        )
        .counter("completed_total", "Tuples fully processed", completed as f64)
        .counter(
            "deadline_misses_total",
            "Control-period boundaries serviced more than T/2 late",
            g.deadline_misses.load(Ordering::Relaxed) as f64,
        )
        .counter(
            "control_periods_total",
            "Control-hook invocations",
            g.periods.load(Ordering::Relaxed) as f64,
        )
        .counter(
            "hook_time_ns_total",
            "Wall-clock nanoseconds spent inside the control hook",
            g.hook_ns_total.load(Ordering::Relaxed) as f64,
        )
        .gauge("alpha", "Entry drop probability currently in force", g.alpha())
        .gauge("shards", "Number of worker shards", shards.len() as f64)
        .gauge(
            "queue_len",
            "Global virtual queue q(k) = sum of shard queues",
            queue_len as f64,
        )
        .gauge(
            "delay_mean_ms",
            "Mean delay of completed tuples, milliseconds",
            if completed > 0 {
                delay_sum as f64 / completed as f64 / 1e3
            } else {
                0.0
            },
        )
        .counter_vec(
            "shard_dispatched_total",
            "Tuples dispatched to each shard",
            "shard",
            &per(&|s| s.dispatched.load(Ordering::Relaxed) as f64),
        )
        .counter_vec(
            "shard_completed_total",
            "Tuples each shard fully processed",
            "shard",
            &per(&|s| s.stats.completed.load(Ordering::Relaxed) as f64),
        )
        .counter_vec(
            "shard_dropped_shed_total",
            "Tuples each shard dropped by in-queue shedding",
            "shard",
            &per(&|s| s.stats.dropped_shed.load(Ordering::Relaxed) as f64),
        )
        .counter_vec(
            "shard_worker_panics_total",
            "Worker panics caught per shard",
            "shard",
            &per(&|s| s.stats.worker_panics.load(Ordering::Relaxed) as f64),
        )
        .gauge_vec(
            "shard_queue_len",
            "Tuples queued per shard",
            "shard",
            &per(&|s| s.stats.queue_len.load(Ordering::Relaxed) as f64),
        )
        .gauge_vec(
            "shard_cost_ewma_us",
            "Measured per-tuple cost EWMA per shard, microseconds (NaN until measured)",
            "shard",
            &per(&|s| s.stats.cost_ewma_us()),
        );
}

impl ShardedEngine {
    /// Stops the controller, closes the front door, joins every worker
    /// (draining their queues), and returns the final report.
    pub fn shutdown(mut self) -> ShardReport {
        self.global.stop.store(true, Ordering::Relaxed);
        self.close();
        if let Some(c) = self.controller.take() {
            let _ = c.join();
        }
        for shard in &mut self.shards {
            if let Some(h) = shard.handle.take() {
                let _ = h.join();
            }
        }
        if let Some(mut o) = self.obs.take() {
            o.stop();
        }
        let mut per_shard = Vec::with_capacity(self.cfg.shards);
        let mut delay_sum = 0u64;
        let mut completed = 0u64;
        let mut dropped_shed = 0u64;
        let mut panics = 0u64;
        for shard in &self.shards {
            let st = &shard.stats;
            let c = st.completed.load(Ordering::Relaxed);
            let d = st.delay_sum_us.load(Ordering::Relaxed);
            completed += c;
            delay_sum += d;
            dropped_shed += st.dropped_shed.load(Ordering::Relaxed);
            panics += st.worker_panics.load(Ordering::Relaxed);
            per_shard.push(ShardStat {
                dispatched: shard.dispatched.load(Ordering::Relaxed),
                completed: c,
                dropped_shed: st.dropped_shed.load(Ordering::Relaxed),
                worker_panics: st.worker_panics.load(Ordering::Relaxed),
                mean_delay_ms: st.mean_delay_ms(),
                cost_ewma_us: st.cost_ewma_us(),
            });
        }
        let g = &self.global;
        ShardReport {
            offered: g.offered.load(Ordering::Relaxed),
            dropped_entry: g.dropped_entry.load(Ordering::Relaxed),
            rejected_at_capacity: g.rejected_capacity.load(Ordering::Relaxed),
            rejected_closed: g.rejected_closed.load(Ordering::Relaxed),
            dropped_shed,
            completed,
            worker_panics: panics,
            deadline_misses: g.deadline_misses.load(Ordering::Relaxed),
            periods: g.periods.load(Ordering::Relaxed),
            mean_delay_ms: if completed > 0 {
                delay_sum as f64 / completed as f64 / 1e3
            } else {
                0.0
            },
            per_shard,
        }
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        self.global.stop.store(true, Ordering::Relaxed);
        self.close();
        if let Some(c) = self.controller.take() {
            let _ = c.join();
        }
        for shard in &mut self.shards {
            if let Some(h) = shard.handle.take() {
                let _ = h.join();
            }
        }
        if let Some(mut o) = self.obs.take() {
            o.stop();
        }
    }
}

/// Aggregated deltas the controller tracks period to period.
#[derive(Default, Clone, Copy)]
struct Totals {
    offered: u64,
    dropped_entry: u64,
    rejected_capacity: u64,
    rejected_closed: u64,
    dropped_shed: u64,
    completed: u64,
    delay_sum_us: u64,
}

impl Totals {
    fn read(g: &Global, stats: &[Arc<WorkerStats>]) -> Self {
        let mut t = Self {
            offered: g.offered.load(Ordering::Relaxed),
            dropped_entry: g.dropped_entry.load(Ordering::Relaxed),
            rejected_capacity: g.rejected_capacity.load(Ordering::Relaxed),
            rejected_closed: g.rejected_closed.load(Ordering::Relaxed),
            ..Self::default()
        };
        for s in stats {
            t.dropped_shed += s.dropped_shed.load(Ordering::Relaxed);
            t.completed += s.completed.load(Ordering::Relaxed);
            t.delay_sum_us += s.delay_sum_us.load(Ordering::Relaxed);
        }
        t
    }

    fn minus(&self, o: &Self) -> Self {
        Self {
            offered: self.offered - o.offered,
            dropped_entry: self.dropped_entry - o.dropped_entry,
            rejected_capacity: self.rejected_capacity - o.rejected_capacity,
            rejected_closed: self.rejected_closed - o.rejected_closed,
            dropped_shed: self.dropped_shed - o.dropped_shed,
            completed: self.completed - o.completed,
            delay_sum_us: self.delay_sum_us - o.delay_sum_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::{Decision, NoShedding};
    use crate::telemetry::SharedRecorder;

    fn quick_cfg(shards: usize) -> ShardConfig {
        ShardConfig {
            shards,
            cost: Duration::from_micros(200),
            period: Duration::from_millis(20),
            target_delay: Duration::from_millis(100),
            headroom: 1.0,
            queue_capacity: 4096,
            panic_on_tuple: None,
            cost_model: CostModel::Sleep,
            dispatch: Dispatch::RoundRobin,
            seed: ShardConfig::DEFAULT_SEED,
            pin_cores: false,
            sample_every: crate::spans::DEFAULT_SAMPLE_EVERY,
        }
    }

    #[test]
    fn round_robin_balances_and_completes_everything() {
        let engine = ShardedEngine::spawn(quick_cfg(4), NoShedding);
        for _ in 0..200 {
            engine.offer();
            std::thread::sleep(Duration::from_micros(300));
        }
        std::thread::sleep(Duration::from_millis(100));
        let report = engine.shutdown();
        assert_eq!(report.offered, 200);
        assert_eq!(report.completed, 200);
        assert!(report.counters_balance(), "{report:?}");
        for s in &report.per_shard {
            assert_eq!(s.dispatched, 50, "round robin is exact");
            assert!(s.cost_ewma_us.is_finite());
        }
    }

    #[test]
    fn key_hash_is_sticky_per_key() {
        let engine = ShardedEngine::spawn(quick_cfg(4), NoShedding);
        // All offers carry the same key: exactly one shard gets them.
        for _ in 0..80 {
            engine.offer_keyed(0xDEADBEEF);
            std::thread::sleep(Duration::from_micros(300));
        }
        std::thread::sleep(Duration::from_millis(100));
        let report = engine.shutdown();
        let non_empty: Vec<_> = report.per_shard.iter().filter(|s| s.dispatched > 0).collect();
        assert_eq!(non_empty.len(), 1, "one shard owns the key");
        assert_eq!(non_empty[0].dispatched, 80);
        assert!(report.counters_balance());
    }

    #[test]
    fn global_alpha_sheds_at_the_front_door() {
        let cfg = quick_cfg(2);
        let hook = |_s: &PeriodSnapshot| Decision::entry(0.5);
        let engine = ShardedEngine::spawn(cfg, hook);
        std::thread::sleep(Duration::from_millis(50)); // let α take effect
        for _ in 0..400 {
            engine.offer();
            std::thread::sleep(Duration::from_micros(100));
        }
        let report = engine.shutdown();
        let ratio = report.dropped_entry as f64 / report.offered as f64;
        assert!(ratio > 0.3 && ratio < 0.7, "ratio {ratio}");
        assert!(report.counters_balance());
    }

    #[test]
    fn shed_load_divides_across_queued_shards() {
        let cfg = ShardConfig {
            cost: Duration::from_millis(5),
            period: Duration::from_millis(10),
            target_delay: Duration::from_millis(20),
            ..quick_cfg(2)
        };
        let hook = |_s: &PeriodSnapshot| Decision::network(50_000.0);
        let engine = ShardedEngine::spawn(cfg, hook);
        for _ in 0..200 {
            engine.offer();
        }
        std::thread::sleep(Duration::from_millis(150));
        let report = engine.shutdown();
        assert!(report.dropped_shed > 0, "{report:?}");
        assert!(report.counters_balance());
    }

    #[test]
    fn per_shard_panics_lose_exactly_one_tuple_each() {
        let mut cfg = quick_cfg(3);
        cfg.panic_on_tuple = Some(5);
        let engine = ShardedEngine::spawn(cfg, NoShedding);
        for _ in 0..90 {
            engine.offer();
            std::thread::sleep(Duration::from_micros(300));
        }
        std::thread::sleep(Duration::from_millis(100));
        let report = engine.shutdown();
        assert_eq!(report.worker_panics, 3, "one caught panic per shard");
        assert_eq!(report.completed, 90 - 3);
        assert!(report.counters_balance(), "{report:?}");
    }

    #[test]
    fn offer_batch_round_robin_is_exact_on_power_of_two() {
        let engine = ShardedEngine::spawn(quick_cfg(4), NoShedding);
        let mut total = BatchResult::default();
        for n in [16usize, 256, 120, 8] {
            total.merge(&engine.offer_batch(n));
            std::thread::sleep(Duration::from_millis(10));
        }
        std::thread::sleep(Duration::from_millis(100));
        let report = engine.shutdown();
        assert_eq!(total.offered, 400);
        assert_eq!(total.dispatched, 400);
        assert_eq!(report.offered, 400);
        assert_eq!(report.completed, 400);
        assert!(report.counters_balance(), "{report:?}");
        for s in &report.per_shard {
            assert_eq!(s.dispatched, 100, "strict rotation survives batching");
        }
    }

    #[test]
    fn offer_batch_sheds_with_alpha_semantics() {
        let cfg = quick_cfg(2);
        let hook = |_s: &PeriodSnapshot| Decision::entry(0.5);
        let engine = ShardedEngine::spawn(cfg, hook);
        std::thread::sleep(Duration::from_millis(50)); // let α take effect
        let mut total = BatchResult::default();
        for _ in 0..40 {
            total.merge(&engine.offer_batch(100));
            std::thread::sleep(Duration::from_millis(2));
        }
        let report = engine.shutdown();
        let ratio = total.dropped_entry as f64 / total.offered as f64;
        assert!(ratio > 0.3 && ratio < 0.7, "ratio {ratio}");
        assert_eq!(report.dropped_entry, total.dropped_entry);
        assert!(report.counters_balance(), "{report:?}");
    }

    #[test]
    fn offer_batch_keyed_is_sticky_per_key() {
        let engine = ShardedEngine::spawn(quick_cfg(4), NoShedding);
        let keys = vec![0xDEADBEEFu64; 80];
        let res = engine.offer_batch_keyed(&keys);
        assert_eq!(res.dispatched, 80);
        std::thread::sleep(Duration::from_millis(150));
        let report = engine.shutdown();
        let non_empty: Vec<_> = report.per_shard.iter().filter(|s| s.dispatched > 0).collect();
        assert_eq!(non_empty.len(), 1, "one shard owns the key");
        assert_eq!(non_empty[0].dispatched, 80);
        assert!(report.counters_balance());
    }

    #[test]
    fn offer_batch_after_close_rejects_everything() {
        let engine = ShardedEngine::spawn(quick_cfg(2), NoShedding);
        engine.close();
        let res = engine.offer_batch(50);
        assert_eq!(res.rejected_closed, 50);
        assert_eq!(res.dispatched, 0);
        let report = engine.shutdown();
        assert_eq!(report.rejected_closed, 50);
        assert!(report.counters_balance(), "{report:?}");
    }

    #[test]
    fn offer_batch_counts_capacity_shortfall() {
        let cfg = ShardConfig {
            cost: Duration::from_millis(50), // workers can't keep up
            queue_capacity: 8,
            ..quick_cfg(2)
        };
        let engine = ShardedEngine::spawn(cfg, NoShedding);
        let res = engine.offer_batch(1000);
        assert!(res.rejected_capacity > 0, "{res:?}");
        assert_eq!(
            res.offered,
            res.dispatched + res.dropped_entry + res.rejected_capacity + res.rejected_closed
        );
        let report = engine.shutdown();
        assert!(report.counters_balance(), "{report:?}");
    }

    #[test]
    fn pinned_engine_still_balances() {
        let mut cfg = quick_cfg(2);
        cfg.pin_cores = true;
        let engine = ShardedEngine::spawn(cfg, NoShedding);
        engine.offer_batch(64);
        std::thread::sleep(Duration::from_millis(100));
        let report = engine.shutdown();
        assert_eq!(report.completed, 64);
        assert!(report.counters_balance(), "{report:?}");
    }

    #[test]
    fn offers_after_close_count_rejected_closed() {
        let engine = ShardedEngine::spawn(quick_cfg(2), NoShedding);
        for _ in 0..20 {
            engine.offer();
        }
        engine.close();
        for _ in 0..30 {
            assert!(!engine.offer());
        }
        let report = engine.shutdown();
        assert_eq!(report.offered, 50);
        assert_eq!(report.rejected_closed, 30);
        assert_eq!(report.dropped_entry, 0, "closure is not shedding");
        assert!(report.counters_balance(), "{report:?}");
    }

    #[test]
    fn prometheus_text_has_shard_labels() {
        let engine = ShardedEngine::spawn(quick_cfg(2), NoShedding);
        for _ in 0..10 {
            engine.offer();
        }
        std::thread::sleep(Duration::from_millis(30));
        let text = engine.prometheus_text();
        assert!(text.contains("streamshed_shards 2"));
        assert!(text.contains("streamshed_shard_dispatched_total{shard=\"0\"}"));
        assert!(text.contains("streamshed_shard_dispatched_total{shard=\"1\"}"));
        assert!(!text.contains("{shard=\"2\"}"));
        assert_eq!(
            text.matches("# TYPE streamshed_shard_queue_len gauge").count(),
            1,
            "one preamble per family"
        );
        drop(engine);
    }

    #[test]
    fn observed_sharded_engine_serves_shard_labels_live() {
        use crate::obs::{http_get, ObsOptions};
        let cfg = ShardConfig {
            period: Duration::from_millis(10),
            ..quick_cfg(2)
        };
        let options = ObsOptions::for_target(cfg.target_delay);
        let engine = ShardedEngine::spawn_observed(cfg, NoShedding, &options).unwrap();
        let addr = engine.obs().unwrap().addr().expect("http enabled");
        for _ in 0..60 {
            engine.offer();
            std::thread::sleep(Duration::from_micros(300));
        }
        std::thread::sleep(Duration::from_millis(50));
        let t = Duration::from_secs(2);

        let (status, body) = http_get(addr, "/metrics", t).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("streamshed_shard_dispatched_total{shard=\"1\"}"), "{body}");
        assert!(body.contains("streamshed_diag_state"), "{body}");

        let (status, body) = http_get(addr, "/health", t).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"periods\":"), "{body}");

        let (status, body) = http_get(addr, "/trace?last=4", t).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"shards\":2"), "per-shard queues in traces: {body}");

        let report = engine.shutdown();
        assert!(report.counters_balance(), "{report:?}");
        assert!(http_get(addr, "/health", Duration::from_millis(300)).is_err());
    }

    #[test]
    fn recorder_captures_per_shard_queues() {
        let rec = SharedRecorder::with_capacity(256);
        let cfg = ShardConfig {
            period: Duration::from_millis(10),
            ..quick_cfg(3)
        };
        let engine = ShardedEngine::spawn_recorded(cfg, NoShedding, Some(rec.clone()));
        for _ in 0..60 {
            engine.offer();
            std::thread::sleep(Duration::from_micros(300));
        }
        std::thread::sleep(Duration::from_millis(50));
        let report = engine.shutdown();
        assert!(report.periods >= 3);
        let traces = rec.snapshot();
        assert!(!traces.is_empty());
        assert!(traces.iter().all(|t| t.shards == 3));
        // The recorded global signal is the sum of the recorded shards.
        for t in &traces {
            let sum: u64 = t.shard_queues.iter().sum();
            assert_eq!(sum, t.outstanding, "q(k) = sum of shard queues");
        }
    }
}
