//! Pre-built query networks.
//!
//! [`identification_network`] mirrors the paper's system-identification
//! setup (§4.2): 14 operators with fixed CPU costs, filter selectivities
//! pinned by uniform input values, branched like Fig. 2. Its expected
//! cost per admitted tuple is calibrated so that the processing capacity
//! is **190 tuples/s** at headroom `H = 0.97` — the knee the paper
//! observes in Fig. 5.

use crate::network::{NetworkBuilder, QueryNetwork};
use crate::operator::{Aggregate, AggFunc, Filter, Map, Split, Union, WindowJoin, WindowSpec};
use crate::time::{micros, secs_f64, SimDuration};

/// The paper's step-response knee: tuples/second the calibrated
/// identification network can sustain at `H = 0.97`.
pub const IDENTIFICATION_CAPACITY_TPS: f64 = 190.0;

/// Headroom the calibration assumes.
pub const IDENTIFICATION_HEADROOM: f64 = 0.97;

/// Expected CPU cost per admitted tuple of the identification network, µs
/// (`H / capacity`).
pub fn identification_cost_us() -> f64 {
    IDENTIFICATION_HEADROOM / IDENTIFICATION_CAPACITY_TPS * 1e6
}

fn build_identification(scale: f64) -> QueryNetwork {
    let c = |us: f64| secs_f64(us * scale / 1e6);
    let mut b = NetworkBuilder::new();

    // Three source streams, as in Fig. 2 (S1..S3).
    let f1 = b.add("f1", c(250.0), Filter::value_below(0.9));
    let f2 = b.add("f2", c(250.0), Filter::value_below(0.9));
    let f3 = b.add("f3", c(250.0), Filter::value_below(0.9));
    let m1 = b.add("m1", c(400.0), Map::identity());
    let m2 = b.add("m2", c(400.0), Map::identity());
    let m3 = b.add("m3", c(400.0), Map::identity());
    let sp = b.add("split", c(200.0), Split::value_below(0.5));
    let m4 = b.add("m4", c(500.0), Map::identity());
    let m5 = b.add("m5", c(500.0), Map::identity());
    let m6 = b.add("m6", c(400.0), Map::identity());
    let u1 = b.add("u1", c(150.0), Union);
    let u2 = b.add("u2", c(150.0), Union);
    let m7 = b.add("m7", c(450.0), Map::identity());
    let m8 = b.add("m8", c(450.0), Map::identity());

    b.entry(f1);
    b.entry(f2);
    b.entry(f3);

    // Path I: S1 → f1 → m1 → m2 → u1
    b.connect(f1, m1);
    b.connect(m1, m2);
    b.connect_port(m2, 0, u1, 0);
    // Path II: S2 → f2 → m3 → split → {m4 → u1 | m5 → sink}
    b.connect(f2, m3);
    b.connect(m3, sp);
    b.connect_port(sp, 0, m4, 0);
    b.connect_port(sp, 1, m5, 0);
    b.connect_port(m4, 0, u1, 1);
    // Path III: S3 → f3 → m6 → u2 ; u1 → u2 ; u2 → m7 → m8 → sink
    b.connect(f3, m6);
    b.connect_port(m6, 0, u2, 0);
    b.connect_port(u1, 0, u2, 1);
    b.connect(u2, m7);
    b.connect(m7, m8);

    b.build().expect("identification network is a valid DAG")
}

/// The 14-operator identification network, calibrated to a capacity of
/// [`IDENTIFICATION_CAPACITY_TPS`] tuples/s at headroom 0.97.
pub fn identification_network() -> QueryNetwork {
    // Two-pass calibration: measure the expected cost at unit scale, then
    // rescale all operator costs to hit the target mean per-tuple cost.
    let probe = build_identification(1.0);
    let unit_cost = probe.expected_cost_per_tuple_us();
    let target = identification_cost_us();
    build_identification(target / unit_cost)
}

/// A linear chain of `n` identical map operators whose *total* cost per
/// tuple is `total_cost` — the simplest constant-cost plant, handy for
/// unit-level control experiments.
pub fn uniform_chain(n: usize, total_cost: SimDuration) -> QueryNetwork {
    assert!(n >= 1);
    let per_op = micros((total_cost.as_micros() / n as u64).max(1));
    let mut b = NetworkBuilder::new();
    let mut prev = None;
    for i in 0..n {
        let node = b.add(format!("m{i}"), per_op, Map::identity());
        match prev {
            None => {
                b.entry(node);
            }
            Some(p) => {
                b.connect(p, node);
            }
        }
        prev = Some(node);
    }
    b.build().expect("chain is a valid DAG")
}

/// A richer network exercising the stateful operators: two streams joined
/// over a sliding window, with a windowed aggregate and alert filter
/// downstream. Used by the examples and stateful-operator tests.
pub fn monitoring_network() -> QueryNetwork {
    let mut b = NetworkBuilder::new();
    let src_a = b.add("sensor-a", micros(200), Filter::value_below(0.95));
    let src_b = b.add("sensor-b", micros(200), Filter::value_below(0.95));
    let join = b.add(
        "correlate",
        micros(600),
        WindowJoin::new(WindowSpec::Time(secs_f64(0.5)), 0.5),
    );
    let agg = b.add("window-avg", micros(300), Aggregate::new(5, AggFunc::Avg));
    let alert = b.add("alert", micros(150), Filter::value_below(0.8));

    b.entry(src_a);
    b.entry(src_b);
    b.connect_port(src_a, 0, join, 0);
    b.connect_port(src_b, 0, join, 1);
    b.connect(join, agg);
    b.connect(agg, alert);
    b.build().expect("monitoring network is a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::NoShedding;
    use crate::sim::{SimConfig, Simulator};
    use crate::time::{secs, SimTime};

    #[test]
    fn identification_network_has_fourteen_operators() {
        let net = identification_network();
        assert_eq!(net.len(), 14);
        assert_eq!(net.entries().len(), 3);
    }

    #[test]
    fn identification_network_calibrated_cost() {
        let net = identification_network();
        let c = net.expected_cost_per_tuple_us();
        let want = identification_cost_us(); // ≈ 5105 µs
        assert!(
            (c - want).abs() / want < 0.01,
            "expected ≈{want:.0}µs, got {c:.0}µs"
        );
    }

    #[test]
    fn identification_network_knee_near_190() {
        // Below the knee: no queue build-up; above: linear growth.
        let run = |rate: f64| {
            let net = identification_network();
            let sim = Simulator::new(net, SimConfig::paper_default());
            let gap = 1e6 / rate;
            let arrivals: Vec<SimTime> = (0..(rate * 30.0) as u64)
                .map(|i| SimTime((i as f64 * gap) as u64))
                .collect();
            sim.run(&arrivals, &mut NoShedding, secs(30))
        };
        let below = run(170.0);
        let above = run(230.0);
        assert!(
            below.periods.last().unwrap().outstanding < 30,
            "outstanding below knee: {}",
            below.periods.last().unwrap().outstanding
        );
        assert!(
            above.periods.last().unwrap().outstanding > 300,
            "outstanding above knee: {}",
            above.periods.last().unwrap().outstanding
        );
    }

    #[test]
    fn uniform_chain_cost_splits_evenly() {
        let net = uniform_chain(4, micros(4000));
        assert_eq!(net.len(), 4);
        assert!((net.expected_cost_per_tuple_us() - 4000.0).abs() < 4.0);
    }

    #[test]
    fn monitoring_network_produces_joins() {
        let net = monitoring_network();
        let sim = Simulator::new(net, SimConfig::paper_default().with_seed(7));
        let arrivals: Vec<SimTime> = (0..2000).map(|i| SimTime(i * 2_000)).collect();
        let report = sim.run(&arrivals, &mut NoShedding, secs(5));
        assert!(report.completed > 0);
        assert_eq!(report.offered, 2000);
    }
}
