//! # streamshed-engine
//!
//! A Borealis-like stream query engine, built as the substrate for the
//! control-based load-shedding framework of Tu et al. (VLDB 2006).
//!
//! The engine provides exactly the properties the paper's DSMS model
//! relies on (§3–4.2):
//!
//! * a **query network**: a DAG of operators (filter, map, union,
//!   sliding-window join, windowed aggregate, split) with per-operator
//!   FIFO queues and per-operator CPU costs;
//! * a **round-robin scheduler** with no tuple priorities;
//! * a CPU-bound execution model with a **headroom factor** `H` (fraction
//!   of CPU available to query processing);
//! * per-tuple **processing delay** measurement from network-buffer
//!   arrival to departure (longest path, as the paper specifies);
//! * a **virtual queue** of outstanding tuples (`q(k)`), the quantity the
//!   paper's controller actually manipulates;
//! * a per-period [`hook::ControlHook`] where a load-shedding strategy
//!   observes the system and actuates (entry coin-flip shedding and/or
//!   in-network load shedding from random queue locations).
//!
//! Two runners are provided: the deterministic virtual-time
//! [`sim::Simulator`] used by all experiments, and a real-time threaded
//! runner in [`rt`] demonstrating the same loop against the wall clock.
//! Both, plus the fault harness, emit one structured [`telemetry`]
//! record per control period through the same [`hook::ControlHook`]
//! seam.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod affinity;
pub mod cost;
pub mod describe;
pub mod diagnostics;
pub mod faults;
pub mod flight;
pub mod histo;
pub mod hook;
pub mod metrics;
pub mod network;
pub mod networks;
pub mod obs;
pub mod operator;
pub mod ring;
pub mod rng;
pub mod rt;
pub mod shard;
pub mod sim;
pub mod spans;
pub mod telemetry;
pub mod time;
pub mod tuple;
pub mod worker;

pub use diagnostics::{
    ControllerHealth, DiagEvent, DiagnosticsConfig, DiagnosticsSnapshot, HealthState,
    SharedDiagnostics,
};
pub use faults::{FaultKind, FaultLog, FaultPlan, FaultWindow, FaultyHook};
pub use flight::{FlightConfig, FlightRecorder};
pub use obs::{http_get, HttpConfig, ObsHandle, ObsOptions, ObsPlane, ObsServer};
pub use hook::{ControlHook, Decision, NoShedding, PeriodSnapshot};
pub use metrics::{DelayStats, RunReport};
pub use network::{NetworkBuilder, NodeId, QueryNetwork};
pub use ring::{Push, SpscRing};
pub use rng::{engine_rng, AtomicShedder, EngineRng, EntryShedder, GeometricSkip};
pub use shard::{BatchResult, Dispatch, ShardConfig, ShardReport, ShardStat, ShardedEngine};
pub use histo::{AtomicHisto, Histo};
pub use sim::{SimConfig, Simulator};
pub use spans::{ProfileSnapshot, SpanHandle, SpanRegistry, Stage};
pub use telemetry::{
    ControlState, ControlTrace, EventSink, InstrumentedHook, LoopMode, Ring, RingRecorder,
    SharedRecorder, TracingHook,
};
pub use time::{micros, millis, millis_f64, secs, secs_f64, SimDuration, SimTime};
pub use tuple::{RootId, Tuple};
pub use worker::{CostModel, WorkerConfig, WorkerStats};
