//! Deterministic fault injection for the control loop.
//!
//! The paper evaluates the closed loop under *hostile workloads* (bursty
//! arrivals, time-varying cost) but assumes the loop's own sensors and
//! actuators are perfect. This module injects the failures a production
//! DSMS actually sees, at the one seam every runner shares — the
//! [`ControlHook`] boundary — so the same fault plan drives both the
//! virtual-time [`Simulator`](crate::sim::Simulator) and the threaded
//! [`rt`](crate::rt) runner:
//!
//! * **sensor faults** — dropout (no `c(k)`/`y` sample, `q(k)` frozen)
//!   and stale `q(k)` samples (the monitor keeps reporting an old queue
//!   length);
//! * **cost-measurement corruption** — NaN samples and outlier spikes
//!   (both directions: a collapse makes the controller *under*-estimate
//!   delay, the dangerous case);
//! * **actuator faults** — shed commands ignored or only partially
//!   applied;
//! * **control-period overruns/jitter** — the period the monitor reports
//!   differs from the real one, corrupting every rate computed from it.
//!
//! Two fault classes live in the *plant* rather than the loop and are
//! expressed as inputs to the engine instead: **operator stalls** become
//! a [`CostSchedule`] overlay ([`stall_schedule`]) and **arrival flash
//! floods** are spliced into the arrival trace
//! ([`inject_flash_flood`]). Everything is seeded and replayable.

use crate::cost::CostSchedule;
use crate::hook::{ControlHook, Decision, PeriodSnapshot};
use crate::telemetry::{
    ControlState, InstrumentedHook, FLAG_ACTUATOR_IGNORE, FLAG_ACTUATOR_PARTIAL, FLAG_COST_NAN,
    FLAG_COST_SPIKE, FLAG_PERIOD_JITTER, FLAG_SENSOR_DROPOUT, FLAG_STALE_QUEUE,
};
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One class of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The monitor produces no sample this period: `measured_cost_us` and
    /// `mean_delay_ms` become `None`, and the virtual-queue reading
    /// (`outstanding`, `queued_tuples`, `queued_load_us`) freezes at its
    /// last pre-fault value.
    SensorDropout,
    /// Stale `q(k)`: the queue-length block freezes at its last pre-fault
    /// value while the rest of the snapshot stays live. The controller
    /// keeps acting on an old queue reading — the classic way a
    /// virtual-queue loop diverges.
    StaleQueue,
    /// `measured_cost_us` is replaced by NaN.
    CostNan,
    /// `measured_cost_us` is multiplied by `factor` (an outlier spike for
    /// `factor > 1`, a collapse for `factor < 1`).
    CostSpike {
        /// Multiplier applied to the measured cost.
        factor: f64,
    },
    /// The engine ignores the hook's decision entirely and keeps the
    /// previous actuation.
    ActuatorIgnore,
    /// The engine applies only `applied` (in `[0, 1]`) of the commanded
    /// entry-drop probability and in-network shed load.
    ActuatorPartial {
        /// Fraction of the command that reaches the plant.
        applied: f64,
    },
    /// Control-period overrun/jitter: the period reported to the hook is
    /// scaled by `factor`, corrupting every rate derived from it
    /// (`fin`, `fout`).
    PeriodJitter {
        /// Multiplier on the reported control period.
        factor: f64,
    },
}

impl FaultKind {
    /// The [`telemetry`](crate::telemetry) fault-flag bit recording this
    /// fault class in a [`ControlTrace`](crate::telemetry::ControlTrace).
    pub fn flag(&self) -> u16 {
        match self {
            FaultKind::SensorDropout => FLAG_SENSOR_DROPOUT,
            FaultKind::StaleQueue => FLAG_STALE_QUEUE,
            FaultKind::CostNan => FLAG_COST_NAN,
            FaultKind::CostSpike { .. } => FLAG_COST_SPIKE,
            FaultKind::ActuatorIgnore => FLAG_ACTUATOR_IGNORE,
            FaultKind::ActuatorPartial { .. } => FLAG_ACTUATOR_PARTIAL,
            FaultKind::PeriodJitter { .. } => FLAG_PERIOD_JITTER,
        }
    }
}

/// A fault active over a half-open period window `[from_k, to_k)`, firing
/// each period with probability `prob` (seeded, deterministic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// The fault class.
    pub kind: FaultKind,
    /// First period index (inclusive) the fault may fire.
    pub from_k: u64,
    /// First period index (exclusive) after the window.
    pub to_k: u64,
    /// Per-period firing probability in `[0, 1]` (1 = every period in the
    /// window).
    pub prob: f64,
}

impl FaultWindow {
    /// A fault active on every period of `[from_k, to_k)`.
    pub fn new(kind: FaultKind, from_k: u64, to_k: u64) -> Self {
        Self {
            kind,
            from_k,
            to_k,
            prob: 1.0,
        }
    }

    /// Same, firing each period only with probability `prob`.
    pub fn intermittent(kind: FaultKind, from_k: u64, to_k: u64, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "prob must be in [0, 1]");
        Self {
            kind,
            from_k,
            to_k,
            prob,
        }
    }

    fn covers(&self, k: u64) -> bool {
        (self.from_k..self.to_k).contains(&k)
    }
}

/// A seeded, schedulable collection of fault windows.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
    seed: u64,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new(seed: u64) -> Self {
        Self {
            windows: Vec::new(),
            seed,
        }
    }

    /// Adds a fault window.
    pub fn with(mut self, window: FaultWindow) -> Self {
        self.windows.push(window);
        self
    }

    /// Concatenates another plan's windows onto this one — compound
    /// faults (e.g. a stale queue sensor *and* a half-dead actuator) are
    /// built by merging single-fault plans. The receiver's seed stays in
    /// force for intermittent-window draws.
    pub fn merge(mut self, other: &FaultPlan) -> Self {
        self.windows.extend_from_slice(&other.windows);
        self
    }

    /// The scheduled windows.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// The plan's RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Counters of what was actually injected, for post-hoc verification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Periods where the sensor block was dropped.
    pub sensor_dropouts: u64,
    /// Periods where a stale queue reading was served.
    pub stale_queue_samples: u64,
    /// Periods where the cost measurement was corrupted (NaN or spike).
    pub cost_corruptions: u64,
    /// Periods where the actuation was ignored or attenuated.
    pub actuator_faults: u64,
    /// Periods where the reported control period was jittered.
    pub jitter_events: u64,
}

impl FaultLog {
    /// Total injected fault events.
    pub fn total(&self) -> u64 {
        self.sensor_dropouts
            + self.stale_queue_samples
            + self.cost_corruptions
            + self.actuator_faults
            + self.jitter_events
    }
}

/// Wraps any [`ControlHook`], corrupting the snapshot it observes and the
/// decision it returns according to a [`FaultPlan`].
///
/// Because the wrapper *is* a `ControlHook`, the same fault plan runs
/// unchanged against the virtual-time simulator and the threaded `rt`
/// runner.
pub struct FaultyHook<H> {
    inner: H,
    plan: FaultPlan,
    rng: StdRng,
    /// Last *clean* queue-sensor block `(outstanding, queued_tuples,
    /// queued_load_us)` — what a frozen monitor keeps reporting.
    frozen_queue: Option<(u64, u64, f64)>,
    last_decision: Decision,
    log: FaultLog,
    /// OR of the `telemetry::FLAG_*` bits that fired last period.
    last_flags: u16,
}

impl<H: ControlHook> FaultyHook<H> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: H, plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed ^ 0xFA17_FA17_FA17_FA17);
        Self {
            inner,
            plan,
            rng,
            frozen_queue: None,
            last_decision: Decision::NONE,
            log: FaultLog::default(),
            last_flags: 0,
        }
    }

    /// What was injected so far.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// OR of the [`telemetry`](crate::telemetry) `FLAG_*` bits that
    /// fired on the most recent period (0 when the period was clean).
    pub fn last_fault_flags(&self) -> u16 {
        self.last_flags
    }

    /// The wrapped hook.
    pub fn inner(&self) -> &H {
        &self.inner
    }

    /// Consumes the wrapper, returning the inner hook.
    pub fn into_inner(self) -> H {
        self.inner
    }
}

impl<H: ControlHook> ControlHook for FaultyHook<H> {
    fn on_period(&mut self, snapshot: &PeriodSnapshot) -> Decision {
        let mut snap = *snapshot;
        let mut actuator: Option<FaultKind> = None;
        let mut queue_frozen = false;
        self.last_flags = 0;

        // Collect the faults firing this period; sensor faults mutate the
        // snapshot before the inner hook sees it, actuator faults mutate
        // the decision after.
        for i in 0..self.plan.windows.len() {
            let w = self.plan.windows[i];
            if !w.covers(snapshot.k) {
                continue;
            }
            if w.prob < 1.0 && self.rng.gen::<f64>() >= w.prob {
                continue;
            }
            match w.kind {
                FaultKind::SensorDropout => {
                    snap.measured_cost_us = None;
                    snap.mean_delay_ms = None;
                    queue_frozen = true;
                    self.log.sensor_dropouts += 1;
                    self.last_flags |= w.kind.flag();
                }
                FaultKind::StaleQueue => {
                    queue_frozen = true;
                    self.log.stale_queue_samples += 1;
                    self.last_flags |= w.kind.flag();
                }
                FaultKind::CostNan => {
                    snap.measured_cost_us = Some(f64::NAN);
                    self.log.cost_corruptions += 1;
                    self.last_flags |= w.kind.flag();
                }
                FaultKind::CostSpike { factor } => {
                    if let Some(c) = snap.measured_cost_us {
                        snap.measured_cost_us = Some(c * factor);
                        self.log.cost_corruptions += 1;
                        self.last_flags |= w.kind.flag();
                    }
                }
                FaultKind::PeriodJitter { factor } => {
                    snap.period = snap.period.mul_f64(factor.max(1e-3));
                    self.log.jitter_events += 1;
                    self.last_flags |= w.kind.flag();
                }
                FaultKind::ActuatorIgnore | FaultKind::ActuatorPartial { .. } => {
                    actuator = Some(w.kind);
                }
            }
        }

        if queue_frozen {
            // Serve the last clean reading (or the current one if the
            // fault begins on the very first period).
            let (q, qt, ql) = *self.frozen_queue.get_or_insert((
                snapshot.outstanding,
                snapshot.queued_tuples,
                snapshot.queued_load_us,
            ));
            snap.outstanding = q;
            snap.queued_tuples = qt;
            snap.queued_load_us = ql;
        } else {
            self.frozen_queue =
                Some((snapshot.outstanding, snapshot.queued_tuples, snapshot.queued_load_us));
        }

        let commanded = self.inner.on_period(&snap);
        let applied = match actuator {
            Some(k @ FaultKind::ActuatorIgnore) => {
                self.log.actuator_faults += 1;
                self.last_flags |= k.flag();
                self.last_decision.clone()
            }
            Some(k @ FaultKind::ActuatorPartial { applied }) => {
                self.log.actuator_faults += 1;
                self.last_flags |= k.flag();
                let f = applied.clamp(0.0, 1.0);
                Decision {
                    entry_drop_prob: commanded.entry_drop_prob * f,
                    per_entry_drop_prob: commanded
                        .per_entry_drop_prob
                        .as_ref()
                        .map(|v| v.iter().map(|a| a * f).collect()),
                    shed_load_us: commanded.shed_load_us * f,
                }
            }
            _ => commanded,
        };
        self.last_decision = applied.clone();
        applied
    }
}

impl<H: InstrumentedHook> InstrumentedHook for FaultyHook<H> {
    /// Forwards the wrapped hook's state, stamped with the fault flags
    /// that fired last period — so a
    /// [`TracingHook`](crate::telemetry::TracingHook) outside the fault
    /// harness records both the controller's view and what interfered
    /// with it.
    fn control_state(&self) -> Option<ControlState> {
        let mut state = self.inner.control_state().unwrap_or_default();
        state.fault_flags |= self.last_flags;
        Some(state)
    }

    fn adapt_state(&self) -> Option<crate::telemetry::AdaptState> {
        self.inner.adapt_state()
    }
}

/// Builds a [`CostSchedule`] that multiplies operator costs by `factor`
/// during each stall window `(from_s, to_s, factor)` — an operator stall
/// seen from the CPU-accounting side.
///
/// Windows must not overlap; between windows the multiplier returns to 1.
pub fn stall_schedule(stalls: &[(f64, f64, f64)]) -> CostSchedule {
    let mut points = Vec::with_capacity(stalls.len() * 2);
    for &(from_s, to_s, factor) in stalls {
        assert!(from_s >= 0.0 && to_s > from_s, "stall window must be ordered");
        assert!(factor > 0.0 && factor.is_finite(), "stall factor must be positive");
        points.push((SimTime((from_s * 1e6) as u64), factor));
        points.push((SimTime((to_s * 1e6) as u64), 1.0));
    }
    CostSchedule::from_points(points)
}

/// Splices a flash flood into a sorted arrival trace: `extra` additional
/// arrivals uniformly distributed over `[from_s, to_s)`, deterministically
/// from `seed`. The trace stays sorted.
pub fn inject_flash_flood(times: &mut Vec<SimTime>, from_s: f64, to_s: f64, extra: u64, seed: u64) {
    assert!(to_s > from_s && from_s >= 0.0, "flood window must be ordered");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF100D);
    let span_us = (to_s - from_s) * 1e6;
    let base_us = from_s * 1e6;
    for _ in 0..extra {
        let t = base_us + rng.gen::<f64>() * span_us;
        times.push(SimTime(t as u64));
    }
    times.sort();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    fn snap(k: u64, outstanding: u64, cost: Option<f64>) -> PeriodSnapshot {
        PeriodSnapshot {
            k,
            now: SimTime::ZERO + secs(k + 1),
            period: secs(1),
            offered: 300,
            admitted: 300,
            dropped_entry: 0,
            dropped_network: 0,
            completed: 190,
            outstanding,
            queued_tuples: outstanding,
            queued_load_us: outstanding as f64 * 5000.0,
            measured_cost_us: cost,
            mean_delay_ms: Some(1500.0),
            cpu_busy_us: 950_000,
        }
    }

    /// A probe hook recording what it observed.
    struct Probe(Vec<PeriodSnapshot>, Decision);

    impl ControlHook for Probe {
        fn on_period(&mut self, s: &PeriodSnapshot) -> Decision {
            self.0.push(*s);
            self.1.clone()
        }
    }

    impl InstrumentedHook for Probe {}

    #[test]
    fn stale_queue_freezes_the_reading() {
        let plan = FaultPlan::new(1).with(FaultWindow::new(FaultKind::StaleQueue, 2, 5));
        let mut h = FaultyHook::new(Probe(Vec::new(), Decision::NONE), plan);
        for k in 0..6 {
            let _ = h.on_period(&snap(k, 100 * (k + 1), Some(5000.0)));
        }
        let seen = &h.inner().0;
        // Periods 0–1 live, 2–4 frozen at the period-1 value, 5 live again.
        assert_eq!(seen[1].outstanding, 200);
        assert_eq!(seen[2].outstanding, 200);
        assert_eq!(seen[4].outstanding, 200);
        assert_eq!(seen[5].outstanding, 600);
        assert_eq!(h.log().stale_queue_samples, 3);
        // Cost stays live under a pure queue-staleness fault.
        assert_eq!(seen[3].measured_cost_us, Some(5000.0));
    }

    #[test]
    fn sensor_dropout_blanks_cost_and_delay() {
        let plan = FaultPlan::new(1).with(FaultWindow::new(FaultKind::SensorDropout, 1, 3));
        let mut h = FaultyHook::new(Probe(Vec::new(), Decision::NONE), plan);
        for k in 0..4 {
            let _ = h.on_period(&snap(k, 50, Some(5000.0)));
        }
        let seen = &h.inner().0;
        assert_eq!(seen[0].measured_cost_us, Some(5000.0));
        assert_eq!(seen[1].measured_cost_us, None);
        assert_eq!(seen[1].mean_delay_ms, None);
        assert_eq!(seen[3].measured_cost_us, Some(5000.0));
        assert_eq!(h.log().sensor_dropouts, 2);
    }

    #[test]
    fn cost_corruption_nan_and_spike() {
        let plan = FaultPlan::new(1)
            .with(FaultWindow::new(FaultKind::CostNan, 0, 1))
            .with(FaultWindow::new(FaultKind::CostSpike { factor: 10.0 }, 1, 2));
        let mut h = FaultyHook::new(Probe(Vec::new(), Decision::NONE), plan);
        let _ = h.on_period(&snap(0, 50, Some(5000.0)));
        let _ = h.on_period(&snap(1, 50, Some(5000.0)));
        let seen = &h.inner().0;
        assert!(seen[0].measured_cost_us.unwrap().is_nan());
        assert_eq!(seen[1].measured_cost_us, Some(50_000.0));
        assert_eq!(h.log().cost_corruptions, 2);
    }

    #[test]
    fn actuator_ignore_replays_previous_decision() {
        let plan = FaultPlan::new(1).with(FaultWindow::new(FaultKind::ActuatorIgnore, 1, 2));
        let mut h = FaultyHook::new(Probe(Vec::new(), Decision::entry(0.8)), plan);
        let d0 = h.on_period(&snap(0, 50, Some(5000.0)));
        assert_eq!(d0.entry_drop_prob, 0.8);
        // Fault: the commanded 0.8 is discarded, the previous decision
        // (also 0.8 here) is held — change the command to observe it.
        h.inner.1 = Decision::entry(0.1);
        let d1 = h.on_period(&snap(1, 50, Some(5000.0)));
        assert_eq!(d1.entry_drop_prob, 0.8, "held last applied actuation");
        let d2 = h.on_period(&snap(2, 50, Some(5000.0)));
        assert_eq!(d2.entry_drop_prob, 0.1, "fault window over");
        assert_eq!(h.log().actuator_faults, 1);
    }

    #[test]
    fn actuator_partial_scales_commands() {
        let plan = FaultPlan::new(1)
            .with(FaultWindow::new(FaultKind::ActuatorPartial { applied: 0.25 }, 0, 1));
        let mut probe = Probe(Vec::new(), Decision::entry(0.8));
        probe.1.shed_load_us = 1000.0;
        let mut h = FaultyHook::new(probe, plan);
        let d = h.on_period(&snap(0, 50, Some(5000.0)));
        assert!((d.entry_drop_prob - 0.2).abs() < 1e-12);
        assert!((d.shed_load_us - 250.0).abs() < 1e-12);
    }

    #[test]
    fn jitter_scales_reported_period() {
        let plan = FaultPlan::new(1)
            .with(FaultWindow::new(FaultKind::PeriodJitter { factor: 2.0 }, 0, 1));
        let mut h = FaultyHook::new(Probe(Vec::new(), Decision::NONE), plan);
        let _ = h.on_period(&snap(0, 50, Some(5000.0)));
        assert_eq!(h.inner().0[0].period, secs(2));
        assert_eq!(h.log().jitter_events, 1);
    }

    #[test]
    fn intermittent_faults_are_seeded_and_deterministic() {
        let run = || {
            let plan = FaultPlan::new(42)
                .with(FaultWindow::intermittent(FaultKind::CostNan, 0, 100, 0.5));
            let mut h = FaultyHook::new(Probe(Vec::new(), Decision::NONE), plan);
            for k in 0..100 {
                let _ = h.on_period(&snap(k, 50, Some(5000.0)));
            }
            (h.log().cost_corruptions, h.inner().0.iter().map(|s| s.measured_cost_us.map_or(0, |c| c.is_nan() as u8)).collect::<Vec<_>>())
        };
        let (n1, pattern1) = run();
        let (n2, pattern2) = run();
        assert_eq!(n1, n2);
        assert_eq!(pattern1, pattern2);
        assert!(n1 > 25 && n1 < 75, "≈half the periods fire, got {n1}");
    }

    #[test]
    fn merged_plans_inject_both_fault_classes() {
        let stale = FaultPlan::new(5).with(FaultWindow::new(FaultKind::StaleQueue, 0, 2));
        let partial = FaultPlan::new(9)
            .with(FaultWindow::new(FaultKind::ActuatorPartial { applied: 0.5 }, 1, 2));
        let compound = stale.merge(&partial);
        assert_eq!(compound.windows().len(), 2);
        assert_eq!(compound.seed(), 5, "receiver's seed wins");
        let mut h = FaultyHook::new(Probe(Vec::new(), Decision::entry(0.8)), compound);
        let _ = h.on_period(&snap(0, 100, Some(5000.0)));
        let d = h.on_period(&snap(1, 200, Some(5000.0)));
        assert_eq!(h.inner().0[1].outstanding, 100, "queue frozen by merged window");
        assert!((d.entry_drop_prob - 0.4).abs() < 1e-12, "actuation halved");
        assert_eq!(h.log().stale_queue_samples, 2);
        assert_eq!(h.log().actuator_faults, 1);
    }

    #[test]
    fn no_faults_is_transparent() {
        let mut h = FaultyHook::new(Probe(Vec::new(), Decision::entry(0.3)), FaultPlan::new(9));
        let s = snap(0, 77, Some(4321.0));
        let d = h.on_period(&s);
        assert_eq!(d.entry_drop_prob, 0.3);
        assert_eq!(h.inner().0[0], s);
        assert_eq!(h.log().total(), 0);
    }

    #[test]
    fn stall_schedule_multiplies_inside_windows() {
        let s = stall_schedule(&[(10.0, 20.0, 6.0)]);
        assert_eq!(s.multiplier(SimTime::ZERO + secs(5)), 1.0);
        assert_eq!(s.multiplier(SimTime::ZERO + secs(15)), 6.0);
        assert_eq!(s.multiplier(SimTime::ZERO + secs(25)), 1.0);
    }

    #[test]
    fn flash_flood_adds_sorted_arrivals_in_window() {
        let mut times: Vec<SimTime> =
            (0..100).map(|i| SimTime(i * 100_000)).collect(); // 10/s for 10 s
        let before = times.len();
        inject_flash_flood(&mut times, 4.0, 6.0, 500, 7);
        assert_eq!(times.len(), before + 500);
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "still sorted");
        let in_window = times
            .iter()
            .filter(|t| (4_000_000..6_000_000).contains(&t.0))
            .count();
        assert!(in_window >= 500, "flood landed in the window");
        // Deterministic from the seed.
        let mut again: Vec<SimTime> = (0..100).map(|i| SimTime(i * 100_000)).collect();
        inject_flash_flood(&mut again, 4.0, 6.0, 500, 7);
        assert_eq!(times, again);
    }

    #[test]
    fn fault_flags_stamp_the_fired_period_only() {
        let plan = FaultPlan::new(1)
            .with(FaultWindow::new(FaultKind::StaleQueue, 1, 2))
            .with(FaultWindow::new(FaultKind::ActuatorPartial { applied: 0.5 }, 1, 2));
        let mut h = FaultyHook::new(Probe(Vec::new(), Decision::entry(0.4)), plan);
        let _ = h.on_period(&snap(0, 50, Some(5000.0)));
        assert_eq!(h.last_fault_flags(), 0, "clean period");
        let _ = h.on_period(&snap(1, 50, Some(5000.0)));
        assert_eq!(
            h.last_fault_flags(),
            FLAG_STALE_QUEUE | FLAG_ACTUATOR_PARTIAL
        );
        // The InstrumentedHook impl surfaces the same bits (the probe
        // itself reports no state, so everything else defaults to NaN).
        let state = h.control_state().expect("fault harness always reports");
        assert_eq!(state.fault_flags, FLAG_STALE_QUEUE | FLAG_ACTUATOR_PARTIAL);
        assert!(state.y_hat_s.is_nan());
        let _ = h.on_period(&snap(2, 50, Some(5000.0)));
        assert_eq!(h.last_fault_flags(), 0, "flags reset after the window");
    }

    #[test]
    fn every_fault_kind_maps_to_a_distinct_flag() {
        let kinds = [
            FaultKind::SensorDropout,
            FaultKind::StaleQueue,
            FaultKind::CostNan,
            FaultKind::CostSpike { factor: 2.0 },
            FaultKind::ActuatorIgnore,
            FaultKind::ActuatorPartial { applied: 0.5 },
            FaultKind::PeriodJitter { factor: 2.0 },
        ];
        let mut seen = 0u16;
        for k in kinds {
            let f = k.flag();
            assert_eq!(f.count_ones(), 1, "single bit per kind");
            assert_eq!(seen & f, 0, "no two kinds share a bit");
            seen |= f;
        }
    }

    #[test]
    fn faulty_hook_drives_a_full_simulation() {
        use crate::network::NetworkBuilder;
        use crate::operator::Map;
        use crate::sim::{SimConfig, Simulator};
        use crate::time::millis;

        let mut b = NetworkBuilder::new();
        let m = b.add("m", millis(5), Map::identity());
        b.entry(m);
        let net = b.build().expect("single map node is a valid DAG");
        let sim = Simulator::new(net, SimConfig::paper_default());
        let arrivals: Vec<SimTime> = (0..4000).map(|i| SimTime(i * 2_500)).collect();
        let plan = FaultPlan::new(3)
            .with(FaultWindow::new(FaultKind::ActuatorPartial { applied: 0.5 }, 2, 8));
        let mut hook = FaultyHook::new(|_s: &PeriodSnapshot| Decision::entry(1.0), plan);
        let report = sim.run(&arrivals, &mut hook, secs(10));
        // Periods 3..: alpha 1.0 commanded, 0.5 applied during the fault —
        // some tuples survive entry shedding that would otherwise all drop.
        assert!(hook.log().actuator_faults > 0);
        assert!(report.dropped_entry > 0);
        let admitted = report.offered - report.dropped_entry;
        assert!(admitted > 400, "partial actuation admitted tuples, got {admitted}");
    }
}
