//! Embedded observability endpoint: a dependency-free HTTP server plus
//! the plane that feeds it.
//!
//! [`ObsPlane`] is an [`EventSink`] that fans each per-period
//! [`ControlTrace`] into three consumers:
//!
//! 1. a [`SharedRecorder`] trace ring (served by `/trace`),
//! 2. a [`SharedDiagnostics`] controller-health engine (served by
//!    `/health`, `/ready`, and the `streamshed_diag_*` metric families),
//! 3. optionally a [`FlightRecorder`] — on a transition *into* an
//!    anomalous state the plane snapshots the ring + diagnostics to a
//!    JSONL bundle on disk.
//!
//! [`ObsServer`] is a deliberately small HTTP/1.0-style server on
//! [`std::net::TcpListener`]: one supervised accept thread, connections
//! handled serially (inherently bounded), per-connection read timeout,
//! request size cap, graceful shutdown by flag + self-connect. It serves:
//!
//! | endpoint | contract |
//! |---|---|
//! | `GET /metrics` | Prometheus text (engine counters + diagnostics families), always 200 |
//! | `GET /health` | [`DiagnosticsSnapshot`] JSON; **503 while `Diverging`**, 200 otherwise |
//! | `GET /ready` | `{"ready":…}`; 503 until the first control period has been observed |
//! | `GET /trace?last=N` | JSON array of the newest `N` ring records (default 64) |
//!
//! Anything else is 404; non-GET methods are 405. The server never
//! panics the process: per-connection handling runs under
//! `catch_unwind`.
//!
//! The engines ([`RtEngine`](crate::rt::RtEngine),
//! [`ShardedEngine`](crate::shard::ShardedEngine)) wire all of this up
//! behind an opt-in [`ObsOptions`] — see their `spawn_observed`
//! constructors.

use crate::diagnostics::{DiagnosticsConfig, DiagnosticsSnapshot, SharedDiagnostics};
use crate::flight::{FlightConfig, FlightRecorder};
use crate::telemetry::{ControlTrace, EventSink, SharedRecorder, SpanKind};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

/// HTTP server tuning.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Bind address. Default `127.0.0.1:0` (loopback, OS-chosen port —
    /// read the real one from [`ObsServer::addr`]).
    pub addr: String,
    /// Per-connection read/write timeout (a stalled client cannot hold
    /// the serial accept loop hostage for longer than this).
    pub io_timeout: Duration,
    /// Maximum bytes of request head read before the connection is
    /// rejected with 431.
    pub max_request_bytes: usize,
}

impl Default for HttpConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            io_timeout: Duration::from_millis(500),
            max_request_bytes: 8 * 1024,
        }
    }
}

/// Opt-in observability configuration for the engines' `spawn_observed`
/// constructors.
#[derive(Debug, Clone)]
pub struct ObsOptions {
    /// HTTP endpoint; `None` runs diagnostics + flight recording without
    /// a server.
    pub http: Option<HttpConfig>,
    /// Controller-health diagnostics tuning.
    pub diagnostics: DiagnosticsConfig,
    /// Capacity of the trace ring behind `/trace` and the flight
    /// recorder.
    pub trace_capacity: usize,
    /// Anomaly flight recorder; `None` disables bundle writing.
    pub flight: Option<FlightConfig>,
}

impl ObsOptions {
    /// Defaults for a delay target: HTTP on loopback, diagnostics tuned
    /// by [`DiagnosticsConfig::for_target`], a 1024-period ring, no
    /// flight recorder.
    pub fn for_target(target_delay: Duration) -> Self {
        Self {
            http: Some(HttpConfig::default()),
            diagnostics: DiagnosticsConfig::for_target(target_delay),
            trace_capacity: 1024,
            flight: None,
        }
    }

    /// Adds an anomaly flight recorder writing into `dir`.
    pub fn with_flight_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.flight = Some(FlightConfig::new(dir));
        self
    }

    /// Adds an anomaly flight recorder writing into a per-run
    /// subdirectory of `base` (see [`FlightConfig::for_run`]) — campaign
    /// hygiene: concurrent runs keep their own bundle retention instead
    /// of evicting each other in a shared directory.
    pub fn with_flight_run_dir(
        mut self,
        base: impl Into<std::path::PathBuf>,
        run_key: &str,
    ) -> Self {
        self.flight = Some(FlightConfig::for_run(base, run_key));
        self
    }

    /// Replaces the HTTP configuration (e.g. to pin a port).
    pub fn with_http_addr(mut self, addr: impl Into<String>) -> Self {
        let mut http = self.http.unwrap_or_default();
        http.addr = addr.into();
        self.http = Some(http);
        self
    }
}

// ---------------------------------------------------------------------------
// ObsPlane
// ---------------------------------------------------------------------------

/// Lock-free cache of the newest self-tuning telemetry, behind the
/// `streamshed_adapt_*` metric families. Written on every period whose
/// [`ControlTrace`] carries adaptive state (see
/// [`ControlTrace::has_adapt`]); never written by plain controllers, so
/// the families stay absent from `/metrics` until a self-tuning
/// strategy is actually driving the loop.
#[derive(Debug, Default)]
struct AdaptCache {
    /// `f64::to_bits` of the newest re-identified per-tuple cost, µs.
    cost_bits: AtomicU64,
    /// Gain generation (increments on every scheduler retune).
    generation: AtomicU64,
    /// Bumpless swaps performed.
    swaps: AtomicU64,
    /// Comparator arm index, offset by 1 (0 = none yet / not a
    /// comparator; the wire value is `arm + 1` so the atomic can stay
    /// unsigned).
    arm_plus_one: AtomicU64,
    /// Whether any adaptive trace has been observed.
    seen: AtomicBool,
}

/// The cloneable hub the engines feed per period and the HTTP endpoints
/// read. See the module docs for the fan-out.
#[derive(Debug, Clone)]
pub struct ObsPlane {
    recorder: SharedRecorder,
    diagnostics: SharedDiagnostics,
    flight: Option<Arc<Mutex<FlightRecorder>>>,
    periods: Arc<AtomicU64>,
    adapt: Arc<AdaptCache>,
    spans: crate::spans::SpanRegistry,
}

impl ObsPlane {
    /// Builds the plane from options (ignores `options.http`; the server
    /// is started separately so the plane works headless).
    pub fn new(options: &ObsOptions) -> Self {
        Self {
            recorder: SharedRecorder::with_capacity(options.trace_capacity),
            diagnostics: SharedDiagnostics::new(options.diagnostics.clone()),
            flight: options
                .flight
                .clone()
                .map(|cfg| Arc::new(Mutex::new(FlightRecorder::new(cfg)))),
            periods: Arc::new(AtomicU64::new(0)),
            adapt: Arc::new(AdaptCache::default()),
            spans: crate::spans::SpanRegistry::new(),
        }
    }

    /// The latency truth plane's span registry: engines register their
    /// worker / listener recorder slots here, and `/profile` plus the
    /// `streamshed_latency_*` families drain it.
    pub fn spans(&self) -> &crate::spans::SpanRegistry {
        &self.spans
    }

    /// The trace ring (e.g. to export after a run).
    pub fn recorder(&self) -> &SharedRecorder {
        &self.recorder
    }

    /// The controller-health engine.
    pub fn diagnostics(&self) -> &SharedDiagnostics {
        &self.diagnostics
    }

    /// Current health verdict.
    pub fn health(&self) -> DiagnosticsSnapshot {
        self.diagnostics.snapshot()
    }

    /// Flight bundles written so far (0 when no recorder is attached).
    pub fn flight_bundles_written(&self) -> u64 {
        self.flight
            .as_ref()
            .map(|f| f.lock().bundles_written())
            .unwrap_or(0)
    }

    /// Control periods observed (drives `/ready`).
    pub fn periods_observed(&self) -> u64 {
        self.periods.load(Ordering::Relaxed)
    }

    /// Appends the `streamshed_adapt_*` families to a Prometheus
    /// builder — the self-tuning plane's external surface: the current
    /// re-identified per-tuple cost ĉ, the gain generation, the bumpless
    /// swap count, and the comparator's active arm. Emits nothing until
    /// a self-tuning strategy has produced at least one trace.
    pub fn render_adapt_prom(&self, p: &mut crate::telemetry::PromText) {
        if !self.adapt.seen.load(Ordering::Relaxed) {
            return;
        }
        p.gauge(
            "adapt_cost_estimate_us",
            "Re-identified per-tuple cost estimate driving the gain scheduler, microseconds",
            f64::from_bits(self.adapt.cost_bits.load(Ordering::Relaxed)),
        )
        .gauge(
            "adapt_gain_generation",
            "Gain-schedule generation (increments on every pole-placement retune)",
            self.adapt.generation.load(Ordering::Relaxed) as f64,
        )
        .counter(
            "adapt_swaps_total",
            "Bumpless controller-gain swaps performed",
            self.adapt.swaps.load(Ordering::Relaxed) as f64,
        )
        .gauge(
            "adapt_comparator_arm",
            "Active comparator arm index (-1 when the strategy is not the comparator)",
            self.adapt.arm_plus_one.load(Ordering::Relaxed) as f64 - 1.0,
        );
    }

    fn on_trace(&self, trace: &ControlTrace) {
        if trace.has_adapt() {
            self.adapt.cost_bits.store(trace.adapt_cost_us.to_bits(), Ordering::Relaxed);
            self.adapt.generation.store(trace.adapt_generation, Ordering::Relaxed);
            self.adapt.swaps.store(trace.adapt_swaps, Ordering::Relaxed);
            self.adapt
                .arm_plus_one
                .store((trace.adapt_arm + 1).max(0) as u64, Ordering::Relaxed);
            self.adapt.seen.store(true, Ordering::Relaxed);
        }
        let mut rec = self.recorder.clone();
        rec.record(trace);
        let transition = self.diagnostics.observe(trace);
        self.periods.fetch_add(1, Ordering::Relaxed);
        if let Some((_, to)) = transition {
            if to.is_anomalous() {
                if let Some(flight) = &self.flight {
                    let snap = self.diagnostics.snapshot();
                    let traces = self.recorder.snapshot();
                    let profile = self.spans.snapshot();
                    flight.lock().record_transition_profiled(
                        trace.k,
                        to,
                        &snap,
                        &traces,
                        Some(&profile),
                    );
                }
            }
        }
    }
}

impl EventSink for ObsPlane {
    fn record(&mut self, trace: &ControlTrace) {
        self.on_trace(trace);
    }

    fn record_span(&mut self, kind: SpanKind, nanos: u64) {
        let mut rec = self.recorder.clone();
        rec.record_span(kind, nanos);
    }
}

// ---------------------------------------------------------------------------
// HTTP server
// ---------------------------------------------------------------------------

/// Renders the `/metrics` body. The engines capture their own counters
/// in this closure (and append the diagnostics families), so the server
/// stays dumb.
pub type MetricsFn = Arc<dyn Fn() -> String + Send + Sync>;

/// The embedded HTTP endpoint. Owns one accept thread; dropped or
/// [`ObsServer::stop`]ped, it shuts the thread down gracefully.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `cfg.addr` and starts serving `plane` (with `metrics`
    /// rendering the `/metrics` body). Fails only on bind errors.
    pub fn start(cfg: HttpConfig, plane: ObsPlane, metrics: MetricsFn) -> std::io::Result<Self> {
        let listener = TcpListener::bind(cfg.addr.as_str())?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_t = Arc::clone(&stop);
        let thread = thread::Builder::new()
            .name("streamshed-obs".into())
            .spawn(move || accept_loop(listener, cfg, plane, metrics, stop_t))
            .expect("spawn obs thread");
        Ok(Self {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (with the OS-chosen port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: flags the accept loop, wakes it with a
    /// self-connection, joins the thread. Idempotent.
    pub fn stop(&mut self) {
        if self.thread.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept; a failed connect means the listener
        // is already gone.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    cfg: HttpConfig,
    plane: ObsPlane,
    metrics: MetricsFn,
    stop: Arc<AtomicBool>,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Supervised: a panic in request handling must not kill the
        // endpoint for the rest of the run.
        let result = catch_unwind(AssertUnwindSafe(|| {
            handle_connection(stream, &cfg, &plane, &metrics)
        }));
        if result.is_err() {
            // Swallow and keep serving; the next scrape still works.
        }
    }
}

fn handle_connection(mut stream: TcpStream, cfg: &HttpConfig, plane: &ObsPlane, metrics: &MetricsFn) {
    let _ = stream.set_read_timeout(Some(cfg.io_timeout));
    let _ = stream.set_write_timeout(Some(cfg.io_timeout));
    let head = match read_request_head(&mut stream, cfg.max_request_bytes) {
        Ok(h) => h,
        Err(status) => {
            respond(&mut stream, status, "text/plain", status_text(status));
            return;
        }
    };
    let mut parts = head.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => {
            respond(&mut stream, 400, "text/plain", "bad request");
            return;
        }
    };
    if method != "GET" {
        respond(&mut stream, 405, "text/plain", "method not allowed");
        return;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => {
            let body = metrics();
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/health" => {
            let snap = plane.health();
            respond(&mut stream, snap.http_status(), "application/json", &snap.to_json());
        }
        "/ready" => {
            let periods = plane.periods_observed();
            let ready = periods > 0;
            let status = if ready { 200 } else { 503 };
            let body = format!("{{\"ready\":{ready},\"periods\":{periods}}}");
            respond(&mut stream, status, "application/json", &body);
        }
        "/trace" => {
            // Hostile `last` values (overflowing digits, negatives, junk)
            // fall back to the default; anything larger than the ring is
            // clamped by the saturating skip below.
            let last = query_param(query, "last")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(64);
            let traces = plane.recorder().snapshot();
            let skip = traces.len().saturating_sub(last);
            if query_param(query, "format") == Some("csv") {
                let body = crate::telemetry::export_csv(&traces[skip..]);
                respond(&mut stream, 200, "text/csv; charset=utf-8", &body);
                return;
            }
            let body = {
                let mut out = String::from("[");
                for (i, t) in traces[skip..].iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&t.to_jsonl());
                }
                out.push(']');
                out
            };
            respond(&mut stream, 200, "application/json", &body);
        }
        "/profile" => {
            let body = plane.spans().snapshot().to_json();
            respond(&mut stream, 200, "application/json", &body);
        }
        _ => respond(&mut stream, 404, "text/plain", "not found"),
    }
}

/// Reads the request head (through the blank line), returning the
/// request line. Errors map to an HTTP status.
fn read_request_head(stream: &mut TcpStream, max_bytes: usize) -> Result<String, u16> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() >= max_bytes {
            return Err(431);
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(408),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next().unwrap_or("").to_string();
    if line.is_empty() {
        Err(400)
    } else {
        Ok(line)
    }
}

fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "bad request",
        404 => "not found",
        405 => "method not allowed",
        408 => "request timeout",
        431 => "request head too large",
        503 => "service unavailable",
        _ => "error",
    }
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

// ---------------------------------------------------------------------------
// Minimal client (experiments, tests, CI smoke)
// ---------------------------------------------------------------------------

/// One blocking `GET` against an [`ObsServer`] (or anything speaking
/// HTTP/1.x), returning `(status, body)`. Deliberately minimal — just
/// enough for the self-monitoring experiment and the CI smoke test.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .or_else(|| raw.split_once("\n\n"))
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// The observability attachment an engine holds when spawned observed:
/// the plane plus the optional HTTP server.
#[derive(Debug)]
pub struct ObsHandle {
    /// The plane the engine's tracing seam feeds.
    pub plane: ObsPlane,
    server: Option<ObsServer>,
}

impl ObsHandle {
    /// Builds the plane and (if configured) starts the HTTP server with
    /// the given `/metrics` renderer.
    pub fn start(options: &ObsOptions, metrics: MetricsFn) -> std::io::Result<Self> {
        let plane = ObsPlane::new(options);
        let server = match &options.http {
            Some(http) => Some(ObsServer::start(http.clone(), plane.clone(), metrics)?),
            None => None,
        };
        Ok(Self { plane, server })
    }

    /// Assembles a handle from an existing plane and server — for
    /// engines that must build the plane first (the traced hook captures
    /// it) and the server last (its `/metrics` closure captures engine
    /// internals that exist only after spawn).
    pub fn from_parts(plane: ObsPlane, server: Option<ObsServer>) -> Self {
        Self { plane, server }
    }

    /// The HTTP address, when a server is running.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.server.as_ref().map(|s| s.addr())
    }

    /// Stops the HTTP server (the plane keeps working). Idempotent.
    pub fn stop(&mut self) {
        if let Some(s) = &mut self.server {
            s.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::HealthState;
    use crate::hook::{Decision, PeriodSnapshot};
    use crate::telemetry::PromText;
    use crate::time::{secs, SimTime};

    const TARGET: f64 = 2.0;

    fn options() -> ObsOptions {
        ObsOptions::for_target(Duration::from_secs(2))
    }

    fn trace(k: u64, y_s: f64, alpha: f64) -> ControlTrace {
        let snap = PeriodSnapshot {
            k,
            now: SimTime::ZERO + secs(k + 1),
            period: secs(1),
            offered: 100,
            admitted: 90,
            dropped_entry: 10,
            dropped_network: 0,
            completed: 80,
            outstanding: 10,
            queued_tuples: 10,
            queued_load_us: 1000.0,
            measured_cost_us: Some(100.0),
            mean_delay_ms: Some(y_s * 1e3),
            cpu_busy_us: 900_000,
        };
        let mut t = ControlTrace::capture(&snap, &Decision::entry(alpha), None, 100);
        t.y_hat_s = y_s;
        t.error_s = TARGET - y_s;
        t
    }

    fn start_server(plane: &ObsPlane) -> ObsServer {
        let metrics_plane = plane.clone();
        let metrics: MetricsFn = Arc::new(move || {
            let mut p = PromText::new("streamshed");
            p.counter("obs_test_scrapes_total", "test counter", 1.0);
            metrics_plane.health().render_prom(&mut p);
            p.finish()
        });
        ObsServer::start(HttpConfig::default(), plane.clone(), metrics).expect("bind")
    }

    #[test]
    fn endpoints_serve_metrics_health_ready_trace() {
        let plane = ObsPlane::new(&options());
        let mut server = start_server(&plane);
        let addr = server.addr();
        let t = Duration::from_secs(2);

        // Not ready before the first period.
        let (status, body) = http_get(addr, "/ready", t).unwrap();
        assert_eq!(status, 503);
        assert!(body.contains("\"ready\":false"), "{body}");

        let mut sink = plane.clone();
        for k in 0..10 {
            sink.record(&trace(k, TARGET, 0.3));
        }

        let (status, body) = http_get(addr, "/ready", t).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"ready\":true"));

        let (status, body) = http_get(addr, "/health", t).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"state\":\"healthy\""), "{body}");

        let (status, body) = http_get(addr, "/metrics", t).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE streamshed_diag_state gauge"), "{body}");
        assert!(body.contains("streamshed_obs_test_scrapes_total 1"));

        let (status, body) = http_get(addr, "/trace?last=3", t).unwrap();
        assert_eq!(status, 200);
        assert!(body.starts_with('[') && body.ends_with(']'), "{body}");
        assert_eq!(body.matches("\"k\":").count(), 3, "{body}");
        assert!(body.contains("\"k\":9"), "newest retained: {body}");
        assert!(!body.contains("\"k\":6"), "older trimmed: {body}");

        let (status, _) = http_get(addr, "/nope", t).unwrap();
        assert_eq!(status, 404);

        server.stop();
        // Stopped server refuses (or resets) new connections.
        assert!(http_get(addr, "/health", Duration::from_millis(300)).is_err());
    }

    #[test]
    fn profile_endpoint_serves_span_snapshot() {
        let plane = ObsPlane::new(&options());
        let mut server = start_server(&plane);
        let addr = server.addr();
        let t = Duration::from_secs(2);

        // Empty registry still serves a valid shape.
        let (status, body) = http_get(addr, "/profile", t).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"stages\""), "{body}");
        assert!(body.contains("\"sojourn\""), "{body}");

        let h = plane.spans().handle("7");
        h.record(crate::spans::Stage::Execute, 2_000_000);
        h.record(crate::spans::Stage::RingWait, 1_000_000);
        h.record_sojourn(3_000_000);
        let (status, body) = http_get(addr, "/profile", t).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"execute\""), "{body}");
        assert!(body.contains("\"wall_share\""), "{body}");
        assert!(body.contains("\"labels\":{\"7\":"), "{body}");

        server.stop();
    }

    #[test]
    fn trace_csv_format_and_hostile_last_clamp() {
        let plane = ObsPlane::new(&options());
        let mut server = start_server(&plane);
        let addr = server.addr();
        let t = Duration::from_secs(2);
        let mut sink = plane.clone();
        for k in 0..5 {
            sink.record(&trace(k, TARGET, 0.3));
        }

        let (status, body) = http_get(addr, "/trace?last=2&format=csv", t).unwrap();
        assert_eq!(status, 200);
        let mut lines = body.lines();
        assert!(lines.next().unwrap_or("").starts_with("k,"), "{body}");
        assert_eq!(lines.count(), 2, "{body}");

        // Hostile `last` values: non-numeric falls back to the default,
        // oversized clamps to everything recorded — never a panic or an
        // out-of-bounds slice.
        for hostile in ["last=99999999999999999999", "last=-3", "last=abc", "last="] {
            let (status, body) =
                http_get(addr, &format!("/trace?{hostile}&format=csv"), t).unwrap();
            assert_eq!(status, 200, "{hostile}");
            assert_eq!(body.lines().count(), 6, "{hostile}: {body}");
        }
        let (status, body) = http_get(addr, "/trace?last=1000000", t).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.matches("\"k\":").count(), 5, "{body}");

        server.stop();
    }

    #[test]
    fn adapt_families_appear_only_once_a_self_tuner_reports() {
        let plane = ObsPlane::new(&options());
        let mut sink = plane.clone();

        // Plain traces leave the families absent entirely.
        sink.record(&trace(0, TARGET, 0.3));
        let mut p = PromText::new("streamshed");
        plane.render_adapt_prom(&mut p);
        assert_eq!(p.finish(), "", "no adapt families before a self-tuning trace");

        // An adaptive trace populates all four.
        let mut t = trace(1, TARGET, 0.3);
        t.adapt_cost_us = 10_210.5;
        t.adapt_generation = 2;
        t.adapt_swaps = 3;
        t.adapt_arm = 1;
        sink.record(&t);
        let mut p = PromText::new("streamshed");
        plane.render_adapt_prom(&mut p);
        let body = p.finish();
        assert!(body.contains("# TYPE streamshed_adapt_cost_estimate_us gauge"), "{body}");
        assert!(body.contains("streamshed_adapt_cost_estimate_us 10210.5"), "{body}");
        assert!(body.contains("streamshed_adapt_gain_generation 2"), "{body}");
        assert!(body.contains("# TYPE streamshed_adapt_swaps_total counter"), "{body}");
        assert!(body.contains("streamshed_adapt_swaps_total 3"), "{body}");
        assert!(body.contains("streamshed_adapt_comparator_arm 1"), "{body}");
    }

    #[test]
    fn health_turns_503_on_divergence() {
        let plane = ObsPlane::new(&options());
        let mut server = start_server(&plane);
        let addr = server.addr();
        let mut sink = plane.clone();
        for k in 0..20 {
            sink.record(&trace(k, 3.0 * TARGET, 0.5));
        }
        let (status, body) = http_get(addr, "/health", Duration::from_secs(2)).unwrap();
        assert_eq!(status, 503);
        assert!(body.contains("\"state\":\"diverging\""), "{body}");
        server.stop();
    }

    #[test]
    fn hostile_requests_do_not_kill_the_server() {
        let plane = ObsPlane::new(&options());
        let mut server = start_server(&plane);
        let addr = server.addr();
        let t = Duration::from_secs(2);

        // Oversized head.
        {
            let mut s = TcpStream::connect_timeout(&addr, t).unwrap();
            let junk = vec![b'a'; 32 * 1024];
            let _ = s.write_all(&junk);
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
        }
        // Garbage, then immediate close.
        {
            let mut s = TcpStream::connect_timeout(&addr, t).unwrap();
            let _ = s.write_all(b"\x00\xff\x00\xff");
        }
        // Wrong method.
        {
            let mut s = TcpStream::connect_timeout(&addr, t).unwrap();
            let _ = s.write_all(b"POST /metrics HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            assert!(out.starts_with("HTTP/1.1 405"), "{out}");
        }
        // Still serving.
        let (status, _) = http_get(addr, "/metrics", t).unwrap();
        assert_eq!(status, 200);
        server.stop();
    }

    #[test]
    fn plane_writes_flight_bundle_on_anomalous_transition() {
        let dir = std::env::temp_dir().join(format!("streamshed_obs_flight_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plane = ObsPlane::new(&options().with_flight_dir(&dir));
        let mut sink = plane.clone();
        // Saturation scenario: pinned high while violating.
        for k in 0..6 {
            sink.record(&trace(k, 2.0 * TARGET, 1.0));
        }
        assert_eq!(plane.health().state, HealthState::Saturated);
        assert_eq!(plane.flight_bundles_written(), 1);
        let bundles = crate::flight::list_bundles(&dir);
        assert_eq!(bundles.len(), 1);
        let body = std::fs::read_to_string(&bundles[0]).unwrap();
        let header = body.lines().next().unwrap();
        assert!(header.contains("\"state\":\"saturated\""));
        // The bundle snapshots the ring at the transition (period k=2,
        // when the pinned streak reaches 3): header + 3 traces.
        assert!(header.contains("\"traces\":3"), "{header}");
        assert_eq!(body.lines().count(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn obs_handle_headless_and_with_server() {
        let mut opts = options();
        opts.http = None;
        let metrics: MetricsFn = Arc::new(String::new);
        let mut headless = ObsHandle::start(&opts, Arc::clone(&metrics)).unwrap();
        assert!(headless.addr().is_none());
        headless.stop();

        let served = ObsHandle::start(&options(), metrics).unwrap();
        assert!(served.addr().is_some());
    }
}
