//! Network introspection: Graphviz DOT export and a text summary —
//! the "Fig. 2 view" of any query network.

use crate::network::QueryNetwork;
use std::fmt::Write as _;

/// Renders the network as a Graphviz `digraph` (entry operators drawn as
/// doubled ellipses, per-node cost and expected downstream load in the
/// label).
pub fn to_dot(net: &QueryNetwork) -> String {
    let mut out = String::from("digraph query_network {\n  rankdir=LR;\n");
    for (i, node) in net.nodes().iter().enumerate() {
        let shape = if node.is_entry {
            "doublecircle"
        } else {
            "ellipse"
        };
        let _ = writeln!(
            out,
            "  op{i} [shape={shape}, label=\"{}\\n{}\\n{:.0}µs (load {:.0}µs)\"];",
            node.name,
            node.logic.kind(),
            node.cost.as_micros(),
            net.downstream_load_us(crate::network::NodeId(i)),
        );
    }
    for (i, node) in net.nodes().iter().enumerate() {
        for (branch, targets) in node.outputs.iter().enumerate() {
            for edge in targets {
                let label = if node.outputs.len() > 1 {
                    format!(" [label=\"b{branch}→p{}\"]", edge.port)
                } else if edge.port > 0 {
                    format!(" [label=\"p{}\"]", edge.port)
                } else {
                    String::new()
                };
                let _ = writeln!(out, "  op{i} -> op{}{};", edge.node.index(), label);
            }
        }
    }
    out.push_str("}\n");
    out
}

/// A one-line-per-operator text summary.
pub fn describe(net: &QueryNetwork) -> String {
    let mut out = format!(
        "query network: {} operators, {} entries, expected cost {:.0} µs/tuple\n",
        net.len(),
        net.entries().len(),
        net.expected_cost_per_tuple_us()
    );
    for (i, node) in net.nodes().iter().enumerate() {
        let outputs: Vec<String> = node
            .outputs
            .iter()
            .flat_map(|branch| branch.iter())
            .map(|e| format!("op{}", e.node.index()))
            .collect();
        let _ = writeln!(
            out,
            "  op{i} {:<12} {:<14} cost {:>6.0} µs  sel {:>4.2}  → [{}]{}",
            node.name,
            node.logic.kind(),
            node.cost.as_micros(),
            node.logic.expected_selectivity(),
            outputs.join(", "),
            if node.is_entry { "  (entry)" } else { "" },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::networks::identification_network;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let net = identification_network();
        let dot = to_dot(&net);
        assert!(dot.starts_with("digraph"));
        for i in 0..net.len() {
            assert!(dot.contains(&format!("op{i} [")), "node op{i} missing");
        }
        // Entries drawn differently.
        assert_eq!(dot.matches("doublecircle").count(), 3);
        // Split edges are branch-labelled.
        assert!(dot.contains("b0→p0") || dot.contains("b1→p0"));
    }

    #[test]
    fn describe_lists_every_operator() {
        let net = identification_network();
        let text = describe(&net);
        assert!(text.contains("14 operators"));
        assert!(text.contains("(entry)"));
        assert!(text.lines().count() >= 15);
        assert!(text.contains("split"));
        assert!(text.contains("union"));
    }
}
