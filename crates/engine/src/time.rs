//! Simulated time.
//!
//! All engine timekeeping is in integer **microseconds** (`u64`) to keep
//! virtual-time arithmetic exact and deterministic; floating-point seconds
//! appear only at API boundaries.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in microseconds since the start of
/// the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

/// `n` seconds as a duration.
#[inline]
pub const fn secs(n: u64) -> SimDuration {
    SimDuration(n * 1_000_000)
}

/// `n` milliseconds as a duration.
#[inline]
pub const fn millis(n: u64) -> SimDuration {
    SimDuration(n * 1_000)
}

/// `n` microseconds as a duration.
#[inline]
pub const fn micros(n: u64) -> SimDuration {
    SimDuration(n)
}

/// Fractional seconds as a duration (rounded to the nearest microsecond).
#[inline]
pub fn secs_f64(s: f64) -> SimDuration {
    assert!(s >= 0.0 && s.is_finite(), "duration must be non-negative");
    SimDuration((s * 1e6).round() as u64)
}

/// Fractional milliseconds as a duration (rounded to the nearest
/// microsecond).
#[inline]
pub fn millis_f64(ms: f64) -> SimDuration {
    secs_f64(ms / 1e3)
}

impl SimTime {
    /// Time zero — the start of the run.
    pub const ZERO: SimTime = SimTime(0);

    /// This instant in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Elapsed time since `earlier`; saturates at zero if `earlier` is in
    /// the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// This span in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This span in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This span in whole microseconds.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Scales this duration by a non-negative factor.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor >= 0.0 && factor.is_finite());
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(secs(1), millis(1000));
        assert_eq!(millis(1), micros(1000));
        assert_eq!(secs_f64(0.5), millis(500));
        assert_eq!(millis_f64(1.5), micros(1500));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + secs(2);
        assert_eq!(t.as_secs_f64(), 2.0);
        let later = t + millis(500);
        assert_eq!((later - t).as_millis_f64(), 500.0);
        // Saturating subtraction.
        assert_eq!((t - later).as_micros(), 0);
        assert_eq!(t.since(later), SimDuration::ZERO);
    }

    #[test]
    fn scaling() {
        assert_eq!(millis(10).mul_f64(2.5), millis(25));
        assert_eq!(millis(10).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn negative_seconds_rejected() {
        let _ = secs_f64(-1.0);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(format!("{}", SimTime(1_500_000)), "1.500s");
        assert_eq!(format!("{}", millis(42)), "42.000ms");
    }
}
